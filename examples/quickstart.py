#!/usr/bin/env python3
"""Quickstart: a tour of the modern filter API.

The tutorial's thesis is that applications should program against
feature-rich filters — deletes, counts, values, ranges, adaptivity,
expansion — rather than the lowest-common-denominator Bloom interface.
This script walks through each capability in ~60 lines of API use.

Run:  python examples/quickstart.py
"""

from repro import FEATURE_MATRIX, available_filters, make_filter
from repro.adaptive.dictionary import FilteredDictionary
from repro.maplets.qf_maplet import QuotientFilterMaplet
from repro.rangefilters.grafite import Grafite


def main() -> None:
    print(f"{len(available_filters())} filters available:")
    print("  " + ", ".join(available_filters()))
    print()

    # -- 1. Dynamic membership with deletes (quotient filter) ---------------
    qf = make_filter("quotient", capacity=10_000, epsilon=0.01)
    for user in ("alice", "bob", "carol"):
        qf.insert(user)
    assert "alice" in qf and "mallory" not in qf
    qf.delete("bob")  # something a Bloom filter cannot do
    print(f"quotient filter: 3 inserts, 1 delete -> {len(qf)} members "
          f"({qf.size_in_bits / qf.capacity:.1f} bits/key at capacity)")

    # -- 2. Counting (multiset) membership ----------------------------------
    cqf = make_filter("cqf", capacity=10_000, epsilon=0.01)
    for _ in range(42):
        cqf.insert("hot-item")
    cqf.insert("cold-item")
    print(f"counting QF: count('hot-item') = {cqf.count('hot-item')}, "
          f"count('cold-item') = {cqf.count('cold-item')}, "
          f"count('absent') = {cqf.count('absent')}")

    # -- 3. Expansion without the original keys -----------------------------
    growing = make_filter("infinifilter", capacity=64, epsilon=0.01)
    for i in range(5_000):
        growing.insert_autogrow(i)
    assert all(growing.may_contain(i) for i in range(0, 5_000, 97))
    print(f"InfiniFilter: grew through {growing.n_expansions} doublings, "
          f"still no false negatives")

    # -- 4. Adaptivity: stop repeating false positives -----------------------
    acf = make_filter("adaptive-cuckoo", capacity=1_000, epsilon=0.05)
    store = FilteredDictionary(acf)
    for i in range(1_000):
        store.put(f"key{i}", i)
    for probe in range(20_000):  # hammer with negatives; FPs get fixed
        store.get(f"absent{probe % 200}")
    print(f"adaptive dictionary: {store.stats.queries} negative lookups cost "
          f"only {store.stats.false_positives} wasted disk reads")

    # -- 5. Maplets: associate values with keys ------------------------------
    maplet = QuotientFilterMaplet.for_capacity(1_000, 0.01, value_bits=16)
    maplet.insert("order:1117", 3)   # e.g. key -> file id
    maplet.insert("order:2423", 7)
    print(f"maplet: get('order:1117') = {maplet.get('order:1117')}, "
          f"get('nope') = {maplet.get('nope')}")

    # -- 6. Range filtering ---------------------------------------------------
    keys = list(range(0, 1 << 20, 1 << 10))  # sparse keys
    grafite = Grafite(keys, max_range=1 << 8, epsilon=0.01, key_bits=21)
    hit = grafite.may_intersect(keys[5] - 10, keys[5] + 10)
    miss = grafite.may_intersect(keys[5] + 100, keys[5] + 200)
    print(f"grafite range filter: around-a-key -> {hit}, empty gap -> {miss}, "
          f"{grafite.bits_per_key:.1f} bits/key")

    # -- 7. The taxonomy as data ----------------------------------------------
    print("\nfeature matrix (excerpt):")
    for name in ("bloom", "quotient", "cqf", "infinifilter", "adaptive-quotient"):
        f = FEATURE_MATRIX[name]
        flags = [
            label
            for label, on in [
                ("inserts", f.inserts), ("deletes", f.deletes),
                ("counting", f.counting), ("expandable", f.expandable),
                ("adaptive", f.adaptive),
            ]
            if on
        ]
        print(f"  {name:20s} {f.kind:12s} {', '.join(flags)}")


if __name__ == "__main__":
    main()
