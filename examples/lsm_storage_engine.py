#!/usr/bin/env python3
"""LSM-tree storage engine case study (§3.1).

Builds the same key-value workload into four LSM configurations and prints
the I/O numbers the tutorial's storage-engine section argues about:

1. no filters             — every lookup probes every run;
2. uniform Bloom filters  — the pre-Monkey status quo;
3. Monkey allocation      — ΣFPR converges, wasted I/O drops to O(ε);
4. a single maplet        — the SlimDB/Chucky/SplinterDB design.

Plus a range-query comparison with and without per-run range filters.

Run:  python examples/lsm_storage_engine.py
"""

import numpy as np

from repro.apps.lsm import LSMConfig, LSMTree
from repro.rangefilters.prefix_bloom import PrefixBloomFilter

N_ENTRIES = 6_000
N_LOOKUPS = 4_000
KEY_BITS = 30


def build(config: LSMConfig) -> LSMTree:
    tree = LSMTree(config)
    rng = np.random.default_rng(7)
    for key in rng.choice(1 << KEY_BITS, size=N_ENTRIES, replace=False):
        tree.put(int(key), int(key) * 2)
    return tree


def negative_lookups(tree: LSMTree) -> None:
    rng = np.random.default_rng(8)
    for q in rng.integers(1 << 40, 1 << 41, size=N_LOOKUPS):
        tree.get(int(q))


def main() -> None:
    print(f"workload: {N_ENTRIES} inserts, {N_LOOKUPS} negative point lookups\n")
    print(f"{'configuration':24s} {'runs':>5s} {'wasted I/Os':>12s} "
          f"{'I/O per lookup':>15s} {'filter bits/key':>16s}")
    configs = {
        "no filters": LSMConfig(compaction="tiering", memtable_entries=64,
                                size_ratio=4, filter_policy="none"),
        "uniform bloom": LSMConfig(compaction="tiering", memtable_entries=64,
                                   size_ratio=4, filter_policy="uniform",
                                   largest_level_epsilon=0.02),
        "monkey allocation": LSMConfig(compaction="tiering", memtable_entries=64,
                                       size_ratio=4, filter_policy="monkey",
                                       largest_level_epsilon=0.02),
        "single maplet": LSMConfig(compaction="tiering", memtable_entries=64,
                                   size_ratio=4, use_maplet=True,
                                   maplet_capacity=1 << 14),
    }
    for name, config in configs.items():
        tree = build(config)
        negative_lookups(tree)
        print(f"{name:24s} {tree.n_runs:>5d} "
              f"{tree.stats.wasted_lookup_ios:>12d} "
              f"{tree.stats.ios_per_lookup:>15.3f} "
              f"{tree.filter_bits_per_key:>16.1f}")

    # Range queries: with vs without per-run range filters.
    print("\nrange queries (300 x 256-key ranges):")
    for label, factory in [
        ("no range filter", None),
        ("prefix bloom / run",
         lambda keys: PrefixBloomFilter(keys, key_bits=KEY_BITS, prefix_bits=22)),
    ]:
        tree = build(
            LSMConfig(compaction="tiering", memtable_entries=64, size_ratio=4,
                      range_filter_factory=factory)
        )
        rng = np.random.default_rng(9)
        for lo in rng.integers(0, (1 << KEY_BITS) - 256, size=300):
            tree.range_query(int(lo), int(lo) + 255)
        print(f"  {label:22s} range I/Os = {tree.stats.range_ios:5d} "
              f"(wasted {tree.stats.wasted_range_ios})")

    # Write amplification across compaction policies (Dostoevsky's point).
    print("\nwrite amplification by compaction policy:")
    for compaction in ("leveling", "lazy-leveling", "tiering"):
        tree = build(LSMConfig(compaction=compaction, memtable_entries=64,
                               size_ratio=4))
        print(f"  {compaction:14s} write-amp = {tree.write_amplification:5.2f}")


if __name__ == "__main__":
    main()
