#!/usr/bin/env python3
"""Computational-biology case study (§3.2).

Walks the tutorial's three genomics uses of filters on synthetic data:

1. Squeakr: count k-mers from sequencing reads in a counting quotient
   filter (approximate vs exact mode).
2. de Bruijn graphs: Bloom-backed graph, critical false positives, the
   Chikhi–Rizk exact upgrade and the cascading-Bloom refinement.
3. Sequence search: the Sequence Bloom Tree vs the Mantis exact index.

Run:  python examples/genomic_search.py
"""

from repro.apps.debruijn import CascadingBloomDeBruijn, FilterBackedDeBruijn
from repro.apps.kmers import KmerCounter
from repro.apps.mantis import MantisIndex
from repro.apps.sbt import SequenceBloomTree
from repro.workloads.dna import (
    extract_kmers,
    random_genome,
    sequencing_experiments,
    sequencing_reads,
)

K = 13


def kmer_counting() -> None:
    print("=== 1. k-mer counting (Squeakr on the CQF) ===")
    genome = random_genome(5_000, seed=1)
    reads = sequencing_reads(genome, n_reads=400, read_len=80, seed=2)
    truth: dict[str, int] = {}
    for read in reads:
        for kmer in extract_kmers(read, K):
            truth[kmer] = truth.get(kmer, 0) + 1

    approx = KmerCounter(K, 60_000, exact=False, epsilon=0.01, seed=3)
    exact = KmerCounter(K, 60_000, exact=True, seed=3)
    for counter in (approx, exact):
        counter.add_reads(reads)

    sample = list(truth)[:2_000]
    approx_exactly_right = sum(approx.count(k) == truth[k] for k in sample)
    exact_right = sum(exact.count(k) == truth[k] for k in sample)
    print(f"  distinct k-mers: {len(truth)}; total occurrences: {sum(truth.values())}")
    print(f"  approximate CQF: {approx_exactly_right}/{len(sample)} counts exact "
          f"(errors only ever over-count), {approx.size_in_bits/1024:.0f} Kib")
    print(f"  exact CQF:       {exact_right}/{len(sample)} counts exact, "
          f"{exact.size_in_bits/1024:.0f} Kib\n")


def debruijn() -> None:
    print("=== 2. de Bruijn graph over a Bloom filter ===")
    genome = random_genome(8_000, seed=4)
    kmers = set(extract_kmers(genome, K))
    graph = FilterBackedDeBruijn(kmers, epsilon=0.05, seed=5)
    cascade = CascadingBloomDeBruijn(kmers, epsilon=0.05, seed=5)
    walk = graph.walk(genome[:K], max_steps=500)
    print(f"  {graph.n_kmers} true k-mers; critical false positives: "
          f"{graph.n_critical} ({graph.critical_fraction:.2%})")
    print(f"  greedy walk from the genome start follows {len(walk)} exact nodes")
    print(f"  exact cFP table: {graph.critical_table_bits/1024:.1f} Kib; "
          f"cascading-Bloom replacement: "
          f"{(cascade.size_in_bits - cascade._b1.size_in_bits)/1024:.1f} Kib "
          f"(residue {cascade.residue_size} entries)\n")


def sequence_search() -> None:
    print("=== 3. experiment discovery: SBT vs Mantis ===")
    experiments = sequencing_experiments(
        16, genome_len=3_000, k=K, shared_fraction=0.4, seed=6
    )
    sbt = SequenceBloomTree(experiments, epsilon=0.05, seed=7)
    mantis = MantisIndex(experiments, seed=7)

    query = list(experiments[9])[:100]
    sbt_hits = sbt.query(query, theta=0.8)
    mantis_hits = mantis.query(query, theta=0.8)
    print(f"  query drawn from experiment 9 ({len(query)} k-mers, theta=0.8)")
    print(f"  SBT    -> {sbt_hits}  ({sbt.last_query_nodes} tree nodes probed, "
          f"{sbt.size_in_bits/8192:.0f} KiB)")
    print(f"  Mantis -> {mantis_hits}  (exact; {mantis.n_colour_classes} colour "
          f"classes, {mantis.size_in_bits/8192:.0f} KiB)")
    spurious = set(sbt_hits) - set(mantis_hits)
    if spurious:
        print(f"  SBT reported spurious experiments: {sorted(spurious)} — "
              f"Mantis, being exact, did not")


def main() -> None:
    kmer_counting()
    debruijn()
    sequence_search()


if __name__ == "__main__":
    main()
