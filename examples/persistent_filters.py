#!/usr/bin/env python3
"""Persisting filters across restarts.

Filters guard on-disk data, so a storage engine reopening after a restart
must reload its filters rather than rebuild them from millions of keys.
This example builds filters for three "runs" of an LSM-like store, saves
them to disk, simulates a restart, reloads, and verifies the reloaded
filters answer identically — including surviving a delete-and-reinsert
cycle on the dynamic ones.

Run:  python examples/persistent_filters.py
"""

import os
import tempfile
import time

from repro.core.serialize import dumps, loads
from repro.filters.cuckoo import CuckooFilter
from repro.filters.quotient import QuotientFilter
from repro.filters.xor import XorFilter
from repro.workloads.synthetic import disjoint_key_sets


def main() -> None:
    members, probes = disjoint_key_sets(20_000, 20_000, seed=1)
    runs = [members[i::3] for i in range(3)]

    # Build one filter per run, as a storage engine would at flush time.
    built = {
        "run-0.xor": XorFilter.build(runs[0], epsilon=2**-10, seed=2),
        "run-1.qf": _filled(QuotientFilter.for_capacity(len(runs[1]), 2**-10, seed=3), runs[1]),
        "run-2.cf": _filled(CuckooFilter.for_capacity(len(runs[2]), 2**-10, seed=4), runs[2]),
    }

    workdir = tempfile.mkdtemp(prefix="beyondbloom-")
    t0 = time.perf_counter()
    for name, filt in built.items():
        with open(os.path.join(workdir, name), "wb") as fh:
            fh.write(dumps(filt))
    save_ms = (time.perf_counter() - t0) * 1000

    # --- simulated restart: nothing survives but the files -----------------
    t0 = time.perf_counter()
    reloaded = {}
    for name in built:
        with open(os.path.join(workdir, name), "rb") as fh:
            reloaded[name] = loads(fh.read())
    load_ms = (time.perf_counter() - t0) * 1000

    mismatches = 0
    for name, filt in built.items():
        other = reloaded[name]
        for key in members[:3000] + probes[:3000]:
            if filt.may_contain(key) != other.may_contain(key):
                mismatches += 1
    print(f"saved 3 filters in {save_ms:.1f} ms, reloaded in {load_ms:.1f} ms")
    print(f"answer mismatches across 6000 probes x 3 filters: {mismatches}")

    qf = reloaded["run-1.qf"]
    victim = runs[1][0]
    qf.delete(victim)
    qf.insert("fresh-after-restart")
    print(f"reloaded quotient filter still mutable: deleted a key "
          f"({not qf.may_contain(victim)}), inserted a new one "
          f"({qf.may_contain('fresh-after-restart')})")

    total_bytes = sum(
        os.path.getsize(os.path.join(workdir, name)) for name in built
    )
    print(f"on-disk footprint: {total_bytes / 1024:.1f} KiB for "
          f"{len(members)} keys "
          f"({total_bytes * 8 / len(members):.1f} bits/key incl. headers)")


def _filled(filt, keys):
    for key in keys:
        filt.insert(key)
    return filt


if __name__ == "__main__":
    main()
