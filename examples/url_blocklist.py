#!/usr/bin/env python3
"""Networking / cybersecurity case study (§3.3): malicious-URL blocking.

A router keeps the malicious-URL yes list in a filter.  Benign traffic is
Zipf-skewed, so any popular benign URL that happens to false-positive gets
penalised over and over.  Compares the tutorial's three designs:

* plain filter           — hot FPs pay the verification penalty forever;
* static no list         — protected URLs must be known in advance;
* adaptive filter        — the no list builds itself from live traffic.

Run:  python examples/url_blocklist.py
"""

from repro.apps.blocklist import AdaptiveBlocklist, Blocklist, StaticNoListBlocklist
from repro.workloads.urls import split_malicious, url_query_stream, url_universe

N_URLS = 4_000
N_REQUESTS = 50_000


def main() -> None:
    urls = url_universe(N_URLS, seed=1)
    malicious, benign = split_malicious(urls, malicious_fraction=0.2, seed=2)
    stream = url_query_stream(
        benign, malicious, N_REQUESTS, malicious_rate=0.05, skew=1.2, seed=3
    )
    n_malicious_requests = sum(1 for _, bad in stream if bad)
    print(f"{len(malicious)} malicious URLs; {N_REQUESTS} requests "
          f"({n_malicious_requests} malicious), Zipf-skewed benign traffic\n")

    designs = {
        "plain filter": Blocklist(malicious, epsilon=0.02, seed=4),
        "static no list (top-300)": StaticNoListBlocklist(
            malicious, benign[:300], epsilon=0.02, seed=4
        ),
        "adaptive filter": AdaptiveBlocklist(malicious, epsilon=0.02, seed=4),
    }
    print(f"{'design':26s} {'blocked':>8s} {'missed':>7s} {'false blocks':>13s} "
          f"{'fb rate':>9s} {'verifications':>14s}")
    for name, blocklist in designs.items():
        for url, is_malicious in stream:
            blocklist.handle(url, is_malicious)
        s = blocklist.stats
        print(f"{name:26s} {s.blocked_malicious:>8d} {s.missed_malicious:>7d} "
              f"{s.false_blocks:>13d} {s.false_block_rate:>9.5f} "
              f"{s.verifications:>14d}")

    print("\nEvery design blocks all malicious URLs (filters have no false")
    print("negatives).  The adaptive filter converges to ~zero false blocks")
    print("without knowing the protected URLs in advance.")


if __name__ == "__main__":
    main()
