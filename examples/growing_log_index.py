#!/usr/bin/env python3
"""Expandable-maplet case study (§2.2 + §3.1): a circular-log store.

A FASTER-style append-only log with an in-memory maplet index.  The data
outgrows the initial index many times over; the maplet expands in place
(no access to the original keys), absorbs updates and deletes, and keeps
lookups at ~1 device read.  Also contrasts the §2.2 expansion strategies
on the same growth curve.

Run:  python examples/growing_log_index.py
"""

from repro.apps.circlog import CircularLogStore
from repro.expandable.aleph import AlephFilter
from repro.expandable.chaining import ChainedFilter, ScalableBloomFilter
from repro.expandable.infinifilter import InfiniFilter
from repro.expandable.naive import NaiveExpandableQuotientFilter
from repro.expandable.taffy import TaffyCuckooFilter
from repro.workloads.synthetic import disjoint_key_sets


def circular_log_demo() -> None:
    print("=== circular log with an expandable maplet index ===")
    store = CircularLogStore(initial_capacity=64, epsilon=0.01,
                             segment_records=512, seed=1)
    for i in range(4_000):
        store.put(f"user:{i % 1_000}", {"version": i})  # heavy overwrites
    print(f"  {store.stats.appends} appends -> {store.live_records} live keys, "
          f"{store.log_records} log records")
    relocated = store.gc()
    print(f"  GC pass relocated {relocated} live records from the oldest segment")
    store.stats.lookups = store.stats.lookup_ios = 0
    for i in range(1_000):
        assert store.get(f"user:{i}") is not None
    print(f"  lookups cost {store.stats.lookup_ios / store.stats.lookups:.2f} "
          f"device reads each; index at "
          f"{store.index_bits_per_key:.1f} bits/key after expansion\n")


def expansion_strategies() -> None:
    print("=== §2.2 expansion strategies on the same 60x growth ===")
    members, negatives = disjoint_key_sets(8_000, 20_000, seed=2)
    strategies = {
        "chained (fixed links)": ChainedFilter(128, 0.01, seed=3),
        "scalable bloom": ScalableBloomFilter(128, 0.01, seed=3),
        "naive QF doubling": NaiveExpandableQuotientFilter.for_capacity(128, 0.01, seed=3),
        "taffy cuckoo": TaffyCuckooFilter.for_capacity(128, 0.01, seed=3),
        "infinifilter": InfiniFilter.for_capacity(128, 0.01, seed=3),
        "aleph": AlephFilter.for_capacity(128, 0.01, seed=3),
    }
    print(f"{'strategy':24s} {'FPR after growth':>17s} {'query cost':>11s}")
    for name, filt in strategies.items():
        for key in members:
            filt.insert_autogrow(key)
        fpr = sum(filt.may_contain(k) for k in negatives) / len(negatives)
        cost = filt.query_cost("some-negative-probe")
        print(f"{name:24s} {fpr:>17.5f} {cost:>11d}")
    print("\nThe naive doubling burned a fingerprint bit per doubling (FPR")
    print("doubles each time); the chain answers through every link; the")
    print("modern designs keep both the FPR and the probe count flat.")


def main() -> None:
    circular_log_demo()
    expansion_strategies()


if __name__ == "__main__":
    main()
