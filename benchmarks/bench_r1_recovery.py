"""R1 — recovery under corruption (robustness stack, docs/robustness.md).

Claims checked:
  * recovery's extra rebuild I/O is proportional to the size of the runs
    whose filter blobs were corrupted — intact runs cost nothing extra;
  * a degraded run (filter unrecoverable, ``rebuild_filters_on_recovery``
    off) costs exactly one extra device read per lookup probe, which is
    precisely the read the filter existed to skip.

Series: recovery I/O vs corrupted-run entries (rebuild mode); reads per
negative lookup vs number of degraded runs (degrade mode).
"""

from __future__ import annotations

import numpy as np

from repro.apps.lsm import LSMConfig, LSMTree
from repro.common.faults import FaultyBlockDevice

from _util import print_table

N_ENTRIES = 4000
N_QUERIES = 2000


def _build(rebuild: bool = True) -> LSMTree:
    config = LSMConfig(
        compaction="tiering",
        memtable_entries=32,
        size_ratio=4,
        rebuild_filters_on_recovery=rebuild,
    )
    tree = LSMTree(config, device=FaultyBlockDevice())
    rng = np.random.default_rng(91)
    for key in rng.choice(1 << 30, size=N_ENTRIES, replace=False):
        tree.put(int(key), 0)
    tree.flush()
    return tree


def _filter_runs(tree: LSMTree):
    """Live runs with a filter blob on the device, largest first."""
    runs = [
        run
        for level in tree._levels
        for run in level
        if tree.device.exists(("filter", run.run_id))
    ]
    return sorted(runs, key=len, reverse=True)


def test_r1_rebuild_io_tracks_corrupted_run_size(benchmark):
    rows = []
    baseline_written = None
    for n_ruined in (0, 1, 2, 4, 8):
        tree = _build()
        victims = _filter_runs(tree)[:n_ruined]
        for run in victims:
            tree.device.ruin(("filter", run.run_id))
        recovered = LSMTree.recover(tree.device, tree.config)
        report = recovered.recovery_report
        assert report.filters_rebuilt == len(victims)
        corrupted_entries = sum(len(run) for run in victims)
        if baseline_written is None:
            baseline_written = report.io.bytes_written
        extra = report.io.bytes_written - baseline_written
        rows.append(
            [
                len(victims),
                corrupted_entries,
                report.io.reads,
                extra,
                round(extra / corrupted_entries, 3) if corrupted_entries else "-",
            ]
        )
    print_table(
        f"R1a: filter-rebuild I/O vs corruption ({N_ENTRIES} entries)",
        ["ruined blobs", "corrupted entries", "recovery reads",
         "extra bytes written", "extra bytes / corrupted entry"],
        rows,
        note="extra write I/O to re-persist rebuilt filters scales with the "
        "corrupted runs' sizes; intact runs add nothing",
    )
    benchmark(lambda: LSMTree.recover(_build().device))


def test_r1_degraded_lookup_cost():
    rows = []
    base_reads_per_q = None
    for n_degraded in (0, 1, 2, 4):
        tree = _build(rebuild=False)
        victims = _filter_runs(tree)[:n_degraded]
        for run in victims:
            tree.device.ruin(("filter", run.run_id))
        recovered = LSMTree.recover(tree.device, tree.config)
        report = recovered.recovery_report
        assert report.filters_degraded == len(victims)
        before = recovered.device.stats.snapshot()
        queries = np.random.default_rng(92).integers(1 << 40, 1 << 41, size=N_QUERIES)
        for q in queries:
            recovered.get(int(q))  # guaranteed negative
        reads_per_q = (recovered.device.stats - before).reads / N_QUERIES
        if base_reads_per_q is None:
            base_reads_per_q = reads_per_q
        extra_per_q = reads_per_q - base_reads_per_q
        assert recovered.stats.degraded_lookups == len(victims) * N_QUERIES
        rows.append(
            [
                len(victims),
                round(reads_per_q, 4),
                round(extra_per_q, 4),
                recovered.stats.degraded_lookups // N_QUERIES,
            ]
        )
    print_table(
        f"R1b: degraded-run lookup cost ({N_QUERIES} negative lookups)",
        ["degraded runs", "device reads / lookup", "extra reads / lookup",
         "degraded probes / lookup"],
        rows,
        note="each degraded run costs exactly one extra device read per "
        "lookup — the read its filter existed to skip",
    )
