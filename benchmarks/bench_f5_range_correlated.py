"""F5 — range filters under key/query correlation (§2.5).

Paper claims checked: queries that start just above an existing key
("correlated" workloads) destroy SuRF's filtering (FPR → ~1), while
Grafite "exhibits a more robust performance under workloads with high
correlations between keys and queries"; SNARF and Rosetta sit in between
depending on gap size.  Also: training lets ARF handle a *repeating*
workload, reproducing its Hekaton niche.
"""

from __future__ import annotations

from repro.rangefilters.arf import AdaptiveRangeFilter
from repro.rangefilters.grafite import Grafite
from repro.rangefilters.rosetta import Rosetta
from repro.rangefilters.snarf import SNARF
from repro.rangefilters.surf import SuRF
from repro.workloads.synthetic import correlated_range_queries, random_key_set

from _util import measured_range_fpr, print_table

KEY_BITS = 32
UNIVERSE = 1 << KEY_BITS
N = 1 << 13
GAPS = (1, 16, 1024)
RANGE_LEN = 8


def test_f5_correlated_workload(benchmark):
    keys = random_key_set(N, seed=61, universe=UNIVERSE)
    filters = {
        "surf (base)": SuRF(keys, key_bits=KEY_BITS, seed=62),
        "surf (real8)": SuRF(keys, key_bits=KEY_BITS, real_suffix_bits=8, seed=62),
        "rosetta": Rosetta(keys, key_bits=KEY_BITS, bits_per_key=22, n_levels=14, seed=62),
        "snarf": SNARF(keys, key_bits=KEY_BITS, multiplier=64, seed=62),
        "grafite": Grafite(keys, key_bits=KEY_BITS, max_range=4096, epsilon=0.02, seed=62),
    }
    rows = []
    for name, filt in filters.items():
        series = []
        for gap in GAPS:
            queries = correlated_range_queries(keys, 500, RANGE_LEN, gap, seed=63)
            series.append(round(measured_range_fpr(filt, queries, keys), 4))
        rows.append([name] + series)

    # ARF: trained on the repeating correlated workload, then re-queried.
    arf = AdaptiveRangeFilter(keys, key_bits=KEY_BITS, max_nodes=1 << 15)
    queries = correlated_range_queries(keys, 500, RANGE_LEN, 1, seed=63)
    from bisect import bisect_left

    def truly(lo, hi):
        i = bisect_left(keys, lo)
        return i < len(keys) and keys[i] <= hi

    arf.train([q for q in queries if not truly(*q)])
    rows.append(
        ["arf (trained on gap=1)", round(measured_range_fpr(arf, queries, keys), 4),
         "-", "-"]
    )
    print_table(
        f"F5: FPR under correlated queries (gap above an existing key, len={RANGE_LEN})",
        ["filter"] + [f"gap={g}" for g in GAPS],
        rows,
        note="surf-base collapses at small gaps (shared prefixes); grafite "
        "stays at ~eps at every gap; ARF handles repeats only after training",
    )
    grafite = filters["grafite"]
    queries = correlated_range_queries(keys, 400, RANGE_LEN, 1, seed=64)
    benchmark(lambda: [grafite.may_intersect(lo, hi) for lo, hi in queries])
