"""F6 — Monkey's filter-memory allocation in an LSM-tree (§3.1).

Paper claims checked:
  * filters cut negative-lookup I/O from O(#runs) to ~ΣFPR;
  * Monkey's allocation makes ΣFPR converge — O(ε) wasted I/Os — while
    uniform allocation pays O(ε·lg N): the gap widens as the tree deepens;
  * Dostoevsky (lazy leveling) cuts write amplification vs leveling
    without hurting point lookups.

Series: wasted I/Os per lookup vs filter memory budget (swept via the
largest-level ε), uniform vs Monkey.
"""

from __future__ import annotations

import numpy as np

from repro.apps.lsm import LSMConfig, LSMTree

from _util import print_table

N_ENTRIES = 4000
N_QUERIES = 3000
EPS_SWEEP = (0.2, 0.05, 0.01)


def _build_and_query(filter_policy, epsilon, compaction="tiering"):
    tree = LSMTree(
        LSMConfig(
            compaction=compaction,
            memtable_entries=32,
            size_ratio=4,
            filter_policy=filter_policy,
            largest_level_epsilon=epsilon,
        )
    )
    rng = np.random.default_rng(81)
    for key in rng.choice(1 << 30, size=N_ENTRIES, replace=False):
        tree.put(int(key), 0)
    for q in np.random.default_rng(82).integers(1 << 40, 1 << 41, size=N_QUERIES):
        tree.get(int(q))
    return tree


def test_f6_monkey_allocation(benchmark):
    rows = []
    baseline = _build_and_query("none", 0.01)
    rows.append(
        ["none", "-", baseline.n_runs,
         round(baseline.stats.wasted_ios_per_lookup, 4), "-", "-"]
    )
    for policy in ("uniform", "monkey"):
        for epsilon in EPS_SWEEP:
            tree = _build_and_query(policy, epsilon)
            rows.append(
                [
                    policy,
                    epsilon,
                    tree.n_runs,
                    round(tree.stats.wasted_ios_per_lookup, 4),
                    round(tree.sum_of_fprs(), 4),
                    round(tree.filter_bits_per_key, 2),
                ]
            )
    print_table(
        f"F6: LSM negative lookups ({N_ENTRIES} entries, {N_QUERIES} queries)",
        ["filter policy", "eps_L", "runs", "wasted I/O per lookup",
         "sum of FPRs", "filter bits/key"],
        rows,
        note="monkey's sum-of-FPRs ~= eps_L (converges); uniform's ~= runs x "
        "eps; wasted I/O tracks sum-of-FPRs",
    )

    rows2 = []
    for compaction in ("leveling", "lazy-leveling", "tiering"):
        tree = _build_and_query("monkey", 0.01, compaction=compaction)
        rows2.append(
            [compaction, round(tree.write_amplification, 2),
             round(tree.stats.wasted_ios_per_lookup, 4), tree.n_runs]
        )
    print_table(
        "F6b: compaction policy trade-off (Dostoevsky's axis)",
        ["compaction", "write amp", "wasted I/O per lookup", "runs"],
        rows2,
        note="lazy leveling cuts write-amp vs leveling while filters keep "
        "point-lookup cost near leveling's",
    )
    benchmark(lambda: _build_and_query("monkey", 0.05))
