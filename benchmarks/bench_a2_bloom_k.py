"""A2 (ablation) — Bloom filter hash count vs the k = ln2·(m/n) optimum.

Checks the textbook curve behind the 1.44 factor in §2: at fixed memory,
the measured FPR is minimised near the analytic optimum and worsens on
both sides.
"""

from __future__ import annotations

from repro.core.analysis import bloom_bits_per_key, bloom_fpr, bloom_optimal_hashes
from repro.filters.bloom import BloomFilter
from repro.workloads.synthetic import disjoint_key_sets

from _util import measured_fpr, print_table

EPSILON = 2**-8
N = 1 << 13


def test_a2_bloom_hash_count(benchmark):
    members, negatives = disjoint_key_sets(N, 15_000, seed=161)
    bits_per_key = bloom_bits_per_key(EPSILON)
    k_opt = bloom_optimal_hashes(bits_per_key)
    rows = []
    for k in (1, 2, 4, k_opt, k_opt + 4, k_opt + 10):
        bloom = BloomFilter(N, EPSILON, n_hashes=k, seed=162)
        for key in members:
            bloom.insert(key)
        rows.append(
            [
                k,
                "<- optimum" if k == k_opt else "",
                round(measured_fpr(bloom, negatives), 6),
                round(bloom_fpr(bits_per_key, k), 6),
            ]
        )
    print_table(
        f"A2: bloom FPR vs hash count at fixed {bits_per_key:.1f} bits/key",
        ["k", "", "measured FPR", "analytic (1-e^-k/b)^k"],
        rows,
        note="minimum at k = ln2·(m/n); too few hashes under-use the bits, "
        "too many saturate the array",
    )
    bloom = BloomFilter(N, EPSILON, seed=163)
    for key in members:
        bloom.insert(key)
    sample = negatives[:1000]
    benchmark(lambda: sum(1 for key in sample if bloom.may_contain(key)))
