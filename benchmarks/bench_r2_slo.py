"""R2 — availability and goodput vs fault rate (docs/robustness.md).

Claims checked:
  * goodput (authoritative, in-deadline answers per request) degrades
    *gracefully* as the transient-read fault rate rises — no cliff where
    one extra percent of faults collapses the serving layer;
  * the safety invariant holds at every fault rate: a loaded key is
    never answered ABSENT, because every degraded path (shed, timed out,
    runs unreachable) answers the conservative MAYBE;
  * what is lost to faults shows up as *accounted* degradation — the
    DEGRADED/TIMED_OUT/SHED columns — not as silent wrong answers.

Series: per-fault-rate outcome mix, goodput, and p99 served latency for
a calm → storm → recovery schedule whose storm phase runs at the swept
fault rate (the calm/recovery phases sanity-check that degradation is
storm-scoped).  ``REPRO_BENCH_SMALL=1`` shrinks the workload for CI.
"""

from __future__ import annotations

import os

from repro.obs import use_registry
from repro.serve import ServeOutcome, StormPhase, build_stack, run_storm

from _util import print_table

_SMALL = bool(os.environ.get("REPRO_BENCH_SMALL"))
N_KEYS = 500 if _SMALL else 2_000
N_STORM = 200 if _SMALL else 600
N_EDGE = 100 if _SMALL else 300
FAULT_RATES = (0.0, 0.1, 0.2, 0.4, 0.6, 0.8)
SEED = 424242


def _storm_at(rate: float):
    return (
        StormPhase("calm", N_EDGE),
        StormPhase("storm", N_STORM, transient_read=rate,
                   slowdown=3.0, spike_prob=0.02),
        # Recovery arrives at half pressure — the post-incident lull —
        # so breaker cooldowns and half-open probe rounds fit inside the
        # phase even in the REPRO_BENCH_SMALL configuration.
        StormPhase("recovery", N_EDGE, mean_interarrival=0.004),
    )


def test_r2_goodput_degrades_gracefully():
    rows = []
    goodputs = []
    for rate in FAULT_RATES:
        with use_registry():
            served, *_rest = build_stack(seed=SEED, n_keys=N_KEYS)
            report = run_storm(served, _storm_at(rate),
                               seed=SEED, n_keys=N_KEYS)
        # Safety is absolute at every fault rate, not a trend.
        assert report.false_negatives == 0
        calm, storm, recovery = report.phases
        goodput = report.goodput()
        goodputs.append(goodput)
        served_p99 = storm.latency_quantile(0.99)
        rows.append([
            f"{rate:.1f}",
            report.n_requests,
            f"{storm.rate(ServeOutcome.SERVED):.3f}",
            f"{storm.rate(ServeOutcome.DEGRADED):.3f}",
            f"{storm.rate(ServeOutcome.TIMED_OUT):.3f}",
            f"{storm.rate(ServeOutcome.SHED):.3f}",
            f"{goodput:.3f}",
            f"{1e3 * served_p99:.2f}",
            report.breaker_opens,
            report.false_negatives,
        ])
        # Degradation is storm-scoped: the edges stay healthy even at
        # the highest fault rate (early recovery still pays breaker
        # cooldowns, so its bar is slightly lower than calm's).
        assert calm.rate(ServeOutcome.SERVED) == 1.0
        assert recovery.rate(ServeOutcome.SERVED) > 0.8
        # Served answers kept their deadline at every fault rate.
        assert served_p99 <= served.default_budget

    # Graceful degradation: even the zero-fault storm keeps most goodput
    # (it still carries the 3x slowdown and latency spikes), the worst
    # fault rate keeps a usable floor, and no single fault-rate step
    # produces a cliff (> 0.45 absolute goodput drop per step).
    assert goodputs[0] > 0.85
    assert min(goodputs) > 0.3
    for previous, current in zip(goodputs, goodputs[1:]):
        assert previous - current < 0.45

    print_table(
        f"R2: availability/goodput vs fault rate "
        f"({N_KEYS} keys, {N_EDGE}+{N_STORM}+{N_EDGE} requests, seed {SEED})",
        ["fault rate", "requests", "storm served", "storm degraded",
         "storm timed-out", "storm shed", "goodput", "storm p99 (ms)",
         "breaker opens", "false negatives"],
        rows,
        note="rates are per-phase fractions; goodput = served/total across "
             "all three phases; p99 over served storm requests only",
    )
