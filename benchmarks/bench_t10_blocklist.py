"""T10 — yes/no-list URL blocking (§3.3).

Paper claims checked:
  * a plain yes-list filter false-blocks popular benign URLs repeatedly
    under skewed traffic;
  * a static no list eliminates false blocks for the protected set but
    needs it known in advance (and spends full-key space on it);
  * an adaptive filter "efficiently solves the yes/no list problem in both
    the static and dynamic case": false blocks converge to ~one per
    distinct FP, protecting whatever the live traffic hits.
"""

from __future__ import annotations

from repro.apps.blocklist import AdaptiveBlocklist, Blocklist, StaticNoListBlocklist
from repro.workloads.urls import split_malicious, url_query_stream, url_universe

from _util import print_table

N_URLS = 3000
N_REQUESTS = 40_000


def test_t10_blocklists(benchmark):
    urls = url_universe(N_URLS, seed=121)
    malicious, benign = split_malicious(urls, 0.2, seed=122)
    stream = url_query_stream(
        benign, malicious, N_REQUESTS, malicious_rate=0.05, skew=1.2, seed=123
    )
    designs = {
        "plain filter": lambda: Blocklist(malicious, epsilon=0.02, seed=124),
        "static no-list (300)": lambda: StaticNoListBlocklist(
            malicious, benign[:300], epsilon=0.02, seed=124
        ),
        "adaptive filter": lambda: AdaptiveBlocklist(malicious, epsilon=0.02, seed=124),
    }
    rows = []
    for name, factory in designs.items():
        blocklist = factory()
        for url, is_malicious in stream:
            blocklist.handle(url, is_malicious)
        s = blocklist.stats
        rows.append(
            [
                name,
                s.blocked_malicious,
                s.missed_malicious,
                s.false_blocks,
                round(s.false_block_rate, 5),
                round(blocklist.size_in_bits / max(1, len(malicious)), 1),
                0,
            ]
        )

    # The seesaw counting filter: dynamic no-list additions work, but can
    # introduce false negatives (missed malicious URLs) — the §3.3 caveat.
    from repro.adaptive.seesaw import SeesawCountingFilter

    sscf = SeesawCountingFilter(malicious, epsilon=0.02, seed=124)
    mset = set(malicious)
    blocked = missed = false_blocks = 0
    for url, is_malicious in stream:
        matched = sscf.may_contain(url)
        if matched and url in mset:
            blocked += 1
        elif matched:
            false_blocks += 1
            sscf.protect(url)  # dynamic no-list addition
        elif is_malicious:
            missed += 1
    rows.append(
        [
            "seesaw (dynamic no-list)",
            blocked,
            missed,
            false_blocks,
            round(false_blocks / len(stream), 5),
            round(sscf.size_in_bits / max(1, len(malicious)), 1),
            len(sscf.false_negatives(malicious)),
        ]
    )
    print_table(
        f"T10: URL blocking ({len(malicious)} malicious URLs, {N_REQUESTS} "
        "Zipf-skewed requests)",
        ["design", "blocked", "missed", "false blocks", "fb rate", "bits/entry",
         "induced FNs"],
        rows,
        note="plain/static/adaptive never miss malicious URLs; the seesaw's "
        "dynamic no-list can induce false negatives (missed malicious) — "
        "the tutorial's critique; adaptive achieves both goals",
    )
    blocklist = AdaptiveBlocklist(malicious, epsilon=0.02, seed=125)
    sample = stream[:2000]
    benchmark(lambda: [blocklist.handle(u, m) for u, m in sample])
