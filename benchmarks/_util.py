"""Shared helpers for the experiment benches.

Every bench prints its table/series with :func:`print_table` (run pytest
with ``-s`` to see them) and also appends it to ``benchmarks/results.txt``
so the output survives pytest's capture.

Telemetry: when a metrics output path is configured — ``--metrics-out
PATH`` on the command line or ``REPRO_METRICS_OUT=PATH`` in the
environment — every :func:`print_table` call also dumps the default
:mod:`repro.obs` registry as JSON to that path, so any bench run doubles
as a metrics capture.  :func:`print_table` additionally rejects NaN
cells: a NaN (e.g. from an empty filter's old ``bits_per_key``) silently
poisons any aggregate it is averaged into, so it is a bench bug, not a
value.
"""

from __future__ import annotations

import math
import os
import sys
from typing import Sequence

_RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")


def metrics_out_path() -> str | None:
    """The configured metrics snapshot path, if any.

    Checked in order: a ``--metrics-out PATH`` / ``--metrics-out=PATH``
    argument anywhere on the command line, then ``REPRO_METRICS_OUT``.
    """
    argv = sys.argv
    for i, arg in enumerate(argv):
        if arg == "--metrics-out" and i + 1 < len(argv):
            return argv[i + 1]
        if arg.startswith("--metrics-out="):
            return arg.split("=", 1)[1]
    return os.environ.get("REPRO_METRICS_OUT")


def dump_metrics(path: str | None = None) -> str | None:
    """Write the default registry's JSON snapshot to *path* (or the
    configured path); returns the path written, or None if unconfigured."""
    from repro import obs

    path = path if path is not None else metrics_out_path()
    if not path:
        return None
    with open(path, "w") as fh:
        fh.write(obs.to_json(obs.default_registry()))
    return path


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    note: str = "",
) -> None:
    """Render an experiment table to stdout and the results file."""
    for row in rows:
        for value in row:
            assert not (isinstance(value, float) and math.isnan(value)), (
                f"NaN cell in {title!r} row {row!r} — NaN poisons aggregates; "
                f"fix the bench (empty-filter bits_per_key is 0.0, not nan)"
            )
    widths = [
        max(len(str(h)), *(len(_fmt(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [f"\n## {title}"]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths)))
    if note:
        lines.append(f"note: {note}")
    text = "\n".join(lines)
    print(text)
    with open(_RESULTS_PATH, "a") as fh:
        fh.write(text + "\n")
    dump_metrics()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.001:
            return f"{value:.2e}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def measured_fpr(filt, negatives) -> float:
    hits = sum(1 for key in negatives if filt.may_contain(key))
    return hits / len(negatives)


def measured_range_fpr(filt, queries, sorted_keys) -> float:
    from bisect import bisect_left

    def truly(lo, hi):
        i = bisect_left(sorted_keys, lo)
        return i < len(sorted_keys) and sorted_keys[i] <= hi

    empty = [(lo, hi) for lo, hi in queries if not truly(lo, hi)]
    if not empty:
        return 0.0
    return sum(1 for lo, hi in empty if filt.may_intersect(lo, hi)) / len(empty)
