"""Shared helpers for the experiment benches.

Every bench prints its table/series with :func:`print_table` (run pytest
with ``-s`` to see them) and also appends it to ``benchmarks/results.txt``
so the output survives pytest's capture.
"""

from __future__ import annotations

import os
from typing import Sequence

_RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    note: str = "",
) -> None:
    """Render an experiment table to stdout and the results file."""
    widths = [
        max(len(str(h)), *(len(_fmt(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [f"\n## {title}"]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths)))
    if note:
        lines.append(f"note: {note}")
    text = "\n".join(lines)
    print(text)
    with open(_RESULTS_PATH, "a") as fh:
        fh.write(text + "\n")


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.001:
            return f"{value:.2e}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def measured_fpr(filt, negatives) -> float:
    hits = sum(1 for key in negatives if filt.may_contain(key))
    return hits / len(negatives)


def measured_range_fpr(filt, queries, sorted_keys) -> float:
    from bisect import bisect_left

    def truly(lo, hi):
        i = bisect_left(sorted_keys, lo)
        return i < len(sorted_keys) and sorted_keys[i] <= hi

    empty = [(lo, hi) for lo, hi in queries if not truly(lo, hi)]
    if not empty:
        return 0.0
    return sum(1 for lo, hi in empty if filt.may_intersect(lo, hi)) / len(empty)
