"""T11 — query-distribution-aware filters (§2.8).

Paper claims checked:
  * stacked filters exploit known hot negatives: their FPR on the hot set
    drops multiplicatively (ε1·ε3) vs a same-space plain filter;
  * learned filters exploit key clustering: confidently-predicted members
    cost no filter space, shrinking total bits/key, and degrade gracefully
    to a plain filter on unlearnable (uniform) keys.
"""

from __future__ import annotations

import numpy as np

from repro.filters.bloom import BloomFilter
from repro.learned.classifier import LearnedFilter
from repro.learned.stacked import StackedFilter
from repro.workloads.synthetic import disjoint_key_sets

from _util import measured_fpr, print_table

N = 4096
UNIVERSE = 1 << 32


def _clustered_keys(n, seed):
    rng = np.random.default_rng(seed)
    centers = rng.integers(0, UNIVERSE, size=8)
    keys = set()
    while len(keys) < n:
        center = int(centers[int(rng.integers(8))])
        keys.add(int(min(UNIVERSE - 1, max(0, center + int(rng.integers(-2000, 2000))))))
    return sorted(keys)


def test_t11_stacked_and_learned(benchmark):
    members, negatives = disjoint_key_sets(N, 12_000, seed=131)
    hot, cold = negatives[:1000], negatives[1000:]

    plain = BloomFilter(N, 0.02, seed=132)
    for key in members:
        plain.insert(key)
    stacked = StackedFilter(members, hot, epsilon=0.02, seed=132)

    rows = [
        ["plain bloom", round(measured_fpr(plain, hot), 5),
         round(measured_fpr(plain, cold), 5), round(plain.size_in_bits / N, 1)],
        ["stacked (hot known)", round(measured_fpr(stacked, hot), 5),
         round(measured_fpr(stacked, cold), 5), round(stacked.size_in_bits / N, 1)],
    ]
    # Depth sweep at a loose eps so the exponential decrease is visible
    # before it bottoms out at zero observed FPs.
    for depth in (1, 3, 5):
        deep = StackedFilter(
            members, hot, epsilon=0.1, negative_epsilon=0.1,
            n_layers=depth, seed=132,
        )
        rows.append(
            [f"stacked eps=0.1 depth {depth}", round(measured_fpr(deep, hot), 5),
             round(measured_fpr(deep, cold), 5), round(deep.size_in_bits / N, 1)]
        )
    print_table(
        "T11a: stacked filter vs plain bloom (1000 known hot negatives)",
        ["filter", "FPR on hot negatives", "FPR on cold", "bits/key"],
        rows,
        note="each layer pair multiplies the hot-negative FPR by ~eps "
        "(exponential decrease) at marginal extra space",
    )

    clustered = _clustered_keys(N, seed=133)
    neg_rng = np.random.default_rng(134)
    clustered_set = set(clustered)
    clustered_negs = [
        int(k) for k in neg_rng.integers(0, UNIVERSE, 12_000)
        if int(k) not in clustered_set
    ]
    uniform_members, uniform_negs = disjoint_key_sets(N, 12_000, seed=135)

    rows2 = []
    for label, keys, negs, universe in (
        ("clustered keys", clustered, clustered_negs, UNIVERSE),
        ("uniform keys", uniform_members, uniform_negs, 1 << 48),
    ):
        learned = LearnedFilter(keys, universe=universe, epsilon=0.02, seed=136)
        bloom = BloomFilter(len(keys), 0.02, seed=136)
        for key in keys:
            bloom.insert(key)
        rows2.append(
            [
                label,
                f"{learned.model_coverage:.2%}",
                round(measured_fpr(learned, negs), 5),
                round(learned.size_in_bits / len(keys), 1),
                round(measured_fpr(bloom, negs), 5),
                round(bloom.size_in_bits / len(keys), 1),
            ]
        )
    print_table(
        "T11b: learned filter vs plain bloom",
        ["key distribution", "model coverage", "learned FPR",
         "learned bits/key", "bloom FPR", "bloom bits/key"],
        rows2,
        note="clustered keys: most members covered by the model for free; "
        "uniform keys: graceful degradation to ~bloom behaviour",
    )
    sample = hot[:1000]
    benchmark(lambda: sum(1 for k in sample if stacked.may_contain(k)))
