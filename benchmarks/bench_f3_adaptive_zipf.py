"""F3 — adaptivity under Zipfian query skew (§2.3, Bender et al. 2021).

Paper claim: skewed (Zipfian) negative queries are the practical regime
where adaptivity pays — repeated hot negatives keep hitting the same FPs
in a static filter, while an adaptive filter fixes each hot FP once.

Series: wasted-I/O rate vs Zipf skew s ∈ {0, 0.5, 1.0, 1.5}, static Bloom
vs adaptive quotient.  Shape: flat-ish for adaptive; rising gap as skew
concentrates queries.
"""

from __future__ import annotations

from repro.adaptive.adaptive_quotient import AdaptiveQuotientFilter
from repro.adaptive.dictionary import FilteredDictionary
from repro.filters.bloom import BloomFilter
from repro.workloads.synthetic import disjoint_key_sets, zipf_queries

from _util import print_table

N = 2048
EPSILON = 0.02
N_QUERIES = 20_000
SKEWS = (0.0, 0.5, 1.0, 1.5)


def _run(filt, members, query_stream):
    store = FilteredDictionary(filt)
    for key in members:
        store.put(key, key)
    for key in query_stream:
        store.get(key)
    return store.stats.wasted_read_rate


def test_f3_adaptive_zipf(benchmark):
    members, negatives = disjoint_key_sets(N, 10_000, seed=31)
    rows = []
    for skew in SKEWS:
        stream = zipf_queries(negatives, N_QUERIES, skew, seed=32)
        static_rate = _run(BloomFilter(N, EPSILON, seed=33), members, stream)
        adaptive_rate = _run(
            AdaptiveQuotientFilter.for_capacity(N, EPSILON, seed=33), members, stream
        )
        rows.append(
            [skew, round(static_rate, 5), round(adaptive_rate, 5),
             round(static_rate / max(adaptive_rate, 1e-9), 1)]
        )
    print_table(
        f"F3: wasted-I/O rate vs Zipf skew ({N_QUERIES} negative queries, eps={EPSILON})",
        ["zipf skew", "static bloom", "adaptive QF", "improvement x"],
        rows,
        note="the static filter pays ~eps at every skew; the adaptive filter's "
        "rate falls as skew rises (hot FPs are fixed once)",
    )
    stream = zipf_queries(negatives, 2000, 1.0, seed=34)
    aqf = AdaptiveQuotientFilter.for_capacity(N, EPSILON, seed=35)
    store = FilteredDictionary(aqf)
    for key in members:
        store.put(key, key)
    benchmark(lambda: [store.get(k) for k in stream[:500]])
