"""F7 — filter-backed de Bruijn graphs (§3.2).

Paper claims checked:
  * Pell et al.: the probabilistic graph tolerates Bloom FPs until the FPR
    becomes very high (~0.15+) — series: critical-FP fraction vs ε;
  * Chikhi–Rizk: storing just the *critical* FPs restores exact
    navigation;
  * Salikhov et al.: a cascading Bloom filter shrinks the cFP memory
    substantially vs the exact table.
"""

from __future__ import annotations

from repro.apps.debruijn import CascadingBloomDeBruijn, FilterBackedDeBruijn
from repro.workloads.dna import extract_kmers, random_genome

from _util import print_table

K = 13
GENOME_LEN = 6000
EPS_SWEEP = (0.01, 0.05, 0.15, 0.3)


def test_f7_debruijn(benchmark):
    genome = random_genome(GENOME_LEN, seed=101)
    kmers = set(extract_kmers(genome, K))
    rows = []
    for epsilon in EPS_SWEEP:
        graph = FilterBackedDeBruijn(kmers, epsilon=epsilon, seed=102)
        cascade = CascadingBloomDeBruijn(kmers, epsilon=epsilon, seed=102)
        cascade_cfp = cascade.size_in_bits - cascade._b1.size_in_bits
        rows.append(
            [
                epsilon,
                graph.n_kmers,
                graph.n_critical,
                f"{graph.critical_fraction:.2%}",
                round(graph.critical_table_bits / 1024, 1),
                round(cascade_cfp / 1024, 1),
                cascade.residue_size,
            ]
        )
    print_table(
        f"F7: de Bruijn critical false positives vs filter FPR (k={K})",
        ["bloom eps", "true kmers", "critical FPs", "critical frac",
         "exact cFP Kib", "cascade Kib", "cascade residue"],
        rows,
        note="critical-FP count scales with eps (graph unusable by ~0.3); "
        "the cascade stores the same information in ~1/3 the bits",
    )
    # Exactness spot check: navigation from a true node only reaches true nodes.
    graph = FilterBackedDeBruijn(kmers, epsilon=0.05, seed=102)
    start = genome[:K]
    path = graph.walk(start, max_steps=200)
    assert all(p in kmers for p in path)
    benchmark(lambda: graph.walk(start, max_steps=100))
