"""F4 — range-filter FPR vs range length (§2.5).

Paper claims checked as a series over range lengths 2^0..2^12 at a fixed
memory budget:
  * Rosetta: strong on points/short ranges, FPR grows with length and
    eventually provides no filtering;
  * SuRF: flat-ish FPR across lengths (interval semantics), no guarantee;
  * SNARF / Grafite: robust across lengths;
  * prefix Bloom: fine within its block, then no filtering.
"""

from __future__ import annotations

from repro.rangefilters.grafite import Grafite
from repro.rangefilters.prefix_bloom import PrefixBloomFilter
from repro.rangefilters.rencoder import REncoder
from repro.rangefilters.rosetta import Rosetta
from repro.rangefilters.snarf import SNARF
from repro.rangefilters.surf import SuRF
from repro.workloads.synthetic import random_key_set, random_range_queries

from _util import measured_range_fpr, print_table

KEY_BITS = 32
UNIVERSE = 1 << KEY_BITS
N = 1 << 13
LENGTHS = [1, 16, 256, 4096]


def _filters(keys):
    from repro.rangefilters.fst import SurfFST

    return {
        "surf (real8)": SuRF(keys, key_bits=KEY_BITS, real_suffix_bits=8, seed=51),
        "surf-fst (physical)": SurfFST(keys, key_bits=KEY_BITS),
        "rosetta": Rosetta(keys, key_bits=KEY_BITS, bits_per_key=22, n_levels=14, seed=51),
        "rencoder": REncoder(keys, key_bits=KEY_BITS, bits_per_key=28, seed=51),
        "prefix-bloom": PrefixBloomFilter(
            keys, key_bits=KEY_BITS, prefix_bits=KEY_BITS - 8, bits_per_key=20, seed=51
        ),
        "snarf": SNARF(keys, key_bits=KEY_BITS, multiplier=64, seed=51),
        "grafite": Grafite(
            keys, key_bits=KEY_BITS, max_range=4096, epsilon=0.02, seed=51
        ),
    }


def test_f4_range_fpr_vs_length(benchmark):
    keys = random_key_set(N, seed=52, universe=UNIVERSE)
    filters = _filters(keys)
    rows = []
    for name, filt in filters.items():
        series = []
        for length in LENGTHS:
            queries = random_range_queries(600, length, seed=53, universe=UNIVERSE)
            series.append(round(measured_range_fpr(filt, queries, keys), 4))
        rows.append([name, round(filt.bits_per_key, 1)] + series)
    print_table(
        f"F4: empty-range FPR vs range length (n=2^13 uniform keys)",
        ["filter", "bits/key"] + [f"len={length}" for length in LENGTHS],
        rows,
        note="rosetta rises with length; snarf/grafite stay low; "
        "prefix-bloom collapses past its block width",
    )

    # F4b — the REncoder CPU claim: memory touches per query vs Rosetta.
    rosetta, rencoder = filters["rosetta"], filters["rencoder"]
    rows_cpu = []
    for length in LENGTHS:
        lo = keys[len(keys) // 2] + 1
        rosetta.may_intersect(lo, lo + length - 1)
        rencoder.may_intersect(lo, lo + length - 1)
        rows_cpu.append(
            [length, rosetta.last_query_probes, rencoder.last_query_blocks]
        )
    print_table(
        "F4b: CPU cost per query — Rosetta probes vs REncoder blocks",
        ["range length", "rosetta bloom probes", "rencoder blocks touched"],
        rows_cpu,
        note="REncoder's bit locality: whole level-groups share one block, "
        "so even long ranges touch a handful of cache lines",
    )
    grafite = filters["grafite"]
    queries = random_range_queries(500, 256, seed=54, universe=UNIVERSE)
    benchmark(lambda: [grafite.may_intersect(lo, hi) for lo, hi in queries])
