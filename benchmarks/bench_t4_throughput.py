"""T4 — relative insert/query throughput across filters.

The tutorial argues feature-rich filters are competitive with (or faster
than) Bloom filters because they touch one cache line instead of k.  In
pure Python the constants differ from C, but the *relative* ordering of
per-operation work is meaningful.  pytest-benchmark reports each batch of
1000 operations.
"""

from __future__ import annotations

import pytest

from repro.core.registry import make_filter

N = 4096
BATCH = 1000

DYNAMIC_NAMES = [
    "bloom", "blocked-bloom", "prefix", "quotient", "cuckoo",
    "vector-quotient", "morton", "cqf",
]
STATIC_NAMES = ["xor", "ribbon"]


@pytest.mark.parametrize("name", DYNAMIC_NAMES)
def test_t4_insert_throughput(benchmark, name, bench_keys):
    members, _ = bench_keys

    def setup():
        filt = make_filter(name, capacity=N + BATCH, epsilon=0.01, seed=11)
        for key in members[:N]:
            filt.insert(key)
        return (filt,), {}

    def insert_batch(filt):
        for key in members[N : N + BATCH]:
            filt.insert(key)

    benchmark.pedantic(insert_batch, setup=setup, rounds=5)


@pytest.mark.parametrize("name", DYNAMIC_NAMES + STATIC_NAMES)
def test_t4_query_throughput(benchmark, name, bench_keys):
    members, negatives = bench_keys
    if name in STATIC_NAMES:
        filt = make_filter(name, keys=members[:N], epsilon=0.01, seed=11)
    else:
        filt = make_filter(name, capacity=N, epsilon=0.01, seed=11)
        for key in members[:N]:
            filt.insert(key)
    mixed = members[: BATCH // 2] + negatives[: BATCH // 2]

    def query_batch():
        hits = 0
        for key in mixed:
            if filt.may_contain(key):
                hits += 1
        return hits

    benchmark(query_batch)
