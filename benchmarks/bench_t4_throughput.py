"""T4 — relative insert/query throughput across filters.

The tutorial argues feature-rich filters are competitive with (or faster
than) Bloom filters because they touch one cache line instead of k.  In
pure Python the constants differ from C, but the *relative* ordering of
per-operation work is meaningful.  pytest-benchmark reports each batch of
1000 operations.

P1 (batch kernels, docs/performance.md): ``test_t4_batch_vs_scalar``
compares ``may_contain_many`` / ``insert_many`` against the scalar loop
per family, prints the speedup table, and writes a JSON throughput
snapshot (``REPRO_BENCH_SNAPSHOT``, default
``benchmarks/bench_t4_batch.json``) that ``scripts/perf_gate.py``
compares against the committed baseline in CI.  ``REPRO_BENCH_SMALL=1``
shrinks the batch for CI smoke runs.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core.registry import make_filter

N = 4096
BATCH = 1000

DYNAMIC_NAMES = [
    "bloom", "blocked-bloom", "prefix", "quotient", "cuckoo",
    "vector-quotient", "morton", "cqf",
]
STATIC_NAMES = ["xor", "ribbon"]

_SMALL = bool(os.environ.get("REPRO_BENCH_SMALL"))
# Acceptance workload: 1e5 probe keys (ISSUE 3); quotient's scalar walk is
# two orders slower, so it runs a smaller batch to keep the bench bounded.
BATCH_QUERIES = 5_000 if _SMALL else 100_000
BATCH_QUERIES_SLOW = 1_000 if _SMALL else 10_000
BATCH_ROUNDS = 3

BATCH_PROBE_FAMILIES = [
    ("bloom", BATCH_QUERIES),
    ("blocked-bloom", BATCH_QUERIES),
    ("cuckoo", BATCH_QUERIES),
    ("quotient", BATCH_QUERIES_SLOW),
    ("xor", BATCH_QUERIES),
    ("xor-plus", BATCH_QUERIES),
    ("ribbon", BATCH_QUERIES),
]
BATCH_INSERT_FAMILIES = ["bloom", "blocked-bloom"]


def snapshot_path() -> str:
    return os.environ.get(
        "REPRO_BENCH_SNAPSHOT",
        os.path.join(os.path.dirname(__file__), "bench_t4_batch.json"),
    )


def _best_rate(fn, n_ops: int, rounds: int = BATCH_ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return n_ops / best


def test_t4_batch_vs_scalar(bench_keys):
    """P1 — batch kernels vs scalar probes, per family.

    Acceptance (ISSUE 3): Bloom batch probe throughput >= 5x scalar on
    the 1e5-key workload, and the returned mask must equal the
    element-wise scalar answers (spot-checked here; exhaustively in
    tests/test_batch.py).
    """
    from _util import print_table

    members, negatives = bench_keys
    members = members[:N]
    rows = []
    families = {}
    for name, n_queries in BATCH_PROBE_FAMILIES:
        if name in ("xor", "xor-plus", "ribbon"):
            filt = make_filter(name, keys=members, epsilon=0.01, seed=11)
        else:
            filt = make_filter(name, capacity=N, epsilon=0.01, seed=11)
            filt.insert_many(members)
        half = n_queries // 2
        queries = (members * (half // len(members) + 1))[:half]
        queries += (negatives * (half // len(negatives) + 1))[:half]

        def scalar():
            probe = filt.may_contain
            for key in queries:
                probe(key)

        def batch():
            filt.may_contain_many(queries)

        mask = filt.may_contain_many(queries[:512])
        assert mask.tolist() == [filt.may_contain(k) for k in queries[:512]], name

        scalar_rate = _best_rate(scalar, len(queries))
        batch_rate = _best_rate(batch, len(queries))
        speedup = batch_rate / scalar_rate
        rows.append(
            (name, len(queries), round(scalar_rate), round(batch_rate),
             round(speedup, 1))
        )
        families[name] = {
            "op": "probe",
            "n": len(queries),
            "scalar_ops_s": round(scalar_rate),
            "batch_ops_s": round(batch_rate),
            "speedup": round(speedup, 2),
        }

    insert_rows = []
    for name in BATCH_INSERT_FAMILIES:
        batch_keys_list = members

        def scalar_insert():
            filt = make_filter(name, capacity=N, epsilon=0.01, seed=11)
            for key in batch_keys_list:
                filt.insert(key)

        def batch_insert():
            filt = make_filter(name, capacity=N, epsilon=0.01, seed=11)
            filt.insert_many(batch_keys_list)

        scalar_rate = _best_rate(scalar_insert, len(batch_keys_list))
        batch_rate = _best_rate(batch_insert, len(batch_keys_list))
        insert_rows.append(
            (name, len(batch_keys_list), round(scalar_rate),
             round(batch_rate), round(batch_rate / scalar_rate, 1))
        )
        families[f"{name}:insert"] = {
            "op": "insert",
            "n": len(batch_keys_list),
            "scalar_ops_s": round(scalar_rate),
            "batch_ops_s": round(batch_rate),
            "speedup": round(batch_rate / scalar_rate, 2),
        }

    print_table(
        "P1: batch vs scalar probe throughput",
        ["filter", "n queries", "scalar probes/s", "batch probes/s", "speedup"],
        rows,
        note="may_contain_many vs a may_contain loop on the same mixed "
             "batch; quotient batches fewer keys (scalar stretch walk)",
    )
    print_table(
        "P1: batch vs scalar insert throughput",
        ["filter", "n keys", "scalar inserts/s", "batch inserts/s", "speedup"],
        insert_rows,
        note="insert_many scatter vs per-key insert (fresh filter per round)",
    )
    with open(snapshot_path(), "w") as fh:
        json.dump(
            {"workload": {"small": _SMALL, "members": len(members)},
             "families": families},
            fh,
            indent=2,
            sort_keys=True,
        )

    bloom_speedup = families["bloom"]["speedup"]
    assert bloom_speedup >= 5.0, (
        f"bloom batch kernel only {bloom_speedup:.1f}x scalar (need >= 5x)"
    )


@pytest.mark.parametrize("name", DYNAMIC_NAMES)
def test_t4_insert_throughput(benchmark, name, bench_keys):
    members, _ = bench_keys

    def setup():
        filt = make_filter(name, capacity=N + BATCH, epsilon=0.01, seed=11)
        for key in members[:N]:
            filt.insert(key)
        return (filt,), {}

    def insert_batch(filt):
        for key in members[N : N + BATCH]:
            filt.insert(key)

    benchmark.pedantic(insert_batch, setup=setup, rounds=5)


@pytest.mark.parametrize("name", DYNAMIC_NAMES + STATIC_NAMES)
def test_t4_query_throughput(benchmark, name, bench_keys):
    members, negatives = bench_keys
    if name in STATIC_NAMES:
        filt = make_filter(name, keys=members[:N], epsilon=0.01, seed=11)
    else:
        filt = make_filter(name, capacity=N, epsilon=0.01, seed=11)
        for key in members[:N]:
            filt.insert(key)
    mixed = members[: BATCH // 2] + negatives[: BATCH // 2]

    def query_batch():
        hits = 0
        for key in mixed:
            if filt.may_contain(key):
                hits += 1
        return hits

    benchmark(query_batch)
