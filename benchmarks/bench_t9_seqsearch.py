"""T9 — experiment discovery: Sequence Bloom Tree vs Mantis (§3.2).

Paper claims checked:
  * the SBT is approximate ("given the false positives in the Bloom
    filters the SBT index also has false positives in the final results");
  * "Mantis proved to be smaller, faster, and exact compared to the SBT":
    exactness always holds; the size comparison favours Mantis as
    experiment overlap grows (shared k-mers are stored once, not per
    leaf).
"""

from __future__ import annotations

from repro.apps.mantis import MantisIndex
from repro.apps.sbt import SequenceBloomTree
from repro.workloads.dna import sequencing_experiments

from _util import print_table

K = 13
N_EXPERIMENTS = 16
GENOME_LEN = 2000
THETA = 0.8


def _ground_truth(experiments, query, theta):
    import math

    threshold = math.ceil(theta * len(query))
    return [
        e
        for e, kmers in enumerate(experiments)
        if sum(1 for q in query if q in kmers) >= threshold
    ]


def test_t9_sbt_vs_mantis(benchmark):
    rows = []
    for shared in (0.2, 0.6):
        experiments = sequencing_experiments(
            N_EXPERIMENTS, GENOME_LEN, K, shared_fraction=shared, seed=111
        )
        sbt = SequenceBloomTree(experiments, epsilon=0.2, seed=112)
        mantis = MantisIndex(experiments, seed=112)
        sbt_wrong = mantis_wrong = 0
        n_queries = 24
        for q in range(n_queries):
            source = q % N_EXPERIMENTS
            query = list(experiments[source])[q : q + 60]
            truth = set(_ground_truth(experiments, query, THETA))
            if set(sbt.query(query, THETA)) != truth:
                sbt_wrong += 1
            if set(mantis.query(query, THETA)) != truth:
                mantis_wrong += 1
        rows.append(
            [
                shared,
                f"{sbt_wrong}/{n_queries}",
                f"{mantis_wrong}/{n_queries}",
                round(sbt.size_in_bits / 8192, 1),
                round(mantis.size_in_bits / 8192, 1),
                mantis.n_colour_classes,
            ]
        )
    print_table(
        f"T9: SBT vs Mantis ({N_EXPERIMENTS} experiments, theta={THETA})",
        ["shared frac", "SBT wrong", "Mantis wrong", "SBT KiB", "Mantis KiB",
         "colour classes"],
        rows,
        note="mantis is always exact; SBT errs via Bloom FPs; higher overlap "
        "shrinks Mantis (shared k-mers dedup into colour classes)",
    )
    experiments = sequencing_experiments(
        N_EXPERIMENTS, GENOME_LEN, K, shared_fraction=0.4, seed=113
    )
    mantis = MantisIndex(experiments, seed=113)
    query = list(experiments[0])[:60]
    benchmark(lambda: mantis.query(query, THETA))
