"""T2 — space per key vs the formulas quoted in §2/§2.7.

Paper claims checked (bits/key at target ε):
  Bloom 1.44·lg(1/ε);  QF lg(1/ε)+2.125 (we build the 3-bit original, so
  +3);  cuckoo lg(1/ε)+3;  XOR 1.22·lg(1/ε);  XOR+ 1.08·lg(1/ε)+0.5;
  ribbon 1.005·lg(1/ε)+0.008.  Shape to hold: ribbon < xor+ < xor < bloom,
  and the fingerprint filters sit ~2-3 bits above the lower bound.
"""

from __future__ import annotations

from repro.core import analysis
from repro.filters.bloom import BloomFilter
from repro.filters.cuckoo import CuckooFilter
from repro.filters.quotient import QuotientFilter
from repro.filters.ribbon import RibbonFilter
from repro.filters.xor import XorFilter, XorPlusFilter

from _util import print_table


def _build_all(members, epsilon, seed=3):
    """Build each filter *at its operating load* so bits/key is fair.

    Bloom/XOR/ribbon size themselves exactly to n; the table-based QF and
    cuckoo allocate power-of-two tables, so they are built at a fixed
    geometry and filled to their conventional max load (0.9 / 0.95) —
    the load the paper's formulas assume.
    """
    import math

    bloom = BloomFilter(len(members), epsilon, seed=seed)
    for key in members:
        bloom.insert(key)

    r = max(1, math.ceil(math.log2(1 / epsilon)))
    qf = QuotientFilter(13, r, seed=seed)  # 8192 slots
    for key in members[: qf.capacity]:
        qf.insert(key)
    f = max(1, math.ceil(math.log2(8 / epsilon)))
    cf = CuckooFilter(2048, f, seed=seed)  # 8192 slots
    cuckoo_fill = int(cf.n_slots * 0.95)
    for key in members[:cuckoo_fill]:
        cf.insert(key)

    return {
        "bloom": (bloom, len(bloom), analysis.bloom_bits_per_key(epsilon)),
        "quotient": (qf, len(qf), analysis.quotient_bits_per_key(epsilon, metadata_bits=3)),
        "cuckoo": (cf, len(cf), analysis.cuckoo_bits_per_key(epsilon)),
        "xor": (XorFilter.build(members, epsilon, seed=seed), len(members),
                analysis.xor_bits_per_key(epsilon)),
        "xor+": (XorPlusFilter.build(members, epsilon, seed=seed), len(members),
                 analysis.xor_plus_bits_per_key(epsilon)),
        "ribbon": (RibbonFilter.build(members, epsilon, seed=seed), len(members),
                   analysis.ribbon_bits_per_key(epsilon)),
    }


def test_t2_space_per_key(bench_keys, benchmark):
    members, _ = bench_keys
    rows = []
    for epsilon, label in ((2**-8, "2^-8"), (2**-16, "2^-16")):
        lower = analysis.information_lower_bound_bits_per_key(epsilon)
        built = _build_all(members, epsilon)
        for name, (filt, n, theory) in built.items():
            rows.append(
                [label, name, round(filt.size_in_bits / n, 2),
                 round(theory, 2), round(lower, 2)]
            )
    print_table(
        "T2: space (bits/key) vs paper formulas",
        ["epsilon", "filter", "measured", "paper formula", "lower bound"],
        rows,
        note="measured uses logical bit accounting (DESIGN.md); construction "
        "rounds fingerprint widths up to whole bits",
    )
    benchmark(lambda: XorFilter.build(members[:2048], 2**-8, seed=7))
