"""R5 — multi-tenant Bloofi router vs flat fan-out (docs/robustness.md).

Claims checked:
  * the router answers fleet lookups in a small, *shrinking* fraction of
    the flat fan-out's probes: at 100k tenants the probe ratio is gated
    at <= 5% (the flat scan pays one probe per tenant, the descent pays
    the tree path plus false-positive subtrees);
  * the two paths are differentially identical: for every query the
    router's candidate set equals the flat scan's, and a key some tenant
    holds always lists that tenant — zero false negatives at every
    fleet size;
  * the tree stays shallow: height grows logarithmically with the fleet
    (B-tree splits, all leaves at one depth);
  * probe savings are goodput: under the same storm schedule and the
    same per-probe latency, the O(N) flat stack queues itself to death
    while the router keeps serving.

Interior ORs saturate where a node's aggregate key count approaches the
shared leaf geometry's capacity — the known Bloofi caveat — so the
summary leaves are provisioned with headroom (capacity >> keys per
tenant) and the probe bill is dominated by the first *selective* level,
a small slice of the fleet.  The series quantifies exactly that.

Writes ``benchmarks/bench_r5_tenant.json`` (read by
``scripts/perf_gate.py``).  ``REPRO_BENCH_SMALL=1`` shrinks the fleet
for CI; ``REPRO_BENCH_FULL=1`` extends the series to 1M tenants.
"""

from __future__ import annotations

import json
import os
import random

from repro.obs import use_registry
from repro.serve import run_tenant_storm
from repro.serve.tenant import TenantConfig, TenantRouter

from _util import print_table

_SMALL = bool(os.environ.get("REPRO_BENCH_SMALL"))
_FULL = bool(os.environ.get("REPRO_BENCH_FULL"))
SEED = 52525

# Fleet sizes for the probe-count series.  The acceptance point is
# 100k (ratio <= 5%); 10k is the perf-gate point (ratio <= 20%).
SIZES = [500, 2_000] if _SMALL else [1_000, 10_000, 100_000]
if _FULL and not _SMALL:
    SIZES.append(1_000_000)
N_QUERIES = 150 if _SMALL else 400
KEYS_PER_TENANT = 4

# Storm comparison: same schedule, same per-probe latency, two modes.
STORM_TENANTS = 250 if _SMALL else 1_200
STORM_REQUESTS = 240 if _SMALL else 600


def snapshot_path() -> str:
    return os.environ.get(
        "REPRO_BENCH_SNAPSHOT_R5",
        os.path.join(os.path.dirname(__file__), "bench_r5_tenant.json"),
    )


def _fleet_config() -> TenantConfig:
    # Summary-leaf headroom (capacity 32x the per-tenant key count) and
    # modest fanout keep interior ORs selective deep into the fleet —
    # the geometry knob the module docstring explains.
    return TenantConfig(
        n_trees=4, leaf_capacity=32 * KEYS_PER_TENANT, epsilon=0.005,
        seed=SEED, max_fanout=4, reor_interval=1 << 30,
    )


def _build_fleet(n_tenants: int) -> tuple[TenantRouter, dict[int, int]]:
    router = TenantRouter(_fleet_config())
    truth = {}  # one spot-check key per tenant -> owner
    for tenant in range(n_tenants):
        router.add_tenant(tenant)
        base = tenant * KEYS_PER_TENANT
        router.insert_many(tenant, range(base, base + KEYS_PER_TENANT))
        truth[base] = tenant
    return router, truth


def _measure(n_tenants: int) -> dict:
    router, truth = _build_fleet(n_tenants)
    rng = random.Random(SEED + n_tenants)
    present_keys = list(truth)
    router_probes = 0
    flat_probes = 0
    false_negatives = 0
    divergences = 0
    for i in range(N_QUERIES):
        if i % 2 == 0:
            key = present_keys[rng.randrange(len(present_keys))]
            owner = truth[key]
        else:
            key = (1 << 40) + rng.randrange(1 << 30)
            owner = None
        tree_look = router.query(key)
        flat_look = router.query_flat(key)
        router_probes += tree_look.probes
        flat_probes += flat_look.probes
        if sorted(tree_look.tenants) != sorted(flat_look.tenants):
            divergences += 1
        if owner is not None and owner not in tree_look.tenants:
            false_negatives += 1
        if owner is not None and owner not in flat_look.tenants:
            false_negatives += 1
    height = max(t.height for t in router.trees.values())
    return {
        "n_tenants": n_tenants,
        "router_probes": router_probes / N_QUERIES,
        "flat_probes": flat_probes / N_QUERIES,
        "ratio": router_probes / flat_probes,
        "height": height,
        "size_mib": router.size_in_bits / 8 / 2**20,
        "divergences": divergences,
        "false_negatives": false_negatives,
    }


def _storm(mode: str) -> dict:
    from repro.serve import StormPhase

    third = STORM_REQUESTS // 3
    phases = (
        StormPhase("calm", third),
        StormPhase("storm", STORM_REQUESTS - 2 * third,
                   transient_read=0.2, slowdown=3.0, spike_prob=0.05),
        StormPhase("recovery", third),
    )
    with use_registry():
        storm, rep, _store = run_tenant_storm(
            seed=SEED, n_tenants=STORM_TENANTS,
            keys_per_tenant=KEYS_PER_TENANT, mode=mode, phases=phases,
        )
    return {
        "goodput": storm.goodput(),
        "p99_ms": 1e3 * storm.phases[0].latency_quantile(0.99),
        "false_negatives": storm.false_negatives,
        "audit_false_negatives": rep.audit_false_negatives,
        "invariant_failures": rep.invariant_failures,
        "mean_probes": rep.mean_probes,
    }


def test_r5_tenant_router_vs_flat():
    series = [_measure(n) for n in SIZES]

    for row in series:
        # Differential identity and the one-sided-error contract hold at
        # every fleet size — probe savings are never paid in answers.
        assert row["divergences"] == 0
        assert row["false_negatives"] == 0
    # The probe bill shrinks *relative to the fleet* as it scales.
    ratios = [row["ratio"] for row in series]
    assert ratios == sorted(ratios, reverse=True)
    # Perf-gate point: <= 20% of flat at >= 10k tenants (CI gate), and
    # the paper-grade acceptance point: <= 5% at 100k.
    for row in series:
        if row["n_tenants"] >= 10_000:
            assert row["ratio"] <= 0.20, row
        if row["n_tenants"] >= 100_000:
            assert row["ratio"] <= 0.05, row
    # The structure is a tree, not a list: height grows like log N.
    for prev, cur in zip(series, series[1:]):
        assert cur["height"] <= prev["height"] + 4

    router_storm = _storm("router")
    flat_storm = _storm("flat")
    for run in (router_storm, flat_storm):
        assert run["false_negatives"] == 0
        assert run["audit_false_negatives"] == 0
        assert run["invariant_failures"] == 0
    # Same storm, same per-probe cost: O(N) fan-out loses goodput to
    # queueing and deadline misses that the router never accrues.
    assert router_storm["goodput"] > flat_storm["goodput"]

    print_table(
        f"R5: Bloofi router vs flat fan-out ({N_QUERIES} queries/size, "
        f"{KEYS_PER_TENANT} keys/tenant, seed {SEED})",
        ["tenants", "router probes", "flat probes", "ratio", "height",
         "MiB", "false neg"],
        [[row["n_tenants"],
          f"{row['router_probes']:.1f}",
          f"{row['flat_probes']:.1f}",
          f"{row['ratio']:.4f}",
          row["height"],
          f"{row['size_mib']:.1f}",
          row["false_negatives"]]
         for row in series],
        note="ratio = router/flat filter probes per lookup; flat pays one "
             "probe per tenant, the router pays the descent plus "
             "false-positive subtrees at the first selective level",
    )
    print_table(
        f"R5: goodput under the same storm ({STORM_TENANTS} tenants, "
        f"{STORM_REQUESTS} requests)",
        ["mode", "goodput", "calm p99 (ms)", "probes/lookup", "false neg"],
        [[mode,
          f"{run['goodput']:.3f}",
          f"{run['p99_ms']:.2f}",
          f"{run['mean_probes']:.1f}",
          run["false_negatives"]]
         for mode, run in (("router", router_storm), ("flat", flat_storm))],
        note="identical seeds, arrivals, faults, and per-probe latency — "
             "the only difference is O(log N) descent vs O(N) fan-out",
    )

    with open(snapshot_path(), "w") as fh:
        json.dump(
            {
                "series": series,
                "goodput": {
                    "n_tenants": STORM_TENANTS,
                    "router": router_storm,
                    "flat": flat_storm,
                },
                "small": _SMALL,
            },
            fh, indent=2,
        )
        fh.write("\n")
