"""R3 — serving cost of an online reshard (docs/robustness.md).

Claims checked:
  * resharding is *online*: a split migrates live under foreground
    traffic with zero false negatives, and completes;
  * it is *background*: p99 served latency during the expansion stays
    within 2x the steady-state p99, and goodput keeps most of its
    steady-state level — migration I/O is admission-gated at LOW
    priority, so it is shed before any foreground request suffers;
  * the double-read window is bounded: owner reads per lookup stay well
    under the worst-case 2.0 because only keys in the moving range
    consult both owners.

Series: identical storms (same seed, same arrivals) over the sharded
stack, once left alone and once with a split planned a quarter of the
way in.  The delta between the two columns *is* the migration tax.
Writes ``benchmarks/bench_r3_reshard.json`` for ``scripts/perf_gate.py``
(warn-only: migration goodput < 70% of steady).  ``REPRO_BENCH_SMALL=1``
shrinks the workload for CI.
"""

from __future__ import annotations

import json
import os

from repro.obs import use_registry
from repro.serve import ServeOutcome, StormPhase, run_reshard_storm

from _util import print_table

_SMALL = bool(os.environ.get("REPRO_BENCH_SMALL"))
N_KEYS = 500 if _SMALL else 2_000
N_REQUESTS = 500 if _SMALL else 1_500
N_SHARDS = 4
SEED = 424243


def snapshot_path() -> str:
    return os.environ.get(
        "REPRO_BENCH_SNAPSHOT_R3",
        os.path.join(os.path.dirname(__file__), "bench_r3_reshard.json"),
    )


def _drive(reshard_at: int):
    """One calm sustained phase — the cleanest isolation of migration cost.

    Both runs carry the same seeded 10% update mix: a store that takes
    no writes never flushes, never compacts, and never needs resharding,
    so a read-only steady baseline would understate its own tail.
    """
    phases = (StormPhase("drive", N_REQUESTS, mean_interarrival=0.002),)
    with use_registry():
        storm, reshard, _coordinator = run_reshard_storm(
            seed=SEED, n_keys=N_KEYS, n_shards=N_SHARDS,
            phases=phases, reshard_at=reshard_at, kind="split",
            write_fraction=0.1,
        )
    phase = storm.phases[0]
    return {
        "goodput": storm.goodput(),
        "p99_ms": 1e3 * phase.latency_quantile(0.99),
        "p50_ms": 1e3 * phase.latency_quantile(0.50),
        "shed_rate": phase.rate(ServeOutcome.SHED),
        "false_negatives": storm.false_negatives,
        "completed": reshard.completed,
        "keys_moved": reshard.keys_moved,
        "double_read_amplification": reshard.double_read_amplification,
        "pump_sheds": reshard.pump_sheds,
        "final_epoch": reshard.final_epoch,
    }


def test_r3_reshard_tax_is_bounded():
    steady = _drive(reshard_at=0)
    migration = _drive(reshard_at=N_REQUESTS // 4)

    # Safety first, at both operating points.
    assert steady["false_negatives"] == 0
    assert migration["false_negatives"] == 0
    # The split actually ran, moved keys, and cut over.
    assert migration["completed"]
    assert migration["keys_moved"] > 0
    assert migration["final_epoch"] == 1
    # The migration tax is bounded: tail latency within 2x steady (with
    # a 0.1 ms floor so a near-zero steady p99 cannot manufacture a
    # failure), goodput keeps at least half, double reads bounded.
    floor = max(steady["p99_ms"], 0.1)
    assert migration["p99_ms"] <= 2.0 * floor
    assert migration["goodput"] >= 0.5 * steady["goodput"]
    assert 1.0 <= migration["double_read_amplification"] < 2.0

    rows = [
        [label,
         f"{run['goodput']:.3f}",
         f"{run['p50_ms']:.3f}",
         f"{run['p99_ms']:.3f}",
         f"{run['shed_rate']:.3f}",
         run["keys_moved"],
         f"{run['double_read_amplification']:.3f}",
         run["pump_sheds"],
         run["false_negatives"]]
        for label, run in (("steady", steady), ("migration", migration))
    ]
    print_table(
        f"R3: online reshard tax ({N_KEYS} keys, {N_SHARDS} shards, "
        f"{N_REQUESTS} requests, split at {N_REQUESTS // 4}, seed {SEED})",
        ["scenario", "goodput", "p50 (ms)", "p99 (ms)", "shed rate",
         "keys moved", "dr-amp", "pump sheds", "false negatives"],
        rows,
        note="identical seeds/arrivals; the delta between rows is the "
             "cost of migrating live — dr-amp is owner reads per lookup "
             "(2.0 would be every lookup consulting both owners)",
    )

    with open(snapshot_path(), "w") as fh:
        json.dump({"steady": steady, "migration": migration}, fh, indent=2)
        fh.write("\n")
