"""F8 — range filters inside the LSM-tree (§2.5 motivation).

Paper claim: "range filters are mainly used in LSM-tree-based storage
engines (e.g., RocksDB) to reduce unnecessary I/Os for range queries".
Series: range-query I/Os per query with no range filter vs prefix-Bloom
vs SNARF vs Grafite per run, across range lengths.
"""

from __future__ import annotations

import numpy as np

from repro.apps.lsm import LSMConfig, LSMTree
from repro.rangefilters.grafite import Grafite
from repro.rangefilters.prefix_bloom import PrefixBloomFilter
from repro.rangefilters.snarf import SNARF

from _util import print_table

KEY_BITS = 30
N_ENTRIES = 3000
N_QUERIES = 200
LENGTHS = (64, 1024)


def _factories():
    return {
        "none": None,
        "prefix-bloom": lambda keys: PrefixBloomFilter(
            keys, key_bits=KEY_BITS, prefix_bits=KEY_BITS - 10, seed=141
        ),
        "snarf": lambda keys: SNARF(keys, key_bits=KEY_BITS, multiplier=32, seed=141),
        "grafite": lambda keys: Grafite(
            keys, key_bits=KEY_BITS, max_range=1024, epsilon=0.02, seed=141
        ),
    }


def test_f8_lsm_range_filters(benchmark):
    rows = []
    configs = {
        name: LSMConfig(
            compaction="tiering",
            memtable_entries=64,
            size_ratio=4,
            range_filter_factory=factory,
        )
        for name, factory in _factories().items()
    }
    # GRF (§3.1): one tree-wide filter instead of one per run.
    configs["grf (global snarf)"] = LSMConfig(
        compaction="tiering",
        memtable_entries=64,
        size_ratio=4,
        global_range_filter_factory=lambda keys: SNARF(
            keys, key_bits=KEY_BITS, multiplier=32, seed=141
        ),
    )
    for name, config in configs.items():
        tree = LSMTree(config)
        rng = np.random.default_rng(142)
        for key in rng.choice(1 << KEY_BITS, size=N_ENTRIES, replace=False):
            tree.put(int(key), 0)
        series = []
        for length in LENGTHS:
            tree.stats.range_queries = tree.stats.range_ios = 0
            tree.stats.wasted_range_ios = 0
            qrng = np.random.default_rng(143)
            for lo in qrng.integers(0, (1 << KEY_BITS) - length, size=N_QUERIES):
                tree.range_query(int(lo), int(lo) + length - 1)
            series.append(round(tree.stats.range_ios / N_QUERIES, 2))
        rows.append([name, tree.n_runs] + series)
    print_table(
        f"F8: LSM range-query I/Os per query ({N_ENTRIES} entries)",
        ["range filter", "runs"] + [f"len={length}" for length in LENGTHS],
        rows,
        note="without filters every run is read; per-run range filters cut "
        "I/O to ~the truly-overlapping runs",
    )
    tree = LSMTree(
        LSMConfig(compaction="tiering", memtable_entries=64, size_ratio=4,
                  range_filter_factory=_factories()["grafite"])
    )
    rng = np.random.default_rng(144)
    for key in rng.choice(1 << KEY_BITS, size=1000, replace=False):
        tree.put(int(key), 0)
    benchmark(lambda: tree.range_query(12345, 12345 + 1023))
