"""F1 — FPR as a filter expands (§2.2).

Paper claims checked, as a series over doublings:
  * naive QF doubling: FPR doubles per expansion, filter dies when the
    fingerprint bits run out;
  * fixed-size chaining: FPR grows linearly with the chain;
  * scalable Bloom: FPR bounded by the tightening series;
  * taffy / InfiniFilter / Aleph: FPR stays stable throughout.
"""

from __future__ import annotations

from repro.core.errors import NotExpandableError
from repro.expandable.aleph import AlephFilter
from repro.expandable.bentley_saxe import BentleySaxeFilter
from repro.expandable.chaining import (
    ChainedFilter,
    DynamicCuckooFilter,
    ScalableBloomFilter,
)
from repro.expandable.infinifilter import InfiniFilter
from repro.expandable.naive import NaiveExpandableQuotientFilter
from repro.expandable.taffy import TaffyCuckooFilter
from repro.filters.xor import XorFilter
from repro.workloads.synthetic import disjoint_key_sets

from _util import measured_fpr, print_table

START = 256
DOUBLINGS = 6


def _factories():
    return {
        "chained": lambda: ChainedFilter(START, 0.005, seed=13),
        "scalable-bloom": lambda: ScalableBloomFilter(START, 0.005, seed=13),
        "dynamic-cuckoo": lambda: DynamicCuckooFilter(START, 0.005, seed=13),
        "naive-qf": lambda: NaiveExpandableQuotientFilter.for_capacity(START, 0.005, seed=13),
        "taffy": lambda: TaffyCuckooFilter.for_capacity(START, 0.005, seed=13),
        "infinifilter": lambda: InfiniFilter.for_capacity(START, 0.005, seed=13),
        "aleph": lambda: AlephFilter.for_capacity(START, 0.005, seed=13),
        "bentley-saxe-xor": lambda: BentleySaxeFilter(
            lambda keys: XorFilter.build(keys, 0.005, seed=13),
            buffer_capacity=START,
        ),
    }


def test_f1_expansion_fpr(benchmark):
    total = START * (1 << DOUBLINGS)
    members, negatives = disjoint_key_sets(total, 10_000, seed=14)
    rows = []
    for name, factory in _factories().items():
        filt = factory()
        inserter = getattr(filt, "insert_autogrow", filt.insert)
        series = []
        inserted = 0
        dead = False
        for generation in range(DOUBLINGS + 1):
            target = START * (1 << generation)
            try:
                while inserted < min(target, len(members)):
                    inserter(members[inserted])
                    inserted += 1
            except NotExpandableError:
                dead = True
            series.append(round(measured_fpr(filt, negatives[:4000]), 5))
            if dead:
                series += ["DEAD"] * (DOUBLINGS - generation)
                break
        rows.append([name] + series)
    print_table(
        f"F1: FPR vs data growth (start {START}, {DOUBLINGS} doublings, eps=0.005)",
        ["strategy"] + [f"x{1 << g}" for g in range(DOUBLINGS + 1)],
        rows,
        note="naive-qf FPR ~doubles per column and dies when bits run out; "
        "chained grows ~linearly; taffy/infini/aleph stay flat",
    )
    filt = TaffyCuckooFilter.for_capacity(START, 0.005, seed=13)
    sample = members[: START * 4]

    def grow():
        f = TaffyCuckooFilter.for_capacity(START, 0.005, seed=13)
        for key in sample:
            f.insert_autogrow(key)

    benchmark(grow)
