"""T12 — Bentley–Saxe dynamization & incrementally updatable Mantis.

Claims checked (Almodaresi et al. 2022, cited by §3.2; Bentley–Saxe 1980):
  * a static filter (XOR) becomes insertable with O(log n) query cost and
    O(log n) amortised rebuild work per key — vs Θ(n) per insert for
    naive full rebuilds;
  * the same transformation makes Mantis incrementally updatable while
    staying exact after every experiment addition.
"""

from __future__ import annotations

import math

from repro.apps.mantis import IncrementalMantis, MantisIndex
from repro.expandable.bentley_saxe import BentleySaxeFilter
from repro.filters.xor import XorFilter
from repro.workloads.dna import sequencing_experiments
from repro.workloads.synthetic import disjoint_key_sets

from _util import print_table

K = 11


def test_t12_bentley_saxe_filter(benchmark):
    members, negatives = disjoint_key_sets(8192, 4000, seed=221)
    rows = []
    # Odd buffer counts (7, 31, 127 buffers) show the general level shape;
    # powers of two would collapse to a single level by binary carry.
    for n in (448, 1984, 8128):
        bs = BentleySaxeFilter(
            lambda keys: XorFilter.build(keys, 0.01, seed=222), buffer_capacity=64
        )
        for key in members[:n]:
            bs.insert(key)
        fpr = sum(bs.may_contain(k) for k in negatives) / len(negatives)
        naive_rebuild_keys = n * (n + 64) // (2 * 64)  # full rebuild per buffer
        rows.append(
            [
                n,
                bs.n_levels,
                bs.query_cost("x"),
                round(bs.amortised_rebuild_factor, 2),
                round(naive_rebuild_keys / n, 1),
                round(fpr, 5),
                round(bs.size_in_bits / n, 1),
            ]
        )
    print_table(
        "T12a: Bentley–Saxe over the static XOR filter",
        ["n", "levels", "query cost", "rebuild keys/insert",
         "naive rebuild keys/insert", "FPR", "bits/key"],
        rows,
        note="rebuild work grows ~log2(n/buffer) per insert vs ~n/2 per "
        "insert for rebuild-everything; query pays the level count",
    )

    experiments = sequencing_experiments(12, 1200, K, shared_fraction=0.3, seed=223)
    inc = IncrementalMantis(seed=224)
    exact_after_each = 0
    for n_added, kmers in enumerate(experiments, start=1):
        inc.add_experiment(kmers)
        query = list(experiments[n_added - 1])[:40]
        threshold = math.ceil(0.8 * len(query))
        truth = sorted(
            e
            for e, ks in enumerate(experiments[:n_added])
            if sum(1 for q in query if q in ks) >= threshold
        )
        if inc.query(query, theta=0.8) == truth:
            exact_after_each += 1
    batch = MantisIndex(experiments, seed=224)
    rows2 = [
        [
            len(experiments),
            f"{exact_after_each}/{len(experiments)}",
            inc.rebuilds,
            inc.n_levels,
            round(inc.size_in_bits / 8192, 1),
            round(batch.size_in_bits / 8192, 1),
        ]
    ]
    print_table(
        "T12b: incrementally updatable Mantis (Bentley–Saxe transformation)",
        ["experiments", "exact after each add", "rebuild events", "levels",
         "incremental KiB", "batch KiB"],
        rows2,
        note="every intermediate index answers exactly; rebuild events stay "
        "O(n) total with O(log n) participation per experiment",
    )
    benchmark(lambda: inc.query(list(experiments[3])[:40], theta=0.8))
