"""A3 (ablation) — quotient filter load factor vs probe length.

The QF's linear-probing clusters grow superlinearly with load (expected
cluster length ~ 1/(1-a)^2), which is why implementations cap the load
around 0.9 — the cost curve this bench traces.
"""

from __future__ import annotations

import numpy as np

from repro.filters.quotient import QuotientFilter
from repro.workloads.synthetic import disjoint_key_sets

from _util import measured_fpr, print_table

Q_BITS = 12  # 4096 slots


def test_a3_qf_load_vs_probe_length(benchmark):
    n_slots = 1 << Q_BITS
    members, negatives = disjoint_key_sets(n_slots, 8_000, seed=171)
    qf = QuotientFilter(Q_BITS, 10, seed=172, max_load=0.96)
    rows = []
    checkpoints = (0.3, 0.5, 0.7, 0.85, 0.95)
    inserted = 0
    rng = np.random.default_rng(173)
    probes_sample = [int(x) for x in rng.integers(0, 1 << 40, size=400)]
    for load in checkpoints:
        target = int(n_slots * load)
        while inserted < target:
            qf.insert(members[inserted])
            inserted += 1
        mean_probe = float(np.mean([qf.probe_length(k) for k in probes_sample]))
        rows.append(
            [
                load,
                round(mean_probe, 2),
                round(measured_fpr(qf, negatives[:4000]), 5),
                round(qf.expected_fpr(), 5),
            ]
        )
    print_table(
        f"A3: quotient filter probe length vs load (2^{Q_BITS} slots, r=10)",
        ["load", "mean probe slots", "measured FPR", "a·2^-r"],
        rows,
        note="probe length grows superlinearly near full — the reason QF "
        "deployments cap the load at ~0.9; FPR tracks a·2^-r",
    )
    benchmark(lambda: [qf.may_contain(k) for k in probes_sample[:100]])
