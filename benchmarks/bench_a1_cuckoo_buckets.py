"""A1 (ablation) — cuckoo filter bucket size: load vs FPR.

Fan et al.'s design choice: 4-way buckets.  Smaller buckets fail earlier
(lower achievable load); bigger buckets raise the FPR (more fingerprints
compared per query) for the same fingerprint width.
"""

from __future__ import annotations

from repro.core.errors import FilterFullError
from repro.filters.cuckoo import CuckooFilter
from repro.workloads.synthetic import disjoint_key_sets

from _util import measured_fpr, print_table

F_BITS = 12
N_BUCKET_MEM = 1 << 11  # total slots held constant across bucket sizes


def test_a1_bucket_size(benchmark):
    members, negatives = disjoint_key_sets(N_BUCKET_MEM, 10_000, seed=151)
    rows = []
    for bucket_size in (1, 2, 4, 8):
        cf = CuckooFilter(
            N_BUCKET_MEM // bucket_size, F_BITS, bucket_size=bucket_size, seed=152
        )
        achieved = 0
        try:
            for key in members:
                cf.insert(key)
                achieved += 1
        except FilterFullError:
            pass
        rows.append(
            [
                bucket_size,
                round(achieved / cf.n_slots, 3),
                round(measured_fpr(cf, negatives), 5),
                round(cf.expected_fpr(), 5),
            ]
        )
    print_table(
        f"A1: cuckoo bucket size at fixed table memory (f={F_BITS})",
        ["bucket size", "max load reached", "measured FPR", "expected 2b·a/2^f"],
        rows,
        note="b=1 fails early; b=4 hits ~95% load; b=8 loads higher still "
        "but doubles the FPR vs b=4 — the paper's chosen trade is b=4",
    )
    cf = CuckooFilter(N_BUCKET_MEM // 4, F_BITS, bucket_size=4, seed=153)
    for key in members[: int(cf.n_slots * 0.9)]:
        cf.insert(key)
    sample = negatives[:1000]
    benchmark(lambda: sum(1 for k in sample if cf.may_contain(k)))
