"""T5 — adaptivity under an adversarial query stream (§2.3).

Paper claim: for an adaptive filter, *any* sequence of n negative queries
incurs O(εn) false positives w.h.p., even when the adversary replays every
false positive it discovers.  A static filter replays into the same FPs
forever: Θ(n) wasted disk accesses.

Shape to hold: static filters' wasted-I/O rate ≫ ε under the adversary;
adaptive filters stay at ~ε or below.
"""

from __future__ import annotations

from repro.adaptive.adaptive_cuckoo import AdaptiveCuckooFilter
from repro.adaptive.adaptive_quotient import AdaptiveQuotientFilter
from repro.adaptive.dictionary import FilteredDictionary
from repro.adaptive.telescoping import TelescopingFilter
from repro.filters.bloom import BloomFilter
from repro.filters.quotient import QuotientFilter
from repro.workloads.synthetic import adversarial_repeat_queries, disjoint_key_sets

from _util import print_table

N = 2048
EPSILON = 0.01
N_QUERIES = 30_000


def _filters():
    return {
        "bloom (static)": BloomFilter(N, EPSILON, seed=21),
        "quotient (static)": QuotientFilter.for_capacity(N, EPSILON, seed=21),
        "adaptive-cuckoo": AdaptiveCuckooFilter.for_capacity(N, EPSILON, seed=21),
        "telescoping": TelescopingFilter.for_capacity(N, EPSILON, seed=21),
        "adaptive-quotient": AdaptiveQuotientFilter.for_capacity(N, EPSILON, seed=21),
    }


def test_t5_adaptive_adversary(benchmark):
    members, negatives = disjoint_key_sets(N, 20_000, seed=22)
    rows = []
    for name, filt in _filters().items():
        store = FilteredDictionary(filt)
        for key in members:
            store.put(key, key)
        # The adversary uses the dictionary itself as its oracle: a false
        # positive is visible as a wasted disk read.
        def is_fp(key):
            before = store.stats.false_positives
            store.get(key)
            return store.stats.false_positives > before

        queries = adversarial_repeat_queries(negatives, is_fp, N_QUERIES, seed=23)
        del queries
        s = store.stats
        rows.append(
            [
                name,
                s.queries,
                s.false_positives,
                round(s.wasted_read_rate, 5),
                round(s.wasted_read_rate / EPSILON, 1),
            ]
        )
    print_table(
        f"T5: adversarial negatives (n={N}, eps={EPSILON}, ~{N_QUERIES} queries)",
        ["filter", "queries", "wasted I/Os", "wasted rate", "x eps"],
        rows,
        note="static filters are driven far above eps by replayed FPs "
        "(x eps >> 1); adaptive filters hold O(eps·n)",
    )
    acf = AdaptiveCuckooFilter.for_capacity(N, EPSILON, seed=24)
    for key in members:
        acf.insert(key)
    sample = negatives[:500]

    def adapt_pass():
        for key in sample:
            if acf.may_contain(key):
                acf.report_false_positive(key)

    benchmark(adapt_pass)
