"""Bench-suite fixtures: shared key sets sized for experiment fidelity."""

from __future__ import annotations

import pytest

from repro.workloads.synthetic import disjoint_key_sets


def pytest_addoption(parser):
    parser.addoption(
        "--metrics-out",
        default=None,
        help="dump the repro.obs default-registry JSON snapshot here after "
             "each bench table (see benchmarks/_util.py)",
    )


@pytest.fixture(scope="session")
def bench_keys():
    """2^14 member keys + 20k negatives (the T2/T3/T4 workload)."""
    return disjoint_key_sets(1 << 14, 20_000, seed=2024)


@pytest.fixture(scope="session")
def small_bench_keys():
    """2^12 member keys + 10k negatives for the heavier structures."""
    return disjoint_key_sets(1 << 12, 10_000, seed=2025)
