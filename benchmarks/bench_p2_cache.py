"""P2 — cache tier: device I/O per lookup under skew (docs/performance.md).

Claims checked:
  * a block cache sized at 10 % of the read working set cuts physical
    device I/Os per lookup by ≥ 5× under a Zipf(0.99) read mix — the
    RocksDB block-cache argument, reproduced in simulated bytes (the
    acceptance gate, asserted hard);
  * TinyLFU admission beats plain LRU at small cache fractions (scan
    resistance keeps the hot filter/page blocks resident);
  * through the serving stack, the cache converts I/O pressure into
    goodput and tail latency — with the safety invariant (zero false
    negatives) intact at every cache size, storms included.

Setup: an LSM-tree with paged runs (``page_entries``) and charged
filter-block reads (``charge_filter_reads``) — the configuration where
a cache can act on real read granularity — loaded with N keys, then a
Zipf(0.99) stream of point lookups (half present, half absent) replayed
against an uncached tree and cache-fraction sweeps of cached twins.
``REPRO_BENCH_SMALL=1`` shrinks the workload for CI.
"""

from __future__ import annotations

import os

from repro.apps.lsm import LSMConfig, LSMTree
from repro.cache import BlockCache, CachedDevice
from repro.common.storage import BlockDevice
from repro.obs import use_registry
from repro.serve import StormPhase, build_stack, run_storm
from repro.workloads import zipf_queries

from _util import print_table

_SMALL = bool(os.environ.get("REPRO_BENCH_SMALL"))
N_KEYS = 800 if _SMALL else 4_000
N_QUERIES = 2_000 if _SMALL else 10_000
SEED = 0xCAC4E
SKEW = 0.99
FRACTIONS = (0.02, 0.05, 0.10, 0.20)
GATE_FRACTION = 0.10
GATE_RATIO = 5.0


def _config(*, memoized: bool) -> LSMConfig:
    # Tiered compaction keeps several runs alive (several small filter
    # blocks instead of one big one) and 5 % largest-level FPR keeps
    # filter bytes small relative to page bytes — the regime the
    # RocksDB block-cache argument is about.  The cached arm also runs
    # the per-run negative-verdict memo: it is part of the cache tier
    # this bench measures.
    return LSMConfig(
        memtable_entries=128,
        compaction="tiering",
        size_ratio=4,
        largest_level_epsilon=0.05,
        page_entries=8,
        charge_filter_reads=True,
        filter_memo_entries=4096 if memoized else 0,
        seed=SEED,
    )


def _build_tree(device=None, *, memoized: bool = False) -> LSMTree:
    tree = LSMTree(_config(memoized=memoized), device=device)
    for key in range(N_KEYS):
        tree.put(key, f"value-{key}")
    tree.flush()
    return tree


def _working_set_bytes(tree: LSMTree) -> int:
    """Bytes of every block the read path can touch: pages + filters."""
    total = 0
    for address in tree.device.addresses():
        if isinstance(address, tuple) and address[0] in ("page", "filter"):
            total += tree.device.size_of(address) or 0
    return total


def _query_stream() -> list[int]:
    # Zipf over a present/absent interleaving: odd ranks map to keys
    # that exist, even ranks to keys that never will — the hot set mixes
    # positive lookups (page reads) with negatives (filter verdicts).
    population = []
    for i in range(N_KEYS):
        population.append(i)
        population.append(N_KEYS + i)
    return zipf_queries(population, N_QUERIES, SKEW, seed=SEED)


def _replay(tree: LSMTree, queries: list[int], physical_device) -> float:
    """Physical device reads per lookup across *queries*."""
    before = physical_device.stats.reads
    for key in queries:
        tree.get(key)
    return (physical_device.stats.reads - before) / len(queries)


def test_p2_block_cache_io_reduction():
    queries = _query_stream()
    with use_registry():
        baseline_tree = _build_tree()
        working_set = _working_set_bytes(baseline_tree)
        io_uncached = _replay(baseline_tree, queries, baseline_tree.device)

    rows = [["uncached", "-", "-", f"{io_uncached:.3f}", "-", "1.0x"]]
    gate_ratio = None
    for policy in ("lru", "tinylfu"):
        for fraction in FRACTIONS:
            capacity = int(working_set * fraction)
            with use_registry():
                inner = BlockDevice()
                cache = BlockCache(capacity, policy=policy, seed=SEED)
                tree = _build_tree(device=CachedDevice(inner, cache),
                                   memoized=True)
                cache.clear()  # don't let load-time residency flatter reads
                cache.stats.hits = cache.stats.misses = 0
                io_cached = _replay(tree, queries, inner)
            ratio = io_uncached / io_cached if io_cached else float("inf")
            rows.append([
                policy,
                f"{fraction:.0%}",
                f"{capacity}",
                f"{io_cached:.3f}",
                f"{cache.stats.hit_rate:.3f}",
                f"{ratio:.1f}x",
            ])
            if policy == "tinylfu" and fraction == GATE_FRACTION:
                gate_ratio = ratio

    print_table(
        f"P2: device I/Os per lookup, Zipf({SKEW}) "
        f"({N_KEYS} keys, {N_QUERIES} queries, working set {working_set}B)",
        ["policy", "cache", "bytes", "IO/lookup", "hit rate", "reduction"],
        rows,
        note=f"gate: >= {GATE_RATIO:.0f}x reduction at {GATE_FRACTION:.0%} "
             "of working set (tinylfu)",
    )
    assert gate_ratio is not None and gate_ratio >= GATE_RATIO, (
        f"cache at {GATE_FRACTION:.0%} of working set reduced I/O only "
        f"{gate_ratio:.1f}x (gate {GATE_RATIO:.0f}x)"
    )


def test_p2_served_tail_vs_cache_size():
    n_keys = 400 if _SMALL else 1_500
    phases = (
        StormPhase("calm", 150 if _SMALL else 400),
        StormPhase("storm", 200 if _SMALL else 500,
                   transient_read=0.4, slowdown=3.0, spike_prob=0.02),
        StormPhase("recovery", 150 if _SMALL else 400,
                   mean_interarrival=0.004),
    )
    lsm_config = LSMConfig(
        memtable_entries=64, retry_attempts=3, seed=SEED,
        page_entries=8, charge_filter_reads=True,
    )
    rows = []
    goodputs = []
    for cache_mb in (0.0, 0.05, 0.25):
        with use_registry():
            served, tree, *_rest = build_stack(
                seed=SEED, n_keys=n_keys, lsm_config=lsm_config,
                cache_mb=cache_mb, cache_policy="tinylfu",
                negative_cache_entries=4096,
            )
            report = run_storm(served, phases, seed=SEED, n_keys=n_keys)
        assert report.false_negatives == 0  # safety is cache-independent
        cache = getattr(tree.device, "cache", None)
        hit_rate = cache.stats.hit_rate if cache is not None else 0.0
        storm = report.phases[1]
        goodputs.append(report.goodput())
        rows.append([
            f"{cache_mb:.2f}",
            f"{hit_rate:.3f}",
            f"{report.goodput():.3f}",
            f"{1e3 * storm.latency_quantile(0.99):.2f}",
            report.breaker_opens,
            report.false_negatives,
        ])
    print_table(
        f"P2: serving goodput / tail vs cache size ({n_keys} keys, "
        "calm-storm-recovery)",
        ["cache MB", "hit rate", "goodput", "storm p99 ms",
         "breaker opens", "false neg"],
        rows,
        note="negative-lookup cache: 4096 entries at every size",
    )
    # More cache must never cost goodput; it usually buys some.
    assert goodputs[-1] >= goodputs[0] - 0.02
