"""T3 — measured false-positive rate vs target ε for every point filter.

Paper claim (§1): a filter answers absent with probability ≥ 1−ε for
non-members.  Shape to hold: measured FPR ≈ ε (within binomial noise) for
every implementation, at both practical ε values.
"""

from __future__ import annotations

from repro.core.registry import make_filter

from _util import measured_fpr, print_table

DYNAMIC = [
    "bloom", "blocked-bloom", "prefix", "quotient", "cuckoo",
    "vector-quotient", "morton",
    "counting-bloom", "cqf", "adaptive-cuckoo", "telescoping",
    "adaptive-quotient",
]
STATIC = ["xor", "xor-plus", "ribbon"]


def test_t3_fpr(bench_keys, benchmark):
    members, negatives = bench_keys
    epsilon = 2**-8
    rows = []
    for name in DYNAMIC:
        filt = make_filter(name, capacity=len(members), epsilon=epsilon, seed=5)
        for key in members:
            filt.insert(key)
        rows.append([name, epsilon, round(measured_fpr(filt, negatives), 6)])
    for name in STATIC:
        filt = make_filter(name, keys=members, epsilon=epsilon, seed=5)
        rows.append([name, epsilon, round(measured_fpr(filt, negatives), 6)])
    print_table(
        "T3: measured FPR vs target (n=2^14, 20k negative queries)",
        ["filter", "target eps", "measured FPR"],
        rows,
        note="all filters must sit at or below ~eps + binomial noise; "
        "blocked-bloom trades a small FPR penalty for 1-access queries",
    )
    bloom = make_filter("bloom", capacity=len(members), epsilon=epsilon, seed=5)
    for key in members:
        bloom.insert(key)
    sample = negatives[:1000]
    benchmark(lambda: sum(1 for k in sample if bloom.may_contain(k)))
