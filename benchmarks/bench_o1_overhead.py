"""O1 — instrumentation overhead (docs/observability.md).

Claim checked: wrapping a filter in
:class:`~repro.obs.instrument.InstrumentedFilter` costs a bounded,
constant per-probe overhead — the instrumented/bare probe-throughput
ratio stays ≥ 0.5 (metric children are bound once at construction, so
the per-probe cost is one lock-guarded counter increment).  Also
measured: the inactive-tracing fast path (a ``trace()`` block with no
recorder installed) and the fully-active path (ring-buffer recorder on),
so the table shows what each observability layer costs when off vs on.

Results feed EXPERIMENTS.md O1.
"""

from __future__ import annotations

import time

from repro import obs
from repro.core.registry import make_filter

from _util import print_table

N = 1 << 14
ROUNDS = 3
FILTERS = ["bloom", "blocked-bloom", "quotient", "cuckoo", "xor"]


def _build(name, members):
    if name == "xor":
        return make_filter(name, keys=members, epsilon=0.01, seed=11)
    filt = make_filter(name, capacity=N, epsilon=0.01, seed=11)
    for key in members:
        filt.insert(key)
    return filt


def _probe_rate(filt, queries, traced: bool = False) -> float:
    """Best-of-ROUNDS probes/second over the mixed query batch.

    With ``traced=True`` each probe runs inside a ``filter.probe`` span,
    so the rate includes span allocation and ring-buffer recording.
    """
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        hits = 0
        if traced:
            for key in queries:
                with obs.trace("filter.probe"):
                    if filt.may_contain(key):
                        hits += 1
        else:
            for key in queries:
                if filt.may_contain(key):
                    hits += 1
        best = min(best, time.perf_counter() - start)
        assert hits  # keep the loop honest
    return len(queries) / best


def test_o1_instrumentation_overhead(bench_keys):
    members, negatives = bench_keys
    members = members[:N]
    queries = members[: N // 2] + negatives[: N // 2]
    rows = []
    worst_ratio = 1.0
    for name in FILTERS:
        bare = _build(name, members)
        with obs.use_registry():
            instrumented = obs.InstrumentedFilter(
                _build(name, members), name=name, ground_truth=set(members)
            )
            bare_rate = _probe_rate(bare, queries)
            inst_rate = _probe_rate(instrumented, queries)
            with obs.use_recorder(obs.TraceRecorder(capacity=64)):
                traced_rate = _probe_rate(instrumented, queries, traced=True)
        ratio = inst_rate / bare_rate
        worst_ratio = min(worst_ratio, ratio)
        rows.append(
            (
                name,
                round(bare_rate),
                round(inst_rate),
                round(ratio, 3),
                round(traced_rate / bare_rate, 3),
            )
        )
    print_table(
        "O1: instrumented vs bare probe throughput",
        ["filter", "bare probes/s", "instrumented probes/s",
         "ratio (off)", "ratio (recorder on)"],
        rows,
        note="ratio (off) is the acceptance metric: >= 0.5 required; "
             "recorder-on adds span accounting on the same probes",
    )
    assert worst_ratio >= 0.5, f"instrumentation overhead too high: {worst_ratio}"


def test_o1_trace_noop_fast_path(bench_keys):
    """The inactive trace() guard alone (no recorder) must be cheap."""
    members, _ = bench_keys
    queries = members[:4096]
    filt = _build("bloom", queries)

    def plain():
        for key in queries:
            filt.may_contain(key)

    def guarded():
        for key in queries:
            with obs.trace("probe"):
                filt.may_contain(key)

    def timed(fn):
        best = float("inf")
        for _ in range(ROUNDS):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return len(queries) / best

    plain_rate, guarded_rate = timed(plain), timed(guarded)
    print_table(
        "O1: inactive trace() guard cost",
        ["variant", "probes/s", "ratio"],
        [
            ("no trace()", round(plain_rate), 1.0),
            ("trace() no recorder", round(guarded_rate),
             round(guarded_rate / plain_rate, 3)),
        ],
    )
    assert guarded_rate / plain_rate >= 0.25
