"""R4 — availability under replica loss (docs/robustness.md).

Claims checked:
  * replication preserves the one-sided-error contract: a mid-storm
    replica kill plus a later heal produces zero false negatives —
    quorum reads answer MAYBE, never ABSENT, whenever absence cannot be
    proven by a full quorum of healthy replicas;
  * replication buys availability: under the *same* seeded storm and
    the same kill schedule, the R=3 fleet keeps strictly more goodput
    than a single-copy store, which has nothing authoritative to say
    once its only replica is down;
  * repair is background: hinted handoff and anti-entropy run at LOW
    priority behind the admission gate, so the kill/heal run's served
    p99 stays within a small factor of the undisturbed baseline;
  * the fleet converges: after the drain, every pending hint has
    replayed and per-bucket digests agree across all replicas.

Series: identical storms (same seed, same arrivals, same 10% update
mix) over the replicated stack — once undisturbed, once with a kill at
a quarter and a heal at three quarters of the run, and once as a
single-copy control with the same kill and no possible heal benefit.
Writes ``benchmarks/bench_r4_replica.json`` as the availability
snapshot.  ``REPRO_BENCH_SMALL=1`` shrinks the workload for CI.
"""

from __future__ import annotations

import json
import os

from repro.obs import use_registry
from repro.serve import ServeOutcome, StormPhase, run_replica_storm

from _util import print_table

_SMALL = bool(os.environ.get("REPRO_BENCH_SMALL"))
N_KEYS = 400 if _SMALL else 1_500
N_REQUESTS = 500 if _SMALL else 1_200
N_NODES = 3
SEED = 424244
KILL_AT = N_REQUESTS // 4
HEAL_AT = (3 * N_REQUESTS) // 4


def snapshot_path() -> str:
    return os.environ.get(
        "REPRO_BENCH_SNAPSHOT_R4",
        os.path.join(os.path.dirname(__file__), "bench_r4_replica.json"),
    )


def _drive(n_nodes: int, *, kill_at: int, heal_at: int, drain: bool):
    """One calm sustained phase; the kill/heal is the only disruption.

    No injected device faults here — availability loss should be
    attributable to the replica kill alone, not confounded with a
    transient-fault storm (tests/test_replica.py covers the combined
    case).  The 10% update mix keeps hints flowing to the dead node.
    """
    phases = (StormPhase("drive", N_REQUESTS, mean_interarrival=0.002),)
    with use_registry():
        storm, rep, _store, _repairer = run_replica_storm(
            seed=SEED, n_keys=N_KEYS, n_nodes=n_nodes,
            phases=phases, kill_at=kill_at, heal_at=heal_at,
            write_fraction=0.1, drain=drain,
        )
    phase = storm.phases[0]
    return {
        "goodput": storm.goodput(),
        "p99_ms": 1e3 * phase.latency_quantile(0.99),
        "p50_ms": 1e3 * phase.latency_quantile(0.50),
        "shed_rate": phase.rate(ServeOutcome.SHED),
        "degraded_rate": phase.rate(ServeOutcome.DEGRADED),
        "false_negatives": storm.false_negatives,
        **rep.as_dict(),
    }


def test_r4_replica_availability():
    steady = _drive(N_NODES, kill_at=0, heal_at=0, drain=True)
    killheal = _drive(N_NODES, kill_at=KILL_AT, heal_at=HEAL_AT, drain=True)
    single = _drive(1, kill_at=KILL_AT, heal_at=0, drain=False)

    # Safety at every operating point: losing replicas (even the only
    # one) degrades answers to MAYBE, never to a false ABSENT.
    assert steady["false_negatives"] == 0
    assert killheal["false_negatives"] == 0
    assert single["false_negatives"] == 0
    # Replication converts the outage into background repair traffic:
    # the kill generated hints, they replayed, and the drained fleet
    # ends converged with an empty journal.
    assert killheal["kills"] == 1 and killheal["heals"] >= 1
    assert killheal["hints_journaled"] > 0
    assert killheal["hints_dropped"] == 0
    assert killheal["converged"] and killheal["backlog"] == 0
    # Availability: same storm, same kill — R=3 must beat one copy.
    assert killheal["goodput"] > single["goodput"]
    # Repair is background: the kill/heal tail stays within 3x the
    # undisturbed tail (0.1 ms floor so a near-zero steady p99 cannot
    # manufacture a failure).
    assert killheal["p99_ms"] <= 3.0 * max(steady["p99_ms"], 0.1)

    rows = [
        [label,
         f"{run['goodput']:.3f}",
         f"{run['p50_ms']:.3f}",
         f"{run['p99_ms']:.3f}",
         f"{run['degraded_rate']:.3f}",
         run["hints_journaled"],
         run["hints_replayed"],
         run["repairs"],
         "yes" if run["converged"] else "no",
         run["false_negatives"]]
        for label, run in (
            ("steady R=3", steady),
            ("kill+heal R=3", killheal),
            ("kill, 1 copy", single),
        )
    ]
    print_table(
        f"R4: availability under replica loss ({N_KEYS} keys, "
        f"{N_REQUESTS} requests, kill at {KILL_AT}, heal at {HEAL_AT}, "
        f"seed {SEED})",
        ["scenario", "goodput", "p50 (ms)", "p99 (ms)", "degraded",
         "hints", "replayed", "repairs", "converged", "false neg"],
        rows,
        note="identical seeds/arrivals; 'kill, 1 copy' is the control — "
             "a single-copy store has no authoritative answer while its "
             "replica is down, R=3 serves through the outage and repairs "
             "in the background",
    )

    with open(snapshot_path(), "w") as fh:
        json.dump(
            {"steady": steady, "killheal": killheal, "single": single},
            fh, indent=2,
        )
        fh.write("\n")
