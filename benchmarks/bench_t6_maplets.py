"""T6 — maplet result sizes and capabilities (§2.4).

Paper claims checked:
  * Bloomier: PRS = 1, NRS = 1, values updatable, no inserts;
  * QF maplet: PRS = 1 + ε, NRS = ε, fully dynamic;
  * SlimDB-style: PRS exactly 1 (collisions resolved on insert), NRS = ε;
  * Chucky: Huffman-coded values cost ≈ entropy ≪ fixed width.
"""

from __future__ import annotations

from repro.maplets.bloomier import BloomierMaplet
from repro.maplets.chucky import ChuckyMaplet
from repro.maplets.qf_maplet import QuotientFilterMaplet
from repro.maplets.slimdb import SlimDBMaplet
from repro.workloads.synthetic import disjoint_key_sets

from _util import print_table

N = 4096
EPSILON = 0.01


def _prs_nrs(maplet, members, negatives, correct):
    prs = sum(len(maplet.get(k)) for k in members) / len(members)
    nrs = sum(len(maplet.get(k)) for k in negatives) / len(negatives)
    right = sum(1 for k in members if correct[k] in maplet.get(k)) / len(members)
    return round(prs, 4), round(nrs, 4), round(right, 4)


def test_t6_maplets(benchmark):
    members, negatives = disjoint_key_sets(N, 10_000, seed=41)
    values = {key: i % 251 for i, key in enumerate(members)}

    bloomier = BloomierMaplet(values, value_bits=8, seed=42)

    import math

    qf = QuotientFilterMaplet.for_capacity(N, EPSILON, value_bits=8, seed=42)
    # Fingerprints sized so a negative collides with any of the n stored
    # entries with probability ~eps (NRS = eps, as the paper states).
    slim_bits = math.ceil(math.log2(N / EPSILON))
    slim = SlimDBMaplet(fingerprint_bits=slim_bits, value_bits=8, seed=42)
    for key, value in values.items():
        qf.insert(key, value)
        slim.insert(key, value)

    weights = {level: 10.0**level for level in range(4)}
    chucky = ChuckyMaplet(N, EPSILON, weights, seed=42)
    for i, key in enumerate(members):
        chucky.insert(key, 3 if i % 10 else 0)

    rows = []
    for name, maplet in (
        ("bloomier", bloomier),
        ("qf-maplet", qf),
        ("slimdb", slim),
    ):
        prs, nrs, right = _prs_nrs(maplet, members, negatives, values)
        rows.append(
            [name, prs, nrs, right, round(maplet.size_in_bits / N, 2)]
        )
    rows.append(
        [
            "chucky (values only)",
            "1+eps",
            "eps",
            1.0,
            round(chucky.mean_value_bits, 3),
        ]
    )
    print_table(
        f"T6: maplet PRS / NRS (n={N}, eps={EPSILON}, 8-bit values)",
        ["maplet", "PRS", "NRS", "value-correct", "bits/key"],
        rows,
        note="bloomier returns exactly one (arbitrary for negatives) value; "
        "qf-maplet PRS=1+eps NRS=eps; slimdb PRS exactly 1; chucky's "
        "Huffman values cost ~entropy bits (vs 2 fixed)",
    )
    benchmark(lambda: [qf.get(k) for k in members[:1000]])
