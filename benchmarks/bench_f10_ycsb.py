"""F10 — filter impact under YCSB-style mixed workloads (§3.1).

The tutorial's storage argument in end-to-end form: the same LSM-tree
driven by the standard cloud-serving mixes (A update-heavy, B read-mostly,
C read-only, E scan-heavy), with filters off, uniform, Monkey, and with
per-run range filters for the scan mix.  Reported metric: device reads
per operation.
"""

from __future__ import annotations

import numpy as np

from repro.apps.lsm import LSMConfig, LSMTree
from repro.rangefilters.prefix_bloom import PrefixBloomFilter
from repro.workloads.ycsb import run_workload

from _util import print_table

N_PRELOAD = 3000
N_OPS = 3000
KEY_BITS = 26


def _preloaded_tree(filter_policy: str, with_range_filters: bool = False) -> tuple:
    config = LSMConfig(
        compaction="tiering",
        memtable_entries=64,
        size_ratio=4,
        filter_policy=filter_policy,
        largest_level_epsilon=0.01,
        range_filter_factory=(
            (lambda keys: PrefixBloomFilter(keys, key_bits=KEY_BITS, prefix_bits=16))
            if with_range_filters
            else None
        ),
    )
    tree = LSMTree(config)
    rng = np.random.default_rng(241)
    keys = sorted(int(k) for k in rng.choice(1 << KEY_BITS, N_PRELOAD, replace=False))
    for key in keys:
        tree.put(key, key)
    return tree, keys


def test_f10_ycsb_mixes(benchmark):
    rows = []
    for workload in ("A", "B", "C"):
        for policy in ("none", "uniform", "monkey"):
            tree, keys = _preloaded_tree(policy)
            before = tree.device.stats.reads
            result = run_workload(tree, workload, N_OPS, key_space=keys, seed=242)
            reads = tree.device.stats.reads - before
            rows.append(
                [
                    workload,
                    policy,
                    round(reads / N_OPS, 3),
                    result.read_misses,
                    tree.n_runs,
                ]
            )
    print_table(
        f"F10: YCSB mixes on the LSM ({N_PRELOAD} preloaded keys, {N_OPS} ops)",
        ["workload", "filter policy", "device reads/op", "read misses", "runs"],
        rows,
        note="reads are Zipf-hot positives: filters skip the runs that do "
        "not hold the key; monkey prunes hardest at equal epsilon",
    )

    rows2 = []
    for with_rf in (False, True):
        tree, keys = _preloaded_tree("monkey", with_range_filters=with_rf)
        before = tree.device.stats.reads
        run_workload(tree, "E", N_OPS, key_space=keys, scan_length=64, seed=243)
        reads = tree.device.stats.reads - before
        rows2.append(
            ["with range filters" if with_rf else "no range filters",
             round(reads / N_OPS, 3)]
        )
    print_table(
        "F10b: scan-heavy mix (E) with per-run range filters",
        ["configuration", "device reads/op"],
        rows2,
        note="scans dominate E; range filters cut the per-scan run probes",
    )
    tree, keys = _preloaded_tree("monkey")
    benchmark(lambda: run_workload(tree, "B", 500, key_space=keys, seed=244))
