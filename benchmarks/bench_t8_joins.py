"""T8 — filter-accelerated selective joins (§3.1, Lang et al.).

Paper claims checked: building a filter over the small table's join keys
and probing it during the big-table scan "helps reduce the number and
sizes of join partitions to improve both CPU utilization and I/Os".
Compared across filter types at two selectivities; the benchmark times the
full probe pass (the Lang-et-al. throughput axis).
"""

from __future__ import annotations

from repro.apps.joins import filtered_join, unfiltered_join
from repro.filters.bloom import BloomFilter
from repro.filters.cuckoo import CuckooFilter
from repro.filters.quotient import QuotientFilter
from repro.filters.xor import XorFilter

from _util import print_table

N_PROBE = 40_000


def _factories():
    def bloom(keys):
        return BloomFilter.from_keys(keys, 0.01, seed=91)

    def cuckoo(keys):
        cf = CuckooFilter.for_capacity(len(keys), 0.01, seed=91)
        for key in keys:
            cf.insert(key)
        return cf

    def quotient(keys):
        qf = QuotientFilter.for_capacity(len(keys), 0.01, seed=91)
        for key in keys:
            qf.insert(key)
        return qf

    def xor(keys):
        return XorFilter.build(keys, 0.01, seed=91)

    return {"bloom": bloom, "cuckoo": cuckoo, "quotient": quotient, "xor": xor}


def test_t8_filtered_joins(benchmark):
    rows = []
    for selectivity in (0.01, 0.10):
        n_build = int(N_PROBE * selectivity)
        build = [(k * 7, f"b{k}") for k in range(n_build)]
        probe = [(k, f"p{k}") for k in range(N_PROBE)]
        _, base_stats = unfiltered_join(build, probe)
        rows.append(
            [selectivity, "none", base_stats.rows_passed_filter, 0, "0.00%", 0]
        )
        for name, factory in _factories().items():
            _, stats = filtered_join(build, probe, factory)
            rows.append(
                [
                    selectivity,
                    name,
                    stats.rows_passed_filter,
                    stats.false_passes,
                    f"{stats.shipping_reduction:.2%}",
                    round(stats.filter_bits / max(1, stats.build_rows), 1),
                ]
            )
    print_table(
        f"T8: selective join, {N_PROBE} probe rows",
        ["selectivity", "filter", "rows shipped", "false passes",
         "shipped reduction", "filter bits/key"],
        rows,
        note="every filter removes ~(1-selectivity) of probe traffic; "
        "differences are FPR (false passes) and per-probe cost (timing)",
    )
    build = [(k * 7, k) for k in range(400)]
    probe = [(k, k) for k in range(N_PROBE)]
    factory = _factories()["bloom"]
    benchmark(lambda: filtered_join(build, probe, factory))
