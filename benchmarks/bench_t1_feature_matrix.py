"""T1 — the §2 taxonomy as a feature matrix.

The tutorial's central exhibit is its classification of filters
(static / semi-dynamic / dynamic) and their feature sets.  This bench
prints the matrix from the registry and times filter construction through
the factory.
"""

from __future__ import annotations

from repro.core.registry import FEATURE_MATRIX, make_filter

from _util import print_table


def test_t1_feature_matrix(benchmark):
    rows = []
    for name, f in sorted(FEATURE_MATRIX.items(), key=lambda kv: kv[1].paper_section):
        rows.append(
            [
                name,
                f.paper_section,
                f.kind,
                "y" if f.inserts else "",
                "y" if f.deletes else "",
                "y" if f.counting else "",
                "y" if f.expandable else "",
                "y" if f.adaptive else "",
                "y" if f.values else "",
                "y" if f.ranges else "",
            ]
        )
    print_table(
        "T1: filter taxonomy (paper §2)",
        ["filter", "§", "kind", "ins", "del", "cnt", "exp", "adp", "val", "rng"],
        rows,
        note="matches the tutorial's static/semi-dynamic/dynamic classification",
    )

    def construct():
        return make_filter("quotient", capacity=1024, epsilon=0.01)

    benchmark(construct)
