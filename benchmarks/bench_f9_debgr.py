"""F9 — deBGR: self-correcting weighted de Bruijn graph (§3.2).

Claims checked (Pandey et al. 2017):
  * an approximate (CQF-backed) weighted de Bruijn graph violates the
    flow invariant exactly where fingerprint collisions corrupt counts;
  * using the invariants to re-count those edges during construction
    yields a near-exact structure whose working memory stays close to the
    approximate representation (far below an exact hash table of edges).

Series: residual count-error rate before vs after correction, across
filter error rates.
"""

from __future__ import annotations

from repro.apps.debruijn import WeightedDeBruijn
from repro.workloads.dna import extract_kmers, random_genome

from _util import print_table

K = 11
EPS_SWEEP = (0.05, 0.2, 0.4)


def test_f9_debgr_self_correction(benchmark):
    genome = random_genome(4000, seed=231)
    reads = [genome, genome[800:2400], genome[800:2400], genome[3000:3800]]
    truth: dict[str, int] = {}
    for read in reads:
        for edge in extract_kmers(read, K + 1):
            truth[edge] = truth.get(edge, 0) + 1

    rows = []
    for epsilon in EPS_SWEEP:
        graph = WeightedDeBruijn.build(reads, K, epsilon=epsilon, seed=232)
        wrong_before = sum(
            1 for e, c in truth.items() if graph._approx_edge_weight(e) != c
        )
        wrong_after = sum(1 for e, c in truth.items() if graph.edge_weight(e) != c)
        exact_table_bits = len(truth) * (2 * (K + 1) + 32)
        rows.append(
            [
                epsilon,
                len(truth),
                wrong_before,
                wrong_after,
                graph.n_corrected,
                round(graph.size_in_bits / 1024, 1),
                round(exact_table_bits / 1024, 1),
            ]
        )
    print_table(
        f"F9: deBGR weighted de Bruijn self-correction (k={K})",
        ["cqf eps", "edges", "wrong before", "wrong after", "corrections",
         "deBGR Kib", "exact-table Kib"],
        rows,
        note="invariant-guided correction removes nearly all count errors "
        "while the structure stays well under the exact edge table",
    )
    benchmark(lambda: WeightedDeBruijn.build(reads[:2], K, epsilon=0.1, seed=233))
