"""F2 — query cost as a filter expands (§2.2).

Paper claims checked, as a series of structures-probed-per-query:
  * chained: O(#links) — grows linearly;
  * scalable Bloom: O(log n) links;
  * InfiniFilter: grows once entries go void (queries are "not constant
    time");
  * taffy / Aleph / naive: exactly 1 probe throughout (Aleph's §2.2
    "constant time guarantee on all operations").
"""

from __future__ import annotations

from repro.expandable.aleph import AlephFilter
from repro.expandable.chaining import ChainedFilter, ScalableBloomFilter
from repro.expandable.infinifilter import InfiniFilter
from repro.expandable.taffy import TaffyCuckooFilter
from repro.workloads.synthetic import disjoint_key_sets

from _util import print_table

START = 64
DOUBLINGS = 7


def test_f2_expansion_query_cost(benchmark):
    total = START * (1 << DOUBLINGS)
    members, negatives = disjoint_key_sets(total, 64, seed=15)
    # Tiny fingerprints for InfiniFilter/Aleph so the void regime is reached
    # within the experiment's doublings.
    from repro.expandable.bentley_saxe import BentleySaxeFilter
    from repro.expandable.chaining import DynamicCuckooFilter
    from repro.filters.xor import XorFilter

    filters = {
        "chained": ChainedFilter(START, 0.01, seed=16),
        "scalable-bloom": ScalableBloomFilter(START, 0.01, seed=16),
        "dynamic-cuckoo": DynamicCuckooFilter(START, 0.01, seed=16),
        "bentley-saxe-xor": BentleySaxeFilter(
            lambda keys: XorFilter.build(keys, 0.01, seed=16), buffer_capacity=START
        ),
        "taffy": TaffyCuckooFilter(3, 12, seed=16),
        "infinifilter": InfiniFilter(3, 3, seed=16),
        "aleph": AlephFilter(3, 3, seed=16),
    }
    rows = []
    for name, filt in filters.items():
        inserter = getattr(filt, "insert_autogrow", filt.insert)
        series = []
        inserted = 0
        for generation in range(DOUBLINGS + 1):
            target = START * (1 << generation)
            while inserted < min(target, len(members)):
                inserter(members[inserted])
                inserted += 1
            series.append(filt.query_cost(negatives[0]))
        rows.append([name] + series)
    print_table(
        f"F2: structures probed per query vs growth ({DOUBLINGS} doublings)",
        ["strategy"] + [f"x{1 << g}" for g in range(DOUBLINGS + 1)],
        rows,
        note="chained grows linearly, scalable logarithmically; InfiniFilter "
        "grows once voids appear; taffy/aleph stay at 1",
    )
    inf = InfiniFilter(3, 3, seed=16)
    sample = members[: START * 8]

    def grow():
        f = InfiniFilter(3, 3, seed=17)
        for key in sample:
            f.insert_autogrow(key)

    del inf
    benchmark(grow)
