"""A4 (ablation) — Rosetta's memory split across Bloom levels.

Rosetta's tuning knob: how much of the budget the bottom (full-prefix)
level gets.  Bottom-heavy splits favour point/short-range queries; even
splits help longer ranges.  Also traces the CPU-probe cost the paper
flags as Rosetta's weakness.
"""

from __future__ import annotations

from repro.rangefilters.rosetta import Rosetta
from repro.workloads.synthetic import random_key_set, random_range_queries

from _util import measured_range_fpr, print_table

KEY_BITS = 32
UNIVERSE = 1 << KEY_BITS
N = 1 << 12


def test_a4_rosetta_split(benchmark):
    keys = random_key_set(N, seed=181, universe=UNIVERSE)
    point_queries = random_range_queries(500, 1, seed=182, universe=UNIVERSE)
    range_queries = random_range_queries(300, 1024, seed=183, universe=UNIVERSE)
    rows = []
    for bottom_fraction in (0.25, 0.5, 0.75, 0.9):
        rosetta = Rosetta(
            keys,
            key_bits=KEY_BITS,
            bits_per_key=22,
            n_levels=14,
            bottom_fraction=bottom_fraction,
            seed=184,
        )
        point_fpr = measured_range_fpr(rosetta, point_queries, keys)
        rosetta.may_intersect(0, 1023)
        probes = rosetta.last_query_probes
        range_fpr = measured_range_fpr(rosetta, range_queries, keys)
        rows.append(
            [
                bottom_fraction,
                round(point_fpr, 5),
                round(range_fpr, 4),
                probes,
                round(rosetta.size_in_bits / N, 1),
            ]
        )
    print_table(
        "A4: Rosetta bottom-level budget share (22 bits/key total)",
        ["bottom fraction", "point FPR", "len-1024 FPR", "probes per 1k-range",
         "bits/key"],
        rows,
        note="bottom-heavy splits sharpen FPR at every length but multiply "
        "the doubting probes (the CPU overhead the paper flags); light-bottom "
        "splits answer in one probe and filter poorly",
    )
    rosetta = Rosetta(keys, key_bits=KEY_BITS, bits_per_key=22, n_levels=14, seed=185)
    benchmark(lambda: [rosetta.may_intersect(lo, hi) for lo, hi in point_queries[:200]])
