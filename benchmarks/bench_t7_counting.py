"""T7 — counting filters on skewed multisets (§2.6).

Paper claims checked:
  * CBF with fixed counters saturates on skew and under-counts after
    deletes (rebuilding with wider counters restores the guarantee);
  * d-left CBF uses ~2x less space than the CBF;
  * spectral Bloom and CQF handle skew space-efficiently via
    variable-length counters;
  * CQF counter cost grows O(log count) — slots used stay tiny even for a
    hugely repeated key.
"""

from __future__ import annotations

from repro.counting.counting_bloom import CountingBloomFilter
from repro.counting.cqf import CountingQuotientFilter
from repro.counting.dleft import DLeftCountingFilter
from repro.counting.spectral import SpectralBloomFilter
from repro.workloads.synthetic import zipf_multiset

from _util import print_table

N_DISTINCT = 2000
N_TOTAL = 40_000
SKEW = 1.2
EPSILON = 0.01


def test_t7_counting_filters(benchmark):
    multiset = zipf_multiset(N_DISTINCT, N_TOTAL, SKEW, seed=71)
    hottest = max(multiset.values())
    filters = {
        "cbf (4-bit)": CountingBloomFilter(N_DISTINCT, EPSILON, counter_bits=4, seed=72),
        "cbf (16-bit)": CountingBloomFilter(N_DISTINCT, EPSILON, counter_bits=16, seed=72),
        "dleft": DLeftCountingFilter.for_capacity(N_DISTINCT, EPSILON, seed=72),
        "spectral": SpectralBloomFilter(N_DISTINCT, EPSILON, seed=72),
        "cqf": CountingQuotientFilter.for_capacity(N_DISTINCT, EPSILON, seed=72),
    }
    rows = []
    for name, filt in filters.items():
        for key, mult in multiset.items():
            for _ in range(mult):
                filt.insert(key)
        undercounts = sum(1 for k, m in multiset.items() if filt.count(k) < m)
        overcounts = sum(1 for k, m in multiset.items() if filt.count(k) > m)
        saturated = getattr(filt, "saturation_events", 0)
        rows.append(
            [
                name,
                round(filt.size_in_bits / N_DISTINCT, 1),
                undercounts,
                overcounts,
                saturated,
            ]
        )
    print_table(
        f"T7: counting filters (Zipf {SKEW}: {N_DISTINCT} keys, {N_TOTAL} "
        f"inserts, hottest={hottest})",
        ["filter", "bits/distinct", "undercounts", "overcounts", "saturations"],
        rows,
        note="4-bit CBF saturates (undercounts); wider counters fix it at 4x "
        "space; spectral/cqf pay ~log(count) bits only where needed",
    )

    # CQF log-cost detail: one key inserted 100k times.
    cqf = CountingQuotientFilter.for_capacity(64, EPSILON, seed=73)
    for _ in range(100_000):
        cqf.insert("hot")
    print_table(
        "T7b: CQF variable-length counter",
        ["count", "slots used", "counter bits"],
        [[100_000, cqf.slots_used, cqf.used_bits]],
        note="O(log c) slots for c occurrences (paper: asymptotically optimal)",
    )
    sample = list(multiset)[:500]
    cqf2 = filters["cqf"]
    benchmark(lambda: [cqf2.count(k) for k in sample])
