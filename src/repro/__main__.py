"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
list
    Print the filter taxonomy (the paper's §2 feature matrix).
space --epsilon E [--n N]
    Print the space calculator: bits/key per filter family at the target
    FPR, against the information lower bound (the §2/§2.7 formulas).
monkey --levels n1,n2,... --bits-per-key B
    Print Monkey's optimal per-level FPR allocation vs uniform (§3.1).
stats [--workload B] [--format table|prometheus|json] [--selftest]
    Run a YCSB-style workload against a filtered LSM-tree on a (mildly)
    faulty device and print the telemetry registry: per-level filter FP
    rates, device read/write counters, retry backoff quantiles.
    ``--metrics-out PATH`` additionally writes the JSON snapshot;
    ``--selftest`` audits the registry and exporters (the CI gate).
trace [--n-gets N] [--fault-rate R]
    Record probe traces through ``LSMTree.get`` under fault injection
    and print the most interesting span tree.
serve-sim [--seed S] [--n-requests N] [--fault-rate R] [--budget-ms B]
          [--cache-mb M] [--cache-policy lru|tinylfu] [--negative-cache E]
          [--shards K] [--reshard-at REQ] [--reshard-kind split|merge]
          [--crash-at-step STEP] [--journal-out PATH]
          [--replicas R] [--repl-quorum Q] [--kill-replica-at REQ]
          [--heal-at REQ] [--wipe-replica]
          [--tenants N] [--tenant-zipf S] [--tenant-churn EVERY]
          [--tenant-quota RATE] [--tenant-mode router|flat]
          [--tenant-trees T]
    Run a calm → storm → recovery chaos schedule through the deadline-
    aware serving layer (docs/robustness.md) and print the per-phase
    outcome table, breaker transitions, and served-latency tail.
    ``--cache-mb`` interposes the block-cache tier above the breakers
    (docs/performance.md) and reports its hit rate; ``--negative-cache``
    memoizes authoritative ABSENT answers at the serving facade.
    ``--shards`` serves from a sharded store instead; ``--reshard-at``
    splits/merges a shard online mid-storm, ``--crash-at-step`` kills the
    simulated process at a migration step and recovers, and
    ``--journal-out`` dumps the migration journal (the reshard-chaos CI
    job's failure artifact).  ``--replicas`` serves from an R-way
    replicated fleet instead (quorum reads, hinted handoff, anti-entropy
    — docs/robustness.md); ``--kill-replica-at``/``--heal-at`` take one
    replica down and back mid-storm, ``--wipe-replica`` destroys its
    data too, and ``--crash-at-step`` also accepts handoff-replay steps
    (``handoff.replay``, ``handoff.replay:applied``,
    ``handoff.replay:batch``) for the replica-chaos CI job.
    ``--tenants`` serves a multi-tenant fleet behind the Bloofi
    filter-of-filters router instead (O(log N) probes per lookup;
    docs/robustness.md): ``--tenant-zipf`` sets the traffic skew,
    ``--tenant-churn`` deprovisions/provisions one tenant every that
    many requests mid-storm, ``--tenant-quota`` enables per-tenant
    token-bucket admission at that rate, and ``--tenant-mode flat``
    runs the O(N) fan-out control the router is benchmarked against.

(For end-to-end demonstrations, run the scripts in ``examples/``.)
"""

from __future__ import annotations

import argparse


def _cmd_list(_args) -> int:
    from repro.core.registry import FEATURE_MATRIX

    header = f"{'filter':20s} {'§':6s} {'kind':13s} features"
    print(header)
    print("-" * len(header))
    for name, f in sorted(FEATURE_MATRIX.items(), key=lambda kv: kv[1].paper_section):
        flags = [
            label
            for label, on in [
                ("inserts", f.inserts), ("deletes", f.deletes),
                ("counting", f.counting), ("expandable", f.expandable),
                ("adaptive", f.adaptive), ("values", f.values),
                ("ranges", f.ranges),
            ]
            if on
        ]
        print(f"{name:20s} {f.paper_section:6s} {f.kind:13s} {', '.join(flags)}")
    return 0


def _cmd_space(args) -> int:
    from repro.core import analysis

    eps = args.epsilon
    rows = [
        ("information lower bound", analysis.information_lower_bound_bits_per_key(eps)),
        ("ribbon", analysis.ribbon_bits_per_key(eps)),
        ("xor+", analysis.xor_plus_bits_per_key(eps)),
        ("xor", analysis.xor_bits_per_key(eps)),
        ("quotient (CQF metadata)", analysis.quotient_bits_per_key(eps)),
        ("cuckoo", analysis.cuckoo_bits_per_key(eps)),
        ("bloom", analysis.bloom_bits_per_key(eps)),
    ]
    print(f"bits per key at epsilon = {eps}:")
    for name, bits in rows:
        total = f"  ({bits * args.n / 8 / 1024:.1f} KiB for n={args.n})" if args.n else ""
        print(f"  {name:26s} {bits:7.3f}{total}")
    return 0


def _cmd_monkey(args) -> int:
    from repro.core.analysis import monkey_allocation, uniform_allocation

    levels = [int(x) for x in args.levels.split(",")]
    budget = args.bits_per_key * sum(levels)
    monkey = monkey_allocation(levels, budget)
    uniform = uniform_allocation(levels, budget)
    print(f"levels: {levels}; total budget {budget:.0f} bits "
          f"({args.bits_per_key} bits/key)")
    print(f"{'level entries':>14s} {'monkey FPR':>12s} {'uniform FPR':>12s}")
    for n, pm, pu in zip(levels, monkey, uniform):
        print(f"{n:>14d} {pm:>12.2e} {pu:>12.2e}")
    print(f"{'sum of FPRs':>14s} {sum(monkey):>12.4f} {sum(uniform):>12.4f}")
    return 0


def _build_workload_tree(args, registry):
    """A filtered LSM-tree on a faulty device, loaded and driven with the
    requested YCSB mix plus a negative-lookup sweep (so realised filter
    FP rates are measurable, not vacuously zero)."""
    from repro.apps.lsm import LSMConfig, LSMTree
    from repro.common.faults import FaultInjector, FaultyBlockDevice
    from repro.workloads.ycsb import run_workload

    injector = FaultInjector(
        seed=args.seed, transient_read={"run": args.fault_rate}
    )
    device = FaultyBlockDevice(injector=injector)
    tree = LSMTree(
        LSMConfig(
            memtable_entries=args.memtable_entries,
            compaction=args.compaction,
            retry_attempts=8,
            seed=args.seed,
        ),
        device=device,
    )
    keys = list(range(args.n_keys))
    for key in keys:
        tree.put(key, key * 7)
    result = run_workload(
        tree, args.workload, args.n_ops, key_space=keys, seed=args.seed
    )
    # Negative sweep: keys far outside the loaded space, so every device
    # read they cause is a realised filter false positive.
    for i in range(args.n_ops // 2):
        tree.get(10_000_000 + i)
    tree.publish_gauges(registry)
    return tree, result


def _add_workload_args(parser) -> None:
    parser.add_argument("--workload", choices=list("ABCDE"), default="B",
                        help="YCSB mix (default B: read-mostly)")
    parser.add_argument("--n-keys", type=int, default=2000)
    parser.add_argument("--n-ops", type=int, default=2000)
    parser.add_argument("--memtable-entries", type=int, default=128)
    parser.add_argument("--compaction", default="leveling",
                        choices=["leveling", "tiering", "lazy-leveling"])
    parser.add_argument("--fault-rate", type=float, default=0.02,
                        help="transient-read probability on run blocks")
    parser.add_argument("--seed", type=int, default=0)


def _cmd_stats(args) -> int:
    from repro import obs

    with obs.use_registry() as registry:
        if args.selftest:
            # Populate the registry with the real instrumented stack first,
            # then audit names, uniqueness, and exporter round-trips.
            args.n_keys, args.n_ops = min(args.n_keys, 600), min(args.n_ops, 300)
            _build_workload_tree(args, registry)
            failures = obs.selftest(registry)
            for failure in failures:
                print(f"selftest FAIL: {failure}")
            print(f"selftest: {len(registry.metrics())} metric families audited, "
                  f"{len(failures)} failure(s)")
            return 1 if failures else 0
        tree, result = _build_workload_tree(args, registry)
        if args.format == "prometheus":
            output = obs.to_prometheus(registry)
        elif args.format == "json":
            output = obs.to_json(registry)
        else:
            ops = " ".join(f"{op}={n}" for op, n in sorted(result.ops.items()))
            output = (
                obs.render_table(
                    registry,
                    title=f"telemetry — YCSB-{args.workload}, {args.n_ops} ops "
                          f"({ops}), {args.n_keys} keys",
                )
                + f"\nsum-of-FPRs (expected): {tree.sum_of_fprs():.4f}"
            )
        print(output)
        if args.metrics_out:
            with open(args.metrics_out, "w") as fh:
                fh.write(obs.to_json(registry))
            print(f"metrics snapshot written to {args.metrics_out}")
    return 0


def _cmd_trace(args) -> int:
    from repro import obs

    recorder = obs.TraceRecorder(capacity=4 * args.n_ops + 16)
    with obs.use_registry() as registry, obs.use_recorder(recorder):
        _build_workload_tree(args, registry)
        if not len(recorder):
            print("no spans recorded")
            return 1
        # The most interesting probe: the widest tree (most spans) —
        # under fault injection that is one with retries in it.
        roots = recorder.roots
        best = max(roots, key=lambda root: len(list(root.walk())))
        n_spans = sum(len(list(root.walk())) for root in roots)
        print(f"recorded {len(roots)} probe trees ({n_spans} spans); deepest:")
        print(obs.render_tree(best))
        retries = recorder.find("retry.attempt")
        print(f"\nspan counts: lsm.get={len(recorder.find('lsm.get'))} "
              f"filter.probe={len(recorder.find('filter.probe'))} "
              f"device.read={len(recorder.find('device.read'))} "
              f"retry.attempt={len(retries)}")
    return 0


def _cmd_serve_sim(args) -> int:
    from repro import obs
    from repro.serve import (
        BreakerState, ServeOutcome, StormPhase, build_stack, run_storm,
    )

    n = args.n_requests
    phases = (
        StormPhase("calm", n // 3),
        StormPhase("storm", n - 2 * (n // 3),
                   transient_read=args.fault_rate, slowdown=4.0,
                   spike_prob=0.05),
        StormPhase("recovery", n // 3),
    )
    if args.shards > 0:
        return _serve_sim_sharded(args, phases)
    if args.replicas > 0:
        return _serve_sim_replicated(args, phases)
    if args.tenants > 0:
        return _serve_sim_tenant(args, phases)
    with obs.use_registry():
        served, tree, _device, _injector, _latency, _clock = build_stack(
            seed=args.seed, n_keys=args.n_keys, budget=args.budget_ms / 1000.0,
            cache_mb=args.cache_mb, cache_policy=args.cache_policy,
            negative_cache_entries=args.negative_cache,
        )
        report = run_storm(served, phases, seed=args.seed, n_keys=args.n_keys)
        header = (f"{'phase':10s} {'requests':>8s} "
                  + "".join(f"{o.value:>10s}" for o in ServeOutcome)
                  + f" {'p99 (ms)':>9s}")
        print(f"storm schedule: {n} requests, fault rate {args.fault_rate}, "
              f"budget {args.budget_ms:.1f} ms, seed {args.seed}")
        print(header)
        print("-" * len(header))
        for p in report.phases:
            print(f"{p.name:10s} {p.n_requests:8d} "
                  + "".join(f"{p.outcomes[o]:10d}" for o in ServeOutcome)
                  + f" {1e3 * p.latency_quantile(0.99):9.2f}")
        print(f"\ngoodput (served/total): {report.goodput():.3f}")
        print(f"false negatives: {report.false_negatives} (must be 0)")
        print(f"breaker transitions: {report.breaker_opens} opened, "
              f"{report.breaker_closes} closed "
              f"({len(served.breaker_device.open_breakers())} not yet recovered)")
        half_open = served.breaker_device.n_transitions(BreakerState.HALF_OPEN)
        print(f"half-open probe rounds: {half_open}")
        if args.cache_mb > 0:
            cache = tree.device.cache
            print(f"block cache ({args.cache_policy}, {args.cache_mb:g} MiB): "
                  f"hit rate {cache.stats.hit_rate:.3f} "
                  f"({cache.stats.hits} hits / {cache.stats.requests} reads), "
                  f"{cache.stats.evictions} evictions, "
                  f"{cache.stats.invalidations} invalidations")
        if served.negative_cache is not None:
            neg = served.negative_cache
            print(f"negative-lookup cache: {neg.hits} hits, {neg.misses} misses, "
                  f"{neg.epoch_flushes} epoch flushes")
    return 0 if report.false_negatives == 0 else 1


def _serve_sim_sharded(args, phases) -> int:
    """serve-sim over a sharded stack, with an optional live migration.

    Exit status is non-zero on any false negative *or* a migration that
    failed to reach DONE — the two invariants the reshard chaos CI job
    gates on.
    """
    import json

    from repro import obs
    from repro.serve import ServeOutcome, run_reshard_storm

    with obs.use_registry():
        storm, reshard, coordinator = run_reshard_storm(
            seed=args.seed,
            n_keys=args.n_keys,
            n_shards=args.shards,
            phases=phases,
            reshard_at=args.reshard_at,
            kind=args.reshard_kind,
            crash_at_step=args.crash_at_step,
            budget=args.budget_ms / 1000.0,
        )
        header = (f"{'phase':10s} {'requests':>8s} "
                  + "".join(f"{o.value:>10s}" for o in ServeOutcome)
                  + f" {'p99 (ms)':>9s}")
        print(f"sharded storm: {storm.n_requests} requests over {args.shards} "
              f"shards, fault rate {args.fault_rate}, seed {args.seed}")
        print(header)
        print("-" * len(header))
        for p in storm.phases:
            print(f"{p.name:10s} {p.n_requests:8d} "
                  + "".join(f"{p.outcomes[o]:10d}" for o in ServeOutcome)
                  + f" {1e3 * p.latency_quantile(0.99):9.2f}")
        print(f"\ngoodput (served/total): {storm.goodput():.3f}")
        print(f"false negatives: {storm.false_negatives} (must be 0)")
        if args.reshard_at > 0:
            print(f"\nmigration ({args.reshard_kind} at request "
                  f"{args.reshard_at}"
                  + (f", crash armed at {args.crash_at_step!r}"
                     if args.crash_at_step else "")
                  + "):")
            for t, label in reshard.events:
                print(f"  t={1e3 * t:9.2f} ms  {label}")
            print(f"  completed: {reshard.completed}  "
                  f"crashes: {reshard.crashes}  "
                  f"recoveries: {reshard.recoveries}")
            print(f"  keys moved/verified/retired: {reshard.keys_moved}/"
                  f"{reshard.keys_verified}/{reshard.keys_retired} "
                  f"(repairs: {reshard.repairs})")
            print(f"  double-read amplification: "
                  f"{reshard.double_read_amplification:.3f} "
                  f"({reshard.double_reads} double reads)")
            print(f"  migration batches shed: {reshard.pump_sheds}")
            print(f"  routing epoch: {reshard.final_epoch}, shards: "
                  f"{list(reshard.final_shards)}")
        if args.journal_out:
            doc = {
                "journal": coordinator.journal_records(),
                "report": reshard.as_dict(),
                "seed": args.seed,
                "crash_at_step": args.crash_at_step,
            }
            with open(args.journal_out, "w") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
            print(f"\nmigration journal written to {args.journal_out}")
    ok = storm.false_negatives == 0 and (
        args.reshard_at <= 0 or reshard.completed
    )
    return 0 if ok else 1


def _serve_sim_replicated(args, phases) -> int:
    """serve-sim over a replicated fleet, with an optional kill/heal.

    Exit status is non-zero on any false negative, an unconverged fleet,
    or leftover handoff backlog — the invariants the replica-chaos CI
    job gates on.
    """
    import json

    from repro import obs
    from repro.serve import ServeOutcome, run_replica_storm

    with obs.use_registry():
        storm, rep, store, repairer = run_replica_storm(
            seed=args.seed,
            n_keys=args.n_keys,
            n_nodes=args.replicas,
            read_quorum=args.repl_quorum or None,
            phases=phases,
            kill_at=args.kill_replica_at,
            heal_at=args.heal_at,
            wipe=args.wipe_replica,
            crash_at_step=args.crash_at_step,
            write_fraction=0.05,
            budget=args.budget_ms / 1000.0,
        )
        header = (f"{'phase':10s} {'requests':>8s} "
                  + "".join(f"{o.value:>10s}" for o in ServeOutcome)
                  + f" {'p99 (ms)':>9s}")
        print(f"replicated storm: {storm.n_requests} requests over "
              f"{args.replicas} replicas (R={store.replication}, "
              f"read quorum {store.read_quorum}), "
              f"fault rate {args.fault_rate}, seed {args.seed}")
        print(header)
        print("-" * len(header))
        for p in storm.phases:
            print(f"{p.name:10s} {p.n_requests:8d} "
                  + "".join(f"{p.outcomes[o]:10d}" for o in ServeOutcome)
                  + f" {1e3 * p.latency_quantile(0.99):9.2f}")
        print(f"\ngoodput (served/total): {storm.goodput():.3f}")
        print(f"false negatives: {storm.false_negatives} (must be 0)")
        if args.kill_replica_at > 0:
            print(f"\nreplica lifecycle (kill at request "
                  f"{args.kill_replica_at}"
                  + (", wiped" if args.wipe_replica else "")
                  + (f", heal at {args.heal_at}" if args.heal_at else "")
                  + (f", crash armed at {args.crash_at_step!r}"
                     if args.crash_at_step else "")
                  + "):")
            for t, label in rep.events:
                print(f"  t={1e3 * t:9.2f} ms  {label}")
            print(f"  crashes: {rep.crashes}  recoveries: {rep.recoveries}")
        print(f"hints journaled/replayed/dropped: {rep.hints_journaled}/"
              f"{rep.hints_replayed}/{rep.hints_dropped} "
              f"(backlog: {rep.backlog})")
        print(f"anti-entropy: {rep.repairs} records repaired "
              f"({rep.repair_bytes} bytes), {rep.buckets_checked} buckets "
              f"checked, {rep.repair_sheds} pumps shed")
        print(f"digests converged: {rep.converged} (must be true)")
        if args.journal_out:
            doc = {
                "report": rep.as_dict(),
                "seed": args.seed,
                "replicas": args.replicas,
                "crash_at_step": args.crash_at_step,
            }
            with open(args.journal_out, "w") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
            print(f"\nreplica report written to {args.journal_out}")
    ok = (storm.false_negatives == 0 and rep.converged
          and rep.backlog == 0 and rep.hints_dropped == 0)
    return 0 if ok else 1


def _serve_sim_tenant(args, phases) -> int:
    """serve-sim over the multi-tenant Bloofi fleet.

    Exit status is non-zero on any false negative (mid-storm or in the
    post-drain ground-truth audit) or on a tree invariant failure — the
    conditions the tenant-chaos CI job gates on.
    """
    from repro import obs
    from repro.serve import ServeOutcome, TenantQuota, run_tenant_storm

    quota = (
        TenantQuota(rate=args.tenant_quota, burst=max(1.0, args.tenant_quota / 10))
        if args.tenant_quota > 0 else None
    )
    with obs.use_registry():
        storm, rep, store = run_tenant_storm(
            seed=args.seed,
            n_tenants=args.tenants,
            n_trees=args.tenant_trees,
            mode=args.tenant_mode,
            phases=phases,
            zipf_skew=args.tenant_zipf,
            churn_every=args.tenant_churn,
            quota=quota,
            budget=args.budget_ms / 1000.0,
        )
        header = (f"{'phase':10s} {'requests':>8s} "
                  + "".join(f"{o.value:>10s}" for o in ServeOutcome)
                  + f" {'p99 (ms)':>9s}")
        print(f"tenant storm: {storm.n_requests} requests over "
              f"{rep.n_tenants_start} tenants ({args.tenant_trees} trees, "
              f"mode {args.tenant_mode}, zipf {args.tenant_zipf}), "
              f"fault rate {args.fault_rate}, seed {args.seed}")
        print(header)
        print("-" * len(header))
        for p in storm.phases:
            print(f"{p.name:10s} {p.n_requests:8d} "
                  + "".join(f"{p.outcomes[o]:10d}" for o in ServeOutcome)
                  + f" {1e3 * p.latency_quantile(0.99):9.2f}")
        print(f"\ngoodput (served/total): {storm.goodput():.3f}")
        print(f"false negatives: {storm.false_negatives} (must be 0)")
        print(f"mean probes per lookup: {rep.mean_probes:.1f} "
              f"(flat fan-out would be >= {rep.n_tenants_final})")
        print(f"fleet: {rep.n_tenants_final} tenants, max tree height "
              f"{rep.max_height}, {rep.tenants_added} provisioned / "
              f"{rep.tenants_removed} deprovisioned mid-storm")
        if quota is not None:
            print(f"quota sheds: {rep.quota_sheds} "
                  f"(rate {args.tenant_quota:g}/s per tenant)")
        print(f"staleness: {rep.stale_fraction:.4f} of interior bits "
              f"pre-re-OR, {rep.stale_bits_cleared} cleared, "
              f"{rep.reor_runs} re-OR runs")
        print(f"post-drain audit: {rep.audited_keys} keys checked, "
              f"{rep.audit_false_negatives} lost (must be 0), "
              f"{rep.invariant_failures} invariant failures (must be 0)")
    ok = (storm.false_negatives == 0 and rep.audit_false_negatives == 0
          and rep.invariant_failures == 0)
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="print the filter taxonomy")

    p_space = sub.add_parser("space", help="space calculator")
    p_space.add_argument("--epsilon", type=float, default=0.01)
    p_space.add_argument("--n", type=int, default=0, help="optional key count")

    p_monkey = sub.add_parser("monkey", help="Monkey FPR allocation")
    p_monkey.add_argument("--levels", type=str, default="100,1000,10000,100000")
    p_monkey.add_argument("--bits-per-key", type=float, default=8.0)

    p_stats = sub.add_parser("stats", help="run a workload, print telemetry")
    _add_workload_args(p_stats)
    p_stats.add_argument("--format", choices=["table", "prometheus", "json"],
                         default="table")
    p_stats.add_argument("--metrics-out", type=str, default=None,
                         help="also write the JSON snapshot to this path")
    p_stats.add_argument("--selftest", action="store_true",
                         help="audit registry + exporters and exit (CI gate)")

    p_trace = sub.add_parser("trace", help="record and print a probe trace")
    _add_workload_args(p_trace)

    p_serve = sub.add_parser(
        "serve-sim", help="chaos storm through the deadline-aware serving layer"
    )
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--n-requests", type=int, default=900)
    p_serve.add_argument("--n-keys", type=int, default=2000)
    p_serve.add_argument("--fault-rate", type=float, default=0.6,
                         help="transient-read probability during the storm phase")
    p_serve.add_argument("--budget-ms", type=float, default=50.0,
                         help="per-request deadline budget in simulated ms")
    p_serve.add_argument("--cache-mb", type=float, default=0.0,
                         help="block-cache size in simulated MiB "
                              "(0 disables the cache tier)")
    p_serve.add_argument("--cache-policy", choices=["lru", "tinylfu"],
                         default="lru",
                         help="block-cache eviction/admission policy")
    p_serve.add_argument("--negative-cache", type=int, default=0,
                         help="entries in the served negative-lookup cache "
                              "(0 disables it)")
    p_serve.add_argument("--shards", type=int, default=0,
                         help="serve from a sharded store with this many "
                              "shards (0 = the classic single-tree stack)")
    p_serve.add_argument("--reshard-at", type=int, default=0,
                         help="plan an online migration at this request "
                              "number (0 disables; requires --shards)")
    p_serve.add_argument("--reshard-kind", choices=["split", "merge"],
                         default="split",
                         help="split the hottest shard or merge the last "
                              "shard away")
    p_serve.add_argument("--crash-at-step", type=str, default=None,
                         help="arm a one-shot simulated crash at this "
                              "migration step (e.g. backfill, cutover, "
                              "retire; see repro.serve.reshard)")
    p_serve.add_argument("--journal-out", type=str, default=None,
                         help="write the migration journal + report as "
                              "JSON to this path (CI failure artifact)")
    p_serve.add_argument("--replicas", type=int, default=0,
                         help="serve from an R-way replicated fleet with "
                              "this many nodes (0 = the classic stack; "
                              "mutually exclusive with --shards)")
    p_serve.add_argument("--repl-quorum", type=int, default=0,
                         help="read quorum for ABSENT answers "
                              "(0 = majority of the replication factor)")
    p_serve.add_argument("--kill-replica-at", type=int, default=0,
                         help="kill one replica at this request number "
                              "(0 disables; requires --replicas)")
    p_serve.add_argument("--heal-at", type=int, default=0,
                         help="heal the killed replica at this request "
                              "number (0 = never during the storm)")
    p_serve.add_argument("--tenants", type=int, default=0,
                         help="serve a multi-tenant fleet behind the Bloofi "
                              "router (0 = the classic single-tree stack; "
                              "mutually exclusive with --shards/--replicas)")
    p_serve.add_argument("--tenant-zipf", type=float, default=1.1,
                         help="Zipf skew of per-tenant traffic "
                              "(0 = uniform; requires --tenants)")
    p_serve.add_argument("--tenant-churn", type=int, default=0,
                         help="deprovision+provision one tenant every N "
                              "requests mid-storm (0 disables; requires "
                              "--tenants)")
    p_serve.add_argument("--tenant-quota", type=float, default=0.0,
                         help="per-tenant token-bucket admission rate in "
                              "requests/s (0 disables; requires --tenants)")
    p_serve.add_argument("--tenant-mode", choices=["router", "flat"],
                         default="router",
                         help="Bloofi router (O(log N) probes) or the flat "
                              "fan-out control (O(N) probes)")
    p_serve.add_argument("--tenant-trees", type=int, default=4,
                         help="number of Bloofi trees the fleet is "
                              "consistent-hashed over")
    p_serve.add_argument("--wipe-replica", action="store_true",
                         help="destroy the killed replica's data, forcing "
                              "anti-entropy to rebuild it")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "space":
        if not 0 < args.epsilon < 1:
            parser.error("--epsilon must be in (0, 1)")
        return _cmd_space(args)
    if args.command == "monkey":
        return _cmd_monkey(args)
    if args.command == "stats":
        if not 0 <= args.fault_rate < 1:
            parser.error("--fault-rate must be in [0, 1)")
        return _cmd_stats(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "serve-sim":
        if not 0 <= args.fault_rate <= 1:
            parser.error("--fault-rate must be in [0, 1]")
        if args.budget_ms <= 0:
            parser.error("--budget-ms must be positive")
        if args.cache_mb < 0:
            parser.error("--cache-mb must be non-negative")
        if args.negative_cache < 0:
            parser.error("--negative-cache must be non-negative")
        if args.shards < 0:
            parser.error("--shards must be non-negative")
        if args.replicas < 0:
            parser.error("--replicas must be non-negative")
        if args.replicas > 0 and args.shards > 0:
            parser.error("--replicas and --shards are mutually exclusive")
        if args.tenants < 0:
            parser.error("--tenants must be non-negative")
        if args.tenants > 0 and (args.shards > 0 or args.replicas > 0):
            parser.error("--tenants is mutually exclusive with "
                         "--shards/--replicas")
        if args.tenant_churn > 0 and args.tenants <= 0:
            parser.error("--tenant-churn requires --tenants")
        if args.tenant_quota > 0 and args.tenants <= 0:
            parser.error("--tenant-quota requires --tenants")
        if args.tenant_trees < 1:
            parser.error("--tenant-trees must be positive")
        if args.reshard_at > 0 and args.shards <= 0:
            parser.error("--reshard-at requires --shards")
        if args.kill_replica_at > 0 and args.replicas <= 0:
            parser.error("--kill-replica-at requires --replicas")
        if args.heal_at > 0 and args.kill_replica_at <= 0:
            parser.error("--heal-at requires --kill-replica-at")
        if args.heal_at > 0 and args.heal_at <= args.kill_replica_at:
            parser.error("--heal-at must come after --kill-replica-at")
        if args.crash_at_step and args.reshard_at <= 0 \
                and args.kill_replica_at <= 0:
            parser.error("--crash-at-step requires --reshard-at or "
                         "--kill-replica-at")
        return _cmd_serve_sim(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
