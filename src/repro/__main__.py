"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
list
    Print the filter taxonomy (the paper's §2 feature matrix).
space --epsilon E [--n N]
    Print the space calculator: bits/key per filter family at the target
    FPR, against the information lower bound (the §2/§2.7 formulas).
monkey --levels n1,n2,... --bits-per-key B
    Print Monkey's optimal per-level FPR allocation vs uniform (§3.1).

(For end-to-end demonstrations, run the scripts in ``examples/``.)
"""

from __future__ import annotations

import argparse


def _cmd_list(_args) -> int:
    from repro.core.registry import FEATURE_MATRIX

    header = f"{'filter':20s} {'§':6s} {'kind':13s} features"
    print(header)
    print("-" * len(header))
    for name, f in sorted(FEATURE_MATRIX.items(), key=lambda kv: kv[1].paper_section):
        flags = [
            label
            for label, on in [
                ("inserts", f.inserts), ("deletes", f.deletes),
                ("counting", f.counting), ("expandable", f.expandable),
                ("adaptive", f.adaptive), ("values", f.values),
                ("ranges", f.ranges),
            ]
            if on
        ]
        print(f"{name:20s} {f.paper_section:6s} {f.kind:13s} {', '.join(flags)}")
    return 0


def _cmd_space(args) -> int:
    from repro.core import analysis

    eps = args.epsilon
    rows = [
        ("information lower bound", analysis.information_lower_bound_bits_per_key(eps)),
        ("ribbon", analysis.ribbon_bits_per_key(eps)),
        ("xor+", analysis.xor_plus_bits_per_key(eps)),
        ("xor", analysis.xor_bits_per_key(eps)),
        ("quotient (CQF metadata)", analysis.quotient_bits_per_key(eps)),
        ("cuckoo", analysis.cuckoo_bits_per_key(eps)),
        ("bloom", analysis.bloom_bits_per_key(eps)),
    ]
    print(f"bits per key at epsilon = {eps}:")
    for name, bits in rows:
        total = f"  ({bits * args.n / 8 / 1024:.1f} KiB for n={args.n})" if args.n else ""
        print(f"  {name:26s} {bits:7.3f}{total}")
    return 0


def _cmd_monkey(args) -> int:
    from repro.core.analysis import monkey_allocation, uniform_allocation

    levels = [int(x) for x in args.levels.split(",")]
    budget = args.bits_per_key * sum(levels)
    monkey = monkey_allocation(levels, budget)
    uniform = uniform_allocation(levels, budget)
    print(f"levels: {levels}; total budget {budget:.0f} bits "
          f"({args.bits_per_key} bits/key)")
    print(f"{'level entries':>14s} {'monkey FPR':>12s} {'uniform FPR':>12s}")
    for n, pm, pu in zip(levels, monkey, uniform):
        print(f"{n:>14d} {pm:>12.2e} {pu:>12.2e}")
    print(f"{'sum of FPRs':>14s} {sum(monkey):>12.4f} {sum(uniform):>12.4f}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="print the filter taxonomy")

    p_space = sub.add_parser("space", help="space calculator")
    p_space.add_argument("--epsilon", type=float, default=0.01)
    p_space.add_argument("--n", type=int, default=0, help="optional key count")

    p_monkey = sub.add_parser("monkey", help="Monkey FPR allocation")
    p_monkey.add_argument("--levels", type=str, default="100,1000,10000,100000")
    p_monkey.add_argument("--bits-per-key", type=float, default=8.0)

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "space":
        if not 0 < args.epsilon < 1:
            parser.error("--epsilon must be in (0, 1)")
        return _cmd_space(args)
    if args.command == "monkey":
        return _cmd_monkey(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
