"""Learned filter: score model + backup filter (the Kraska et al. sandwich).

Trains a density model over the integer key space (a histogram classifier —
deliberately simple, per §2.8's "train a classifier to predict the
likelihood of each potential key being queried and the probability of its
existence"): bins where members concentrate get high scores.  Keys the
model confidently predicts positive need no filter storage at all; the
remaining members go into a backup Bloom filter so false negatives are
impossible.

The win materialises when keys are *clustered* (real-world IDs, timestamps,
genomic offsets): the model predicts whole clusters positive for the cost
of a few histogram counters, and the backup filter shrinks accordingly.
For uniformly scattered keys the model learns nothing and the design
gracefully degrades to a plain Bloom filter — both regimes are covered by
experiment T11.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.core.interfaces import Filter
from repro.filters.bloom import BloomFilter


class LearnedFilter(Filter):
    """Histogram-score model sandwiched with a backup Bloom filter."""

    def __init__(
        self,
        keys: Iterable[int],
        *,
        universe: int,
        epsilon: float = 0.01,
        n_bins: int = 1024,
        threshold: float = 0.5,
        sample_negatives: Iterable[int] | None = None,
        seed: int = 0,
    ):
        key_list = [int(k) for k in keys]
        if any(k < 0 or k >= universe for k in key_list):
            raise ValueError("key out of universe range")
        if not 0 < threshold <= 1:
            raise ValueError("threshold must be in (0, 1]")
        self.universe = universe
        self.n_bins = n_bins
        self._n = len(key_list)

        # Positive density per bin; negatives (sampled or assumed uniform)
        # give the contrast.
        pos_counts = np.bincount(
            [self._bin(k) for k in key_list], minlength=n_bins
        ).astype(np.float64)
        if sample_negatives is not None:
            neg_list = [int(k) for k in sample_negatives]
            neg_counts = np.bincount(
                [self._bin(k) for k in neg_list], minlength=n_bins
            ).astype(np.float64)
        else:
            # No query sample: assume uniform negative traffic and demand a
            # 4× density contrast before trusting the model, so uniformly
            # scattered keys degrade to a plain backup filter instead of
            # predicting everything positive.
            neg_counts = np.full(n_bins, max(1.0, 4.0 * self._n / n_bins))
        with np.errstate(divide="ignore", invalid="ignore"):
            score = pos_counts / (pos_counts + neg_counts)
        self._scores = np.nan_to_num(score)
        self._predicted = self._scores >= threshold

        # Members the model does NOT confidently cover go into the backup.
        uncovered = [k for k in key_list if not self._predicted[self._bin(k)]]
        self._backup = BloomFilter(max(1, len(uncovered)), epsilon, seed=seed ^ 0x1E)
        for key in uncovered:
            self._backup.insert(key)
        self._n_uncovered = len(uncovered)

    def _bin(self, key: int) -> int:
        return min(self.n_bins - 1, key * self.n_bins // self.universe)

    def may_contain(self, key: int) -> bool:
        if not 0 <= key < self.universe:
            return False
        if self._predicted[self._bin(key)]:
            return True
        return self._backup.may_contain(key)

    def __len__(self) -> int:
        return self._n

    @property
    def model_coverage(self) -> float:
        """Fraction of members answered by the model alone."""
        return 1 - self._n_uncovered / self._n if self._n else 0.0

    @property
    def size_in_bits(self) -> int:
        """One predicted bit per bin + the backup filter."""
        return self.n_bins + self._backup.size_in_bits
