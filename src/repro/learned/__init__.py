"""Query-distribution-aware filters (§2.8).

* :class:`StackedFilter` — exploits a sample of frequently queried
  *negative* keys: they are inserted into a second filter layer, so
  repeat queries for them die there instead of costing false positives
  (Deeds, Hentschel & Idreos 2020).
* :class:`LearnedFilter` — trains a score model over the key space and
  backs it with a small exact filter for low-scoring members (the
  learned-index lineage of Kraska et al.).
"""

from repro.learned.classifier import LearnedFilter
from repro.learned.stacked import StackedFilter

__all__ = ["LearnedFilter", "StackedFilter"]
