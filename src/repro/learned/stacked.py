"""Stacked filters (Deeds, Hentschel & Idreos 2020, PVLDB).

Given the key set *and* a sample of frequently queried non-keys, build a
stack of alternating filters:

* L1 holds the keys.  A query that misses L1 is definitely negative.
* L2 holds the known hot negatives *that pass L1*.  A query that hits L1
  and hits L2 is (almost certainly) one of the hot negatives → answer no.
* L3 holds the keys that pass L2, rescuing true members that collided with
  the hot-negative layer (no false negatives, ever).

Hot negatives therefore false-positive only with probability ε1·ε3 —
"exponentially decrease the false positive rate when querying for them"
(§2.8) as layers are added.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.interfaces import Filter, Key
from repro.filters.bloom import BloomFilter


class StackedFilter(Filter):
    """Stacked Bloom filter of configurable depth.

    Layers alternate: odd layers hold (surviving) member keys, even layers
    hold (surviving) hot negatives.  A query walks down until some layer
    rejects it: rejection at an odd layer means "not a member"; at an even
    layer means "not a known hot negative" → accept.  Each added layer
    pair multiplies the hot-negative FPR by another ε — the paper's
    "exponentially decrease the false positive rate when querying for
    them".  Three layers (the paper's canonical configuration) is the
    default.
    """

    def __init__(
        self,
        keys: Iterable[Key],
        hot_negatives: Iterable[Key],
        *,
        epsilon: float = 0.01,
        negative_epsilon: float = 0.01,
        n_layers: int = 3,
        seed: int = 0,
    ):
        if n_layers < 1 or n_layers % 2 == 0:
            raise ValueError("n_layers must be odd (key layers close the stack)")
        key_list = list(keys)
        hot = list(hot_negatives)
        self._n = len(key_list)
        overlap = set(key_list) & set(hot)
        if overlap:
            raise ValueError(f"hot negatives contain member keys: {sorted(overlap)[:3]}")

        self._layers: list[BloomFilter] = []
        survivors_pos = key_list
        survivors_neg = hot
        for depth in range(n_layers):
            positive_layer = depth % 2 == 0
            population = survivors_pos if positive_layer else survivors_neg
            if not population:
                break
            eps = epsilon if positive_layer else negative_epsilon
            layer = BloomFilter(max(1, len(population)), eps, seed=seed ^ (depth + 1))
            for key in population:
                layer.insert(key)
            self._layers.append(layer)
            # Only items the new layer wrongly admits survive to the next.
            if positive_layer:
                survivors_neg = [k for k in survivors_neg if layer.may_contain(k)]
            else:
                survivors_pos = [k for k in survivors_pos if layer.may_contain(k)]

    def may_contain(self, key: Key) -> bool:
        for depth, layer in enumerate(self._layers):
            if not layer.may_contain(key):
                # Rejected by a key layer → definitely absent; rejected by
                # a negative layer → not a known hot negative → present.
                return depth % 2 == 1
        # Ran off the stack: the last layer's polarity decides.
        return len(self._layers) % 2 == 1

    def __len__(self) -> int:
        return self._n

    @property
    def size_in_bits(self) -> int:
        return sum(layer.size_in_bits for layer in self._layers)

    @property
    def layer_sizes(self) -> tuple[int, ...]:
        sizes = tuple(len(layer) for layer in self._layers)
        return sizes + (0,) * (3 - len(sizes)) if len(sizes) < 3 else sizes

    @property
    def n_layers_built(self) -> int:
        return len(self._layers)
