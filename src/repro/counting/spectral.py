"""Spectral Bloom filter (Cohen & Matias 2003, SIGMOD).

A counting Bloom filter whose counters are *variable-length*: hot keys get
wide counters, cold keys narrow ones, so skewed multisets cost far less
space than fixed-width counters (§2.6).  Queries use the minimum-selection
estimate; we also implement the paper's *minimal increase* optimisation,
which only bumps the counters currently at the minimum — reducing
over-counts (but making deletes unsafe, so it is optional).

Space accounting: counters are stored as Python ints for speed, and
``size_in_bits`` charges the Elias-gamma cost of each nonzero counter plus
the base bit array — the paper's "string of counters" layout.
"""

from __future__ import annotations

import math

from repro.common.hashing import hash_pair
from repro.core.analysis import bloom_optimal_hashes
from repro.core.errors import DeletionError
from repro.core.interfaces import CountingFilter, Key
from repro.common.varint import elias_gamma_bits


class SpectralBloomFilter(CountingFilter):
    """Variable-length-counter Bloom filter with minimum selection."""

    def __init__(
        self,
        capacity: int,
        epsilon: float,
        *,
        minimal_increase: bool = False,
        seed: int = 0,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        self.capacity = capacity
        self.epsilon = epsilon
        self.minimal_increase = minimal_increase
        self.seed = seed
        bits_per_key = math.log2(math.e) * math.log2(1 / epsilon)
        self._m = max(64, int(math.ceil(capacity * bits_per_key)))
        self._k = bloom_optimal_hashes(bits_per_key)
        self._counters: dict[int, int] = {}  # sparse: position -> count
        self._n = 0

    @property
    def supports_safe_deletes(self) -> bool:
        """Minimal increase loses the over-count invariant deletes rely on."""
        return not self.minimal_increase

    def _positions(self, key: Key) -> list[int]:
        h1, h2 = hash_pair(key, self.seed)
        h2 |= 1
        return [(h1 + i * h2) % self._m for i in range(self._k)]

    def insert(self, key: Key) -> None:
        positions = self._positions(key)
        if self.minimal_increase:
            low = min(self._counters.get(pos, 0) for pos in positions)
            for pos in positions:
                if self._counters.get(pos, 0) == low:
                    self._counters[pos] = low + 1
        else:
            for pos in positions:
                self._counters[pos] = self._counters.get(pos, 0) + 1
        self._n += 1

    def delete(self, key: Key) -> None:
        if not self.supports_safe_deletes:
            raise DeletionError(
                "minimal-increase spectral Bloom filters cannot delete safely"
            )
        positions = self._positions(key)
        if any(self._counters.get(pos, 0) == 0 for pos in positions):
            raise DeletionError("delete of a key that was never inserted")
        for pos in positions:
            value = self._counters[pos] - 1
            if value:
                self._counters[pos] = value
            else:
                del self._counters[pos]
        self._n -= 1

    def count(self, key: Key) -> int:
        return min(self._counters.get(pos, 0) for pos in self._positions(key))

    def __len__(self) -> int:
        return self._n

    @property
    def size_in_bits(self) -> int:
        """Base bit array + gamma-coded counter stream (the SBF layout)."""
        counter_bits = sum(
            elias_gamma_bits(count) for count in self._counters.values()
        )
        return self._m + counter_bits

    def expected_fpr(self) -> float:
        fill = len(self._counters) / self._m
        return fill**self._k
