"""The counting quotient filter's physical counter encoding (Pandey et al.).

The CQF embeds variable-length counters *inside* the remainder slots of a
run, exploiting the run's sort order: remainders appear in ascending
order, so any slot *smaller* than its predecessor cannot be a remainder —
it must be a counter digit.  The encoding of remainder x with count c:

* c = 1 →  ``x``
* c = 2 →  ``x x``  (a doubled remainder)
* c ≥ 3 →  ``x  d₁ … d_k  x`` where the digits encode c−3 in base x
  (all digits < x, so the first digit breaks sort order and the group is
  self-delimiting; x = 1 degrades to unary zeros).
* x = 0 → plain repetition ``0 … 0`` (the paper's full scheme has a
  further escape here; repetition keeps the codec unambiguous and only
  affects the 2⁻ʳ of keys whose remainder is exactly 0 — same
  asymptotics for the space experiments).

``encode_run``/``decode_run`` are exact inverses on any run; the
behavioural :class:`~repro.counting.cqf.CountingQuotientFilter` charges
the matching slot arithmetic via
:func:`repro.common.varint.cqf_counter_bits` while keeping counters in a
side map for Python-speed reasons (see DESIGN.md).
"""

from __future__ import annotations


def encode_run(counts: dict[int, int], remainder_bits: int) -> list[int]:
    """Encode a run: {remainder: count} → slot sequence."""
    if remainder_bits < 2:
        raise ValueError("the counter escape needs at least 2 remainder bits")
    slots: list[int] = []
    limit = 1 << remainder_bits
    for remainder in sorted(counts):
        count = counts[remainder]
        if not 0 <= remainder < limit:
            raise ValueError("remainder out of range")
        if count < 1:
            raise ValueError("count must be positive")
        if remainder == 0:
            slots.extend([0] * count)
        elif count == 1:
            slots.append(remainder)
        elif count == 2:
            slots.extend((remainder, remainder))
        else:
            slots.append(remainder)
            slots.extend(_encode_digits(count - 3, remainder))
            slots.append(remainder)
    return slots


def decode_run(slots: list[int], remainder_bits: int) -> dict[int, int]:
    """Decode a slot sequence back to {remainder: count}."""
    if remainder_bits < 2:
        raise ValueError("the counter escape needs at least 2 remainder bits")
    counts: dict[int, int] = {}
    i = 0
    n = len(slots)
    while i < n:
        remainder = slots[i]
        if remainder == 0:
            j = i
            while j < n and slots[j] == 0:
                j += 1
            counts[0] = counts.get(0, 0) + (j - i)
            i = j
        elif i + 1 < n and slots[i + 1] == remainder:
            counts[remainder] = counts.get(remainder, 0) + 2
            i += 2
        elif i + 1 < n and slots[i + 1] < remainder:
            # Sort-order violation: counter digits up to the closing copy.
            j = i + 1
            digits = []
            while j < n and slots[j] != remainder:
                if slots[j] >= remainder:
                    raise ValueError("malformed counter group")
                digits.append(slots[j])
                j += 1
            if j >= n:
                raise ValueError("truncated counter group")
            counts[remainder] = counts.get(remainder, 0) + 3 + _decode_digits(
                digits, remainder
            )
            i = j + 1
        else:
            counts[remainder] = counts.get(remainder, 0) + 1
            i += 1
    return counts


def run_slot_cost(counts: dict[int, int], remainder_bits: int) -> int:
    """Slots the encoded run occupies (O(log c) per counted remainder)."""
    return len(encode_run(counts, remainder_bits))


def _encode_digits(value: int, remainder: int) -> list[int]:
    """Encode value ≥ 0 in digits all strictly below *remainder*."""
    if remainder == 1:
        return [0] * (value + 1)  # unary: the only digit below 1 is 0
    digits = []
    if value == 0:
        return [0]
    while value:
        digits.append(value % remainder)
        value //= remainder
    return digits[::-1]


def _decode_digits(digits: list[int], remainder: int) -> int:
    if remainder == 1:
        return len(digits) - 1
    value = 0
    for digit in digits:
        value = value * remainder + digit
    return value
