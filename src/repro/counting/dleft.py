"""d-left counting Bloom filter (Bonomi et al. 2006, ESA).

Splits the table into *d* subtables; each key is a (fingerprint, counter)
cell placed in the least-loaded of its d candidate buckets.  Compared to a
counting Bloom filter it saves roughly 2× space at equal error (one cell
per key instead of k touched counters) and has better locality — but it is
not resizable, and its FPR depends on the bucket geometry (§2.6).
"""

from __future__ import annotations

import math

from repro.common.hashing import fingerprint, hash_to_range
from repro.core.errors import DeletionError, FilterFullError
from repro.core.interfaces import CountingFilter, Key

DEFAULT_D = 4
DEFAULT_BUCKET_CELLS = 8
_COUNTER_BITS = 4


class DLeftCountingFilter(CountingFilter):
    """d-left hashed table of (fingerprint, counter) cells."""

    def __init__(
        self,
        n_buckets_per_table: int,
        fingerprint_bits: int,
        *,
        d: int = DEFAULT_D,
        bucket_cells: int = DEFAULT_BUCKET_CELLS,
        seed: int = 0,
    ):
        if n_buckets_per_table < 1:
            raise ValueError("n_buckets_per_table must be positive")
        if not 1 <= fingerprint_bits <= 56:
            raise ValueError("fingerprint_bits must be in [1, 56]")
        if d < 2:
            raise ValueError("d-left hashing needs d >= 2")
        self.d = d
        self.n_buckets_per_table = n_buckets_per_table
        self.bucket_cells = bucket_cells
        self.fingerprint_bits = fingerprint_bits
        self.seed = seed
        # tables[t][b] = {fingerprint: count}
        self._tables: list[list[dict[int, int]]] = [
            [{} for _ in range(n_buckets_per_table)] for _ in range(d)
        ]
        self._n = 0

    def _candidates(self, key: Key) -> list[tuple[int, int, int]]:
        """(table, bucket, fingerprint) candidates, one per subtable."""
        out = []
        for t in range(self.d):
            bucket = hash_to_range(key, self.n_buckets_per_table, self.seed ^ (t + 1))
            fp = fingerprint(key, self.fingerprint_bits, self.seed ^ 0xD1F7 ^ t)
            out.append((t, bucket, fp))
        return out

    def insert(self, key: Key) -> None:
        candidates = self._candidates(key)
        # Existing cell? bump its counter (in the leftmost table that has it).
        for t, bucket, fp in candidates:
            cell = self._tables[t][bucket]
            if fp in cell:
                cell[fp] += 1
                self._n += 1
                return
        # New cell: d-left rule — least loaded bucket, ties to the left.
        best = None
        for t, bucket, fp in candidates:
            load = len(self._tables[t][bucket])
            if best is None or load < best[0]:
                best = (load, t, bucket, fp)
        load, t, bucket, fp = best
        if load >= self.bucket_cells:
            raise FilterFullError("d-left filter bucket overflow (not resizable)")
        self._tables[t][bucket][fp] = 1
        self._n += 1

    def count(self, key: Key) -> int:
        for t, bucket, fp in self._candidates(key):
            cell = self._tables[t][bucket]
            if fp in cell:
                return cell[fp]
        return 0

    def delete(self, key: Key) -> None:
        for t, bucket, fp in self._candidates(key):
            cell = self._tables[t][bucket]
            if fp in cell:
                cell[fp] -= 1
                if cell[fp] == 0:
                    del cell[fp]
                self._n -= 1
                return
        raise DeletionError("delete of a key that was never inserted")

    def __len__(self) -> int:
        return self._n

    @property
    def size_in_bits(self) -> int:
        """Fixed cell layout: every slot carries fingerprint + counter bits."""
        cells = self.d * self.n_buckets_per_table * self.bucket_cells
        return cells * (self.fingerprint_bits + _COUNTER_BITS)

    def expected_fpr(self) -> float:
        """≈ d · average bucket load · 2^-f."""
        total_cells = sum(
            len(bucket) for table in self._tables for bucket in table
        )
        buckets = self.d * self.n_buckets_per_table
        avg = total_cells / buckets if buckets else 0.0
        return min(1.0, self.d * avg * 2.0 ** (-self.fingerprint_bits))

    @classmethod
    def for_capacity(
        cls,
        capacity: int,
        epsilon: float,
        *,
        d: int = DEFAULT_D,
        bucket_cells: int = DEFAULT_BUCKET_CELLS,
        seed: int = 0,
    ) -> "DLeftCountingFilter":
        """Size for *capacity* distinct keys at ~75% cell occupancy."""
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        per_table = max(1, math.ceil(capacity / (0.75 * d * bucket_cells)))
        f = max(1, math.ceil(math.log2(d * bucket_cells / epsilon)))
        return cls(per_table, f, d=d, bucket_cells=bucket_cells, seed=seed)
