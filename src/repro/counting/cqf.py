"""Counting quotient filter (Pandey et al. 2017, SIGMOD).

A quotient filter that represents multisets: each distinct fingerprint is
stored once, with its multiplicity kept in a variable-length counter that
occupies ⌈log₂(count)/r⌉ extra table slots.  Counts therefore cost O(log c)
bits — the property that makes the CQF "offer good performance on arbitrary
input distributions, including highly skewed distributions" (§2.6).

Layout note (see DESIGN.md): the fingerprint table is the physical
:class:`~repro.filters.quotient.QuotientFilter`; counter escape slots are
accounted logically (``slots_used``, and charged against capacity) rather
than physically interleaved between remainders.  FPR behaviour and space
accounting match the paper's encoding; only the in-memory byte layout
differs.
"""

from __future__ import annotations

import math

from repro.common.varint import cqf_counter_bits
from repro.core.errors import DeletionError, FilterFullError
from repro.core.interfaces import CountingFilter, Key
from repro.filters.quotient import DEFAULT_MAX_LOAD, QuotientFilter


class CountingQuotientFilter(CountingFilter):
    """Quotient filter with variable-length counters (multiset support)."""

    def __init__(
        self,
        quotient_bits: int,
        remainder_bits: int,
        *,
        seed: int = 0,
        max_load: float = DEFAULT_MAX_LOAD,
    ):
        self._qf = QuotientFilter(
            quotient_bits, remainder_bits, seed=seed, max_load=max_load
        )
        self._counts: dict[int, int] = {}  # fingerprint -> multiplicity
        self._slots_used = 0
        self._total = 0

    # -- sizing ---------------------------------------------------------------

    @property
    def quotient_bits(self) -> int:
        return self._qf.quotient_bits

    @property
    def remainder_bits(self) -> int:
        return self._qf.remainder_bits

    @property
    def seed(self) -> int:
        return self._qf.seed

    @property
    def capacity(self) -> int:
        return self._qf.capacity

    @property
    def slots_used(self) -> int:
        """Logical slots consumed: one per fingerprint + counter escapes."""
        return self._slots_used

    def _pair_slots(self, count: int) -> int:
        return cqf_counter_bits(count, self.remainder_bits) // self.remainder_bits

    # -- operations ------------------------------------------------------------

    def insert(self, key: Key) -> None:
        self._insert_fp(self._qf._fingerprint(key))

    def insert_exact(self, value: int) -> None:
        """Insert *value* as its own fingerprint (Squeakr/Mantis exact mode:
        the fingerprint is the full packed key, so counts are exact)."""
        if not 0 <= value < (1 << self._qf.fingerprint_bits):
            raise ValueError("value does not fit the fingerprint width")
        self._insert_fp(value)

    def _insert_fp(self, fp: int) -> None:
        current = self._counts.get(fp, 0)
        new_slots = self._pair_slots(current + 1) - (
            self._pair_slots(current) if current else 0
        )
        if self._slots_used + new_slots > self.capacity:
            raise FilterFullError(
                f"counting quotient filter at max load "
                f"({self._slots_used}/{self.capacity} slots)"
            )
        if current == 0:
            self._qf._insert_fingerprint(fp)
        self._counts[fp] = current + 1
        self._slots_used += new_slots
        self._total += 1

    def delete(self, key: Key) -> None:
        fp = self._qf._fingerprint(key)
        current = self._counts.get(fp, 0)
        if current == 0:
            raise DeletionError("delete of a key that was never inserted")
        freed = self._pair_slots(current) - (
            self._pair_slots(current - 1) if current > 1 else 0
        )
        if current == 1:
            self._qf._delete_fingerprint(fp)
            del self._counts[fp]
        else:
            self._counts[fp] = current - 1
        self._slots_used -= freed
        self._total -= 1

    def count(self, key: Key) -> int:
        return self._count_fp(self._qf._fingerprint(key))

    def count_exact(self, value: int) -> int:
        """Count of *value* inserted via :meth:`insert_exact`."""
        if not 0 <= value < (1 << self._qf.fingerprint_bits):
            raise ValueError("value does not fit the fingerprint width")
        return self._count_fp(value)

    def _count_fp(self, fp: int) -> int:
        if not self._qf._contains_fingerprint(fp):
            return 0
        return self._counts.get(fp, 0)

    def may_contain(self, key: Key) -> bool:
        return self._qf.may_contain(key)

    def __len__(self) -> int:
        """Total insertions currently represented (multiset cardinality)."""
        return self._total

    @property
    def n_distinct_fingerprints(self) -> int:
        return len(self._counts)

    @property
    def size_in_bits(self) -> int:
        return self._qf.size_in_bits

    @property
    def used_bits(self) -> int:
        """Bits the stored content actually consumes (occupancy metric)."""
        return sum(
            cqf_counter_bits(c, self.remainder_bits) + 3 for c in self._counts.values()
        )

    def expected_fpr(self) -> float:
        return self._qf.expected_fpr()

    @classmethod
    def for_capacity(
        cls, capacity: int, epsilon: float, *, seed: int = 0
    ) -> "CountingQuotientFilter":
        """Size for *capacity* logical slots (≈ distinct keys for unskewed
        input; skewed multisets use far fewer — that is the point)."""
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        quotient_bits = max(1, math.ceil(math.log2(capacity / DEFAULT_MAX_LOAD)))
        remainder_bits = max(1, math.ceil(math.log2(1 / epsilon)))
        return cls(quotient_bits, remainder_bits, seed=seed)
