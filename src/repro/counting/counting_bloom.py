"""Counting Bloom filter (Fan et al. 1998 summary cache lineage).

A Bloom filter whose bits are fixed-width counters.  The count estimate for
a key is the minimum of its counters, which can only over-count — *unless*
a counter saturates.  A saturated counter can never be decremented, so
after deletes the filter may **under-count** and even produce false
negatives: exactly the §2.6 failure mode this reproduction demonstrates
(experiment T7).  ``rebuild_with_wider_counters`` is the paper's fix.
"""

from __future__ import annotations

import math

from repro.common.bitvector import PackedArray
from repro.common.hashing import hash_pair
from repro.core.analysis import bloom_optimal_hashes
from repro.core.errors import DeletionError
from repro.core.interfaces import CountingFilter, Key

DEFAULT_COUNTER_BITS = 4  # the classic choice: 4-bit counters


class CountingBloomFilter(CountingFilter):
    """Counting Bloom filter with fixed-width, saturating counters."""

    def __init__(
        self,
        capacity: int,
        epsilon: float,
        *,
        counter_bits: int = DEFAULT_COUNTER_BITS,
        seed: int = 0,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        if not 1 <= counter_bits <= 32:
            raise ValueError("counter_bits must be in [1, 32]")
        self.capacity = capacity
        self.epsilon = epsilon
        self.counter_bits = counter_bits
        self.seed = seed
        bits_per_key = math.log2(math.e) * math.log2(1 / epsilon)
        self._m = max(64, int(math.ceil(capacity * bits_per_key)))
        self._k = bloom_optimal_hashes(bits_per_key)
        self._counters = PackedArray(self._m, counter_bits)
        self._max_count = (1 << counter_bits) - 1
        self._n = 0
        self.saturation_events = 0

    def _positions(self, key: Key) -> list[int]:
        h1, h2 = hash_pair(key, self.seed)
        h2 |= 1
        return [(h1 + i * h2) % self._m for i in range(self._k)]

    def insert(self, key: Key) -> None:
        for pos in self._positions(key):
            value = self._counters.get(pos)
            if value < self._max_count:
                self._counters.set(pos, value + 1)
            else:
                self.saturation_events += 1
        self._n += 1

    def delete(self, key: Key) -> None:
        positions = self._positions(key)
        if any(self._counters.get(pos) == 0 for pos in positions):
            raise DeletionError("delete of a key that was never inserted")
        for pos in positions:
            value = self._counters.get(pos)
            # A saturated counter is "stuck": its true value is unknown, so
            # decrementing it could make it under-count other keys.  The
            # classic CBF decrements anyway — that is the §2.6 bug we keep,
            # so the experiment can demonstrate it.
            self._counters.set(pos, value - 1)
        self._n -= 1

    def count(self, key: Key) -> int:
        return min(self._counters.get(pos) for pos in self._positions(key))

    def __len__(self) -> int:
        return self._n

    @property
    def size_in_bits(self) -> int:
        return self._m * self.counter_bits

    @property
    def is_compromised(self) -> bool:
        """True once any counter has saturated (the δ guarantee is void)."""
        return self.saturation_events > 0

    def rebuild_with_wider_counters(self, items: dict[Key, int]) -> "CountingBloomFilter":
        """The paper's remedy: rebuild from the true multiset, wider counters."""
        rebuilt = CountingBloomFilter(
            self.capacity,
            self.epsilon,
            counter_bits=min(32, self.counter_bits * 2),
            seed=self.seed,
        )
        for key, multiplicity in items.items():
            for _ in range(multiplicity):
                rebuilt.insert(key)
        return rebuilt
