"""Counting filters (§2.6): multiset membership with occurrence counts."""

from repro.counting.counting_bloom import CountingBloomFilter
from repro.counting.cqf import CountingQuotientFilter
from repro.counting.dleft import DLeftCountingFilter
from repro.counting.spectral import SpectralBloomFilter

__all__ = [
    "CountingBloomFilter",
    "CountingQuotientFilter",
    "DLeftCountingFilter",
    "SpectralBloomFilter",
]
