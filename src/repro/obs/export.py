"""Exporters: Prometheus text format, JSON snapshot, human table, selftest.

Three views of one :class:`~repro.obs.metrics.MetricsRegistry`:

* :func:`to_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, cumulative ``_bucket{le=...}``
  histogram series), parseable back with :func:`parse_prometheus`.
* :func:`to_json` / :func:`from_json` — a lossless snapshot that
  round-trips through :func:`~repro.obs.metrics.registry_from_snapshot`.
* :func:`render_table` — what ``python -m repro stats`` prints: one row
  per series, histograms summarised as count/sum/p50/p90/p99.

:func:`selftest` is the CI gate (``python -m repro stats --selftest``):
it exercises duplicate-registration detection, name validation, and both
exporter round-trips, and audits a live registry's names.
"""

from __future__ import annotations

import json
import math

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    registry_from_snapshot,
    validate_label_name,
    validate_metric_name,
)


def _fmt_value(value: float) -> str:
    if isinstance(value, float):
        if value != value:  # nan
            return "NaN"
        if value in (float("inf"), float("-inf")):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in merged.items())
    return "{" + inner + "}"


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render every series in the Prometheus text exposition format."""
    lines: list[str] = []
    for metric in registry.metrics():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for labelvals, child in metric.series():
            if isinstance(metric, Histogram):
                cumulative = 0
                for bound, count in zip(metric.bounds, child.counts):
                    cumulative += count
                    le = _label_str(labelvals, {"le": _fmt_value(float(bound))})
                    lines.append(f"{metric.name}_bucket{le} {cumulative}")
                cumulative += child.counts[-1]
                le = _label_str(labelvals, {"le": "+Inf"})
                lines.append(f"{metric.name}_bucket{le} {cumulative}")
                ls = _label_str(labelvals)
                lines.append(f"{metric.name}_sum{ls} {_fmt_value(child.sum)}")
                lines.append(f"{metric.name}_count{ls} {child.count}")
            else:
                lines.append(
                    f"{metric.name}{_label_str(labelvals)} {_fmt_value(child.value)}"
                )
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[str, dict[tuple[tuple[str, str], ...], float]]:
    """Parse exposition text back into ``{name: {labels-items: value}}``.

    Supports exactly what :func:`to_prometheus` emits (one sample per
    line, quoted label values) — enough for round-trip verification and
    for scraping our own output in tests.
    """
    samples: dict[str, dict[tuple[tuple[str, str], ...], float]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            labelpart, valuepart = rest.rsplit("}", 1)
            labels = []
            for item in _split_labels(labelpart):
                key, value = item.split("=", 1)
                value = value.strip()[1:-1]  # strip quotes
                labels.append(
                    (key.strip(), value.replace('\\"', '"').replace("\\\\", "\\"))
                )
            key = tuple(sorted(labels))
            value_str = valuepart.strip()
        else:
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"unparseable exposition line: {raw!r}")
            name, value_str = parts
            key = ()
        value = float("inf") if value_str == "+Inf" else float(value_str)
        samples.setdefault(name.strip(), {})[key] = value
    return samples


def _split_labels(labelpart: str) -> list[str]:
    """Split ``a="x",b="y,z"`` on commas outside quotes."""
    items, depth, start = [], False, 0
    for i, ch in enumerate(labelpart):
        if ch == '"' and (i == 0 or labelpart[i - 1] != "\\"):
            depth = not depth
        elif ch == "," and not depth:
            items.append(labelpart[start:i])
            start = i + 1
    if labelpart[start:].strip():
        items.append(labelpart[start:])
    return items


def flat_samples(registry: MetricsRegistry) -> dict[str, dict[tuple[tuple[str, str], ...], float]]:
    """The registry's samples in :func:`parse_prometheus`'s shape —
    the two sides a round-trip test compares."""
    out: dict[str, dict[tuple[tuple[str, str], ...], float]] = {}

    def put(name: str, labels: dict[str, str], extra: dict[str, str], value: float):
        key = tuple(sorted({**labels, **extra}.items()))
        out.setdefault(name, {})[key] = float(value)

    for metric in registry.metrics():
        for labelvals, child in metric.series():
            if isinstance(metric, Histogram):
                cumulative = 0
                for bound, count in zip(metric.bounds, child.counts):
                    cumulative += count
                    put(metric.name + "_bucket", labelvals,
                        {"le": _fmt_value(float(bound))}, cumulative)
                put(metric.name + "_bucket", labelvals, {"le": "+Inf"},
                    cumulative + child.counts[-1])
                put(metric.name + "_sum", labelvals, {}, child.sum)
                put(metric.name + "_count", labelvals, {}, child.count)
            else:
                put(metric.name, labelvals, {}, child.value)
    return out


# -- JSON ---------------------------------------------------------------------------


def to_json(registry: MetricsRegistry, indent: int | None = 2) -> str:
    """Lossless JSON dump of the registry (see ``from_json``)."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


def from_json(text: str) -> MetricsRegistry:
    """Rebuild a registry from :func:`to_json` output."""
    return registry_from_snapshot(json.loads(text))


# -- human table --------------------------------------------------------------------


def render_table(registry: MetricsRegistry, title: str = "metrics") -> str:
    """One row per series; histograms summarised with count/sum/quantiles."""
    rows: list[tuple[str, str]] = []
    for metric in registry.metrics():
        for labelvals, child in metric.series():
            name = metric.name + _label_str(labelvals)
            if isinstance(metric, Histogram):
                value = (
                    f"count={child.count} sum={_round(child.sum)} "
                    f"p50={_round(child.quantile(0.5))} "
                    f"p90={_round(child.quantile(0.9))} "
                    f"p99={_round(child.quantile(0.99))}"
                )
            else:
                value = _fmt_value(child.value)
            rows.append((name, value))
    width = max((len(name) for name, _ in rows), default=len(title))
    lines = [f"# {title}", f"{'metric'.ljust(width)}  value", f"{'-' * width}  -----"]
    for name, value in rows:
        lines.append(f"{name.ljust(width)}  {value}")
    return "\n".join(lines)


def _round(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == 0:
        return "0"
    if abs(value) < 0.001 or abs(value) >= 1e6:
        return f"{value:.3g}"
    return f"{value:.6g}"


# -- selftest -----------------------------------------------------------------------


def selftest(registry: MetricsRegistry | None = None) -> list[str]:
    """Exporter/registry invariants check; returns a list of failures.

    Run by CI as ``python -m repro stats --selftest``.  Checks, against a
    scratch registry: duplicate registration across types raises; invalid
    Prometheus metric and label names are rejected; histogram bounds are
    strictly increasing; the Prometheus exporter's output parses back to
    exactly the registry's samples; the JSON exporter round-trips to an
    identical snapshot.  When *registry* is given, additionally audits
    every registered name and label name in it.
    """
    failures: list[str] = []

    scratch = MetricsRegistry()
    c = scratch.counter("repro_selftest_events_total", "events", labels=("kind",))
    c.labels(kind="a").inc(3)
    c.labels(kind="b").inc()
    scratch.gauge("repro_selftest_level", "level").set(0.25)
    h = scratch.histogram("repro_selftest_seconds", "latency")
    for v in (1e-6, 3e-5, 0.002, 0.002, 1.5):
        h.observe(v)

    try:
        scratch.gauge("repro_selftest_events_total")
    except MetricError:
        pass
    else:
        failures.append("duplicate registration across types was not rejected")
    try:
        scratch.counter("repro_selftest_events_total", labels=("other",))
    except MetricError:
        pass
    else:
        failures.append("re-registration with different labels was not rejected")
    for bad in ("0bad", "has space", "", "dash-ed"):
        try:
            validate_metric_name(bad)
        except MetricError:
            pass
        else:
            failures.append(f"invalid metric name {bad!r} was accepted")
    try:
        validate_label_name("__reserved")
    except MetricError:
        pass
    else:
        failures.append("reserved label name '__reserved' was accepted")
    try:
        scratch.histogram("repro_selftest_bad_buckets", buckets=(1.0, 1.0, 2.0))
    except MetricError:
        pass
    else:
        failures.append("non-increasing histogram buckets were accepted")

    parsed = parse_prometheus(to_prometheus(scratch))
    if parsed != flat_samples(scratch):
        failures.append("Prometheus exposition did not round-trip")
    if from_json(to_json(scratch)).snapshot() != scratch.snapshot():
        failures.append("JSON snapshot did not round-trip")

    if registry is not None:
        seen: set[str] = set()
        for metric in registry.metrics():
            try:
                validate_metric_name(metric.name)
                for label in metric.labelnames:
                    validate_label_name(label)
            except MetricError as exc:
                failures.append(str(exc))
            if metric.name in seen:  # registry should make this impossible
                failures.append(f"{metric.name} registered twice")
            seen.add(metric.name)
            for labelvals, child in metric.series():
                if isinstance(metric, Histogram):
                    if child.count != sum(child.counts):
                        failures.append(
                            f"{metric.name}{labelvals}: bucket counts do not sum to count"
                        )
                elif isinstance(metric, (Counter, Gauge)) and isinstance(
                    child.value, float
                ) and math.isnan(child.value):
                    failures.append(f"{metric.name}{labelvals}: NaN sample")
    return failures
