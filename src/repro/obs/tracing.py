"""Lightweight probe tracing: spans, nesting, and a ring-buffer recorder.

A metric says *how often*; a trace says *what one probe actually did*.
``trace("lsm.get")`` opens a :class:`Span`; spans opened inside it become
children, so one ``LSMTree.get`` renders as a tree of per-level filter
checks, device reads, and retry attempts with monotonic timings.

Tracing is off by default and costs one context-variable read per
``trace()`` when off (the no-op fast path), so instrumented hot paths
stay cheap.  Turn it on by installing a :class:`TraceRecorder` — either
globally (:func:`set_default_recorder`) or scoped (:func:`use_recorder`);
completed *root* spans land in the recorder's bounded ring buffer,
oldest evicted first.

Nesting uses :mod:`contextvars`, so spans stay correctly parented across
threads and coroutines.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator

_active: ContextVar["Span | None"] = ContextVar("repro_obs_active_span", default=None)
_recorder: "TraceRecorder | None" = None


class Span:
    """One timed operation; children are spans opened while it was active."""

    __slots__ = ("name", "tags", "start", "end", "children")

    def __init__(self, name: str, tags: dict[str, Any]):
        self.name = name
        self.tags = tags
        self.start = 0.0
        self.end = 0.0
        self.children: list[Span] = []

    @property
    def duration(self) -> float:
        return self.end - self.start

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """All spans in this tree with the given name."""
        return [s for s in self.walk() if s.name == name]

    def set_tag(self, key: str, value: Any) -> None:
        self.tags[key] = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Span {self.name} {self.duration * 1e6:.1f}us children={len(self.children)}>"


class _NoopSpan:
    """Stand-in yielded when no recorder is installed and no span is open."""

    __slots__ = ()
    name = "<noop>"
    children: list = []

    def set_tag(self, key: str, value: Any) -> None:
        pass


_NOOP = _NoopSpan()


class trace:
    """Context manager opening a span named *name* with the given tags.

    Fast path: when tracing is inactive (no recorder installed and no
    enclosing span), ``__enter__`` returns a shared no-op span without
    allocating.  When active, the span is parented under the enclosing
    span or recorded as a root on exit.  Exceptions mark the span with an
    ``error`` tag and propagate.
    """

    __slots__ = ("_name", "_tags", "_span", "_token", "_parent")

    def __init__(self, name: str, **tags: Any):
        self._name = name
        self._tags = tags
        self._span = None

    def __enter__(self):
        parent = _active.get()
        if parent is None and _recorder is None:
            return _NOOP
        span = Span(self._name, self._tags)
        self._parent = parent
        self._span = span
        self._token = _active.set(span)
        span.start = time.perf_counter()
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        if span is None:
            return False
        span.end = time.perf_counter()
        _active.reset(self._token)
        if exc_type is not None:
            span.tags["error"] = exc_type.__name__
        if self._parent is not None:
            self._parent.children.append(span)
        elif _recorder is not None:
            _recorder.record(span)
        return False


def current_span() -> Span | None:
    """The innermost open span, or None when not tracing."""
    return _active.get()


class TraceRecorder:
    """Bounded ring buffer of completed root spans."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._roots: deque[Span] = deque(maxlen=capacity)
        self.recorded = 0  # total ever recorded, including evicted

    def record(self, span: Span) -> None:
        self._roots.append(span)
        self.recorded += 1

    @property
    def roots(self) -> list[Span]:
        return list(self._roots)

    def clear(self) -> None:
        self._roots.clear()

    def __len__(self) -> int:
        return len(self._roots)

    def find(self, name: str) -> list[Span]:
        """All spans of the given name across every recorded tree."""
        return [s for root in self._roots for s in root.find(name)]

    def render(self, limit: int | None = None) -> str:
        roots = self.roots
        if limit is not None:
            roots = roots[-limit:]
        return "\n".join(render_tree(root) for root in roots)


def set_default_recorder(recorder: TraceRecorder | None) -> TraceRecorder | None:
    """Install (or, with None, remove) the process-wide recorder."""
    global _recorder
    previous, _recorder = _recorder, recorder
    return previous


@contextmanager
def use_recorder(recorder: TraceRecorder | None = None) -> Iterator[TraceRecorder]:
    """Scope a recorder (default: a fresh 256-root ring) to a block."""
    recorder = recorder if recorder is not None else TraceRecorder()
    previous = set_default_recorder(recorder)
    try:
        yield recorder
    finally:
        set_default_recorder(previous)


def render_tree(span: Span, indent: int = 0) -> str:
    """Human-readable indented rendering of one span tree."""
    tags = " ".join(f"{k}={v}" for k, v in span.tags.items())
    line = "  " * indent + f"{span.name}  {span.duration * 1e6:9.1f}us"
    if tags:
        line += f"  [{tags}]"
    lines = [line]
    for child in span.children:
        lines.append(render_tree(child, indent + 1))
    return "\n".join(lines)
