"""repro.obs — unified telemetry for the filter/LSM stack.

The measurement layer the tutorial's methodology requires: a
dependency-free metrics registry (counters, gauges, log-bucketed
histograms), lightweight probe tracing with nesting and a ring-buffer
recorder, an :class:`InstrumentedFilter` proxy that observes any filter,
and Prometheus / JSON / table exporters.  See docs/observability.md.

Quickstart
----------
>>> from repro import obs
>>> with obs.use_registry() as reg:
...     reg.counter("repro_demo_total", "demo").inc()
...     print(obs.to_prometheus(reg))  # doctest: +SKIP

Library code emits into :func:`default_registry`; the CLI surface is
``python -m repro stats`` and ``python -m repro trace``.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    default_registry,
    log_buckets,
    registry_from_snapshot,
    set_default_registry,
    timed,
    use_registry,
    validate_label_name,
    validate_metric_name,
)
from repro.obs.tracing import (
    Span,
    TraceRecorder,
    current_span,
    render_tree,
    set_default_recorder,
    trace,
    use_recorder,
)
from repro.obs.instrument import InstrumentedFilter, instrument
from repro.obs.export import (
    flat_samples,
    from_json,
    parse_prometheus,
    render_table,
    selftest,
    to_json,
    to_prometheus,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "InstrumentedFilter",
    "MetricError",
    "MetricsRegistry",
    "Span",
    "TraceRecorder",
    "current_span",
    "default_registry",
    "flat_samples",
    "from_json",
    "instrument",
    "log_buckets",
    "parse_prometheus",
    "registry_from_snapshot",
    "render_table",
    "render_tree",
    "selftest",
    "set_default_recorder",
    "set_default_registry",
    "timed",
    "to_json",
    "to_prometheus",
    "trace",
    "use_recorder",
    "use_registry",
    "validate_label_name",
    "validate_metric_name",
]
