"""Metric primitives: counters, gauges, log-bucketed histograms, registry.

The tutorial's thesis is that filter choice should follow *measured*
workload behaviour — negative-lookup rates, per-level probe costs,
adaptivity hit patterns.  This module is the measurement substrate: a
dependency-free, thread-safe metrics registry in the Prometheus data
model (labelled counters / gauges / histograms), small enough to sit in
the hot path of a pure-Python simulator.

Naming convention (docs/observability.md): ``repro_<subsystem>_<what>``
with ``_total`` for counters and ``_seconds`` / ``_bytes`` unit suffixes,
e.g. ``repro_device_reads_total``, ``repro_retry_backoff_seconds``.
Names and label names must be valid Prometheus identifiers — the
registry rejects anything else at registration time, and registering the
same name twice with a different type or label set raises
:class:`MetricError`.

A process-wide *default registry* (:func:`default_registry`) lets
library code emit metrics without threading a registry through every
constructor; tests swap it with :func:`use_registry`.
"""

from __future__ import annotations

import re
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricError(ValueError):
    """Invalid metric name, duplicate registration, or label misuse."""


def validate_metric_name(name: str) -> str:
    if not _NAME_RE.match(name or ""):
        raise MetricError(f"invalid Prometheus metric name {name!r}")
    return name


def validate_label_name(name: str) -> str:
    if not _LABEL_RE.match(name or "") or name.startswith("__"):
        raise MetricError(f"invalid Prometheus label name {name!r}")
    return name


class _Metric:
    """Base for one named metric family (shared by all its label series)."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: tuple[str, ...] = ()):
        self.name = validate_metric_name(name)
        self.help = help
        self.labelnames = tuple(validate_label_name(l) for l in labels)
        self._lock = threading.Lock()
        self._series: dict[tuple[str, ...], object] = {}

    def _label_key(self, kwargs: dict) -> tuple[str, ...]:
        if set(kwargs) != set(self.labelnames):
            raise MetricError(
                f"{self.name} expects labels {self.labelnames}, got {tuple(kwargs)}"
            )
        return tuple(str(kwargs[l]) for l in self.labelnames)

    def labels(self, **kwargs):
        """The child series for one combination of label values."""
        key = self._label_key(kwargs)
        child = self._series.get(key)
        if child is None:
            with self._lock:
                child = self._series.setdefault(key, self._new_child())
        return child

    def _default_child(self):
        if self.labelnames:
            raise MetricError(f"{self.name} is labelled: call .labels(...) first")
        return self.labels()

    def _new_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def series(self) -> list[tuple[dict[str, str], object]]:
        """All (labels-dict, child) pairs, label-sorted for stable output."""
        with self._lock:
            items = sorted(self._series.items())
        return [(dict(zip(self.labelnames, key)), child) for key, child in items]


class _CounterChild:
    __slots__ = ("_lock", "value")

    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise MetricError("counters only go up; use a Gauge")
        with self._lock:
            self.value += amount


class Counter(_Metric):
    """Monotonically increasing count (events, bytes, probes)."""

    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: int | float = 1) -> None:
        self._default_child().inc(amount)

    @property
    def value(self):
        """Unlabelled shortcut; labelled counters expose per-child values."""
        return self._default_child().value


class _GaugeChild:
    __slots__ = ("_lock", "value")

    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)


class Gauge(_Metric):
    """A value that can go up and down (occupancy, rates, bits/key)."""

    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1) -> None:
        self._default_child().dec(amount)

    @property
    def value(self) -> float:
        return self._default_child().value


def log_buckets(start: float, growth: float, count: int) -> tuple[float, ...]:
    """Exponentially spaced upper bounds: ``start * growth**i``."""
    if start <= 0 or growth <= 1 or count < 1:
        raise MetricError("log buckets need start > 0, growth > 1, count >= 1")
    return tuple(start * growth**i for i in range(count))


# Spans 1µs .. ~68s in ×4 steps — wide enough for both simulated backoff
# seconds and real insert/probe latencies.
DEFAULT_BUCKETS = log_buckets(1e-6, 4.0, 14)


class _HistogramChild:
    __slots__ = ("_lock", "bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...]):
        self._lock = threading.Lock()
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # final slot = overflow (+Inf)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        from bisect import bisect_left

        i = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[i] += 1
            self.sum += value
            self.count += 1

    def merge(self, other: "_HistogramChild") -> None:
        """Fold *other* into this child (shards, per-thread histograms)."""
        if other.bounds != self.bounds:
            raise MetricError("cannot merge histograms with different buckets")
        with self._lock:
            for i, c in enumerate(other.counts):
                self.counts[i] += c
            self.sum += other.sum
            self.count += other.count

    def quantile(self, q: float) -> float:
        """Upper bucket bound at quantile *q* (0 when empty).

        Log-bucketed histograms answer quantiles to one bucket's
        resolution — the standard Prometheus estimate, taken at the
        bucket's upper bound so it never under-reports.
        """
        if not 0 <= q <= 1:
            raise MetricError("quantile must be in [0, 1]")
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = q * self.count
            seen = 0
            for i, c in enumerate(self.counts):
                seen += c
                if seen >= rank and c:
                    return self.bounds[i] if i < len(self.bounds) else float("inf")
        return float("inf")  # pragma: no cover - defensive


class Histogram(_Metric):
    """Log-bucketed distribution (latencies, backoff, batch sizes)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise MetricError("histogram bucket bounds must be strictly increasing")
        super().__init__(name, help, labels)
        self.bounds = bounds

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.bounds)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    def quantile(self, q: float) -> float:
        return self._default_child().quantile(q)

    @property
    def count(self) -> int:
        return self._default_child().count

    @property
    def sum(self) -> float:
        return self._default_child().sum


class WindowedRate:
    """Events per tick over a trailing window — a burst detector.

    Callers :meth:`record` one event at a monotonically non-decreasing
    *tick* (any counter that advances with normal activity, e.g. a
    request count) and get back the current rate: events whose tick
    falls inside the trailing ``window`` ticks, divided by the window
    length.  The cache tier uses this to flag invalidation storms —
    invalidations recorded against the request counter spike when a
    compaction churns addresses faster than lookups consume them.
    """

    def __init__(self, window: int = 256):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._events: deque[float] = deque()

    def record(self, tick: float) -> float:
        """Mark one event at *tick*; returns the updated rate."""
        self._events.append(tick)
        return self.rate(tick)

    def rate(self, tick: float) -> float:
        """Events per tick over ``[tick - window, tick]``."""
        cutoff = tick - self.window
        while self._events and self._events[0] <= cutoff:
            self._events.popleft()
        return len(self._events) / self.window


@contextmanager
def timed(histogram, clock: Any = None) -> Iterator[None]:
    """Observe a block's duration into *histogram* (or a labelled child).

    *clock* is anything with ``now()`` — normally a
    :class:`~repro.common.clock.SimulatedClock`, so instrumented code
    measures accounted simulated time; defaults to wall time.  The
    duration is recorded even when the block raises: a failed operation
    still took that long.
    """
    now = clock.now if clock is not None else time.perf_counter
    start = now()
    try:
        yield
    finally:
        histogram.observe(now() - start)


class MetricsRegistry:
    """A namespace of metrics with get-or-create registration.

    ``counter``/``gauge``/``histogram`` return the existing metric when
    the name is already registered *with the same type and labels*, so
    library call sites can bind metrics lazily without coordinating
    creation order.  A name collision across types (or label sets, or
    histogram buckets) is a programming error and raises
    :class:`MetricError` — ``python -m repro stats --selftest`` checks
    exactly this invariant.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name, help, labels, **kwargs) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = cls(name, help, tuple(labels), **kwargs)
                    self._metrics[name] = metric
                    return metric
        if type(metric) is not cls:
            raise MetricError(
                f"{name} already registered as {metric.kind}, not {cls.kind}"
            )
        if metric.labelnames != tuple(labels):
            raise MetricError(
                f"{name} already registered with labels {metric.labelnames}"
            )
        if kwargs.get("buckets") is not None and metric.bounds != tuple(
            float(b) for b in kwargs["buckets"]
        ):
            raise MetricError(f"{name} already registered with different buckets")
        return metric

    def counter(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: tuple[str, ...] = (),
        buckets: tuple[float, ...] | None = None,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labels, buckets=buckets or DEFAULT_BUCKETS
        )

    def get(self, name: str) -> _Metric | None:
        return self._metrics.get(name)

    def metrics(self) -> list[_Metric]:
        with self._lock:
            return sorted(self._metrics.values(), key=lambda m: m.name)

    def names(self) -> list[str]:
        return [m.name for m in self.metrics()]

    def unregister(self, name: str) -> None:
        with self._lock:
            self._metrics.pop(name, None)

    def snapshot(self) -> dict:
        """JSON-serializable dump of every series (the JSON export body)."""
        out: dict = {}
        for metric in self.metrics():
            entry: dict = {
                "kind": metric.kind,
                "help": metric.help,
                "labelnames": list(metric.labelnames),
                "series": [],
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.bounds)
            for labelvals, child in metric.series():
                if isinstance(child, _HistogramChild):
                    entry["series"].append(
                        {
                            "labels": labelvals,
                            "count": child.count,
                            "sum": child.sum,
                            "bucket_counts": list(child.counts),
                        }
                    )
                else:
                    entry["series"].append({"labels": labelvals, "value": child.value})
            out[metric.name] = entry
        return out


def registry_from_snapshot(snap: dict) -> MetricsRegistry:
    """Rebuild a registry from :meth:`MetricsRegistry.snapshot` output."""
    reg = MetricsRegistry()
    for name, entry in snap.items():
        labels = tuple(entry.get("labelnames", ()))
        kind = entry.get("kind")
        if kind == "counter":
            metric = reg.counter(name, entry.get("help", ""), labels)
            for s in entry["series"]:
                metric.labels(**s["labels"]).inc(s["value"])
        elif kind == "gauge":
            metric = reg.gauge(name, entry.get("help", ""), labels)
            for s in entry["series"]:
                metric.labels(**s["labels"]).set(s["value"])
        elif kind == "histogram":
            metric = reg.histogram(
                name, entry.get("help", ""), labels, buckets=tuple(entry["buckets"])
            )
            for s in entry["series"]:
                child = metric.labels(**s["labels"])
                child.counts = list(s["bucket_counts"])
                child.count = s["count"]
                child.sum = s["sum"]
        else:
            raise MetricError(f"unknown metric kind {kind!r} for {name}")
    return reg


# -- process-wide default registry -------------------------------------------------

_default = MetricsRegistry()
_default_lock = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The registry library code emits into unless told otherwise."""
    return _default


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _default
    with _default_lock:
        previous, _default = _default, registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:
    """Temporarily make *registry* (default: a fresh one) the default —
    the isolation idiom for tests and the CLI."""
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_default_registry(registry)
    try:
        yield registry
    finally:
        set_default_registry(previous)
