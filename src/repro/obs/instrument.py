"""`InstrumentedFilter`: observe any filter without touching its internals.

"How to Train Your Filter" compares learn/stack/adapt strategies on
per-query telemetry — probe counts, positive/negative split, and (when
ground truth is available) the realised false-positive rate.  This
wrapper produces exactly that for *any* object implementing the
:class:`~repro.core.interfaces.Filter` protocol, by interception rather
than modification, so every one of the repo's ~40 filter families is
observable for free (``make_filter(..., instrument=True)`` is the
registry hook).

Metrics (all labelled ``filter=<name>`` in the target registry):

* ``repro_filter_probes_total{result=positive|negative}``
* ``repro_filter_false_positives_total`` — only when ground truth is
  supplied (a set/container or a ``key -> bool`` predicate)
* ``repro_filter_inserts_total`` / ``repro_filter_deletes_total``
* ``repro_filter_insert_seconds`` — insert latency histogram

Metric children are bound once at construction, so the per-probe cost is
one dict-free counter increment (EXPERIMENTS.md O1 measures the ratio).
"""

from __future__ import annotations

import time
from typing import Callable, Container

import numpy as np

from repro.core.interfaces import Key, KeyBatch, as_key_list
from repro.obs.metrics import MetricsRegistry, default_registry


class InstrumentedFilter:
    """Transparent observing proxy around a point filter.

    Forwards the full dynamic-filter surface (``insert``, ``delete``,
    ``may_contain``, plus anything else via ``__getattr__``) and counts
    as it goes.  With ``ground_truth`` — a container of the true key set
    or a predicate — positive probes are classified as true or false
    positives, giving a *measured* FP rate with no filter cooperation.
    """

    def __init__(
        self,
        inner,
        *,
        name: str | None = None,
        registry: MetricsRegistry | None = None,
        ground_truth: Container[Key] | Callable[[Key], bool] | None = None,
    ):
        self.inner = inner
        self.name = name or type(inner).__name__
        reg = registry if registry is not None else default_registry()
        self.registry = reg
        probes = reg.counter(
            "repro_filter_probes_total",
            "membership probes against instrumented filters",
            labels=("filter", "result"),
        )
        self._positive = probes.labels(filter=self.name, result="positive")
        self._negative = probes.labels(filter=self.name, result="negative")
        self._false_pos = reg.counter(
            "repro_filter_false_positives_total",
            "positive probes contradicted by supplied ground truth",
            labels=("filter",),
        ).labels(filter=self.name)
        self._inserts = reg.counter(
            "repro_filter_inserts_total",
            "keys inserted through instrumented filters",
            labels=("filter",),
        ).labels(filter=self.name)
        self._deletes = reg.counter(
            "repro_filter_deletes_total",
            "keys deleted through instrumented filters",
            labels=("filter",),
        ).labels(filter=self.name)
        self._insert_seconds = reg.histogram(
            "repro_filter_insert_seconds",
            "wall-clock insert latency",
            labels=("filter",),
        ).labels(filter=self.name)
        if ground_truth is None:
            self._truth = None
        elif callable(ground_truth):
            self._truth = ground_truth
        else:
            self._truth = ground_truth.__contains__

    # -- observed filter protocol ---------------------------------------------------

    def may_contain(self, key: Key) -> bool:
        result = self.inner.may_contain(key)
        if result:
            self._positive.inc()
            if self._truth is not None and not self._truth(key):
                self._false_pos.inc()
        else:
            self._negative.inc()
        return result

    def __contains__(self, key: Key) -> bool:
        return self.may_contain(key)

    def may_contain_many(self, keys: KeyBatch) -> np.ndarray:
        """Batched probe: one inner kernel call, counters bumped by batch
        totals so per-op metrics stay additive with the scalar path."""
        inner_many = getattr(self.inner, "may_contain_many", None)
        if inner_many is not None:
            results = np.asarray(inner_many(keys), dtype=bool)
        else:
            key_list = as_key_list(keys)
            results = np.fromiter(
                (self.inner.may_contain(k) for k in key_list),
                dtype=bool,
                count=len(key_list),
            )
        positives = int(results.sum())
        self._positive.inc(positives)
        self._negative.inc(len(results) - positives)
        if self._truth is not None and positives:
            key_list = as_key_list(keys)
            false_pos = sum(
                1
                for key, hit in zip(key_list, results.tolist())
                if hit and not self._truth(key)
            )
            if false_pos:
                self._false_pos.inc(false_pos)
        return results

    def insert(self, key: Key) -> None:
        start = time.perf_counter()
        self.inner.insert(key)
        self._insert_seconds.observe(time.perf_counter() - start)
        self._inserts.inc()

    def insert_many(self, keys: KeyBatch) -> None:
        """Batched insert: counts every key; the latency histogram records
        the batch's mean per-key latency (one observation per batch)."""
        n = len(keys)
        if not n:
            return
        inner_many = getattr(self.inner, "insert_many", None)
        start = time.perf_counter()
        if inner_many is not None:
            inner_many(keys)
        else:
            for key in as_key_list(keys):
                self.inner.insert(key)
        self._insert_seconds.observe((time.perf_counter() - start) / n)
        self._inserts.inc(n)

    def delete(self, key: Key) -> None:
        self.inner.delete(key)
        self._deletes.inc()

    def __len__(self) -> int:
        return len(self.inner)

    @property
    def size_in_bits(self) -> int:
        return self.inner.size_in_bits

    @property
    def bits_per_key(self) -> float:
        return self.inner.bits_per_key

    def __getattr__(self, attr: str):
        # Everything not intercepted (count, expand, report_false_positive,
        # epsilon, supports_deletes, ...) passes straight through.
        return getattr(self.inner, attr)

    # -- derived readings -----------------------------------------------------------

    @property
    def probes(self) -> int:
        return self._positive.value + self._negative.value

    @property
    def positives(self) -> int:
        return self._positive.value

    @property
    def negatives(self) -> int:
        return self._negative.value

    @property
    def false_positives(self) -> int:
        return self._false_pos.value

    @property
    def observed_fp_rate(self) -> float:
        """FP probes over probes for truly-absent keys (needs ground truth).

        Truly-absent probes = filter negatives (never false) plus the
        positives ground truth contradicted.
        """
        absent = self._negative.value + self._false_pos.value
        return self._false_pos.value / absent if absent else 0.0

    @property
    def positive_rate(self) -> float:
        n = self.probes
        return self._positive.value / n if n else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<InstrumentedFilter {self.name} probes={self.probes}>"


def instrument(
    filt,
    *,
    name: str | None = None,
    registry: MetricsRegistry | None = None,
    ground_truth: Container[Key] | Callable[[Key], bool] | None = None,
) -> InstrumentedFilter:
    """Wrap *filt* (idempotent: an already-instrumented filter is returned
    as-is when the target registry matches)."""
    if isinstance(filt, InstrumentedFilter) and (
        registry is None or filt.registry is registry
    ):
        return filt
    return InstrumentedFilter(
        filt, name=name, registry=registry, ground_truth=ground_truth
    )
