"""Seesaw counting filter (Li et al. 2022, WWW) — simplified reproduction.

The yes/no-list filter of §3.3: every slot carries a *yes* counter (raised
by malicious / yes-list keys) and a *no* counter (raised to protect
vulnerable negative keys).  A key matches only where its yes counters
strictly outweigh the no counters at all of its positions — the "seesaw".

The tutorial's critique is reproduced faithfully: protecting a negative key
raises no-counters on positions that yes-list keys may share, so the
dynamic extension "is not guaranteed to prevent false positives ... and can
also introduce false negatives".  :meth:`false_negatives` measures exactly
that damage.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.common.hashing import hash_pair
from repro.core.analysis import bloom_optimal_hashes
from repro.core.interfaces import Filter, Key


class SeesawCountingFilter(Filter):
    """Two-sided counting filter implementing a yes list with a no list."""

    def __init__(
        self,
        yes_list: Iterable[Key],
        no_list: Iterable[Key] = (),
        *,
        epsilon: float = 0.01,
        seed: int = 0,
    ):
        members = list(yes_list)
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        self.seed = seed
        bits_per_key = math.log2(math.e) * math.log2(1 / epsilon)
        self._m = max(64, int(math.ceil(max(1, len(members)) * bits_per_key)))
        self._k = bloom_optimal_hashes(bits_per_key)
        self._yes = [0] * self._m
        self._no = [0] * self._m
        self._n = len(members)
        self.protections = 0
        for key in members:
            for pos in self._positions(key):
                self._yes[pos] += 1
        for key in no_list:
            self.protect(key)

    def _positions(self, key: Key) -> list[int]:
        h1, h2 = hash_pair(key, self.seed ^ 0x5E5A)
        h2 |= 1
        return [(h1 + i * h2) % self._m for i in range(self._k)]

    def may_contain(self, key: Key) -> bool:
        return all(
            self._yes[pos] > self._no[pos] for pos in self._positions(key)
        )

    def protect(self, key: Key) -> None:
        """Add *key* to the no list: seesaw its weakest position down.

        Raises the no counter where the yes side is weakest (least
        collateral), just enough to stop *key* matching.  Any yes-list key
        sharing that position with an equally weak yes side becomes a
        false negative — the documented risk of the dynamic extension.
        """
        positions = self._positions(key)
        if not self.may_contain(key):
            return  # already a negative
        self.protections += 1
        weakest = min(positions, key=lambda p: self._yes[p] - self._no[p])
        self._no[weakest] = self._yes[weakest]

    def false_negatives(self, yes_list: Iterable[Key]) -> list[Key]:
        """Yes-list keys the filter now wrongly rejects (must be checked
        against the original list — the filter itself cannot know)."""
        return [key for key in yes_list if not self.may_contain(key)]

    def __len__(self) -> int:
        return self._n

    @property
    def size_in_bits(self) -> int:
        # Two 4-bit counters per slot (the SSCF's paired layout).
        return self._m * 8
