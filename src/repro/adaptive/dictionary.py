"""The dictionary problem harness: filter + backing store + I/O accounting.

§2.3 frames adaptivity in the *dictionary* setting: a filter guards an
on-disk key/value store, every positive filter answer costs a device read,
and a false positive costs a wasted read.  This class wires any filter to a
simulated :class:`~repro.common.storage.BlockDevice`, confirms false
positives against the ground truth, and — when the filter is adaptive —
feeds them back via ``report_false_positive``.

Experiments T5/F3 measure exactly the quantity the tutorial highlights:
the number of wasted negative-lookup I/Os under adversarial and Zipfian
query streams.

Telemetry: lookups accrue to ``repro_dict_queries_total{outcome=
negative|hit|false_positive}`` and adaptation events to
``repro_dict_adaptations_total`` in the default :mod:`repro.obs`
registry; ``dict.get`` / ``filter.probe`` / ``filter.adapt`` spans are
emitted when tracing is on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.common.clock import Answer, DeadlineExceeded, LookupResult
from repro.common.faults import CircuitOpenError, TransientIOError
from repro.common.storage import BlockDevice
from repro.core.interfaces import AdaptiveFilter, Key, KeyBatch, as_key_list
from repro.obs.metrics import default_registry
from repro.obs.tracing import trace


@dataclass
class DictionaryStats:
    queries: int = 0
    positive_hits: int = 0
    false_positives: int = 0
    disk_reads: int = 0
    adaptations_fed_back: int = 0

    @property
    def wasted_read_rate(self) -> float:
        """False-positive disk reads per query — the §2.3 cost metric."""
        return self.false_positives / self.queries if self.queries else 0.0


class FilteredDictionary:
    """A key/value dictionary guarded by a (possibly adaptive) filter.

    An optional :class:`~repro.cache.NegativeLookupCache` memoizes
    authoritative ABSENT answers (filter negatives and confirmed false
    positives), versioned by ``mutation_epoch`` — every :meth:`put` /
    :meth:`remove` bumps the epoch, so a cached ABSENT can never survive
    a mutation that might contradict it.  Late (deadline-expired) and
    degraded MAYBE results never populate it (docs/robustness.md).
    """

    def __init__(self, filt, *, device: BlockDevice | None = None,
                 negative_cache: Any = None):
        self._filter = filt
        self._device = device if device is not None else BlockDevice()
        self._adaptive = isinstance(filt, AdaptiveFilter)
        self.stats = DictionaryStats()
        self.mutation_epoch = 0
        self.negative_cache = negative_cache

    @property
    def filter(self):
        return self._filter

    @property
    def device(self) -> BlockDevice:
        return self._device

    def put(self, key: Key, value: Any) -> None:
        self.mutation_epoch += 1
        self._filter.insert(key)
        self._device.write(("kv", key), value, size=64)

    def remove(self, key: Key) -> None:
        self.mutation_epoch += 1
        self._device.delete(("kv", key))
        self._filter.delete(key)

    def get(self, key: Key, default: Any = None, *, deadline: Any = None) -> Any:
        """Point lookup.  Disk is touched only when the filter says maybe.

        With a :class:`~repro.common.clock.Deadline`, raises
        :class:`~repro.common.clock.DeadlineExceeded` when the budget
        expires before the lookup resolves; :meth:`lookup` is the
        non-raising tri-state form the serving layer uses.
        """
        with trace("dict.get", key=key):
            result = self.lookup(key, deadline=deadline)
        if not result.complete and result.reason == "deadline":
            raise DeadlineExceeded(f"lookup of key {key!r} missed its deadline")
        return result.value if result.found else default

    def lookup(self, key: Key, *, deadline: Any = None,
               degrade_on_error: bool = False) -> LookupResult:
        """Deadline-aware tri-state lookup (docs/robustness.md).

        The filter probe is in-memory and free; only the backing-store
        read can burn budget or fail.  A lookup that cannot confirm its
        answer in time — budget expired, or (with
        ``degrade_on_error=True``) the device unreadable — degrades to
        the conservative :data:`~repro.common.clock.Answer.MAYBE`; a
        filter negative stays an authoritative ABSENT because it never
        touches the device at all.
        """
        queries = default_registry().counter(
            "repro_dict_queries_total",
            "filtered-dictionary lookups, by outcome",
            labels=("outcome",),
        )
        self.stats.queries += 1
        if deadline is not None and deadline.expired():
            return LookupResult(Answer.MAYBE, complete=False, reason="deadline")
        if self.negative_cache is not None and self.negative_cache.known_absent(
            key, self.mutation_epoch
        ):
            # A memoized authoritative ABSENT under the current epoch —
            # no filter probe, no device read, and no adaptive feedback
            # (the first confirmation already fed the filter).
            queries.labels(outcome="negative").inc()
            return LookupResult(Answer.ABSENT)
        with trace("filter.probe"):
            maybe = self._filter.may_contain(key)
        if not maybe:
            queries.labels(outcome="negative").inc()
            if self.negative_cache is not None:
                self.negative_cache.record_absent(key, self.mutation_epoch)
            return LookupResult(Answer.ABSENT)
        self.stats.disk_reads += 1
        try:
            present = self._device.exists(("kv", key))
            value = self._device.read(("kv", key)) if present else None
        except (TransientIOError, CircuitOpenError):
            if not degrade_on_error:
                raise
            return LookupResult(
                Answer.MAYBE, complete=False, reason="unavailable", runs_skipped=1
            )
        result = LookupResult(Answer.ABSENT, runs_probed=1)
        if present:
            self.stats.positive_hits += 1
            queries.labels(outcome="hit").inc()
            result.state, result.value = Answer.PRESENT, value
        else:
            # Confirmed false positive: this is the moment the paper's
            # adaptive loop closes — the expensive read already happened,
            # so reporting back to the filter is free.
            self.stats.false_positives += 1
            queries.labels(outcome="false_positive").inc()
            if self._adaptive:
                with trace("filter.adapt"):
                    self._filter.report_false_positive(key)
                self.stats.adaptations_fed_back += 1
                default_registry().counter(
                    "repro_dict_adaptations_total",
                    "false positives fed back to an adaptive filter",
                ).inc()
        if deadline is not None and deadline.expired():
            # Resolved, but late: report the conservative MAYBE so a late
            # answer can never masquerade as meeting its SLO.
            result.state, result.complete, result.reason = (
                Answer.MAYBE, False, "deadline")
        if (
            self.negative_cache is not None
            and result.complete
            and result.state is Answer.ABSENT
        ):
            # Only a complete, in-budget ABSENT is cacheable; the late
            # MAYBE above never reaches this point with ABSENT state.
            self.negative_cache.record_absent(key, self.mutation_epoch)
        return result

    def get_many(self, keys: KeyBatch, default: Any = None,
                 *, deadline: Any = None) -> list[Any]:
        """Batched point lookup: one filter-kernel probe for the whole
        batch, then a device read per surviving (maybe-present) key.

        Outcome counters, stats, and adaptive feedback match calling
        :meth:`get` per key, with one visible difference: all probes
        happen *before* any adaptation from this batch lands, so a false
        positive repeated within a single batch is reported once per
        occurrence rather than being absorbed by the first adaptation.

        With a :class:`~repro.common.clock.Deadline`, raises
        :class:`~repro.common.clock.DeadlineExceeded` once the budget
        expires, with the results resolved so far on ``partial``.
        """
        key_list = as_key_list(keys)
        if not key_list:
            return []
        queries = default_registry().counter(
            "repro_dict_queries_total",
            "filtered-dictionary lookups, by outcome",
            labels=("outcome",),
        )
        self.stats.queries += len(key_list)
        results: list[Any] = [default] * len(key_list)
        cached_absent: set[int] = set()
        if self.negative_cache is not None:
            cached_absent = {
                i for i, key in enumerate(key_list)
                if self.negative_cache.known_absent(key, self.mutation_epoch)
            }
            if cached_absent:
                queries.labels(outcome="negative").inc(len(cached_absent))
        probe = getattr(self._filter, "may_contain_many", None)
        if probe is not None:
            maybes = np.asarray(probe(key_list), dtype=bool).tolist()
        else:
            maybes = [self._filter.may_contain(k) for k in key_list]
        negatives = sum(
            1 for i, maybe in enumerate(maybes)
            if not maybe and i not in cached_absent
        )
        if negatives:
            queries.labels(outcome="negative").inc(negatives)
        for i, (key, maybe) in enumerate(zip(key_list, maybes)):
            if i in cached_absent:
                continue
            if not maybe:
                if self.negative_cache is not None:
                    self.negative_cache.record_absent(key, self.mutation_epoch)
                continue
            if deadline is not None and deadline.expired():
                raise DeadlineExceeded(
                    "get_many missed its deadline", partial=results
                )
            self.stats.disk_reads += 1
            if self._device.exists(("kv", key)):
                self.stats.positive_hits += 1
                queries.labels(outcome="hit").inc()
                results[i] = self._device.read(("kv", key))
                continue
            self.stats.false_positives += 1
            queries.labels(outcome="false_positive").inc()
            if self.negative_cache is not None:
                self.negative_cache.record_absent(key, self.mutation_epoch)
            if self._adaptive:
                self._filter.report_false_positive(key)
                self.stats.adaptations_fed_back += 1
                default_registry().counter(
                    "repro_dict_adaptations_total",
                    "false positives fed back to an adaptive filter",
                ).inc()
        return results

    def __contains__(self, key: Key) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel
