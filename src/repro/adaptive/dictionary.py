"""The dictionary problem harness: filter + backing store + I/O accounting.

§2.3 frames adaptivity in the *dictionary* setting: a filter guards an
on-disk key/value store, every positive filter answer costs a device read,
and a false positive costs a wasted read.  This class wires any filter to a
simulated :class:`~repro.common.storage.BlockDevice`, confirms false
positives against the ground truth, and — when the filter is adaptive —
feeds them back via ``report_false_positive``.

Experiments T5/F3 measure exactly the quantity the tutorial highlights:
the number of wasted negative-lookup I/Os under adversarial and Zipfian
query streams.

Telemetry: lookups accrue to ``repro_dict_queries_total{outcome=
negative|hit|false_positive}`` and adaptation events to
``repro_dict_adaptations_total`` in the default :mod:`repro.obs`
registry; ``dict.get`` / ``filter.probe`` / ``filter.adapt`` spans are
emitted when tracing is on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.common.storage import BlockDevice
from repro.core.interfaces import AdaptiveFilter, Key, KeyBatch, as_key_list
from repro.obs.metrics import default_registry
from repro.obs.tracing import trace


@dataclass
class DictionaryStats:
    queries: int = 0
    positive_hits: int = 0
    false_positives: int = 0
    disk_reads: int = 0
    adaptations_fed_back: int = 0

    @property
    def wasted_read_rate(self) -> float:
        """False-positive disk reads per query — the §2.3 cost metric."""
        return self.false_positives / self.queries if self.queries else 0.0


class FilteredDictionary:
    """A key/value dictionary guarded by a (possibly adaptive) filter."""

    def __init__(self, filt, *, device: BlockDevice | None = None):
        self._filter = filt
        self._device = device if device is not None else BlockDevice()
        self._adaptive = isinstance(filt, AdaptiveFilter)
        self.stats = DictionaryStats()

    @property
    def filter(self):
        return self._filter

    @property
    def device(self) -> BlockDevice:
        return self._device

    def put(self, key: Key, value: Any) -> None:
        self._filter.insert(key)
        self._device.write(("kv", key), value, size=64)

    def remove(self, key: Key) -> None:
        self._device.delete(("kv", key))
        self._filter.delete(key)

    def get(self, key: Key, default: Any = None) -> Any:
        """Point lookup.  Disk is touched only when the filter says maybe."""
        queries = default_registry().counter(
            "repro_dict_queries_total",
            "filtered-dictionary lookups, by outcome",
            labels=("outcome",),
        )
        with trace("dict.get", key=key):
            self.stats.queries += 1
            with trace("filter.probe"):
                maybe = self._filter.may_contain(key)
            if not maybe:
                queries.labels(outcome="negative").inc()
                return default
            self.stats.disk_reads += 1
            if self._device.exists(("kv", key)):
                self.stats.positive_hits += 1
                queries.labels(outcome="hit").inc()
                return self._device.read(("kv", key))
            # Confirmed false positive: this is the moment the paper's adaptive
            # loop closes — the expensive read already happened, so reporting
            # back to the filter is free.
            self.stats.false_positives += 1
            queries.labels(outcome="false_positive").inc()
            if self._adaptive:
                with trace("filter.adapt"):
                    self._filter.report_false_positive(key)
                self.stats.adaptations_fed_back += 1
                default_registry().counter(
                    "repro_dict_adaptations_total",
                    "false positives fed back to an adaptive filter",
                ).inc()
            return default

    def get_many(self, keys: KeyBatch, default: Any = None) -> list[Any]:
        """Batched point lookup: one filter-kernel probe for the whole
        batch, then a device read per surviving (maybe-present) key.

        Outcome counters, stats, and adaptive feedback match calling
        :meth:`get` per key, with one visible difference: all probes
        happen *before* any adaptation from this batch lands, so a false
        positive repeated within a single batch is reported once per
        occurrence rather than being absorbed by the first adaptation.
        """
        key_list = as_key_list(keys)
        if not key_list:
            return []
        queries = default_registry().counter(
            "repro_dict_queries_total",
            "filtered-dictionary lookups, by outcome",
            labels=("outcome",),
        )
        self.stats.queries += len(key_list)
        probe = getattr(self._filter, "may_contain_many", None)
        if probe is not None:
            maybes = np.asarray(probe(key_list), dtype=bool).tolist()
        else:
            maybes = [self._filter.may_contain(k) for k in key_list]
        results: list[Any] = [default] * len(key_list)
        negatives = maybes.count(False)
        if negatives:
            queries.labels(outcome="negative").inc(negatives)
        for i, (key, maybe) in enumerate(zip(key_list, maybes)):
            if not maybe:
                continue
            self.stats.disk_reads += 1
            if self._device.exists(("kv", key)):
                self.stats.positive_hits += 1
                queries.labels(outcome="hit").inc()
                results[i] = self._device.read(("kv", key))
                continue
            self.stats.false_positives += 1
            queries.labels(outcome="false_positive").inc()
            if self._adaptive:
                self._filter.report_false_positive(key)
                self.stats.adaptations_fed_back += 1
                default_registry().counter(
                    "repro_dict_adaptations_total",
                    "false positives fed back to an adaptive filter",
                ).inc()
        return results

    def __contains__(self, key: Key) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel
