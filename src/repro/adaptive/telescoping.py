"""Telescoping adaptive filter (Lee, McCauley, Singh & Stein 2021, ESA).

Like the adaptive cuckoo filter, the telescoping filter remaps a slot's
fingerprint when a false positive is discovered — but instead of a
fixed-width selector it stores a *variable-length* adaptivity code per
slot, so un-adapted slots (the overwhelming majority) pay ~0 extra bits and
a slot that has adapted k times pays O(log k) bits.  This is the trick that
lets it adapt indefinitely within a near-optimal space budget.

``size_in_bits`` therefore charges the Elias-gamma cost of each slot's
selector on top of the fingerprints — the accounting the paper's space
claim rests on.
"""

from __future__ import annotations

import math

from repro.common.hashing import fingerprint, hash_to_range
from repro.common.varint import elias_gamma_bits
from repro.core.errors import DeletionError, FilterFullError
from repro.core.interfaces import AdaptiveFilter, Key

DEFAULT_BUCKET_CELLS = 8


class _Slot:
    __slots__ = ("fp", "selector", "key")

    def __init__(self, fp: int, selector: int, key: Key):
        self.fp = fp
        self.selector = selector
        self.key = key  # remote representation


class TelescopingFilter(AdaptiveFilter):
    """Single-table filter with variable-length per-slot hash selectors."""

    supports_deletes = True

    def __init__(
        self,
        n_buckets: int,
        fingerprint_bits: int,
        *,
        bucket_cells: int = DEFAULT_BUCKET_CELLS,
        seed: int = 0,
    ):
        if n_buckets < 1:
            raise ValueError("n_buckets must be positive")
        if not 1 <= fingerprint_bits <= 56:
            raise ValueError("fingerprint_bits must be in [1, 56]")
        self.n_buckets = n_buckets
        self.fingerprint_bits = fingerprint_bits
        self.bucket_cells = bucket_cells
        self.seed = seed
        self._buckets: list[list[_Slot]] = [[] for _ in range(n_buckets)]
        self._n = 0
        self.adaptations = 0

    def _bucket_of(self, key: Key) -> int:
        return hash_to_range(key, self.n_buckets, self.seed ^ 0x7E1E)

    def _fp(self, key: Key, selector: int) -> int:
        return fingerprint(
            key, self.fingerprint_bits, self.seed ^ 0x5C0 ^ (selector * 0x9E37)
        )

    @property
    def capacity(self) -> int:
        return int(self.n_buckets * self.bucket_cells * 0.85)

    def insert(self, key: Key) -> None:
        # Buckets are logically unbounded (the physical QF layout shifts
        # overflow into neighbouring slots); only the global load is capped.
        if self._n >= self.capacity:
            raise FilterFullError("telescoping filter at max load")
        bucket = self._buckets[self._bucket_of(key)]
        bucket.append(_Slot(self._fp(key, 0), 0, key))
        self._n += 1

    def may_contain(self, key: Key) -> bool:
        bucket = self._buckets[self._bucket_of(key)]
        return any(slot.fp == self._fp(key, slot.selector) for slot in bucket)

    def delete(self, key: Key) -> None:
        bucket = self._buckets[self._bucket_of(key)]
        for pos, slot in enumerate(bucket):
            if slot.fp == self._fp(key, slot.selector):
                bucket.pop(pos)
                self._n -= 1
                return
        raise DeletionError("delete of a key that was never inserted")

    def report_false_positive(self, key: Key) -> None:
        """Telescope every matching slot to its next hash selector."""
        bucket = self._buckets[self._bucket_of(key)]
        for slot in bucket:
            if slot.fp == self._fp(key, slot.selector):
                slot.selector += 1  # unbounded: the code is variable-length
                slot.fp = self._fp(slot.key, slot.selector)
                self.adaptations += 1

    def __len__(self) -> int:
        return self._n

    @property
    def size_in_bits(self) -> int:
        """Fingerprints + gamma-coded selectors (keys are remote)."""
        selector_bits = sum(
            elias_gamma_bits(slot.selector + 1)
            for bucket in self._buckets
            for slot in bucket
        )
        return self.n_buckets * self.bucket_cells * self.fingerprint_bits + selector_bits

    @property
    def adaptivity_bits(self) -> int:
        """Extra bits currently spent on selectors above the 1-bit floor."""
        return sum(
            elias_gamma_bits(slot.selector + 1) - 1
            for bucket in self._buckets
            for slot in bucket
        )

    @classmethod
    def for_capacity(
        cls, capacity: int, epsilon: float, *, seed: int = 0
    ) -> "TelescopingFilter":
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        cells = DEFAULT_BUCKET_CELLS
        n_buckets = max(1, math.ceil(capacity / (0.85 * cells)))
        f = max(1, math.ceil(math.log2(cells / epsilon)))
        return cls(n_buckets, f, seed=seed)
