"""Adaptive filters (§2.3): fix false positives as they are discovered.

An adaptive filter answers every negative query falsely with probability at
most ε *regardless of history* — even against an adversary that replays
discovered false positives (Bender et al.'s broom-filter guarantee).  The
host dictionary reports each confirmed false positive back to the filter,
which updates its representation so the same error does not repeat.

All three filters here keep a *remote representation* (the original keys,
conceptually co-located with the on-disk dictionary) to recompute stored
fingerprints; it is excluded from ``size_in_bits`` exactly as the papers
exclude it from the in-memory budget.
"""

from repro.adaptive.adaptive_cuckoo import AdaptiveCuckooFilter
from repro.adaptive.adaptive_quotient import AdaptiveQuotientFilter
from repro.adaptive.dictionary import FilteredDictionary
from repro.adaptive.seesaw import SeesawCountingFilter
from repro.adaptive.telescoping import TelescopingFilter

__all__ = [
    "AdaptiveCuckooFilter",
    "AdaptiveQuotientFilter",
    "FilteredDictionary",
    "SeesawCountingFilter",
    "TelescopingFilter",
]
