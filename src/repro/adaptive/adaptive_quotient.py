"""Adaptive quotient filter (Wen et al. 2025; broom filter of Bender et al.).

Adapts by *extending fingerprints*: when a negative key is discovered to
collide with a stored fingerprint, the stored entry's fingerprint grows by
enough extra hash bits (fetched via the remote representation) to separate
the two.  Extensions only ever lengthen fingerprints, which is what makes
the filter **monotonically adaptive**: the FPR guarantee holds for every
query independent of history, even against an adversary — and, unlike the
selector-swapping designs, adapting to one key can never re-expose a
previously fixed key.
"""

from __future__ import annotations

import math

from repro.common.hashing import hash64, hash_to_range
from repro.common.varint import elias_gamma_bits
from repro.core.errors import DeletionError, FilterFullError
from repro.core.interfaces import AdaptiveFilter, Key

DEFAULT_BUCKET_CELLS = 8
_MAX_EXTENSION = 48


class _Slot:
    __slots__ = ("length", "value", "key")

    def __init__(self, length: int, value: int, key: Key):
        self.length = length
        self.value = value
        self.key = key  # remote representation


class AdaptiveQuotientFilter(AdaptiveFilter):
    """Fingerprint-extending, monotonically adaptive filter."""

    supports_deletes = True

    def __init__(
        self,
        n_buckets: int,
        fingerprint_bits: int,
        *,
        bucket_cells: int = DEFAULT_BUCKET_CELLS,
        seed: int = 0,
    ):
        if n_buckets < 1:
            raise ValueError("n_buckets must be positive")
        if not 1 <= fingerprint_bits <= 40:
            raise ValueError("fingerprint_bits must be in [1, 40]")
        self.n_buckets = n_buckets
        self.base_bits = fingerprint_bits
        self.bucket_cells = bucket_cells
        self.seed = seed
        self._buckets: list[list[_Slot]] = [[] for _ in range(n_buckets)]
        self._n = 0
        self.adaptations = 0

    def _bucket_of(self, key: Key) -> int:
        return hash_to_range(key, self.n_buckets, self.seed ^ 0xA0F)

    def _hash_bits(self, key: Key, length: int) -> int:
        """The first *length* fingerprint bits of *key* (from a 64-bit pool)."""
        if length == 0:
            return 0
        h = hash64(key, self.seed ^ 0xBEEF)
        return h >> (64 - length)

    @property
    def capacity(self) -> int:
        return int(self.n_buckets * self.bucket_cells * 0.85)

    def insert(self, key: Key) -> None:
        # Buckets are logically unbounded (the physical QF layout shifts
        # overflow into neighbouring slots); only the global load is capped.
        if self._n >= self.capacity:
            raise FilterFullError("adaptive quotient filter at max load")
        bucket = self._buckets[self._bucket_of(key)]
        bucket.append(_Slot(self.base_bits, self._hash_bits(key, self.base_bits), key))
        self._n += 1

    def _matches(self, slot: _Slot, key: Key) -> bool:
        return slot.value == self._hash_bits(key, slot.length)

    def may_contain(self, key: Key) -> bool:
        bucket = self._buckets[self._bucket_of(key)]
        return any(self._matches(slot, key) for slot in bucket)

    def delete(self, key: Key) -> None:
        bucket = self._buckets[self._bucket_of(key)]
        for pos, slot in enumerate(bucket):
            if self._matches(slot, key):
                bucket.pop(pos)
                self._n -= 1
                return
        raise DeletionError("delete of a key that was never inserted")

    def report_false_positive(self, key: Key) -> None:
        """Extend every colliding fingerprint until *key* stops matching.

        The extension bits come from the resident's own hash (recomputed
        from the remote representation), so residents remain represented
        exactly; only the collision with *key* is severed.
        """
        bucket = self._buckets[self._bucket_of(key)]
        for slot in bucket:
            adapted = False
            while self._matches(slot, key) and slot.length < _MAX_EXTENSION:
                slot.length += 1
                slot.value = self._hash_bits(slot.key, slot.length)
                adapted = True
            if adapted:
                self.adaptations += 1

    def __len__(self) -> int:
        return self._n

    @property
    def size_in_bits(self) -> int:
        """Base fingerprint slots + gamma-coded extension lengths."""
        extension_bits = sum(
            (slot.length - self.base_bits)
            + elias_gamma_bits(slot.length - self.base_bits + 1)
            for bucket in self._buckets
            for slot in bucket
        )
        return (
            self.n_buckets * self.bucket_cells * self.base_bits + extension_bits
        )

    @property
    def adaptivity_bits(self) -> int:
        """Total extension bits currently carried (the broom-filter budget)."""
        return sum(
            slot.length - self.base_bits
            for bucket in self._buckets
            for slot in bucket
        )

    @classmethod
    def for_capacity(
        cls, capacity: int, epsilon: float, *, seed: int = 0
    ) -> "AdaptiveQuotientFilter":
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        cells = DEFAULT_BUCKET_CELLS
        n_buckets = max(1, math.ceil(capacity / (0.85 * cells)))
        f = max(1, math.ceil(math.log2(cells / epsilon)))
        return cls(n_buckets, f, seed=seed)
