"""Adaptive cuckoo filter (Mitzenmacher, Pontarelli & Reviriego 2020).

A cuckoo filter whose slots carry a small *hash selector*: the stored
fingerprint of a key is ``fp(key, selector)``.  When the host dictionary
discovers a false positive, the filter bumps the selector of the offending
slot and recomputes the resident's fingerprint from the remote
representation — with high probability the replayed query stops matching,
while the resident stays correctly represented (no false negatives, ever).
"""

from __future__ import annotations

import math

from repro.common.hashing import fingerprint, hash64, hash_to_range, splitmix64
from repro.core.errors import DeletionError, FilterFullError
from repro.core.interfaces import AdaptiveFilter, Key

DEFAULT_BUCKET_SIZE = 4
MAX_KICKS = 500
SELECTOR_BITS = 2
N_SELECTORS = 1 << SELECTOR_BITS


class _Slot:
    __slots__ = ("fp", "selector", "key")

    def __init__(self, fp: int, selector: int, key: Key):
        self.fp = fp
        self.selector = selector
        self.key = key  # remote representation (not charged to size_in_bits)


class AdaptiveCuckooFilter(AdaptiveFilter):
    """Cuckoo filter with per-slot hash selectors for adaptivity."""

    supports_deletes = True

    def __init__(
        self,
        n_buckets: int,
        fingerprint_bits: int,
        *,
        bucket_size: int = DEFAULT_BUCKET_SIZE,
        seed: int = 0,
    ):
        if n_buckets < 1:
            raise ValueError("n_buckets must be positive")
        if not 1 <= fingerprint_bits <= 56:
            raise ValueError("fingerprint_bits must be in [1, 56]")
        self.n_buckets = 1 << max(1, (n_buckets - 1).bit_length())
        self.fingerprint_bits = fingerprint_bits
        self.bucket_size = bucket_size
        self.seed = seed
        self._buckets: list[list[_Slot]] = [[] for _ in range(self.n_buckets)]
        self._n = 0
        self.adaptations = 0
        import numpy as np

        self._rng = np.random.default_rng(seed ^ 0xACF)

    # -- hashing ----------------------------------------------------------------

    def _fp(self, key: Key, selector: int) -> int:
        return fingerprint(key, self.fingerprint_bits, self.seed ^ (0xA0 + selector))

    def _index1(self, key: Key) -> int:
        return hash_to_range(key, self.n_buckets, self.seed ^ 0x1D)

    def _alt_index(self, index: int, key: Key) -> int:
        # The ACF relocates by key (the remote rep is available), which keeps
        # the pairing exact under selector changes.
        h = splitmix64(hash64(key, self.seed ^ 0x2E)) & (self.n_buckets - 1)
        if h == 0:
            h = 1
        return index ^ h

    def _candidate_buckets(self, key: Key) -> tuple[int, int]:
        i1 = self._index1(key)
        return i1, self._alt_index(i1, key)

    # -- operations -----------------------------------------------------------------

    def insert(self, key: Key) -> None:
        i1, i2 = self._candidate_buckets(key)
        for index in (i1, i2):
            if len(self._buckets[index]) < self.bucket_size:
                self._buckets[index].append(_Slot(self._fp(key, 0), 0, key))
                self._n += 1
                return
        # Kick chain, relocating by stored keys.
        index = i1 if self._rng.random() < 0.5 else i2
        current = _Slot(self._fp(key, 0), 0, key)
        for _ in range(MAX_KICKS):
            victim_pos = int(self._rng.integers(self.bucket_size))
            bucket = self._buckets[index]
            current, bucket[victim_pos] = bucket[victim_pos], current
            index = self._alt_index(index, current.key)
            if len(self._buckets[index]) < self.bucket_size:
                self._buckets[index].append(current)
                self._n += 1
                return
        self._buckets[index].append(current)  # overflow cell; never lose a key
        self._n += 1
        raise FilterFullError("adaptive cuckoo filter exceeded max kicks")

    def may_contain(self, key: Key) -> bool:
        for index in self._candidate_buckets(key):
            for slot in self._buckets[index]:
                if slot.fp == self._fp(key, slot.selector):
                    return True
        return False

    def delete(self, key: Key) -> None:
        for index in self._candidate_buckets(key):
            bucket = self._buckets[index]
            for pos, slot in enumerate(bucket):
                if slot.fp == self._fp(key, slot.selector):
                    bucket.pop(pos)
                    self._n -= 1
                    return
        raise DeletionError("delete of a key that was never inserted")

    def report_false_positive(self, key: Key) -> None:
        """Bump the selector of every slot the negative *key* matches.

        The slot's resident is re-fingerprinted under the next selector (its
        original key is in the remote representation), so the resident stays
        represented while *key* stops matching with probability 1 − 2^-f.
        """
        for index in self._candidate_buckets(key):
            for slot in self._buckets[index]:
                if slot.fp == self._fp(key, slot.selector):
                    slot.selector = (slot.selector + 1) % N_SELECTORS
                    slot.fp = self._fp(slot.key, slot.selector)
                    self.adaptations += 1

    # -- accounting ---------------------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def size_in_bits(self) -> int:
        """Fingerprint + selector bits per slot (keys live with the remote
        dictionary and are not charged, as in the ACF paper)."""
        return self.n_buckets * self.bucket_size * (
            self.fingerprint_bits + SELECTOR_BITS
        )

    @classmethod
    def for_capacity(
        cls, capacity: int, epsilon: float, *, seed: int = 0
    ) -> "AdaptiveCuckooFilter":
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        b = DEFAULT_BUCKET_SIZE
        f = max(1, math.ceil(math.log2(2 * b / epsilon)))
        n_buckets = max(1, math.ceil(capacity / (0.95 * b)))
        return cls(n_buckets, f, seed=seed)
