"""repro.serve — deadline-aware serving over the filter/LSM stack.

The robustness story's last layer (docs/robustness.md): per-request
deadlines, per-run circuit breakers, queue-delay load shedding, and a
:class:`ServedFilter` facade whose every degraded path answers the
always-safe MAYBE.  CLI surface: ``python -m repro serve-sim``.
"""

from repro.common.clock import (
    Answer,
    Deadline,
    DeadlineExceeded,
    LookupResult,
    SimulatedClock,
)
from repro.serve.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
    AdmissionStats,
    Priority,
    TenantQuota,
)
from repro.serve.breaker import BreakerDevice, BreakerState, CircuitBreaker
from repro.serve.served import ServedFilter, ServedResponse, ServeOutcome
from repro.serve.sim import (
    CALM_STORM_RECOVERY,
    PhaseReport,
    StormPhase,
    StormReport,
    build_stack,
    run_storm,
)
from repro.serve.reshard import (
    MigrationState,
    MigrationStep,
    ReshardCoordinator,
    ReshardReport,
    ShardedStore,
    build_sharded_stack,
    run_reshard_storm,
)
from repro.serve.tenant import (
    TENANT_STORM,
    TenantConfig,
    TenantLookup,
    TenantReport,
    TenantRouter,
    TenantStore,
    build_tenant_stack,
    run_tenant_storm,
)
from repro.serve.replica import (
    AntiEntropyRepairer,
    FailureDetector,
    HintedHandoff,
    ReplicaReport,
    ReplicatedStore,
    build_replicated_stack,
    run_replica_storm,
)

__all__ = [
    "Answer",
    "Deadline",
    "DeadlineExceeded",
    "LookupResult",
    "SimulatedClock",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionStats",
    "Priority",
    "BreakerDevice",
    "BreakerState",
    "CircuitBreaker",
    "ServedFilter",
    "ServedResponse",
    "ServeOutcome",
    "CALM_STORM_RECOVERY",
    "PhaseReport",
    "StormPhase",
    "StormReport",
    "build_stack",
    "run_storm",
    "MigrationState",
    "MigrationStep",
    "ReshardCoordinator",
    "ReshardReport",
    "ShardedStore",
    "build_sharded_stack",
    "run_reshard_storm",
    "AntiEntropyRepairer",
    "FailureDetector",
    "HintedHandoff",
    "ReplicaReport",
    "ReplicatedStore",
    "build_replicated_stack",
    "run_replica_storm",
    "TENANT_STORM",
    "TenantConfig",
    "TenantLookup",
    "TenantQuota",
    "TenantReport",
    "TenantRouter",
    "TenantStore",
    "build_tenant_stack",
    "run_tenant_storm",
]
