"""Circuit breakers for fault-storm isolation (docs/robustness.md).

A fault storm on one run's blocks must not turn every lookup into a
retry pileup: after enough failures the right move is to *stop asking*,
fast-fail reads of the sick region, and periodically probe for recovery.
That is the classic closed/open/half-open circuit breaker, driven here
by the simulated clock so trips and recoveries are reproducible.

* **CLOSED** — normal operation; outcomes feed a rolling window, and the
  breaker opens when the windowed failure rate crosses the threshold
  (with a minimum sample count, so one early failure cannot trip it).
* **OPEN** — every request is refused instantly with
  :class:`~repro.common.faults.CircuitOpenError` (which
  :class:`~repro.common.faults.RetryPolicy` deliberately does not
  retry).  After ``cooldown`` simulated seconds the breaker moves to
  half-open on the next request.
* **HALF_OPEN** — requests are allowed as probes: ``half_open_probes``
  consecutive successes close the breaker (window cleared — the sick
  period's history must not re-trip it); any failure re-opens it and
  re-arms the cooldown.

For the read path the breaker is deployed as :class:`BreakerDevice`: a
device wrapper keeping one breaker per block address (i.e. per run /
filter blob), so one sick run degrades only itself.  A fast-failed read
surfaces to :meth:`LSMTree.lookup` as a skipped run, which degrades the
answer to the always-safe MAYBE — never a false negative.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any, Callable

from repro.common.faults import CircuitOpenError, TransientIOError
from repro.obs.metrics import default_registry


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure-rate-windowed breaker on a simulated clock."""

    def __init__(
        self,
        clock: Any,
        name: str = "breaker",
        *,
        window: int = 32,
        failure_threshold: float = 0.5,
        min_samples: int = 8,
        cooldown: float = 0.25,
        half_open_probes: int = 3,
    ):
        if not 0 < failure_threshold <= 1:
            raise ValueError("failure_threshold must be in (0, 1]")
        if window < 1 or min_samples < 1 or half_open_probes < 1:
            raise ValueError("window, min_samples, half_open_probes must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        self.clock = clock
        self.name = name
        self.failure_threshold = failure_threshold
        self.min_samples = min_samples
        self.cooldown = cooldown
        self.half_open_probes = half_open_probes
        self.state = BreakerState.CLOSED
        self.transitions: list[tuple[float, BreakerState, BreakerState]] = []
        self._outcomes: deque[bool] = deque(maxlen=window)
        self._opened_at = 0.0
        self._half_open_successes = 0

    def failure_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return 1.0 - sum(self._outcomes) / len(self._outcomes)

    def samples(self) -> int:
        return len(self._outcomes)

    def _transition(self, to: BreakerState) -> None:
        self.transitions.append((self.clock.now(), self.state, to))
        default_registry().counter(
            "repro_breaker_transitions_total",
            "circuit-breaker state transitions, by destination state",
            labels=("to",),
        ).labels(to=to.value).inc()
        self.state = to

    def _open(self) -> None:
        self._opened_at = self.clock.now()
        self._transition(BreakerState.OPEN)

    def allow(self) -> bool:
        """Whether a request may proceed now (may move OPEN → HALF_OPEN)."""
        if self.state is BreakerState.OPEN:
            if self.clock.now() - self._opened_at >= self.cooldown:
                self._half_open_successes = 0
                self._transition(BreakerState.HALF_OPEN)
                return True
            return False
        return True

    def record_success(self) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._half_open_successes += 1
            if self._half_open_successes >= self.half_open_probes:
                # Recovered: the sick window must not re-trip the breaker.
                self._outcomes.clear()
                self._transition(BreakerState.CLOSED)
        elif self.state is BreakerState.CLOSED:
            self._outcomes.append(True)

    def record_failure(self) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._open()
        elif self.state is BreakerState.CLOSED:
            self._outcomes.append(False)
            if (
                len(self._outcomes) >= self.min_samples
                and self.failure_rate() >= self.failure_threshold
            ):
                self._open()

    def call(self, fn: Callable, *args, **kwargs):
        """Run *fn* through the breaker: fast-fail when open, record the
        outcome otherwise (:class:`TransientIOError` counts as failure)."""
        if not self.allow():
            raise CircuitOpenError(f"circuit {self.name!r} is open")
        try:
            result = fn(*args, **kwargs)
        except TransientIOError:
            self.record_failure()
            raise
        self.record_success()
        return result


class BreakerDevice:
    """A block-device wrapper with one read breaker per address.

    Writes, deletes, and metadata pass straight through; only reads are
    guarded, because the serving read path is what a fault storm turns
    into a retry pileup.  ``key_fn`` maps an address to its breaker key
    (default: the address itself, i.e. one breaker per run/filter blob).
    """

    def __init__(self, device: Any, clock: Any,
                 key_fn: Callable[[Any], Any] | None = None, **breaker_kwargs):
        self.inner = device
        self.clock = clock
        self.breakers: dict[Any, CircuitBreaker] = {}
        self._key_fn = key_fn if key_fn is not None else lambda address: address
        self._breaker_kwargs = breaker_kwargs

    def breaker_for(self, address: Any) -> CircuitBreaker:
        key = self._key_fn(address)
        breaker = self.breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(
                self.clock, name=str(key), **self._breaker_kwargs
            )
            self.breakers[key] = breaker
        return breaker

    def read(self, address: Any) -> Any:
        breaker = self.breaker_for(address)
        if not breaker.allow():
            default_registry().counter(
                "repro_breaker_fast_fails_total",
                "reads refused instantly by an open circuit breaker",
            ).inc()
            raise CircuitOpenError(
                f"circuit open for address {address!r}; fast-failing read"
            )
        try:
            payload = self.inner.read(address)
        except TransientIOError:
            breaker.record_failure()
            raise
        breaker.record_success()
        return payload

    def reset(self) -> None:
        """Forget all breaker state, as a process restart would.

        Breakers are in-memory protection, not durable state: after a
        crash the restarted process starts with every circuit closed and
        must re-learn which addresses are unhealthy.  Recovery paths
        call this so a breaker tripped by the pre-crash storm cannot
        fast-fail the reads that recovery itself depends on.
        """
        self.breakers.clear()

    def open_breakers(self) -> list[CircuitBreaker]:
        return [
            b for b in self.breakers.values() if b.state is not BreakerState.CLOSED
        ]

    def n_transitions(self, to: BreakerState) -> int:
        return sum(
            1
            for b in self.breakers.values()
            for _t, _src, dst in b.transitions
            if dst is to
        )

    # -- passthroughs ------------------------------------------------------------

    def write(self, address: Any, payload: Any, size: int | None = None) -> None:
        self.inner.write(address, payload, size=size)

    def delete(self, address: Any, missing_ok: bool = True) -> None:
        self.inner.delete(address, missing_ok=missing_ok)

    def exists(self, address: Any) -> bool:
        return self.inner.exists(address)

    def addresses(self) -> list[Any]:
        return self.inner.addresses()

    def __len__(self) -> int:
        return len(self.inner)

    @property
    def stats(self):
        return self.inner.stats

    @property
    def used_bytes(self) -> int:
        return self.inner.used_bytes

    def __getattr__(self, name: str):
        # Forward faulty-device extras (ruin, fault_stats, injector, ...).
        return getattr(self.inner, name)
