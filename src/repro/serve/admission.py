"""Admission control and load shedding for the serving layer.

Under overload the worst policy is FIFO-until-death: every request
queues, every request then misses its deadline, and goodput collapses to
zero even though the backend still has capacity.  The admission
controller sheds *early and selectively* instead, keyed on **queue
delay** — the observable that actually predicts a deadline miss — with
per-priority budgets so background traffic is shed long before
interactive traffic feels anything.

The model matches the repo's single simulated clock: requests carry an
*arrival* timestamp, the server works sequentially, so a request's queue
delay is simply ``clock.now() - arrival`` when it reaches the head of
the line.  Backlog length is estimated as queue delay over an EWMA of
observed service times, giving a bounded-queue cap that adapts as fault
storms make service slower.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.obs.metrics import default_registry


class Priority(enum.IntEnum):
    """Request priority classes (lower value = more important)."""

    HIGH = 0
    NORMAL = 1
    LOW = 2


@dataclass(frozen=True)
class TenantQuota:
    """Token-bucket rate limit applied per tenant.

    ``rate`` tokens refill per simulated second up to ``burst``; a
    request with no token is shed with reason ``"tenant_quota"``.  One
    noisy tenant exhausts its own bucket and nothing else — the global
    queue-delay gates still protect the server as a whole.
    """

    rate: float = 100.0
    burst: float = 20.0

    def __post_init__(self):
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.burst < 1:
            raise ValueError("burst must be at least 1")


@dataclass
class AdmissionConfig:
    """Shed thresholds, per priority class.

    ``delay_budgets`` are the maximum tolerated queue delays in simulated
    seconds; a request whose class budget is already blown is shed
    rather than served late.  ``queue_capacity`` bounds the *estimated*
    backlog (queue delay / EWMA service time) — the bounded queue.
    ``tenant_quota``, if set, additionally rate-limits each tenant with
    its own token bucket (multi-tenant isolation: repro.serve.tenant).
    """

    delay_budgets: dict[Priority, float] = field(
        default_factory=lambda: {
            Priority.HIGH: 0.200,
            Priority.NORMAL: 0.080,
            Priority.LOW: 0.030,
        }
    )
    queue_capacity: int = 128
    initial_service: float = 0.004
    ewma_alpha: float = 0.2
    tenant_quota: TenantQuota | None = None


@dataclass
class AdmissionDecision:
    admitted: bool
    queue_delay: float
    reason: str | None = None  # "queue_delay" | "queue_full" when shed


@dataclass
class AdmissionStats:
    admitted: int = 0
    shed: int = 0
    shed_by_priority: dict = field(default_factory=dict)
    shed_by_tenant: dict = field(default_factory=dict)

    def shed_rate(self) -> float:
        total = self.admitted + self.shed
        return self.shed / total if total else 0.0


class AdmissionController:
    """Queue-delay-driven load shedding over a simulated clock."""

    def __init__(self, clock: Any, config: AdmissionConfig | None = None):
        self.clock = clock
        self.config = config if config is not None else AdmissionConfig()
        self.stats = AdmissionStats()
        self.service_ewma = self.config.initial_service
        # tenant -> (tokens, last refill time); lazily created, dropped
        # again by forget_tenant() when the tenant is deprovisioned.
        self._buckets: dict[Any, tuple[float, float]] = {}

    def queue_delay(self, arrival: float) -> float:
        """How long a request that arrived at *arrival* has waited."""
        return max(0.0, self.clock.now() - arrival)

    def backlog_estimate(self, arrival: float) -> float:
        """Estimated queued requests ahead of one arriving at *arrival*."""
        if self.service_ewma <= 0.0:
            return 0.0
        return self.queue_delay(arrival) / self.service_ewma

    def _take_token(self, tenant: Any) -> bool:
        """Refill *tenant*'s bucket to now, then try to spend one token."""
        quota = self.config.tenant_quota
        now = self.clock.now()
        tokens, last = self._buckets.get(tenant, (quota.burst, now))
        tokens = min(quota.burst, tokens + (now - last) * quota.rate)
        if tokens < 1.0:
            self._buckets[tenant] = (tokens, now)
            return False
        self._buckets[tenant] = (tokens - 1.0, now)
        return True

    def forget_tenant(self, tenant: Any) -> None:
        """Drop *tenant*'s bucket state (tenant deprovisioned)."""
        self._buckets.pop(tenant, None)

    def admit(
        self, arrival: float, priority: Priority, *, tenant: Any = None
    ) -> AdmissionDecision:
        delay = self.queue_delay(arrival)
        default_registry().histogram(
            "repro_serve_queue_delay_seconds",
            "simulated queueing delay at admission time",
        ).observe(delay)
        reason = None
        if delay > self.config.delay_budgets[priority]:
            reason = "queue_delay"
        elif self.backlog_estimate(arrival) > self.config.queue_capacity:
            reason = "queue_full"
        elif (
            tenant is not None
            and self.config.tenant_quota is not None
            and not self._take_token(tenant)
        ):
            reason = "tenant_quota"
        if reason is not None:
            self.stats.shed += 1
            self.stats.shed_by_priority[priority] = (
                self.stats.shed_by_priority.get(priority, 0) + 1
            )
            if reason == "tenant_quota":
                self.stats.shed_by_tenant[tenant] = (
                    self.stats.shed_by_tenant.get(tenant, 0) + 1
                )
            default_registry().counter(
                "repro_serve_shed_total",
                "requests shed at admission, by priority and reason",
                labels=("priority", "reason"),
            ).labels(priority=priority.name.lower(), reason=reason).inc()
            return AdmissionDecision(False, delay, reason)
        self.stats.admitted += 1
        return AdmissionDecision(True, delay)

    def record_service(self, seconds: float) -> None:
        """Feed one observed service time into the EWMA estimate."""
        alpha = self.config.ewma_alpha
        self.service_ewma = (1.0 - alpha) * self.service_ewma + alpha * seconds
