"""Online resharding: crash-safe shard split/merge under live traffic.

ROADMAP #4.  A :class:`ShardedStore` spreads keys across per-shard
LSM-trees that share one (faulty, breaker-guarded) device through
:class:`~repro.common.storage.NamespacedDevice` views, routed by a
versioned :class:`~repro.core.routing.Router`.  A
:class:`ReshardCoordinator` migrates ownership online through a durable
state machine::

    PLANNED -> DOUBLE_WRITE -> BACKFILL -> VERIFY -> CUTOVER -> RETIRE -> DONE

Every transition and every batch of progress is journaled to the meta
namespace (``("reshard", seq)`` CRC-framed records) and the routing
table itself is double-buffered (``("routing", slot)``), so a crash at
*any* point recovers via :meth:`ShardedStore.recover` +
:meth:`ReshardCoordinator.recover` and the migration resumes where the
journal left off — every step is idempotent, so replaying a half-done
step converges.

Safety invariant (the same one-sided-error contract the rest of the repo
obeys): while a migration is in flight, writes **double-apply** to the
old and new owner and reads **double-read** both, answering ABSENT only
when *both* authoritative scans agree — so mid-migration degradation can
cost a MAYBE or a duplicate copy, never an ABSENT-while-present.

Migration I/O is background work: :meth:`ReshardCoordinator.pump` runs
one bounded batch per call, gated through the admission controller at
``Priority.LOW`` (shed first when the stack is overloaded) and bounded
by a deadline budget, so a storm slows resharding down instead of
resharding amplifying the storm.
"""

from __future__ import annotations

import enum
import json
import random
from dataclasses import dataclass, field
from typing import Any

from repro.apps.lsm import LSMConfig, LSMTree, ScrubReport
from repro.common.clock import (
    Answer,
    Deadline,
    DeadlineExceeded,
    LookupResult,
    SimulatedClock,
)
from repro.common.faults import (
    CircuitOpenError,
    FaultInjector,
    FaultyBlockDevice,
    LatencyInjector,
    RetryPolicy,
    SimulatedCrash,
    TransientIOError,
)
from repro.common.storage import NamespacedDevice
from repro.core.errors import ChecksumError
from repro.core.routing import (
    SHARD_SALT,
    ConsistentHashRouter,
    HashRangeRouter,
    Router,
    router_from_manifest,
)
from repro.common.hashing import hash64
from repro.core.serialize import frame, unframe
from repro.obs.metrics import default_registry
from repro.serve.admission import AdmissionConfig, AdmissionController, Priority
from repro.serve.breaker import BreakerDevice
from repro.serve.served import ServedFilter


class MigrationStep(enum.Enum):
    PLANNED = "planned"          # plan journaled, target shard exists
    DOUBLE_WRITE = "double_write"  # writes double-apply, reads double-read
    BACKFILL = "backfill"        # copy moving keys old owner -> new owner
    VERIFY = "verify"            # re-scan: every moving key present+equal
    CUTOVER = "cutover"          # swap routing table, persist new epoch
    RETIRE = "retire"            # drop moved keys/shard from the old side
    DONE = "done"


# Steps during which both owners are written / consulted.  RETIRE is
# single-owner on purpose: cutover has landed, the new routing table is
# authoritative, and the old copies are being deleted.
_BOTH_OWNER_STEPS = frozenset({
    MigrationStep.DOUBLE_WRITE, MigrationStep.BACKFILL,
    MigrationStep.VERIFY, MigrationStep.CUTOVER,
})

_MISSING = object()  # multi_get sentinel: absent-or-tombstoned


@dataclass
class MigrationState:
    """One in-flight migration: an (old_router, new_router) pair plus
    journal-backed progress.  A key must move iff the routers disagree
    about its owner."""

    kind: str                     # "split" | "merge" | "expand"
    source: int | None
    target: int
    old_router: Router
    new_router: Router
    step: MigrationStep = MigrationStep.PLANNED
    floor: Any = None             # last key durably processed in this step
    keys_moved: int = 0
    keys_verified: int = 0
    keys_retired: int = 0
    repairs: int = 0

    def moving(self, key: Any) -> bool:
        return self.old_router.owner(key) != self.new_router.owner(key)


class ShardedStore:
    """Per-shard LSM-trees behind a versioned router, one shared device.

    Exposes the deadline-aware ``lookup(key, deadline=...,
    degrade_on_error=...)`` contract, so it can sit directly behind a
    :class:`~repro.serve.served.ServedFilter`.
    """

    def __init__(
        self,
        device: Any,
        router: Router,
        *,
        shard_ids=(),
        config: LSMConfig | None = None,
        clock: SimulatedClock | None = None,
        seed: int = 0,
        meta_namespace: str = "meta",
        write_manifest: bool = True,
    ):
        self.device = device
        self.router = router
        self.clock = clock
        self.seed = seed
        self.config = config if config is not None else LSMConfig(
            memtable_entries=48, retry_attempts=3, seed=seed
        )
        self._meta = NamespacedDevice(device, meta_namespace)
        self._meta_retry = RetryPolicy(max_attempts=4, clock=clock)
        self.shards: dict[int, LSMTree] = {}
        self.migration: MigrationState | None = None
        self._epoch_base = 0
        self._routing_version = 0
        # Read-amplification accounting for the double-read window.
        self.lookups = 0
        self.owner_reads = 0
        self.double_reads = 0
        for sid in shard_ids:
            self.open_shard(sid)
        if write_manifest:
            self._write_routing_manifest()

    @classmethod
    def create(
        cls,
        device: Any,
        n_shards: int,
        *,
        seed: int = 0,
        config: LSMConfig | None = None,
        clock: SimulatedClock | None = None,
    ) -> "ShardedStore":
        """Fresh store: uniform hash-range routing over ``0..n_shards-1``."""
        router = HashRangeRouter.uniform(range(n_shards), seed=seed)
        return cls(
            device, router, shard_ids=range(n_shards),
            config=config, clock=clock, seed=seed,
        )

    # -- shard plumbing ----------------------------------------------------------

    def _shard_device(self, shard_id: int) -> NamespacedDevice:
        return NamespacedDevice(self.device, f"s{shard_id}")

    def open_shard(self, shard_id: int, *, recover: bool = False) -> LSMTree:
        """Create (or recover) the LSM-tree backing *shard_id*."""
        ns = self._shard_device(shard_id)
        if recover:
            tree = LSMTree.recover(ns, self.config)
        else:
            tree = LSMTree(self.config, device=ns)
        # Seeded per shard so concurrent retriers stay decorrelated.
        tree.retry = RetryPolicy(
            max_attempts=self.config.retry_attempts,
            jitter="decorrelated",
            base_backoff=0.0005,
            max_backoff=0.01,
            seed=self.seed ^ (0x51ED + shard_id),
            clock=self.clock,
        )
        self.shards[shard_id] = tree
        return tree

    def drop_shard(self, shard_id: int) -> None:
        """Remove a retired shard and free its blocks.

        The dropped tree's durable write cursor folds into
        ``_epoch_base`` so :attr:`mutation_epoch` stays monotone.
        """
        tree = self.shards.pop(shard_id)
        self._epoch_base += tree.wal_position + tree.mutation_epoch + 1
        ns = tree.device
        for address in ns.addresses():
            ns.delete(address)

    def shard_sizes(self) -> dict[int, int]:
        """Live entry count per shard (memtable + runs)."""
        return {
            sid: tree.n_entries_on_disk + len(tree._memtable)
            for sid, tree in self.shards.items()
        }

    def key_histogram(self, shard_id: int) -> list[int]:
        """The 64-bit routing-hash points of *shard_id*'s live keys.

        One full shard scan (charged through the device, so callers
        should sample this at planning time, not per request).  Feed to
        :meth:`HashRangeRouter.split` for a data-driven cut at the
        observed median instead of the geometric midpoint.
        """
        salt = getattr(self.router, "seed", 0) ^ SHARD_SALT
        return [
            hash64(key, salt) for key, _ in self.shards[shard_id].items()
        ]

    @property
    def mutation_epoch(self) -> int:
        """Version token for negative caches; never repeats across a crash.

        Built from each shard's *durable* WAL cursor (plus the session
        counter only when the WAL is off), the routing epoch, and a base
        bumped when shards are dropped — monotone within a session and
        across recovery, so an ABSENT memoized before a crash can never
        be replayed against a state that re-reached the same number.
        """
        per_shard = sum(
            t.wal_position if t.config.wal_enabled else t.mutation_epoch
            for t in self.shards.values()
        )
        return self._epoch_base + self.router.epoch + per_shard

    # -- routing manifest (double-buffered, like the LSM manifest) ---------------

    def _routing_payload(self) -> bytes:
        doc = {
            "version": self._routing_version,
            "epoch": self.router.epoch,
            "router": self.router.to_manifest(),
            "shards": sorted(self.shards),
            "epoch_base": self._epoch_base,
            "config": self.config.to_manifest(),
        }
        return frame(json.dumps(doc, sort_keys=True).encode())

    def _write_routing_manifest(self) -> None:
        """Persist the routing table: new version, alternate slot,
        read-back verified (a lost or torn write is retried)."""
        self._routing_version += 1
        slot = self._routing_version % 2
        payload = self._routing_payload()
        last_error: Exception | None = None
        for _attempt in range(4):
            self._meta.write(("routing", slot), payload, size=len(payload))
            try:
                raw = self._meta.read(("routing", slot))
                if json.loads(unframe(raw).decode())["version"] == \
                        self._routing_version:
                    return
            except (TransientIOError, ChecksumError, ValueError, KeyError) as e:
                last_error = e
        raise TransientIOError(
            f"routing manifest write could not be verified: {last_error}"
        )

    @staticmethod
    def load_routing_manifest(meta: Any) -> dict | None:
        """Best valid routing manifest across both slots (highest version)."""
        retry = RetryPolicy(max_attempts=4)
        best = None
        for slot in (0, 1):
            address = ("routing", slot)
            if not meta.exists(address):
                continue
            try:
                doc = json.loads(unframe(retry.call(meta.read, address)).decode())
            except (TransientIOError, ChecksumError, ValueError, KeyError):
                continue
            if best is None or doc["version"] > best["version"]:
                best = doc
        return best

    @classmethod
    def recover(
        cls,
        device: Any,
        *,
        clock: SimulatedClock | None = None,
        config: LSMConfig | None = None,
        seed: int = 0,
        meta_namespace: str = "meta",
    ) -> "ShardedStore":
        """Reopen a store from its devices alone (post-crash).

        Reads the routing manifest, recovers every listed shard's tree
        (manifest + runs + WAL replay), and restores the router at its
        persisted epoch.  Migration state, if any, is reattached by
        :meth:`ReshardCoordinator.recover` from the journal.
        """
        meta = NamespacedDevice(device, meta_namespace)
        manifest = cls.load_routing_manifest(meta)
        if manifest is None:
            raise RuntimeError("no valid routing manifest; cannot recover")
        if config is None:
            config = LSMConfig.from_manifest(manifest["config"])
        router = router_from_manifest(manifest["router"])
        store = cls(
            device, router, shard_ids=(), config=config, clock=clock,
            seed=seed, meta_namespace=meta_namespace, write_manifest=False,
        )
        store._epoch_base = manifest["epoch_base"]
        store._routing_version = manifest["version"]
        for sid in manifest["shards"]:
            store.open_shard(sid, recover=True)
        return store

    # -- reads and writes --------------------------------------------------------

    def _secondary_router(self, mig: MigrationState) -> Router:
        """The inactive router of the migration pair (pre-cutover: new;
        post-cutover: old)."""
        if self.router.epoch == mig.old_router.epoch:
            return mig.new_router
        return mig.old_router

    def _owners(self, key: Any) -> tuple[int, ...]:
        mig = self.migration
        primary = self.router.owner(key)
        if mig is None or mig.step not in _BOTH_OWNER_STEPS:
            return (primary,)
        secondary = self._secondary_router(mig).owner(key)
        return (primary,) if secondary == primary else (primary, secondary)

    def put(self, key: Any, value: Any) -> None:
        for sid in self._owners(key):
            self.shards[sid].put(key, value)

    def delete(self, key: Any) -> None:
        for sid in self._owners(key):
            self.shards[sid].delete(key)

    def lookup(
        self,
        key: Any,
        *,
        deadline: Deadline | None = None,
        degrade_on_error: bool = True,
    ) -> LookupResult:
        """Tri-state lookup across every current owner of *key*.

        Combine rule (the heart of the no-false-negative argument):
        an authoritative PRESENT from any owner wins immediately;
        ABSENT requires *every* consulted owner to be authoritative
        ABSENT; anything else degrades to MAYBE.  During the double-read
        window neither owner alone is trusted for absence — the old one
        may be mid-retirement, the new one mid-backfill.
        """
        self.lookups += 1
        owners = self._owners(key)
        self.owner_reads += len(owners)
        if len(owners) > 1:
            self.double_reads += 1
            default_registry().counter(
                "repro_reshard_double_reads_total",
                "lookups that consulted both the old and new owner",
            ).inc()
        results = []
        for sid in owners:
            result = self.shards[sid].lookup(
                key, deadline=deadline, degrade_on_error=degrade_on_error
            )
            results.append(result)
            if result.state is Answer.PRESENT and result.complete:
                break  # authoritative PRESENT: no need to consult further
        return self._combine(results)

    @staticmethod
    def _combine(results: list[LookupResult]) -> LookupResult:
        probed = sum(r.runs_probed for r in results)
        skipped = sum(r.runs_skipped for r in results)
        value = next((r.value for r in results if r.value is not None), None)
        last = results[-1]
        if last.state is Answer.PRESENT and last.complete:
            return LookupResult(
                Answer.PRESENT, last.value, complete=True,
                runs_probed=probed, runs_skipped=skipped,
            )
        if all(r.complete and r.state is Answer.ABSENT for r in results):
            return LookupResult(
                Answer.ABSENT, None, complete=True,
                runs_probed=probed, runs_skipped=skipped,
            )
        reason = next((r.reason for r in results if not r.complete), None)
        return LookupResult(
            Answer.MAYBE, value, complete=False, reason=reason,
            runs_probed=probed, runs_skipped=skipped,
        )

    def get(self, key: Any, default: Any = None) -> Any:
        result = self.lookup(key)
        return result.value if result.state is Answer.PRESENT else default

    # -- maintenance -------------------------------------------------------------

    def checkpoint(self) -> None:
        for tree in self.shards.values():
            tree.checkpoint()

    def scrub(self, repair: bool = True) -> ScrubReport:
        """Scrub every shard plus the meta namespace (routing + journal).

        A corrupt routing slot is repaired from the in-memory routing
        table; a corrupt journal record is dropped (each step record is
        superseded by its successor and every step is idempotent, so
        losing one record can only make recovery redo work, never skip
        it).
        """
        report = ScrubReport()
        for sid in sorted(self.shards):
            shard_report = self.shards[sid].scrub(repair=repair)
            report.blocks_checked += shard_report.blocks_checked
            report.corrupt.extend(shard_report.corrupt)
            report.repaired.extend(shard_report.repaired)
            report.unreadable.extend(shard_report.unreadable)
        meta_addrs = [
            a for a in self._meta.addresses()
            if isinstance(a, tuple) and a[0] in ("routing", "reshard")
        ]
        for address in sorted(meta_addrs, key=str):
            report.blocks_checked += 1
            try:
                raw = self._meta_retry.call(self._meta.read, address)
            except TransientIOError:
                report.unreadable.append(address)
                continue
            try:
                json.loads(unframe(raw).decode())
                continue
            except (ChecksumError, ValueError):
                pass
            report.corrupt.append(address)
            if not repair:
                continue
            if address[0] == "routing":
                payload = self._routing_payload()
                self._meta.write(address, payload, size=len(payload))
            else:
                self._meta.delete(address)
            report.repaired.append(address)
        return report


class ReshardCoordinator:
    """Drives one migration at a time through the journaled state machine.

    All the work happens in :meth:`pump` — one bounded, admission-gated,
    deadline-budgeted batch per call — so the caller (a serving loop, the
    storm driver) interleaves migration I/O with live traffic at
    background priority.  ``injector.maybe_crash("reshard.<step>")``
    runs after each step transition's journal write, which is where
    chaos tests inject process death.
    """

    def __init__(
        self,
        store: ShardedStore,
        *,
        clock: SimulatedClock | None = None,
        admission: AdmissionController | None = None,
        injector: FaultInjector | None = None,
        batch_keys: int = 8,
        pump_budget: float = 0.001,
    ):
        self.store = store
        self.clock = clock if clock is not None else store.clock
        self.admission = admission
        self.injector = injector
        self.batch_keys = batch_keys
        self.pump_budget = pump_budget
        self._commits_since_journal = 0
        self.pumps = 0
        self.sheds = 0
        self.io_deferred = 0
        self.last_migration: MigrationState | None = None
        self._moving: list[Any] | None = None  # keys left in the current scan
        self._journal_seq = 1 + max(
            (a[1] for a in store._meta.addresses()
             if isinstance(a, tuple) and a[0] == "reshard"),
            default=-1,
        )

    # -- planning ----------------------------------------------------------------

    def plan_split(
        self,
        source: int | None = None,
        target: int | None = None,
        *,
        data_driven: bool = False,
    ) -> MigrationState:
        """Split the hottest (or given) shard's range onto a new shard.

        With ``data_driven=True`` the cut point comes from the source
        shard's observed key-hash histogram (median of the busiest
        range) instead of the geometric midpoint — a balanced split even
        when the stored keys cluster in one corner of the hash space.
        The histogram scan is charged at planning time, once.
        """
        router = self._require_idle()
        if not isinstance(router, HashRangeRouter):
            raise TypeError("split requires a HashRangeRouter")
        if source is None:
            sizes = self.store.shard_sizes()
            source = max(sorted(sizes), key=sizes.__getitem__)
        if target is None:
            target = max(self.store.shards) + 1
        histogram = self.store.key_histogram(source) if data_driven else None
        new_router = router.split(source, target, histogram=histogram)
        mig = MigrationState("split", source, target, router, new_router)
        self._install_plan(mig, open_target=True)
        return mig

    def plan_merge(self, source: int, dest: int) -> MigrationState:
        """Merge *source*'s ranges into *dest* and retire the shard."""
        router = self._require_idle()
        if not isinstance(router, HashRangeRouter):
            raise TypeError("merge requires a HashRangeRouter")
        new_router = router.merge(source, dest)
        mig = MigrationState("merge", source, dest, router, new_router)
        self._install_plan(mig, open_target=False)
        return mig

    def plan_expand(self, target: int | None = None) -> MigrationState:
        """Add a shard to a consistent-hash ring (~1/n of keys move)."""
        router = self._require_idle()
        if not isinstance(router, ConsistentHashRouter):
            raise TypeError("expand requires a ConsistentHashRouter")
        if target is None:
            target = max(self.store.shards) + 1
        new_router = router.with_shard(target)
        mig = MigrationState("expand", None, target, router, new_router)
        self._install_plan(mig, open_target=True)
        return mig

    def _require_idle(self) -> Router:
        if self.store.migration is not None:
            raise RuntimeError("a migration is already in progress")
        return self.store.router

    def _install_plan(self, mig: MigrationState, *, open_target: bool) -> None:
        # A fresh migration supersedes the previous journal wholesale.
        for address in list(self.store._meta.addresses()):
            if isinstance(address, tuple) and address[0] == "reshard":
                self.store._meta.delete(address)
        self._journal_seq = 0
        self._journal({
            "kind": "plan",
            "step": MigrationStep.PLANNED.value,
            "plan": {
                "kind": mig.kind,
                "source": mig.source,
                "target": mig.target,
                "old_router": mig.old_router.to_manifest(),
                "new_router": mig.new_router.to_manifest(),
            },
        }, verified=True)
        if open_target and mig.target not in self.store.shards:
            self.store.open_shard(mig.target)
        # Persist the widened shard list so post-crash recovery opens the
        # target's tree before the journal is even consulted.
        self.store._write_routing_manifest()
        self.store.migration = mig
        self._moving = None
        self._commits_since_journal = 0
        self._meter_step(MigrationStep.PLANNED)
        self._crash_point("reshard.planned")

    # -- the pump ----------------------------------------------------------------

    def pump(
        self,
        arrival: float | None = None,
        *,
        budget: float | None = None,
        force: bool = False,
    ) -> bool:
        """Run one background batch of migration work.

        Returns True iff work was attempted.  With an admission
        controller attached, the batch is gated at ``Priority.LOW`` —
        under overload, migration is shed before any foreground request.
        With *arrival* (the next foreground request's arrival time), the
        batch additionally requires at least one pump budget of idle
        headroom before that arrival, so migration I/O soaks up idle
        gaps instead of queueing ahead of live traffic.  ``force=True``
        (post-storm drain) skips both gates.
        """
        mig = self.store.migration
        if mig is None:
            return False
        self.pumps += 1
        if self.admission is not None and not force:
            now = self.clock.now() if self.clock else 0.0
            decision = self.admission.admit(
                now if arrival is None else arrival, Priority.LOW
            )
            lag_cap = self.pump_budget if budget is None else budget
            # A batch can overshoot its budget by one flush/compaction
            # burst, so demand a few budgets of idle runway, not one.
            runway = 3 * lag_cap
            headroom = (arrival - now) if arrival is not None else runway
            if not decision.admitted or decision.queue_delay > lag_cap \
                    or headroom < runway:
                self.sheds += 1
                default_registry().counter(
                    "repro_reshard_pump_sheds_total",
                    "migration batches shed by admission control",
                ).inc()
                return False
        deadline = None
        if self.clock is not None:
            deadline = Deadline.after(
                self.clock, self.pump_budget if budget is None else budget
            )
        try:
            self._advance(mig, deadline)
        except (TransientIOError, CircuitOpenError, DeadlineExceeded):
            # Transient device trouble, a tripped breaker, or budget
            # exhausted: everything is idempotent, so just resume on the
            # next pump.
            self.io_deferred += 1
        return True

    def _advance(self, mig: MigrationState, deadline: Deadline | None) -> None:
        step = mig.step
        if step is MigrationStep.PLANNED:
            self._enter(mig, MigrationStep.DOUBLE_WRITE)
        elif step is MigrationStep.DOUBLE_WRITE:
            # Nothing to wait for in the simulation (no in-flight ops);
            # the step exists so recovery lands writes in both owners
            # before any copying starts.
            self._enter(mig, MigrationStep.BACKFILL)
        elif step is MigrationStep.BACKFILL:
            self._pump_backfill(mig, deadline)
        elif step is MigrationStep.VERIFY:
            self._pump_verify(mig, deadline)
        elif step is MigrationStep.CUTOVER:
            self._do_cutover(mig)
        elif step is MigrationStep.RETIRE:
            self._pump_retire(mig, deadline)

    def _enter(self, mig: MigrationState, step: MigrationStep) -> None:
        mig.step = step
        mig.floor = None
        self._moving = None
        self._commits_since_journal = 0
        self._journal({"kind": "step", "step": step.value})
        self._meter_step(step)
        self._crash_point(f"reshard.{step.value}")

    # -- scan-step machinery -----------------------------------------------------

    def _donor_shards(self, mig: MigrationState) -> list[int]:
        if mig.kind in ("split", "merge"):
            return [mig.source]
        return [s for s in sorted(self.store.shards) if s != mig.target]

    def _snapshot_moving(self, mig: MigrationState) -> list[Any]:
        """Keys that still need processing in the current scan step.

        Recomputed from the live trees after a crash; the journaled
        ``floor`` skips work that is already durable.  Keys written after
        DOUBLE_WRITE began are double-applied on arrival, so re-copying
        any of them is merely redundant, never wrong.
        """
        keys: set[Any] = set()
        for sid in self._donor_shards(mig):
            for key, _value in self.store.shards[sid].items():
                if mig.old_router.owner(key) == sid and mig.moving(key):
                    keys.add(key)
        ordered = sorted(keys)
        if mig.floor is not None:
            ordered = [k for k in ordered if k > mig.floor]
        return ordered

    def _next_batch(self, mig: MigrationState) -> list[Any]:
        if self._moving is None:
            self._moving = self._snapshot_moving(mig)
        return self._moving[: self.batch_keys]

    def _commit_batch(self, mig: MigrationState, batch: list[Any]) -> None:
        mig.floor = batch[-1]
        del self._moving[: len(batch)]
        # The floor is a pure optimisation (everything below it is merely
        # re-done on replay), so it is journaled every few batches — one
        # meta write per batch would double the pump's I/O bill.
        self._commits_since_journal += 1
        if not self._moving or self._commits_since_journal >= 4:
            self._journal({
                "kind": "progress", "step": mig.step.value, "floor": mig.floor,
            })
            self._commits_since_journal = 0

    def _pump_backfill(self, mig: MigrationState, deadline) -> None:
        batch = self._next_batch(mig)
        if not batch:
            self._enter(mig, MigrationStep.VERIFY)
            return
        source_values = self._batched_get(mig, batch, deadline, donors=True)
        moved = done = 0
        for key, value in zip(batch, source_values):
            # Budget check between keys: always make progress on at least
            # one, then yield the rest of the batch to the next pump.
            if done and deadline is not None and deadline.expired():
                break
            done += 1
            if value is _MISSING:
                continue  # deleted while we scanned; tombstone double-applied
            self.store.shards[mig.new_router.owner(key)].put(key, value)
            moved += 1
        mig.keys_moved += moved
        self._meter_keys("moved", moved)
        self._commit_batch(mig, batch[:done])
        self._crash_point("reshard.backfill:batch")

    def _pump_verify(self, mig: MigrationState, deadline) -> None:
        batch = self._next_batch(mig)
        if not batch:
            self._enter(mig, MigrationStep.CUTOVER)
            return
        source_values = self._batched_get(mig, batch, deadline, donors=True)
        target_values = self._batched_get(mig, batch, deadline, donors=False)
        repaired = 0
        for key, src, dst in zip(batch, source_values, target_values):
            if src is _MISSING:
                continue  # concurrently deleted: nothing to verify
            if dst is _MISSING or dst != src:
                # The copy is missing or stale — re-copy before cutover.
                self.store.shards[mig.new_router.owner(key)].put(key, src)
                repaired += 1
        mig.keys_verified += len(batch)
        mig.repairs += repaired
        self._meter_keys("verified", len(batch))
        if repaired:
            self._meter_keys("repaired", repaired)
        self._commit_batch(mig, batch)

    def _batched_get(self, mig, batch, deadline, *, donors: bool) -> list[Any]:
        """Current values for *batch*, read from the old owners
        (``donors=True``) or the new owners, grouped one ``multi_get``
        per shard."""
        router = mig.old_router if donors else mig.new_router
        by_shard: dict[int, list[int]] = {}
        for i, key in enumerate(batch):
            by_shard.setdefault(router.owner(key), []).append(i)
        out: list[Any] = [_MISSING] * len(batch)
        for sid, indices in by_shard.items():
            values = self.store.shards[sid].multi_get(
                [batch[i] for i in indices], default=_MISSING, deadline=deadline
            )
            for i, value in zip(indices, values):
                out[i] = value
        return out

    def _do_cutover(self, mig: MigrationState) -> None:
        """Swap the routing table and persist it.

        The cutover step was already journaled on entry, so a crash
        between the swap and the manifest write replays this method —
        both actions are idempotent.  Only a VERIFY-complete migration
        reaches here, which is why cutover is safe: the new owner has
        been proven to hold every moving key.
        """
        self.store.router = mig.new_router
        self.store._write_routing_manifest()
        default_registry().counter(
            "repro_reshard_cutover_epoch_bumps_total",
            "routing-table epoch bumps at cutover",
        ).inc()
        self._crash_point("reshard.cutover:manifest")
        self._enter(mig, MigrationStep.RETIRE)

    def _pump_retire(self, mig: MigrationState, deadline) -> None:
        if mig.kind == "merge":
            # The whole source shard moved: drop it and its blocks.
            if mig.source in self.store.shards:
                self.store.drop_shard(mig.source)
                self.store._write_routing_manifest()
            self._finish(mig)
            return
        batch = self._next_batch(mig)
        if not batch:
            self._finish(mig)
            return
        done = 0
        for key in batch:
            if done and deadline is not None and deadline.expired():
                break
            self.store.shards[mig.old_router.owner(key)].delete(key)
            done += 1
        mig.keys_retired += done
        self._meter_keys("retired", done)
        self._commit_batch(mig, batch[:done])

    def _finish(self, mig: MigrationState) -> None:
        mig.step = MigrationStep.DONE
        self._journal({"kind": "step", "step": MigrationStep.DONE.value})
        self._meter_step(MigrationStep.DONE)
        self.last_migration = mig
        self.store.migration = None
        self._moving = None
        self._crash_point("reshard.done")

    # -- journal -----------------------------------------------------------------

    def _journal(self, record: dict, *, verified: bool = False) -> None:
        record = dict(record)
        record["seq"] = self._journal_seq
        record["t"] = self.clock.now() if self.clock else 0.0
        payload = frame(json.dumps(record, sort_keys=True).encode())
        address = ("reshard", self._journal_seq)
        meta = self.store._meta
        if verified:
            for _attempt in range(4):
                meta.write(address, payload, size=len(payload))
                try:
                    if unframe(meta.read(address)):
                        break
                except (TransientIOError, ChecksumError, KeyError):
                    continue
        else:
            meta.write(address, payload, size=len(payload))
        self._journal_seq += 1

    def journal_records(self) -> list[dict]:
        """Every readable journal record, in sequence order (corrupt or
        unreadable records are skipped — recovery tolerates holes)."""
        meta = self.store._meta
        records = []
        addresses = sorted(
            a for a in meta.addresses()
            if isinstance(a, tuple) and a[0] == "reshard"
        )
        for address in addresses:
            try:
                raw = self.store._meta_retry.call(meta.read, address)
                records.append(json.loads(unframe(raw).decode()))
            except (TransientIOError, ChecksumError, ValueError, KeyError):
                continue
        return records

    @classmethod
    def recover(
        cls,
        store: ShardedStore,
        *,
        clock: SimulatedClock | None = None,
        admission: AdmissionController | None = None,
        injector: FaultInjector | None = None,
        **kwargs,
    ) -> "ReshardCoordinator":
        """Rebuild the coordinator (and the store's migration state) from
        the journal; the resumed step re-executes idempotently."""
        coord = cls(
            store, clock=clock if clock is not None else store.clock,
            admission=admission, injector=injector, **kwargs,
        )
        records = coord.journal_records()
        plan = next((r for r in records if r["kind"] == "plan"), None)
        if plan is None:
            return coord
        step = MigrationStep.PLANNED
        floor = None
        for record in records:
            if record["kind"] == "step":
                step = MigrationStep(record["step"])
                floor = None
            elif record["kind"] == "progress" and record["step"] == step.value:
                floor = record["floor"]
        if step is MigrationStep.DONE:
            return coord
        spec = plan["plan"]
        mig = MigrationState(
            spec["kind"],
            spec["source"],
            spec["target"],
            router_from_manifest(spec["old_router"]),
            router_from_manifest(spec["new_router"]),
            step=step,
            floor=floor,
        )
        # A lost manifest write could leave the target tree unopened.
        if mig.kind != "merge" and mig.target not in store.shards:
            store.open_shard(mig.target, recover=True)
        if step is MigrationStep.CUTOVER:
            # The journal says cutover began; the manifest says whether it
            # landed.  Either way re-running _do_cutover converges.
            store.router = (
                mig.new_router
                if store.router.epoch >= mig.new_router.epoch
                else mig.old_router
            )
        store.migration = mig
        return coord

    # -- crash points and telemetry ----------------------------------------------

    def _crash_point(self, name: str) -> None:
        if self.injector is not None:
            self.injector.maybe_crash(name)

    def _meter_step(self, step: MigrationStep) -> None:
        default_registry().counter(
            "repro_reshard_steps_total",
            "migration state-machine transitions, by step entered",
            labels=("step",),
        ).labels(step=step.value).inc()

    def _meter_keys(self, action: str, n: int) -> None:
        if n:
            default_registry().counter(
                "repro_reshard_keys_total",
                "keys processed by migration, by action",
                labels=("action",),
            ).labels(action=action).inc(n)

    def publish_gauges(self) -> None:
        """Point-in-time migration gauges for ``python -m repro stats``."""
        registry = default_registry()
        mig = self.store.migration
        registry.gauge(
            "repro_reshard_migration_active", "1 while a migration is in flight"
        ).set(0 if mig is None else 1)
        registry.gauge(
            "repro_reshard_routing_epoch", "active routing-table epoch"
        ).set(self.store.router.epoch)
        remaining = len(self._moving) if self._moving is not None else 0
        registry.gauge(
            "repro_reshard_scan_remaining",
            "keys left in the current migration scan step",
        ).set(remaining)


# -- storm integration -------------------------------------------------------------


def build_sharded_stack(
    seed: int = 0,
    n_keys: int = 2_000,
    n_shards: int = 4,
    *,
    budget: float = 0.050,
    base_latency: float = 0.0008,
    breaker_kwargs: dict | None = None,
    admission_config: AdmissionConfig | None = None,
    lsm_config: LSMConfig | None = None,
):
    """The sharded sibling of :func:`repro.serve.sim.build_stack`.

    One clock, one fault/latency injector pair, one faulty device, and
    one breaker bank are shared by every shard (each shard's tree sees a
    :class:`~repro.common.storage.NamespacedDevice` view), so storms and
    breakers behave exactly as in the single-tree stack.  Returns
    ``(served, store, coordinator, device, injector, latency, clock)``.
    """
    clock = SimulatedClock()
    injector = FaultInjector(seed=seed)
    latency = LatencyInjector(seed=seed, base=base_latency)
    latency.slowdown = 0.0  # load phase is free: storms start at t=0
    device = FaultyBlockDevice(injector=injector, latency=latency, clock=clock)
    breaker_device = BreakerDevice(
        device, clock, **(breaker_kwargs or {"cooldown": 0.05, "min_samples": 4})
    )
    config = lsm_config if lsm_config is not None else LSMConfig(
        memtable_entries=48, retry_attempts=3, seed=seed
    )
    store = ShardedStore.create(
        breaker_device, n_shards, seed=seed, config=config, clock=clock
    )
    for key in range(n_keys):
        store.put(key, f"value-{key}")
    latency.slowdown = 1.0
    admission = AdmissionController(clock, admission_config)
    served = ServedFilter(
        store, clock,
        admission=admission, breaker_device=breaker_device,
        default_budget=budget,
    )
    coordinator = ReshardCoordinator(
        store, clock=clock, admission=admission, injector=injector
    )
    return served, store, coordinator, device, injector, latency, clock


@dataclass
class ReshardReport:
    """What one resharded storm did: step timeline, crashes, amplification."""

    events: list[tuple[float, str]] = field(default_factory=list)
    crashes: int = 0
    recoveries: int = 0
    completed: bool = False
    keys_moved: int = 0
    keys_verified: int = 0
    keys_retired: int = 0
    repairs: int = 0
    lookups: int = 0
    double_reads: int = 0
    owner_reads: int = 0
    pump_sheds: int = 0
    final_epoch: int = 0
    final_shards: tuple[int, ...] = ()

    @property
    def double_read_amplification(self) -> float:
        """Owner scans per lookup (1.0 outside the double-read window)."""
        return self.owner_reads / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "events": [[t, label] for t, label in self.events],
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "completed": self.completed,
            "keys_moved": self.keys_moved,
            "keys_verified": self.keys_verified,
            "keys_retired": self.keys_retired,
            "repairs": self.repairs,
            "lookups": self.lookups,
            "double_reads": self.double_reads,
            "double_read_amplification": self.double_read_amplification,
            "pump_sheds": self.pump_sheds,
            "final_epoch": self.final_epoch,
            "final_shards": list(self.final_shards),
        }


def run_reshard_storm(
    seed: int = 0,
    n_keys: int = 2_000,
    n_shards: int = 4,
    *,
    phases=None,
    reshard_at: int = 250,
    kind: str = "split",
    source: int | None = None,
    crash_at_step: str | None = None,
    drain: bool = True,
    write_fraction: float = 0.0,
    **stack_kwargs,
):
    """A chaos storm with a live migration (and optionally a crash) in it.

    Runs :func:`repro.serve.sim.run_storm` over a sharded stack; at
    request *reshard_at* a split/merge is planned, and every subsequent
    request pumps one background batch.  With *crash_at_step* set, a
    one-shot :class:`~repro.common.faults.SimulatedCrash` is armed at
    ``reshard.<step>``; when it fires, all in-memory state is discarded
    and the stack is recovered from the devices (store + coordinator +
    scrub), after which the storm — and the migration — continue.

    *write_fraction* mixes seeded foreground updates of loaded keys into
    the drive (the write load that makes resharding necessary in the
    first place), so steady-vs-migration comparisons see the same lumpy
    flush/compaction behaviour in both runs.
    Returns ``(storm_report, reshard_report, coordinator)``.
    """
    from repro.serve.sim import CALM_STORM_RECOVERY, run_storm

    served, store, coordinator, device, injector, latency, clock = (
        build_sharded_stack(seed, n_keys, n_shards, **stack_kwargs)
    )
    phases = CALM_STORM_RECOVERY if phases is None else phases
    report = ReshardReport()
    state = {
        "store": store, "coord": coordinator, "requests": 0, "planned": False
    }

    def _absorb_counters(old_store: ShardedStore) -> None:
        report.lookups += old_store.lookups
        report.owner_reads += old_store.owner_reads
        report.double_reads += old_store.double_reads

    def _absorb_migration(mig: MigrationState | None) -> None:
        if mig is not None:
            report.keys_moved += mig.keys_moved
            report.keys_verified += mig.keys_verified
            report.keys_retired += mig.keys_retired
            report.repairs += mig.repairs

    def _recover(where: str) -> None:
        report.crashes += 1
        old_store = state["store"]
        _absorb_counters(old_store)
        _absorb_migration(old_store.migration)
        new_store = ShardedStore.recover(
            old_store.device, clock=clock, config=old_store.config, seed=seed
        )
        new_coord = ReshardCoordinator.recover(
            new_store, clock=clock,
            admission=served.admission, injector=injector,
        )
        new_store.scrub(repair=True)
        served.backend = new_store
        state["store"], state["coord"] = new_store, new_coord
        report.recoveries += 1
        report.events.append((clock.now() if clock else 0.0, f"recovered:{where}"))

    wrng = random.Random(seed ^ 0x3317E)

    def ticker(arrival: float) -> None:
        state["requests"] += 1
        if write_fraction and wrng.random() < write_fraction:
            key = wrng.randrange(n_keys)
            state["writes"] = state.get("writes", 0) + 1
            try:
                state["store"].put(key, f"value-{key}-u{state['writes']}")
            except (TransientIOError, CircuitOpenError):
                pass  # an update lost to a storm; the key stays present
        # reshard_at <= 0 disables the migration (plain sharded storm).
        if reshard_at > 0 and not state["planned"] \
                and state["requests"] >= reshard_at:
            state["planned"] = True
            if crash_at_step:
                injector.crash_after(f"reshard.{crash_at_step}")
            try:
                if kind == "merge":
                    shards = sorted(state["store"].shards)
                    state["coord"].plan_merge(
                        shards[-1] if source is None else source, shards[0]
                    )
                else:
                    state["coord"].plan_split(source=source)
            except SimulatedCrash as crash:
                report.events.append((clock.now(), f"crash:{crash.step}"))
                _recover(crash.step)
            else:
                report.events.append((clock.now(), "planned"))
            return
        mig = state["store"].migration
        if mig is None:
            return
        before = mig.step
        try:
            state["coord"].pump(arrival)
        except SimulatedCrash as crash:
            report.events.append((clock.now(), f"crash:{crash.step}"))
            _recover(crash.step)
            return
        after = state["store"].migration.step if state["store"].migration \
            else MigrationStep.DONE
        if after is not before:
            report.events.append((clock.now(), after.value))

    storm = run_storm(
        served, phases, seed=seed, n_keys=n_keys, ticker=ticker
    )

    if drain:
        guard = 0
        while state["store"].migration is not None and guard < 50_000:
            guard += 1
            try:
                state["coord"].pump(budget=0.050, force=True)
            except SimulatedCrash as crash:
                report.events.append((clock.now(), f"crash:{crash.step}"))
                _recover(f"drain:{crash.step}")

    final_store, final_coord = state["store"], state["coord"]
    _absorb_counters(final_store)
    _absorb_migration(
        final_store.migration
        if final_store.migration is not None
        else final_coord.last_migration
    )
    report.completed = final_store.migration is None and state["planned"]
    report.pump_sheds = final_coord.sheds
    report.final_epoch = final_store.router.epoch
    report.final_shards = tuple(sorted(final_store.shards))
    final_coord.publish_gauges()
    return storm, report, final_coord
