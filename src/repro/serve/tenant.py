"""Multi-tenant serving: a Bloofi filter-of-filters router for the fleet.

The fleet problem: thousands-to-millions of tenants, each with its own
filter, and a global question — *which tenant may hold this key?*
``ShardedFilter`` answers it by probing every shard, O(N) filter reads
per lookup.  This module answers it in O(log N):

* :class:`TenantRouter` places every tenant onto one of a few
  :class:`~repro.core.bloofi.BloofiTree` s via the existing
  :class:`~repro.core.routing.ConsistentHashRouter` (so tenant
  arrival/departure moves ~1/T of the fleet, same placement math as the
  replica tier).  Each tenant has a *summary* Bloom leaf inside its
  tree plus an *authoritative* per-tenant filter (any registry family —
  the differential suite runs them all); a lookup descends the trees'
  interior ORs, touches only MAYBE subtrees, and confirms each surviving
  candidate against its authoritative filter.
* :class:`TenantStore` is the deadline-aware backend
  (``lookup(key, deadline=..., degrade_on_error=...)`` →
  :class:`~repro.common.clock.LookupResult`) that charges simulated
  latency per filter probe, draws chaos from the shared
  :class:`~repro.common.faults.FaultInjector`, and resolves candidates
  against ground truth.  Tri-state contract as everywhere else:
  PRESENT on a ground-truth hit, ABSENT only when every tenant was
  ruled out cleanly, MAYBE whenever chaos or the deadline got in the
  way.  A degraded interior node *widens* the descent (all children
  visited); a degraded leaf or store read *forces* its tenant into the
  candidate set — degradation can cost probes, never a false ABSENT.
* :func:`run_tenant_storm` drives Zipf-distributed multi-tenant traffic
  (per-tenant quota buckets at admission, tenant churn mid-storm) and
  audits the invariants after the drain.

``serve-sim --tenants N --tenant-zipf S`` is the CLI surface;
``benchmarks/bench_r5_tenant.py`` measures router-vs-flat probe counts
and goodput; docs/robustness.md tells the story.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.common.clock import Answer, Deadline, LookupResult, SimulatedClock
from repro.common.faults import FaultInjector, LatencyInjector
from repro.core.bloofi import BloofiConfig, BloofiTree
from repro.core.routing import ConsistentHashRouter
from repro.filters.bloom import BloomFilter
from repro.obs.metrics import default_registry
from repro.serve.admission import (
    AdmissionConfig,
    AdmissionController,
    Priority,
    TenantQuota,
)
from repro.serve.served import ServedFilter, ServeOutcome
from repro.serve.sim import PhaseReport, StormPhase, StormReport
from repro.workloads.synthetic import zipf_queries


@dataclass(frozen=True)
class TenantConfig:
    """Fleet shape: how many Bloofi trees, and each tree's geometry."""

    n_trees: int = 4
    leaf_capacity: int = 64
    epsilon: float = 0.01
    seed: int = 0
    max_fanout: int = 8
    reor_interval: int = 64
    vnodes: int = 16

    def __post_init__(self):
        if self.n_trees < 1:
            raise ValueError("n_trees must be positive")

    def bloofi_config(self) -> BloofiConfig:
        return BloofiConfig(
            leaf_capacity=self.leaf_capacity,
            epsilon=self.epsilon,
            seed=self.seed,
            max_fanout=self.max_fanout,
            reor_interval=self.reor_interval,
        )


@dataclass
class TenantLookup:
    """One fleet lookup's candidates plus full probe accounting.

    ``tenants`` is the final candidate set (summary said MAYBE *and* the
    authoritative filter could not rule the tenant out).  ``probes`` is
    every filter actually read — tree nodes, summary leaves, and
    authoritative confirmations — the number the router-vs-flat
    benchmark compares.  Degradation only ever adds names to
    ``tenants``/``forced``; it never removes them.
    """

    tenants: list = field(default_factory=list)
    probes: int = 0
    probes_by_level: dict[int, int] = field(default_factory=dict)
    auth_probes: int = 0
    degraded_descents: int = 0
    forced: list = field(default_factory=list)


class TenantRouter:
    """Consistent-hash placement of tenants over Bloofi trees.

    *filter_factory*, if given, builds each tenant's authoritative
    filter (``factory(tenant) -> Filter``); the default is a Bloom
    filter sized like the summary leaves.  The differential suite
    injects every registry family through this hook.
    """

    def __init__(
        self,
        config: TenantConfig | None = None,
        *,
        filter_factory: Callable[[Any], Any] | None = None,
    ):
        self.config = config if config is not None else TenantConfig()
        self._placement = ConsistentHashRouter(
            range(self.config.n_trees),
            seed=self.config.seed,
            vnodes=self.config.vnodes,
        )
        self.trees: dict[int, BloofiTree] = {
            tid: BloofiTree(self.config.bloofi_config())
            for tid in self._placement.shard_ids()
        }
        self._filter_factory = filter_factory
        self._auth: dict[Any, Any] = {}
        self._home: dict[Any, int] = {}
        # Bumped on every mutation; versions the stacked flat-probe
        # matrix and any caller-side caches (negative cache epoch).
        self.mutations = 0
        self._flat_cache: tuple[int, list, np.ndarray] | None = None

    # -- fleet membership --------------------------------------------------------

    @property
    def n_tenants(self) -> int:
        return len(self._auth)

    def __contains__(self, tenant) -> bool:
        return tenant in self._auth

    def tenant_ids(self) -> list:
        return list(self._auth)

    def tree_of(self, tenant) -> int:
        return self._home[tenant]

    def authoritative(self, tenant) -> Any:
        return self._auth[tenant]

    def _make_auth(self, tenant) -> Any:
        if self._filter_factory is not None:
            return self._filter_factory(tenant)
        return BloomFilter(
            self.config.leaf_capacity, self.config.epsilon,
            seed=self.config.seed ^ 0xA07,
        )

    def add_tenant(self, tenant, *, authoritative: Any = None) -> None:
        if tenant in self._auth:
            raise ValueError(f"tenant {tenant!r} is already provisioned")
        home = self._placement.owner(tenant)
        self.trees[home].add_tenant(tenant)
        self._home[tenant] = home
        self._auth[tenant] = (
            authoritative if authoritative is not None
            else self._make_auth(tenant)
        )
        self.mutations += 1

    def remove_tenant(self, tenant) -> None:
        home = self._home.pop(tenant)
        self.trees[home].remove_tenant(tenant)
        del self._auth[tenant]
        self.mutations += 1

    def insert(self, tenant, key) -> None:
        """Insert into both the summary leaf and the authoritative filter.

        The mutation counter bumps even if the authoritative insert
        throws (e.g. FilterFullError): the summary leaf's bits changed
        in place either way, and a stale flat-probe matrix would make
        the flat oracle disagree with the tree.
        """
        self.trees[self._home[tenant]].insert(tenant, key)
        try:
            self._auth[tenant].insert(key)
        finally:
            self.mutations += 1

    def insert_many(self, tenant, keys) -> None:
        keys = list(keys)
        if not keys:
            return
        self.trees[self._home[tenant]].insert_many(tenant, keys)
        try:
            self._auth[tenant].insert_many(keys)
        finally:
            self.mutations += 1

    # -- aggregate properties ----------------------------------------------------

    @property
    def supports_deletes(self) -> bool:
        """True only while *every* authoritative filter still takes
        deletes.  Recomputed from the live fleet on each access — the
        ``ShardedFilter`` lesson: a tenant added (or swapped) after a
        cached answer can silently change it (tests/test_tenant.py).
        """
        return bool(self._auth) and all(
            getattr(f, "supports_deletes", False) for f in self._auth.values()
        )

    @property
    def size_in_bits(self) -> int:
        return (
            sum(t.size_in_bits for t in self.trees.values())
            + sum(f.size_in_bits for f in self._auth.values())
        )

    def check_invariants(self) -> list[str]:
        """Every tree's structural audit, plus placement consistency."""
        failures = []
        for tid, tree in self.trees.items():
            failures.extend(f"tree {tid}: {msg}" for msg in tree.check_invariants())
        for tenant, home in self._home.items():
            if tenant not in self.trees[home]:
                failures.append(f"tenant {tenant!r} missing from tree {home}")
        if sorted(self._home, key=repr) != sorted(self._auth, key=repr):
            failures.append("placement map and authoritative registry disagree")
        return failures

    def reor_all(self) -> int:
        """Full re-OR of every tree; returns total stale bits cleared."""
        return sum(tree.reor() for tree in self.trees.values())

    def stale_fraction(self) -> float:
        fractions = [t.stale_fraction() for t in self.trees.values() if len(t)]
        return max(fractions) if fractions else 0.0

    # -- lookups -----------------------------------------------------------------

    def query(
        self,
        key,
        *,
        fault: Callable[[str, Any], bool] | None = None,
    ) -> TenantLookup:
        """Which tenants may hold *key*?  O(log N) descent per tree.

        *fault*, if given, is called as ``fault(kind, detail)`` with
        ``kind`` in ``{"node", "leaf", "auth"}``; a True return degrades
        that read.  Degraded node → descend everything below it;
        degraded leaf or authoritative filter → the tenant stays a
        candidate (listed in ``forced``).  The candidate set under
        faults is always a superset of the fault-free one.
        """
        result = TenantLookup()
        for tree in self.trees.values():
            if not len(tree):
                continue
            look = tree.candidates(key, fault=fault)
            result.probes += look.probes
            for level, n in look.probes_by_level.items():
                result.probes_by_level[level] = (
                    result.probes_by_level.get(level, 0) + n
                )
            result.degraded_descents += look.degraded_descents
            result.forced.extend(look.degraded_leaves)
            forced = set(look.degraded_leaves)
            for tenant in look.tenants:
                if tenant in forced:
                    result.tenants.append(tenant)
                    continue
                if fault is not None and fault("auth", tenant):
                    result.tenants.append(tenant)
                    result.forced.append(tenant)
                    continue
                result.probes += 1
                result.auth_probes += 1
                if self._auth[tenant].may_contain(key):
                    result.tenants.append(tenant)
        return result

    def _flat_matrix(self) -> tuple[list, np.ndarray]:
        """(tenant order, stacked summary-leaf words) — rebuilt whenever
        the fleet mutates, so the flat oracle never reads stale bits."""
        cache = self._flat_cache
        if cache is not None and cache[0] == self.mutations:
            return cache[1], cache[2]
        order = sorted(self._auth, key=repr)
        if order:
            rows = [
                self.trees[self._home[t]].tenant_filter(t)._bits.words
                for t in order
            ]
            matrix = np.stack(rows)
        else:
            matrix = np.zeros((0, 0), dtype=np.uint64)
        self._flat_cache = (self.mutations, order, matrix)
        return order, matrix

    def query_flat(self, key) -> TenantLookup:
        """The O(N) control: probe every tenant's summary leaf, confirm
        positives against their authoritative filters.  Same geometry,
        same bits, no tree — the oracle the differential suite and the
        R5 benchmark compare :meth:`query` against.
        """
        result = TenantLookup()
        order, matrix = self._flat_matrix()
        if not order:
            return result
        result.probes = len(order)
        result.probes_by_level[0] = len(order)
        # One gather across the stacked leaf words: every leaf shares
        # the template geometry, so one position set serves all rows.
        tree = next(iter(self.trees.values()))
        pos = tree._template.bit_positions(key)
        widx, masks = pos >> 6, np.uint64(1) << (pos & 63).astype(np.uint64)
        hits = ((matrix[:, widx] & masks) == masks).all(axis=1)
        for i in np.flatnonzero(hits):
            tenant = order[int(i)]
            result.probes += 1
            result.auth_probes += 1
            if self._auth[tenant].may_contain(key):
                result.tenants.append(tenant)
        return result


class TenantStore:
    """Deadline-aware ground-truth store behind a :class:`TenantRouter`.

    ``mode`` picks the lookup path — ``"router"`` (Bloofi descent) or
    ``"flat"`` (full fan-out control); both resolve candidates against
    the same per-tenant ground-truth sets, so both answer PRESENT/ABSENT
    identically when nothing degrades — flat just pays O(N) probe
    latency for it.
    """

    def __init__(
        self,
        router: TenantRouter,
        clock: SimulatedClock,
        *,
        injector: FaultInjector | None = None,
        latency: LatencyInjector | None = None,
        mode: str = "router",
    ):
        if mode not in ("router", "flat"):
            raise ValueError("mode must be 'router' or 'flat'")
        self.router = router
        self.clock = clock
        self.injector = injector
        self.latency = latency
        self.mode = mode
        self.truth: dict[Any, set] = {}
        self.lookups = 0
        self.probes_total = 0

    # -- mutations (epoch-versioned for the negative cache) ----------------------

    @property
    def mutation_epoch(self) -> int:
        return self.router.mutations

    def add_tenant(self, tenant, keys=()) -> None:
        self.router.add_tenant(tenant)
        self.truth[tenant] = set()
        keys = list(keys)
        if keys:
            self.put_many(tenant, keys)

    def remove_tenant(self, tenant) -> None:
        self.router.remove_tenant(tenant)
        del self.truth[tenant]

    def put(self, tenant, key) -> None:
        self.router.insert(tenant, key)
        self.truth[tenant].add(key)

    def put_many(self, tenant, keys) -> None:
        keys = list(keys)
        self.router.insert_many(tenant, keys)
        self.truth[tenant].update(keys)

    @property
    def n_tenants(self) -> int:
        return self.router.n_tenants

    def total_keys(self) -> int:
        return sum(len(s) for s in self.truth.values())

    # -- the deadline-aware lookup ----------------------------------------------

    def _charge(self, kind: str, deadline: Deadline | None) -> bool:
        """Advance the clock by one probe's latency; True if still in
        budget (or no deadline)."""
        if self.latency is not None:
            self.clock.advance(
                self.latency.draw(self.clock.now(), "probe", (kind,))
            )
        return deadline is None or not deadline.expired()

    def lookup(
        self,
        key,
        *,
        deadline: Deadline | None = None,
        degrade_on_error: bool = True,
    ) -> LookupResult:
        """Resolve *key* across the fleet under a deadline.

        PRESENT (complete) on a ground-truth hit — set membership is
        authoritative even if other candidates degraded.  ABSENT only
        when every tenant was ruled out with no degradation anywhere.
        Otherwise MAYBE, with ``reason`` saying whether the deadline or
        a fault got there first.  ``runs_probed`` counts filter probes
        charged, ``runs_skipped`` counts candidates left unresolved.
        """
        self.lookups += 1
        fault = None
        if self.injector is not None and self.mode == "router":
            def fault(kind, detail):
                return self.injector.draw_read((f"tenant_{kind}", detail))

        look = (
            self.router.query(key, fault=fault) if self.mode == "router"
            else self.router.query_flat(key)
        )
        self.probes_total += look.probes
        registry = default_registry()
        registry.counter(
            "repro_tenant_probes_total",
            "filter probes spent answering fleet lookups, by mode",
            labels=("mode",),
        ).labels(mode=self.mode).inc(look.probes)
        by_level = registry.counter(
            "repro_tenant_probes_by_level_total",
            "tree-node probes by depth (root=0; flat mode books all at 0)",
            labels=("level",),
        )
        for level, n in look.probes_by_level.items():
            by_level.labels(level=str(level)).inc(n)

        # Charge simulated time probe by probe; the deadline can expire
        # mid-scan, which in flat mode at fleet scale it routinely does.
        for charged in range(look.probes):
            if not self._charge("filter", deadline):
                return LookupResult(
                    Answer.MAYBE, complete=False, reason="deadline",
                    runs_probed=charged + 1,
                    runs_skipped=len(look.tenants),
                )
        probes = look.probes
        degraded = look.degraded_descents > 0 or bool(look.forced)
        skipped = 0
        for tenant in look.tenants:
            probes += 1
            if not self._charge("store", deadline):
                return LookupResult(
                    Answer.MAYBE, complete=False, reason="deadline",
                    runs_probed=probes,
                    runs_skipped=1 + len(look.tenants) - look.tenants.index(tenant),
                )
            if self.injector is not None and self.injector.draw_read(
                ("tenant_store", tenant)
            ):
                skipped += 1
                continue
            if key in self.truth.get(tenant, ()):
                return LookupResult(
                    Answer.PRESENT, value=tenant, complete=True,
                    runs_probed=probes, runs_skipped=skipped,
                )
        if degraded or skipped:
            return LookupResult(
                Answer.MAYBE, complete=False, reason="unavailable",
                runs_probed=probes, runs_skipped=skipped,
            )
        return LookupResult(
            Answer.ABSENT, complete=True, runs_probed=probes,
        )


# -- the storm harness ---------------------------------------------------------


@dataclass
class TenantReport:
    """Fleet-level outcome of one tenant storm."""

    n_tenants_start: int = 0
    n_tenants_final: int = 0
    tenants_added: int = 0
    tenants_removed: int = 0
    quota_sheds: int = 0
    mean_probes: float = 0.0
    max_height: int = 0
    reor_runs: int = 0
    stale_fraction: float = 0.0
    stale_bits_cleared: int = 0
    invariant_failures: int = 0
    audit_false_negatives: int = 0
    audited_keys: int = 0

    def as_dict(self) -> dict:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}


TENANT_STORM = (
    StormPhase("calm", 200, transient_read=0.0),
    StormPhase("storm", 300, transient_read=0.4, slowdown=3.0, spike_prob=0.05),
    StormPhase("recovery", 200, transient_read=0.0),
)


def build_tenant_stack(
    seed: int = 0,
    *,
    n_tenants: int = 64,
    keys_per_tenant: int = 8,
    n_trees: int = 4,
    mode: str = "router",
    quota: TenantQuota | None = None,
    budget: float = 0.050,
    probe_latency: float = 2e-5,
    admission_config: AdmissionConfig | None = None,
):
    """Assemble the multi-tenant serving stack, fleet pre-loaded.

    Tenant *t* (ints ``0..n_tenants-1``) owns keys
    ``t*keys_per_tenant .. (t+1)*keys_per_tenant - 1`` — ground truth
    the storm's false-negative audit can recompute.  *probe_latency* is
    the per-filter-probe base cost: small (a memory read, not an I/O),
    but at fleet scale it is exactly what makes O(N) flat fan-out blow
    its deadline while the O(log N) router cruises.
    Returns ``(served, store, injector, latency, clock)``.
    """
    clock = SimulatedClock()
    injector = FaultInjector(seed=seed)
    latency = LatencyInjector(seed=seed, base=probe_latency)
    latency.slowdown = 0.0  # pre-load is free, storms start at t=0
    router = TenantRouter(TenantConfig(
        n_trees=n_trees, leaf_capacity=max(64, keys_per_tenant), seed=seed,
    ))
    store = TenantStore(
        router, clock, injector=injector, latency=latency, mode=mode,
    )
    for tenant in range(n_tenants):
        base = tenant * keys_per_tenant
        store.add_tenant(tenant, range(base, base + keys_per_tenant))
    latency.slowdown = 1.0
    if admission_config is None:
        admission_config = AdmissionConfig(tenant_quota=quota)
    elif quota is not None and admission_config.tenant_quota is None:
        admission_config.tenant_quota = quota
    admission = AdmissionController(clock, admission_config)
    served = ServedFilter(
        store, clock, admission=admission, default_budget=budget,
    )
    return served, store, injector, latency, clock


def run_tenant_storm(
    seed: int = 0,
    *,
    n_tenants: int = 64,
    keys_per_tenant: int = 8,
    n_trees: int = 4,
    mode: str = "router",
    phases=TENANT_STORM,
    zipf_skew: float = 1.1,
    churn_every: int = 0,
    quota: TenantQuota | None = None,
    budget: float = 0.050,
    probe_latency: float = 2e-5,
    present_fraction: float = 0.5,
    priority_weights: tuple[float, float, float] = (0.2, 0.6, 0.2),
    drain: bool = True,
) -> tuple[StormReport, TenantReport, TenantStore]:
    """Zipf multi-tenant traffic with optional churn; audit at the end.

    Every request is attributed to a Zipf(*zipf_skew*)-picked requesting
    tenant (billed against its quota bucket); the queried key is a live
    tenant's key with probability *present_fraction*, else guaranteed
    absent.  With ``churn_every > 0``, every that-many requests one
    tenant is deprovisioned (its quota bucket dropped) and a fresh one
    provisioned with new keys — mid-storm, under fire.

    The audit after the (optional) *drain*: zero invariant failures on
    every tree, and — with chaos switched off — every surviving
    ground-truth key still answered PRESENT (sampled at fleet scale).
    A present key answered ABSENT mid-storm counts as a false negative
    in the :class:`~repro.serve.sim.StormReport`, exactly like every
    other storm harness in this repo.
    """
    served, store, injector, latency, clock = build_tenant_stack(
        seed,
        n_tenants=n_tenants, keys_per_tenant=keys_per_tenant,
        n_trees=n_trees, mode=mode, quota=quota, budget=budget,
        probe_latency=probe_latency,
    )
    rng = random.Random(seed ^ 0x7E4A47)
    report = StormReport()
    tenant_report = TenantReport(n_tenants_start=store.n_tenants)
    priorities = (Priority.HIGH, Priority.NORMAL, Priority.LOW)

    live = list(range(n_tenants))
    next_tenant = n_tenants
    next_key = n_tenants * keys_per_tenant
    keys_of = {t: list(store.truth[t]) for t in live}
    absent_base = 1 << 40  # disjoint from every key the fleet will ever own

    total_requests = sum(p.n_requests for p in phases)
    # Zipf ranks over the *initial* fleet; churned-in tenants inherit a
    # departed rank slot (live list index) so the skew profile persists.
    rank_seq = zipf_queries(
        list(range(max(1, n_tenants))), max(1, total_requests),
        zipf_skew, seed=seed,
    )

    def churn(arrival: float) -> None:
        nonlocal next_tenant, next_key
        if len(live) > 1:
            victim = live.pop(rng.randrange(len(live)))
            store.remove_tenant(victim)
            del keys_of[victim]
            if served.admission is not None:
                served.admission.forget_tenant(victim)
            tenant_report.tenants_removed += 1
        fresh_keys = range(next_key, next_key + keys_per_tenant)
        store.add_tenant(next_tenant, fresh_keys)
        keys_of[next_tenant] = list(fresh_keys)
        live.append(next_tenant)
        next_tenant += 1
        next_key += keys_per_tenant
        tenant_report.tenants_added += 1
        default_registry().counter(
            "repro_tenant_churn_total",
            "tenant provision/deprovision events during storms",
            labels=("op",),
        ).labels(op="cycle").inc()

    request_index = 0
    arrival = clock.now()
    for phase in phases:
        injector.transient_read = {
            "tenant_node": phase.transient_read,
            "tenant_leaf": phase.transient_read,
            "tenant_store": phase.transient_read,
            "*": 0.0,
        }
        latency.slowdown = phase.slowdown
        latency.spike_prob = phase.spike_prob
        phase_report = PhaseReport(phase.name)
        report.phases.append(phase_report)
        for _ in range(phase.n_requests):
            arrival += rng.expovariate(1.0 / phase.mean_interarrival)
            if churn_every and request_index and request_index % churn_every == 0:
                churn(arrival)
            requester = live[rank_seq[request_index] % len(live)]
            present = rng.random() < present_fraction
            if present:
                owner = live[rng.randrange(len(live))]
                key = keys_of[owner][rng.randrange(len(keys_of[owner]))]
            else:
                key = absent_base + rng.randrange(1 << 30)
            priority = rng.choices(priorities, weights=priority_weights)[0]
            response = served.serve(
                key, priority=priority, arrival=arrival, tenant=requester,
            )
            phase_report.outcomes[response.outcome] += 1
            if response.outcome is ServeOutcome.SERVED:
                phase_report.latencies.append(response.latency)
            if present and response.answer is Answer.ABSENT:
                report.false_negatives += 1
            request_index += 1

    tenant_report.quota_sheds = (
        sum(served.admission.stats.shed_by_tenant.values())
        if served.admission is not None else 0
    )
    tenant_report.n_tenants_final = store.n_tenants
    tenant_report.mean_probes = (
        store.probes_total / store.lookups if store.lookups else 0.0
    )
    tenant_report.max_height = max(
        (t.height for t in store.router.trees.values()), default=0
    )

    if drain:
        # Chaos off for the audit: what must hold is a property of the
        # structures, not of a lucky fault draw.
        injector.transient_read = 0.0
        latency.slowdown = 0.0
        latency.spike_prob = 0.0
        tenant_report.stale_fraction = store.router.stale_fraction()
        tenant_report.invariant_failures = len(store.router.check_invariants())
        tenant_report.stale_bits_cleared = store.router.reor_all()
        tenant_report.invariant_failures += len(store.router.check_invariants())
        all_keys = [(t, k) for t in live for k in keys_of[t]]
        sample = (
            all_keys if len(all_keys) <= 2_000
            else rng.sample(all_keys, 2_000)
        )
        for tenant, key in sample:
            result = store.lookup(key)
            tenant_report.audited_keys += 1
            if result.state is Answer.ABSENT or (
                result.state is Answer.PRESENT and result.value != tenant
            ):
                tenant_report.audit_false_negatives += 1
    tenant_report.reor_runs = sum(
        t.reor_runs for t in store.router.trees.values()
    )

    registry = default_registry()
    registry.gauge(
        "repro_tenant_fleet_size", "live tenants in the fleet"
    ).set(store.n_tenants)
    registry.gauge(
        "repro_tenant_stale_fraction",
        "max stale interior-OR bit fraction across trees (pre-re-OR)",
    ).set(tenant_report.stale_fraction)
    registry.gauge(
        "repro_tenant_tree_height", "max Bloofi tree height in the fleet"
    ).set(tenant_report.max_height)
    served.publish_gauges()
    return report, tenant_report, store
