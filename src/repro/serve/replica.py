"""Replicated filter serving: quorum reads, hinted handoff, anti-entropy.

ROADMAP #1's replica fan-out, grown into a full replication layer.  A
:class:`ReplicatedStore` places every key on R *nodes* (replicas) using
:meth:`~repro.core.routing.Router.preference_list` over a
:class:`~repro.core.routing.ConsistentHashRouter` ring, each node a
per-namespace LSM-tree over the shared (faulty, breaker-guarded)
device.  Reads fan out in *suspicion order* — healthiest replica first,
as judged by a phi-accrual-style :class:`FailureDetector` — and combine
under a quorum rule that preserves the repo-wide one-sided-error
contract:

======================  =======================================  ========
evidence                condition                                answer
======================  =======================================  ========
live record             any replica, complete scan               PRESENT
absence (no record or   >= ``read_quorum`` *eligible* replicas,  ABSENT
tombstone)              each a complete scan
anything else           —                                        MAYBE
======================  =======================================  ========

A replica is **eligible** to vote ABSENT only while it is alive, not
*tainted* (wiped and not yet repaired), and has no pending handoff
hints — three gates that together make the no-false-negative argument
inductive: every write lands on each of its R replicas either directly,
as a durable hint (replica ineligible until the hint replays), or not
at all because hint journaling failed (replica durably tainted until
anti-entropy re-verifies it).  In every case a replica that might be
missing the key is barred from testifying to its absence.

Convergence machinery:

* **Hinted handoff** (:class:`HintedHandoff`) — writes destined for a
  suspected or unreachable replica are journaled durably (CRC-framed
  ``("hint", seq, node)`` records) and replayed in order on recovery,
  crash-safely and idempotently like the reshard journal: records carry
  a monotone write sequence and replay applies a hint only when it is
  newer than what the replica already holds.
* **Anti-entropy** (:class:`AntiEntropyRepairer`) — a background
  scrubber compares per-node, per-bucket digests (CRC chains over the
  serialized records, the same framing BBF2 uses) against the union-
  resolved expected state and streams repairs, admission-gated at
  ``Priority.LOW`` exactly like reshard pumps.  A tainted replica's
  taint clears only after a full clean digest round re-verified against
  the live tree.

Deletes are tombstone *records* (``{"s": seq, "t": true}``) written
through the same replicated path, so max-seq-wins resolution converges
them like any other write; a stale live copy can answer PRESENT during
convergence (a false positive, which the contract allows), never the
reverse.
"""

from __future__ import annotations

import json
import random
import zlib
from dataclasses import dataclass, field
from typing import Any

from repro.apps.lsm import LSMConfig, LSMTree
from repro.common.clock import (
    Answer,
    Deadline,
    DeadlineExceeded,
    LookupResult,
    SimulatedClock,
)
from repro.common.faults import (
    CircuitOpenError,
    FaultInjector,
    FaultyBlockDevice,
    LatencyInjector,
    RetryPolicy,
    SimulatedCrash,
    TransientIOError,
)
from repro.common.hashing import hash_to_range
from repro.common.storage import NamespacedDevice
from repro.core.errors import ChecksumError
from repro.core.routing import ConsistentHashRouter, Router
from repro.core.serialize import frame, unframe
from repro.obs.metrics import default_registry
from repro.serve.admission import AdmissionConfig, AdmissionController, Priority
from repro.serve.breaker import BreakerDevice
from repro.serve.served import ServedFilter

_META_NS = "replmeta"
_HANDOFF_NS = "handoff"
_DIGEST_SALT = 0xB0C6


# -- failure detection -------------------------------------------------------------


class FailureDetector:
    """Phi-accrual-style failure detector on the simulated clock.

    Every successful operation against a replica is a heartbeat; every
    failed one bumps a consecutive-failure count.  ``suspicion`` grows
    with the time since the last heartbeat relative to the observed
    heartbeat interval (the accrual part) plus the failure streak, so a
    silent replica and a loudly-failing replica both climb.  There is no
    binary up/down output — callers pick thresholds per decision, which
    is the phi-accrual design point: fan-out ordering can react at low
    suspicion while write diversion waits for high.
    """

    def __init__(self, clock: SimulatedClock, *, window: int = 8,
                 min_interval: float = 0.002):
        self.clock = clock
        self.window = window
        # Floor for the learned heartbeat interval.  Bulk loading runs
        # with zero simulated latency, so learned intervals can collapse
        # to ~0 — and then the first real gap in traffic makes every
        # healthy replica look silent for "millions" of intervals.
        # Standard phi-accrual implementations clamp the distribution
        # for exactly this reason.
        self.min_interval = min_interval
        self._last_beat: dict[int, float] = {}
        self._intervals: dict[int, list[float]] = {}
        self._failures: dict[int, int] = {}

    def heartbeat(self, node_id: int) -> None:
        now = self.clock.now()
        last = self._last_beat.get(node_id)
        if last is not None:
            history = self._intervals.setdefault(node_id, [])
            history.append(max(now - last, 1e-9))
            del history[: -self.window]
        self._last_beat[node_id] = now
        self._failures[node_id] = 0

    def record_failure(self, node_id: int) -> None:
        self._failures[node_id] = self._failures.get(node_id, 0) + 1

    def mean_interval(self, node_id: int) -> float:
        history = self._intervals.get(node_id)
        if not history:
            return 0.0
        return sum(history) / len(history)

    def suspicion(self, node_id: int) -> float:
        """Accrued suspicion: 0 for a freshly-heartbeaten replica,
        unbounded growth while it stays silent or failing."""
        phi = float(self._failures.get(node_id, 0))
        last = self._last_beat.get(node_id)
        mean = self.mean_interval(node_id)
        if last is not None and mean > 0.0:
            elapsed = self.clock.now() - last
            # -log10 P(no heartbeat for `elapsed`) under an exponential
            # inter-arrival model: elapsed/mean * log10(e).
            phi += (elapsed / max(mean, self.min_interval)) * 0.4343
        return phi

    def suspected(self, node_id: int, threshold: float = 3.0) -> bool:
        return self.suspicion(node_id) > threshold

    def publish_gauges(self, node_ids) -> None:
        gauge = default_registry().gauge(
            "repro_replica_suspicion",
            "failure-detector suspicion level per replica",
            labels=("replica",),
        )
        for node_id in node_ids:
            gauge.labels(replica=f"r{node_id}").set(self.suspicion(node_id))


# -- replica nodes -----------------------------------------------------------------


@dataclass
class ReplicaNode:
    """One replica: a namespaced LSM-tree plus liveness/taint flags.

    ``alive`` models the network (a dead node's tree is unreachable, its
    durable namespace persists).  ``tainted`` is the durable safety
    flag: set before a wipe and by hint-journaling failures, cleared
    only by a clean anti-entropy round — while set, the node may serve
    PRESENT evidence but never testify to absence.
    """

    node_id: int
    tree: LSMTree
    alive: bool = True
    tainted: bool = False

    @property
    def name(self) -> str:
        return f"r{self.node_id}"


def _is_tombstone(record: Any) -> bool:
    return isinstance(record, dict) and record.get("t") is True


def _record_seq(record: Any, default: int = 0) -> int:
    return int(record.get("s", default)) if isinstance(record, dict) else default


class ReplicatedStore:
    """R-way replicated key store behind the ServedFilter backend contract.

    Exposes ``lookup(key, deadline=..., degrade_on_error=...)`` plus
    ``mutation_epoch``, so it drops into
    :class:`~repro.serve.served.ServedFilter` exactly like an LSM-tree
    or a :class:`~repro.serve.reshard.ShardedStore`.
    """

    def __init__(
        self,
        device: Any,
        *,
        n_nodes: int = 3,
        replication: int | None = None,
        read_quorum: int | None = None,
        config: LSMConfig | None = None,
        clock: SimulatedClock | None = None,
        detector: FailureDetector | None = None,
        injector: FaultInjector | None = None,
        seed: int = 0,
        write_manifest: bool = True,
    ):
        if n_nodes < 1:
            raise ValueError("need at least one node")
        replication = min(3, n_nodes) if replication is None else replication
        if not 1 <= replication <= n_nodes:
            raise ValueError("replication must be in [1, n_nodes]")
        read_quorum = replication // 2 + 1 if read_quorum is None else read_quorum
        if not 1 <= read_quorum <= replication:
            raise ValueError("read_quorum must be in [1, replication]")
        self.device = device
        self.clock = clock
        self.injector = injector
        self.seed = seed
        self.replication = replication
        self.read_quorum = read_quorum
        self.config = config if config is not None else LSMConfig(
            memtable_entries=48, retry_attempts=3, seed=seed
        )
        self.router: Router = ConsistentHashRouter(range(n_nodes), seed=seed)
        self.detector = detector if detector is not None else FailureDetector(
            clock if clock is not None else SimulatedClock()
        )
        self._meta = NamespacedDevice(device, _META_NS)
        self._meta_retry = RetryPolicy(max_attempts=4, clock=clock)
        self.nodes: dict[int, ReplicaNode] = {}
        self.write_seq = 0
        self._seq_floor = 0
        self._epoch_base = 0
        self._state_version = 0
        self.handoff = HintedHandoff(self, injector=injector)
        for node_id in range(n_nodes):
            self._open_node(node_id)
        if write_manifest:
            self._write_state_manifest()

    # -- node plumbing -----------------------------------------------------------

    def _node_device(self, node_id: int) -> NamespacedDevice:
        return NamespacedDevice(self.device, f"r{node_id}")

    def _node_retry(self, node_id: int) -> RetryPolicy:
        return RetryPolicy(
            max_attempts=self.config.retry_attempts,
            jitter="decorrelated",
            base_backoff=0.0005,
            max_backoff=0.01,
            seed=self.seed ^ (0x4E0D + node_id),
            clock=self.clock,
        )

    def _open_node(self, node_id: int, *, recover: bool = False) -> ReplicaNode:
        ns = self._node_device(node_id)
        if recover and ns.addresses():
            tree = LSMTree.recover(ns, self.config)
        else:
            tree = LSMTree(self.config, device=ns)
        tree.retry = self._node_retry(node_id)
        node = ReplicaNode(node_id, tree)
        self.nodes[node_id] = node
        return node

    def replicas_of(self, key: Any) -> tuple[int, ...]:
        return self.router.preference_list(key, self.replication)

    @property
    def mutation_epoch(self) -> int:
        """Negative-cache version token: monotone across writes, hint
        replays (hints carry sequences already counted), and heals."""
        return self._epoch_base + self.write_seq

    # -- durable node-state manifest (double-buffered, like routing) -------------

    def _state_payload(self) -> bytes:
        doc = {
            "version": self._state_version,
            "n_nodes": len(self.nodes),
            "replication": self.replication,
            "read_quorum": self.read_quorum,
            "seed": self.seed,
            "epoch_base": self._epoch_base,
            "alive": sorted(n.node_id for n in self.nodes.values() if n.alive),
            "tainted": sorted(n.node_id for n in self.nodes.values() if n.tainted),
            "seq_floor": self._seq_floor,
            "config": self.config.to_manifest(),
        }
        return frame(json.dumps(doc, sort_keys=True).encode())

    def _write_state_manifest(self) -> None:
        self._state_version += 1
        slot = self._state_version % 2
        payload = self._state_payload()
        last_error: Exception | None = None
        for _attempt in range(4):
            self._meta.write(("nodestate", slot), payload, size=len(payload))
            try:
                raw = self._meta.read(("nodestate", slot))
                if json.loads(unframe(raw).decode())["version"] == \
                        self._state_version:
                    return
            except (TransientIOError, ChecksumError, ValueError, KeyError) as e:
                last_error = e
        raise TransientIOError(
            f"node-state manifest write could not be verified: {last_error}"
        )

    @staticmethod
    def load_state_manifest(meta: Any) -> dict | None:
        retry = RetryPolicy(max_attempts=4)
        best = None
        for slot in (0, 1):
            address = ("nodestate", slot)
            if not meta.exists(address):
                continue
            try:
                doc = json.loads(unframe(retry.call(meta.read, address)).decode())
            except (TransientIOError, ChecksumError, ValueError, KeyError):
                continue
            if best is None or doc["version"] > best["version"]:
                best = doc
        return best

    @classmethod
    def recover(
        cls,
        device: Any,
        *,
        clock: SimulatedClock | None = None,
        detector: FailureDetector | None = None,
        injector: FaultInjector | None = None,
        config: LSMConfig | None = None,
        seed: int | None = None,
    ) -> "ReplicatedStore":
        """Reopen the whole fleet from its devices alone (post-crash).

        Node trees recover from their namespaces (manifest + WAL
        replay), liveness and taint flags come back from the durable
        node-state manifest, pending hints from the handoff journal, and
        the write sequence restores as the max over every record and
        hint — so post-crash writes keep winning max-seq resolution.
        """
        meta = NamespacedDevice(device, _META_NS)
        manifest = cls.load_state_manifest(meta)
        if manifest is None:
            raise RuntimeError("no valid node-state manifest; cannot recover")
        if config is None:
            config = LSMConfig.from_manifest(manifest["config"])
        store = cls(
            device,
            n_nodes=manifest["n_nodes"],
            replication=manifest["replication"],
            read_quorum=manifest["read_quorum"],
            config=config,
            clock=clock,
            detector=detector,
            injector=injector,
            seed=manifest["seed"] if seed is None else seed,
            write_manifest=False,
        )
        store._epoch_base = manifest["epoch_base"]
        store._state_version = manifest["version"]
        alive = set(manifest["alive"])
        tainted = set(manifest["tainted"])
        for node_id in list(store.nodes):
            store.nodes.pop(node_id)
            try:
                node = store._open_node(node_id, recover=True)
            except (TransientIOError, CircuitOpenError, ChecksumError):
                # A replica whose namespace cannot be read at boot must
                # not block fleet recovery.  Bring it up empty, dead,
                # and tainted — barred from ABSENT votes — and let
                # heal() re-recover the tree (its durable blocks are
                # untouched) with anti-entropy re-verifying after.  The
                # taint is safe to hold only in memory: a re-crash
                # re-runs this open and re-derives it.
                node = store._open_node(node_id)
                node.alive = False
                node.tainted = True
                store._count_node_event("boot_taint")
                continue
            node.alive = node_id in alive
            node.tainted = node_id in tainted
        max_seq = store.handoff.max_hint_seq()
        for node in store.nodes.values():
            try:
                for _key, record in node.tree.items():
                    max_seq = max(max_seq, _record_seq(record))
            except (TransientIOError, CircuitOpenError, ChecksumError):
                node.alive = False
                node.tainted = True
                store._count_node_event("boot_taint")
        # The durable floor keeps sequences strictly monotone even when
        # the highest-seq record lives only on a boot-tainted replica we
        # could not scan — without it, post-crash writes could reuse
        # sequences and lose max-seq-wins resolution to stale records.
        store.write_seq = max(max_seq, manifest.get("seq_floor", 0))
        store._seq_floor = store.write_seq
        return store

    # -- kill / heal -------------------------------------------------------------

    def kill(self, node_id: int, *, wipe: bool = False) -> None:
        """Take a replica off the network (optionally destroying its data).

        A wipe persists the taint flag *before* deleting a single block,
        so even a crash mid-wipe leaves the replica barred from ABSENT
        votes until anti-entropy has rebuilt and re-verified it.
        """
        node = self.nodes[node_id]
        node.alive = False
        if wipe:
            node.tainted = True
            self._write_state_manifest()
            ns = node.tree.device
            for address in list(ns.addresses()):
                ns.delete(address)
            node.tree = LSMTree(self.config, device=ns)
            node.tree.retry = self._node_retry(node_id)
        else:
            self._write_state_manifest()
        self._count_node_event("kill_wipe" if wipe else "kill")

    def heal(self, node_id: int) -> None:
        """Bring a replica back: recover its tree from its namespace (WAL
        replay restores anything durable) and rejoin the read/write path.
        Taint, if set, stays until anti-entropy clears it."""
        node = self.nodes[node_id]
        ns = self._node_device(node_id)
        if ns.addresses():
            node.tree = LSMTree.recover(ns, self.config)
        else:
            node.tree = LSMTree(self.config, device=ns)
        node.tree.retry = self._node_retry(node_id)
        node.alive = True
        # The heal itself is an observation that the node is back.
        self.detector.heartbeat(node_id)
        self._epoch_base += 1  # conservatively invalidate memoized ABSENTs
        self._write_state_manifest()
        self._count_node_event("heal")

    def set_tainted(self, node_id: int, tainted: bool) -> None:
        node = self.nodes[node_id]
        if node.tainted == tainted:
            return
        node.tainted = tainted
        self._write_state_manifest()
        self._count_node_event("taint" if tainted else "taint_cleared")

    @staticmethod
    def _count_node_event(event: str) -> None:
        default_registry().counter(
            "repro_replica_node_events_total",
            "replica lifecycle events (kill/heal/taint)",
            labels=("event",),
        ).labels(event=event).inc()

    # -- writes ------------------------------------------------------------------

    def put(self, key: Any, value: Any) -> None:
        self._write(key, {"s": self._next_seq(), "v": value})

    def delete(self, key: Any) -> None:
        # A tombstone *record*, not an LSM delete: anti-entropy needs the
        # delete to exist as data so max-seq-wins can converge it.
        self._write(key, {"s": self._next_seq(), "t": True})

    # Sequences per durable high-water-mark bump: one manifest write per
    # _SEQ_SLACK writes buys crash-proof seq monotonicity (see recover).
    _SEQ_SLACK = 64

    def _next_seq(self) -> int:
        if self.write_seq >= self._seq_floor:
            # Never issue a sequence at or above the durable floor:
            # recovery restores write_seq from the floor, so a sequence
            # issued past it could be reused after a crash and stale
            # records would tie fresh ones under max-seq-wins.  If the
            # floor bump cannot be persisted the write fails whole —
            # an honest storm loss, not a silent monotonicity hole.
            prev = self._seq_floor
            self._seq_floor = self.write_seq + self._SEQ_SLACK
            try:
                self._write_state_manifest()
            except TransientIOError:
                self._seq_floor = prev
                raise
        self.write_seq += 1
        return self.write_seq

    def _write(self, key: Any, record: dict) -> None:
        for node_id in self.replicas_of(key):
            node = self.nodes[node_id]
            if not node.alive:
                self.detector.record_failure(node_id)
                self.handoff.add(node_id, key, record)
                continue
            if self.detector.suspected(node_id):
                self.handoff.add(node_id, key, record)
                continue
            try:
                node.tree.put(key, record)
            except (TransientIOError, CircuitOpenError):
                self.detector.record_failure(node_id)
                self.handoff.add(node_id, key, record)
            else:
                self.detector.heartbeat(node_id)

    def apply_record(self, node_id: int, key: Any, record: dict) -> bool:
        """Idempotently land *record* on a replica (hint replay, repair):
        applied only if strictly newer than what the replica holds.

        The read-before-write must be authoritative — an incomplete scan
        cannot prove the replica holds nothing newer — so transient
        trouble raises and the caller retries the whole (idempotent)
        apply later.
        """
        node = self.nodes[node_id]
        current = node.tree.lookup(key, degrade_on_error=True)
        if not current.complete:
            raise TransientIOError(
                f"replica r{node_id} read incomplete; apply deferred"
            )
        if _record_seq(current.value, -1) >= _record_seq(record):
            return False
        node.tree.put(key, record)
        return True

    # -- quorum reads ------------------------------------------------------------

    def _eligible_absent_voter(self, node: ReplicaNode) -> bool:
        return (
            node.alive
            and not node.tainted
            and self.handoff.pending_for(node.node_id) == 0
        )

    def _fanout_order(self, replicas) -> list[int]:
        # Stagger: healthiest replica first, stable tie-break on id so
        # the same seed replays the same probe order.
        return sorted(replicas, key=lambda r: (self.detector.suspicion(r), r))

    def lookup(
        self,
        key: Any,
        *,
        deadline: Deadline | None = None,
        degrade_on_error: bool = True,
    ) -> LookupResult:
        """Suspicion-ordered fan-out with the quorum combine rule.

        A complete scan that finds a live record answers PRESENT
        immediately (first complete answer wins — no waiting on slower
        replicas).  Absence needs ``read_quorum`` complete scans from
        eligible replicas, where a tombstone counts as absence evidence.
        Everything else is MAYBE, with the usual reasons.
        """
        self._count_outcome("lookups")
        absent_votes = 0
        probed = skipped = 0
        reasons: list[str] = []
        for node_id in self._fanout_order(self.replicas_of(key)):
            node = self.nodes[node_id]
            if deadline is not None and deadline.expired():
                reasons.append("deadline")
                break
            if not node.alive:
                self.detector.record_failure(node_id)
                reasons.append("unavailable")
                continue
            result = node.tree.lookup(
                key, deadline=deadline, degrade_on_error=degrade_on_error
            )
            probed += result.runs_probed
            skipped += result.runs_skipped
            if result.complete:
                self.detector.heartbeat(node_id)
            if result.complete and result.state is Answer.PRESENT:
                if not _is_tombstone(result.value):
                    self._count_outcome("present")
                    value = result.value["v"] if isinstance(result.value, dict) \
                        else result.value
                    return LookupResult(
                        Answer.PRESENT, value, complete=True,
                        runs_probed=probed, runs_skipped=skipped,
                    )
                # A tombstone is authoritative absence evidence, subject
                # to the same eligibility gates as a plain ABSENT.
                if self._eligible_absent_voter(node):
                    absent_votes += 1
            elif result.complete and result.state is Answer.ABSENT:
                if self._eligible_absent_voter(node):
                    absent_votes += 1
            else:
                reasons.append(result.reason or "unavailable")
            if absent_votes >= self.read_quorum:
                self._count_outcome("absent")
                return LookupResult(
                    Answer.ABSENT, None, complete=True,
                    runs_probed=probed, runs_skipped=skipped,
                )
        self._count_outcome("maybe")
        if "deadline" in reasons:
            reason = "deadline"
        elif "unavailable" in reasons:
            reason = "unavailable"
        else:
            reason = "quorum"
        return LookupResult(
            Answer.MAYBE, None, complete=False, reason=reason,
            runs_probed=probed, runs_skipped=skipped,
        )

    def get(self, key: Any, default: Any = None) -> Any:
        result = self.lookup(key)
        return result.value if result.state is Answer.PRESENT else default

    @staticmethod
    def _count_outcome(outcome: str) -> None:
        default_registry().counter(
            "repro_replica_quorum_outcomes_total",
            "replicated lookups by combine-rule outcome",
            labels=("outcome",),
        ).labels(outcome=outcome).inc()

    # -- maintenance -------------------------------------------------------------

    def checkpoint(self) -> None:
        for node in self.nodes.values():
            if node.alive:
                node.tree.checkpoint()

    def publish_gauges(self) -> None:
        registry = default_registry()
        registry.gauge(
            "repro_replica_handoff_backlog", "hints journaled but not yet replayed"
        ).set(self.handoff.pending())
        by_state = registry.gauge(
            "repro_replica_nodes", "replica nodes by state", labels=("state",)
        )
        by_state.labels(state="alive").set(
            sum(1 for n in self.nodes.values() if n.alive)
        )
        by_state.labels(state="down").set(
            sum(1 for n in self.nodes.values() if not n.alive)
        )
        by_state.labels(state="tainted").set(
            sum(1 for n in self.nodes.values() if n.tainted)
        )
        self.detector.publish_gauges(sorted(self.nodes))


# -- hinted handoff ----------------------------------------------------------------


class HintedHandoff:
    """Durable hint journal plus crash-safe, idempotent replay.

    A hint is one missed write: ``("hint", seq, node)`` in the handoff
    namespace, CRC-framed like every other meta record.  Replay walks
    hints in sequence order, applies each to its (now reachable) target
    through :meth:`ReplicatedStore.apply_record` — a no-op when the
    replica already holds something newer, which is what makes replaying
    a half-completed batch after a crash safe — and only then deletes
    the journal record.  Crash points: ``handoff.replay`` (batch entry),
    ``handoff.replay:applied`` (records applied, journal not yet
    trimmed), ``handoff.replay:batch`` (batch complete).

    If journaling a hint itself fails past retries, the target replica
    is durably *tainted* — the write is lost, so the replica must not
    testify to absence until anti-entropy has re-verified it.  That
    safety net is what lets the no-false-negative proof treat "hint
    write failed" as a closed case.
    """

    def __init__(self, store: ReplicatedStore, *, injector: FaultInjector | None):
        self.store = store
        self.injector = injector
        self._journal = NamespacedDevice(store.device, _HANDOFF_NS)
        self._retry = RetryPolicy(max_attempts=4, clock=store.clock)
        self._pending: dict[int, int] | None = None  # node_id -> hint count
        self.journaled = 0
        self.replayed = 0
        self.dropped = 0

    # -- journaling --------------------------------------------------------------

    def _hint_addresses(self) -> list[tuple]:
        return sorted(
            a for a in self._journal.addresses()
            if isinstance(a, tuple) and a[0] == "hint"
        )

    def max_hint_seq(self) -> int:
        addresses = self._hint_addresses()
        return max((a[1] for a in addresses), default=0)

    def add(self, node_id: int, key: Any, record: dict) -> None:
        doc = {"node": node_id, "key": key, "record": record}
        payload = frame(json.dumps(doc, sort_keys=True).encode())
        address = ("hint", record["s"], node_id)
        try:
            self._retry.call(
                self._journal.write, address, payload, size=len(payload)
            )
            # Verify the frame landed intact: a torn/lost hint is a lost
            # write in disguise and must taint the target.
            unframe(self._retry.call(self._journal.read, address))
        except (TransientIOError, ChecksumError, KeyError):
            self.dropped += 1
            self.store.set_tainted(node_id, True)
            self._count("dropped")
            return
        self.journaled += 1
        if self._pending is not None:
            self._pending[node_id] = self._pending.get(node_id, 0) + 1
        self._count("journaled")

    def _scan_pending(self) -> dict[int, int]:
        pending: dict[int, int] = {}
        for address in self._hint_addresses():
            pending[address[2]] = pending.get(address[2], 0) + 1
        return pending

    def pending(self) -> int:
        return sum(self.pending_by_node().values())

    def pending_by_node(self) -> dict[int, int]:
        if self._pending is None:
            self._pending = self._scan_pending()
        return self._pending

    def pending_for(self, node_id: int) -> int:
        return self.pending_by_node().get(node_id, 0)

    # -- replay ------------------------------------------------------------------

    def replay(self, *, batch: int = 8, force: bool = False) -> int:
        """Replay up to *batch* hints whose targets are reachable.

        Returns the number of hints applied-and-trimmed.  ``force``
        replays even to suspected (but alive) targets — the post-storm
        drain.  Hints for dead targets stay journaled; hints that hit
        transient trouble are skipped this round and retried later.
        """
        self._crash_point("handoff.replay")
        applied: list[tuple] = []
        for address in self._hint_addresses():
            if len(applied) >= batch:
                break
            node_id = address[2]
            node = self.store.nodes.get(node_id)
            if node is None or not node.alive:
                continue
            if not force and self.store.detector.suspected(node_id):
                continue
            try:
                raw = self._retry.call(self._journal.read, address)
                doc = json.loads(unframe(raw).decode())
                self.store.apply_record(node_id, doc["key"], doc["record"])
            except (TransientIOError, CircuitOpenError, ChecksumError,
                    ValueError, KeyError):
                continue
            self.store.detector.heartbeat(node_id)
            applied.append((address, node_id))
        if not applied:
            return 0
        self._crash_point("handoff.replay:applied")
        for address, node_id in applied:
            self._journal.delete(address)
            if self._pending is not None and self._pending.get(node_id):
                self._pending[node_id] -= 1
                if not self._pending[node_id]:
                    del self._pending[node_id]
        self.replayed += len(applied)
        self._count("replayed", len(applied))
        self._crash_point("handoff.replay:batch")
        return len(applied)

    def _crash_point(self, name: str) -> None:
        if self.injector is not None:
            self.injector.maybe_crash(name)

    @staticmethod
    def _count(action: str, n: int = 1) -> None:
        default_registry().counter(
            "repro_replica_hints_total",
            "hinted-handoff records, by action",
            labels=("action",),
        ).labels(action=action).inc(n)


# -- anti-entropy ------------------------------------------------------------------


class AntiEntropyRepairer:
    """Background digest comparison and repair streaming.

    The key space is carved into ``n_buckets`` hash buckets.  Each
    repair *round* starts with one snapshot scan of every alive
    replica's records (the round's I/O bill, charged through the normal
    device path); each :meth:`pump` then checks one ``(node, bucket)``
    cell against the snapshot: the replica's *actual* digest (CRC chain
    over its serialized records in the bucket) versus the *expected*
    digest (the max-seq winner per key, unioned across alive replicas,
    restricted to keys the replica is responsible for).  On mismatch the
    winners stream into the replica.  A tainted replica's taint clears
    only after a full clean round *and* a live re-verification of its
    digests — the snapshot alone is not trusted for a safety flag.

    Pumps are admission-gated at ``Priority.LOW`` with the same idle-
    runway rule as reshard pumps, so repair I/O soaks up slack instead
    of competing with foreground reads — and every pump does one
    *time-bounded* unit of work (scan one replica into the round's
    snapshot, or check one bucket with repair streaming cut off at
    ``pump_io_budget`` of simulated time, resuming the same cell next
    pump).  The device is serial: a pump that charged 100 ms of
    simulated I/O would stall every foreground request that arrived
    meanwhile, so boundedness here *is* the availability story.  Unless
    ``continuous=True``, pumps are no-ops while no replica is tainted —
    steady-state repair tax is zero until something actually needs
    repair.
    """

    def __init__(
        self,
        store: ReplicatedStore,
        *,
        admission: AdmissionController | None = None,
        injector: FaultInjector | None = None,
        n_buckets: int = 16,
        pump_budget: float = 0.001,
        pump_io_budget: float = 0.005,
        continuous: bool = False,
    ):
        self.store = store
        self.clock = store.clock
        self.admission = admission
        self.injector = injector
        self.n_buckets = n_buckets
        self.pump_budget = pump_budget
        self.pump_io_budget = pump_io_budget
        self.continuous = continuous
        # Round state machine: scan alive replicas one per pump, then
        # check (node, bucket) cells one per pump.
        self._scan_queue: list[int] = []
        self._cells: list[tuple[int, int]] = []
        self._building: dict[int, dict[Any, Any]] = {}
        self._snapshot: dict[int, dict[Any, Any]] | None = None
        self._clean_streak: dict[int, int] = {}
        self.pumps = 0
        self.sheds = 0
        self.io_deferred = 0
        self.buckets_checked = 0
        self.repairs = 0
        self.repair_bytes = 0
        self.rounds = 0

    # -- digests -----------------------------------------------------------------

    def bucket_of(self, key: Any) -> int:
        return hash_to_range(key, self.n_buckets, self.store.seed ^ _DIGEST_SALT)

    @staticmethod
    def _chain(records) -> int:
        digest = 0
        for key, record in sorted(records, key=lambda kr: str(kr[0])):
            payload = frame(
                json.dumps([key, record], sort_keys=True, default=repr).encode()
            )
            digest = zlib.crc32(payload, digest)
        return digest

    def _bucketize(self, records) -> dict[int, list[tuple]]:
        buckets: dict[int, list[tuple]] = {}
        for key, record in records:
            buckets.setdefault(self.bucket_of(key), []).append((key, record))
        return buckets

    def node_digests(self, node_id: int) -> dict[int, int]:
        """Live per-bucket digests of one replica's stored records (one
        full scan, charged through the device)."""
        buckets = self._bucketize(self.store.nodes[node_id].tree.items())
        return {
            b: self._chain(buckets.get(b, [])) for b in range(self.n_buckets)
        }

    def expected_digests(self, node_id: int) -> dict[int, int]:
        """Live per-bucket digests of the union-resolved state this
        replica *should* hold."""
        winners: dict[Any, Any] = {}
        for other in self.store.nodes.values():
            if not other.alive:
                continue
            for key, record in other.tree.items():
                if node_id not in self.store.replicas_of(key):
                    continue
                if key not in winners or \
                        _record_seq(record) > _record_seq(winners[key]):
                    winners[key] = record
        buckets = self._bucketize(winners.items())
        return {
            b: self._chain(buckets.get(b, [])) for b in range(self.n_buckets)
        }

    def converged(self) -> bool:
        """Every alive replica's live digests equal its expected digests."""
        return all(
            self.node_digests(node_id) == self.expected_digests(node_id)
            for node_id, node in self.store.nodes.items()
            if node.alive
        )

    # -- the pump ----------------------------------------------------------------

    def _active(self) -> bool:
        return self.continuous or any(
            n.tainted for n in self.store.nodes.values()
        )

    @property
    def idle(self) -> bool:
        """True between rounds (no scan or cell in flight)."""
        return not self._scan_queue and not self._cells

    def pump(
        self,
        arrival: float | None = None,
        *,
        budget: float | None = None,
        force: bool = False,
    ) -> bool:
        """One bounded unit of repair work; returns True iff attempted.

        Gating mirrors the reshard pump: admitted at LOW priority, with
        idle runway before the next arrival.  A unit is one replica scan
        (building the round's snapshot) or one bucket check; repair
        streaming inside a bucket stops at ``pump_io_budget`` of
        simulated time and the cell is retried next pump, so no single
        pump can stall the serial device for long.
        """
        if not force and not self._active():
            return False
        self.pumps += 1
        if self.admission is not None and not force:
            now = self.clock.now() if self.clock else 0.0
            decision = self.admission.admit(
                now if arrival is None else arrival, Priority.LOW
            )
            lag_cap = self.pump_budget if budget is None else budget
            runway = 3 * lag_cap
            headroom = (arrival - now) if arrival is not None else runway
            if not decision.admitted or decision.queue_delay > lag_cap \
                    or headroom < runway:
                self.sheds += 1
                default_registry().counter(
                    "repro_replica_repair_sheds_total",
                    "anti-entropy pumps shed by admission control",
                ).inc()
                return False
        if not self._scan_queue and not self._cells:
            alive = [
                n for n in sorted(self.store.nodes)
                if self.store.nodes[n].alive
            ]
            if not alive:
                return False
            self._scan_queue = alive
            self._building = {}
        if self._scan_queue:
            node_id = self._scan_queue[0]
            node = self.store.nodes.get(node_id)
            if node is None or not node.alive:
                self._scan_queue.pop(0)
            else:
                try:
                    self._building[node_id] = dict(node.tree.items())
                except (TransientIOError, CircuitOpenError, DeadlineExceeded):
                    self.io_deferred += 1
                    return True
                self._scan_queue.pop(0)
            if not self._scan_queue:
                self._snapshot = self._building
                self._cells = [
                    (n, b) for n in self._snapshot for b in range(self.n_buckets)
                ]
                self.rounds += 1
            return True
        node_id, bucket = self._cells[0]
        node = self.store.nodes.get(node_id)
        if node is None or not node.alive:
            self._cells.pop(0)
            return True
        try:
            done = self._check_bucket(node_id, bucket)
        except (TransientIOError, CircuitOpenError, DeadlineExceeded):
            self.io_deferred += 1
            return True
        if done:
            self._cells.pop(0)
        return True

    def _io_deadline(self) -> Deadline | None:
        if self.clock is None:
            return None
        return Deadline.after(self.clock, self.pump_io_budget)

    def _check_bucket(self, node_id: int, bucket: int) -> bool:
        """Digest-check one cell against the round snapshot, streaming
        repairs under a time budget.  Returns True when the cell is done
        (clean or fully streamed), False to resume next pump."""
        self.buckets_checked += 1
        snapshot = self._snapshot or {}
        if node_id not in snapshot:
            return True
        winners: dict[Any, Any] = {}
        for records in snapshot.values():
            for key, record in records.items():
                if self.bucket_of(key) != bucket:
                    continue
                if node_id not in self.store.replicas_of(key):
                    continue
                if key not in winners or \
                        _record_seq(record) > _record_seq(winners[key]):
                    winners[key] = record
        actual = {
            key: record for key, record in snapshot[node_id].items()
            if self.bucket_of(key) == bucket
        }
        if self._chain(winners.items()) == self._chain(actual.items()):
            self._mark_clean(node_id)
            return True
        self._crash_point("repair.stream")
        deadline = self._io_deadline()
        repaired = 0
        exhausted = True
        for key, record in sorted(winners.items(), key=lambda kr: str(kr[0])):
            if _record_seq(actual.get(key), -1) >= _record_seq(record):
                continue
            if deadline is not None and deadline.expired():
                exhausted = False  # resume this cell next pump
                break
            self.store.nodes[node_id].tree.put(key, record)
            snapshot[node_id][key] = record
            repaired += 1
            self.repair_bytes += len(
                frame(json.dumps([key, record], sort_keys=True,
                                 default=repr).encode())
            )
        self.repairs += repaired
        self._count("streamed", repaired)
        if not exhausted:
            return False
        # Streaming only adds newer records; a replica holding spurious
        # extras still mismatches, resets the streak, and gets re-checked
        # next round.
        refreshed = {
            key: record for key, record in snapshot[node_id].items()
            if self.bucket_of(key) == bucket
        }
        if self._chain(winners.items()) == self._chain(refreshed.items()):
            self._mark_clean(node_id)
        else:
            self._clean_streak[node_id] = 0
        return True

    def _mark_clean(self, node_id: int) -> None:
        streak = self._clean_streak.get(node_id, 0) + 1
        self._clean_streak[node_id] = streak
        node = self.store.nodes[node_id]
        if not node.tainted or streak < self.n_buckets \
                or self.store.handoff.pending_for(node_id):
            return
        # A taint clear re-enables ABSENT votes, so it must not rest on a
        # possibly-stale snapshot: re-verify against the live trees.
        self._clean_streak[node_id] = 0
        if self.node_digests(node_id) == self.expected_digests(node_id):
            self.store.set_tainted(node_id, False)

    def _crash_point(self, name: str) -> None:
        if self.injector is not None:
            self.injector.maybe_crash(name)

    @staticmethod
    def _count(action: str, n: int) -> None:
        if n:
            default_registry().counter(
                "repro_replica_repairs_total",
                "anti-entropy repair records, by action",
                labels=("action",),
            ).labels(action=action).inc(n)

    def publish_gauges(self) -> None:
        registry = default_registry()
        registry.gauge(
            "repro_replica_repair_bytes",
            "serialized bytes streamed by anti-entropy repair",
        ).set(self.repair_bytes)
        registry.gauge(
            "repro_replica_repair_rounds", "anti-entropy snapshot rounds started"
        ).set(self.rounds)


# -- storm integration -------------------------------------------------------------


def build_replicated_stack(
    seed: int = 0,
    n_keys: int = 2_000,
    n_nodes: int = 3,
    *,
    replication: int | None = None,
    read_quorum: int | None = None,
    budget: float = 0.050,
    base_latency: float = 0.0008,
    breaker_kwargs: dict | None = None,
    admission_config: AdmissionConfig | None = None,
    lsm_config: LSMConfig | None = None,
):
    """The replicated sibling of :func:`repro.serve.sim.build_stack`.

    One clock, one fault/latency injector pair, one faulty device, and
    one breaker bank are shared by every replica (each node's tree sees
    a :class:`~repro.common.storage.NamespacedDevice` view, so scoped
    fault rates like ``{"run@r1": 0.5}`` target one replica).  Returns
    ``(served, store, repairer, device, injector, latency, clock)``.
    """
    clock = SimulatedClock()
    injector = FaultInjector(seed=seed)
    latency = LatencyInjector(seed=seed, base=base_latency)
    latency.slowdown = 0.0  # load phase is free: storms start at t=0
    device = FaultyBlockDevice(injector=injector, latency=latency, clock=clock)
    breaker_device = BreakerDevice(
        device, clock, **(breaker_kwargs or {"cooldown": 0.05, "min_samples": 4})
    )
    config = lsm_config if lsm_config is not None else LSMConfig(
        memtable_entries=48, retry_attempts=3, seed=seed
    )
    detector = FailureDetector(clock)
    store = ReplicatedStore(
        breaker_device,
        n_nodes=n_nodes,
        replication=replication,
        read_quorum=read_quorum,
        config=config,
        clock=clock,
        detector=detector,
        injector=injector,
        seed=seed,
    )
    for key in range(n_keys):
        store.put(key, f"value-{key}")
    latency.slowdown = 1.0
    admission = AdmissionController(clock, admission_config)
    served = ServedFilter(
        store, clock,
        admission=admission, breaker_device=breaker_device,
        default_budget=budget,
    )
    repairer = AntiEntropyRepairer(store, admission=admission, injector=injector)
    return served, store, repairer, device, injector, latency, clock


@dataclass
class ReplicaReport:
    """What one replicated storm did: lifecycle events, handoff and
    repair volumes, convergence."""

    events: list[tuple[float, str]] = field(default_factory=list)
    kills: int = 0
    heals: int = 0
    crashes: int = 0
    recoveries: int = 0
    hints_journaled: int = 0
    hints_replayed: int = 0
    hints_dropped: int = 0
    repairs: int = 0
    repair_bytes: int = 0
    buckets_checked: int = 0
    repair_sheds: int = 0
    converged: bool = False
    backlog: int = 0

    def as_dict(self) -> dict:
        return {
            "events": [[t, label] for t, label in self.events],
            "kills": self.kills,
            "heals": self.heals,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "hints_journaled": self.hints_journaled,
            "hints_replayed": self.hints_replayed,
            "hints_dropped": self.hints_dropped,
            "repairs": self.repairs,
            "repair_bytes": self.repair_bytes,
            "buckets_checked": self.buckets_checked,
            "repair_sheds": self.repair_sheds,
            "converged": self.converged,
            "backlog": self.backlog,
        }


def run_replica_storm(
    seed: int = 0,
    n_keys: int = 2_000,
    n_nodes: int = 3,
    *,
    replication: int | None = None,
    read_quorum: int | None = None,
    phases=None,
    kill_at: int = 0,
    heal_at: int = 0,
    kill_node: int | None = None,
    wipe: bool = False,
    crash_at_step: str | None = None,
    write_fraction: float = 0.0,
    drain: bool = True,
    **stack_kwargs,
):
    """A chaos storm over a replicated fleet, with a kill/heal in it.

    At request *kill_at* one replica dies (``wipe=True`` destroys its
    data too); at *heal_at* it comes back.  Every request tick pumps
    hinted-handoff replay and anti-entropy repair at background
    priority.  With *crash_at_step* a one-shot crash is armed at that
    step (e.g. ``handoff.replay:applied``); when it fires, all in-memory
    state is discarded and the fleet recovers from its devices.  After
    the storm (``drain=True``) hints replay to exhaustion and repair
    rounds run until digests converge.
    Returns ``(storm_report, replica_report, store, repairer)``.
    """
    from repro.serve.sim import CALM_STORM_RECOVERY, run_storm

    served, store, repairer, device, injector, latency, clock = (
        build_replicated_stack(
            seed, n_keys, n_nodes,
            replication=replication, read_quorum=read_quorum, **stack_kwargs,
        )
    )
    phases = CALM_STORM_RECOVERY if phases is None else phases
    report = ReplicaReport()
    victim = kill_node if kill_node is not None else (1 % n_nodes)
    state = {"store": store, "repairer": repairer, "requests": 0}

    def _absorb(old_store: ReplicatedStore, old_repairer: AntiEntropyRepairer):
        report.hints_journaled += old_store.handoff.journaled
        report.hints_replayed += old_store.handoff.replayed
        report.hints_dropped += old_store.handoff.dropped
        report.repairs += old_repairer.repairs
        report.repair_bytes += old_repairer.repair_bytes
        report.buckets_checked += old_repairer.buckets_checked
        report.repair_sheds += old_repairer.sheds

    def _recover(where: str) -> None:
        report.crashes += 1
        old_store, old_repairer = state["store"], state["repairer"]
        _absorb(old_store, old_repairer)
        # Breakers are process state, not durable state: the restarted
        # process starts with every circuit closed, so a breaker the
        # pre-crash storm tripped cannot fast-fail recovery's own reads.
        if isinstance(old_store.device, BreakerDevice):
            old_store.device.reset()
        new_store = ReplicatedStore.recover(
            old_store.device, clock=clock,
            detector=FailureDetector(clock), injector=injector,
            config=old_store.config,
        )
        new_repairer = AntiEntropyRepairer(
            new_store, admission=served.admission, injector=injector
        )
        served.backend = new_store
        state["store"], state["repairer"] = new_store, new_repairer
        report.recoveries += 1
        report.events.append((clock.now(), f"recovered:{where}"))

    wrng = random.Random(seed ^ 0x3317E)

    def ticker(arrival: float) -> None:
        state["requests"] += 1
        n = state["requests"]
        if write_fraction and wrng.random() < write_fraction:
            key = wrng.randrange(n_keys)
            state["writes"] = state.get("writes", 0) + 1
            try:
                state["store"].put(key, f"value-{key}-u{state['writes']}")
            except (TransientIOError, CircuitOpenError):
                pass
        if kill_at > 0 and n == kill_at:
            if crash_at_step:
                injector.crash_after(crash_at_step)
            state["store"].kill(victim, wipe=wipe)
            report.kills += 1
            report.events.append((clock.now(), f"kill:r{victim}"))
            return
        if heal_at > 0 and n == heal_at:
            state["store"].heal(victim)
            report.heals += 1
            report.events.append((clock.now(), f"heal:r{victim}"))
            return
        try:
            # Alternate the two background pumps so neither starves.
            # Replay gets the same idle-runway gate the repair pump
            # applies internally: background convergence I/O must not
            # stall the serial device while foreground traffic is hot.
            if n % 2:
                if arrival - clock.now() >= 0.003:
                    state["store"].handoff.replay(batch=4)
            else:
                state["repairer"].pump(arrival)
        except SimulatedCrash as crash:
            report.events.append((clock.now(), f"crash:{crash.step}"))
            _recover(crash.step)

    storm = run_storm(served, phases, seed=seed, n_keys=n_keys, ticker=ticker)

    if drain:
        # Full convergence is the drain's contract, and a dead replica
        # can neither take its hints nor be digest-checked (converged()
        # is alive-only) — so first bring back every node still down,
        # including any boot-tainted by a mid-storm crash recovery.
        for node_id, node in sorted(state["store"].nodes.items()):
            if not node.alive:
                state["store"].heal(node_id)
                report.heals += 1
                report.events.append((clock.now(), f"drain-heal:r{node_id}"))
        guard = 0
        while guard < 10_000:
            guard += 1
            try:
                if state["store"].handoff.replay(batch=16, force=True):
                    continue
                state["repairer"].pump(force=True)
                # One converged check per completed round keeps the
                # drain's own scan bill bounded.
                if state["repairer"].idle and state["repairer"].converged():
                    break
            except SimulatedCrash as crash:
                report.events.append((clock.now(), f"crash:{crash.step}"))
                _recover(f"drain:{crash.step}")

    final_store, final_repairer = state["store"], state["repairer"]
    _absorb(final_store, final_repairer)
    report.converged = final_repairer.converged()
    report.backlog = final_store.handoff.pending()
    final_store.publish_gauges()
    final_repairer.publish_gauges()
    return storm, report, final_store, final_repairer
