"""Seeded chaos-under-load storms against a served LSM stack.

The serving layer's claims — no false negatives, breakers trip and
recover, shedding stays bounded, tail latency respects deadlines — are
statements about behaviour *under storms*, so this module provides the
storm: :func:`build_stack` assembles the full serving pipeline
(simulated clock → fault + latency injectors → faulty device → circuit
breakers → LSM-tree → admission → :class:`ServedFilter`), and
:func:`run_storm` drives an open-loop Poisson workload through a
schedule of :class:`StormPhase` s, flipping fault rates and latency
multipliers between phases the way a real incident does.

Everything is seeded: the same ``(seed, phases)`` pair replays the same
faults, the same latency spikes, the same arrivals, and therefore the
same outcomes — chaos tests assert exact invariants, not luck.  The
report checks the one invariant that must *never* bend: a key that was
loaded is never answered ABSENT, no matter what broke.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.apps.lsm import LSMConfig, LSMTree
from repro.cache import BlockCache, CachedDevice, NegativeLookupCache
from repro.common.clock import SimulatedClock
from repro.common.faults import (
    FaultInjector,
    FaultyBlockDevice,
    LatencyInjector,
    RetryPolicy,
)
from repro.serve.admission import AdmissionConfig, AdmissionController, Priority
from repro.serve.breaker import BreakerDevice, BreakerState
from repro.serve.served import ServedFilter, ServeOutcome


@dataclass
class StormPhase:
    """One segment of a storm schedule.

    ``transient_read`` is the per-read fault probability applied to run
    and filter blobs for the phase; ``slowdown`` multiplies the latency
    injector's service times (a slow-disk plateau); ``spike_prob``
    overrides the injector's tail-spike probability.
    """

    name: str
    n_requests: int
    mean_interarrival: float = 0.002
    transient_read: float = 0.0
    slowdown: float = 1.0
    spike_prob: float = 0.0

    def __post_init__(self):
        if self.n_requests < 0:
            raise ValueError("n_requests must be non-negative")
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        if not 0.0 <= self.transient_read <= 1.0:
            raise ValueError("transient_read must be a probability")


@dataclass
class PhaseReport:
    """Outcome tallies for one phase."""

    name: str
    outcomes: dict[ServeOutcome, int] = field(
        default_factory=lambda: {o: 0 for o in ServeOutcome}
    )
    latencies: list[float] = field(default_factory=list)

    @property
    def n_requests(self) -> int:
        return sum(self.outcomes.values())

    def rate(self, outcome: ServeOutcome) -> float:
        n = self.n_requests
        return self.outcomes[outcome] / n if n else 0.0

    def latency_quantile(self, q: float) -> float:
        """Empirical *q*-quantile of served-request latency."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]


@dataclass
class StormReport:
    """Whole-storm result: per-phase tallies plus global invariants."""

    phases: list[PhaseReport] = field(default_factory=list)
    false_negatives: int = 0
    breaker_opens: int = 0
    breaker_closes: int = 0

    @property
    def n_requests(self) -> int:
        return sum(p.n_requests for p in self.phases)

    def total(self, outcome: ServeOutcome) -> int:
        return sum(p.outcomes[outcome] for p in self.phases)

    def goodput(self) -> float:
        """Fraction of requests answered authoritatively and on time."""
        n = self.n_requests
        return self.total(ServeOutcome.SERVED) / n if n else 0.0


def build_stack(
    seed: int = 0,
    n_keys: int = 2_000,
    *,
    budget: float = 0.050,
    base_latency: float = 0.0008,
    breaker_kwargs: dict | None = None,
    admission_config: AdmissionConfig | None = None,
    lsm_config: LSMConfig | None = None,
    cache_mb: float = 0.0,
    cache_policy: str = "lru",
    negative_cache_entries: int = 0,
):
    """Assemble a full serving stack over a freshly-loaded LSM-tree.

    Keys ``0..n_keys`` are ingested *before* any faults or latency are
    enabled, so the storm's false-negative check has clean ground truth.
    Returns ``(served, tree, device, injector, latency, clock)``.

    With ``cache_mb > 0`` a :class:`~repro.cache.BlockCache` is
    interposed *above* the circuit breakers: a cache hit skips simulated
    I/O, injected faults/latency, and breaker traffic entirely (reach it
    as ``tree.device.cache``).  With ``negative_cache_entries > 0`` the
    served facade additionally memoizes authoritative ABSENT answers in
    a :class:`~repro.cache.NegativeLookupCache` (``served.negative_cache``).
    """
    clock = SimulatedClock()
    injector = FaultInjector(seed=seed)
    latency = LatencyInjector(seed=seed, base=base_latency)
    latency.slowdown = 0.0  # load phase is free: storms start at t=0
    device = FaultyBlockDevice(injector=injector, latency=latency, clock=clock)
    breaker_device = BreakerDevice(
        device, clock, **(breaker_kwargs or {"cooldown": 0.05, "min_samples": 4})
    )
    config = lsm_config if lsm_config is not None else LSMConfig(
        memtable_entries=64, retry_attempts=3, seed=seed
    )
    device_stack: object = breaker_device
    if cache_mb > 0:
        block_cache = BlockCache(
            int(cache_mb * 1024 * 1024), policy=cache_policy, seed=seed
        )
        device_stack = CachedDevice(breaker_device, block_cache)
    tree = LSMTree(config, device=device_stack)
    # Backoff burns simulated time and is seeded, like everything else.
    tree.retry = RetryPolicy(
        max_attempts=config.retry_attempts,
        jitter="decorrelated",
        base_backoff=0.0005,
        max_backoff=0.01,
        seed=seed,
        clock=clock,
    )
    for key in range(n_keys):
        tree.put(key, f"value-{key}")
    latency.slowdown = 1.0
    admission = AdmissionController(clock, admission_config)
    served = ServedFilter(
        tree, clock,
        admission=admission, breaker_device=breaker_device,
        default_budget=budget,
        negative_cache=(
            NegativeLookupCache(negative_cache_entries)
            if negative_cache_entries > 0 else None
        ),
    )
    return served, tree, device, injector, latency, clock


CALM_STORM_RECOVERY = (
    StormPhase("calm", 300, transient_read=0.0),
    StormPhase("storm", 400, transient_read=0.6, slowdown=4.0, spike_prob=0.05),
    StormPhase("recovery", 300, transient_read=0.0),
)


def run_storm(
    served: ServedFilter,
    phases=CALM_STORM_RECOVERY,
    *,
    seed: int = 0,
    n_keys: int = 2_000,
    present_fraction: float = 0.5,
    priority_weights: tuple[float, float, float] = (0.2, 0.6, 0.2),
    ticker=None,
) -> StormReport:
    """Drive a phase schedule through *served* and audit the answers.

    Each request targets a loaded key with probability
    *present_fraction*, else a key guaranteed absent.  A false negative
    is a present key answered ABSENT — the invariant the one-sided-error
    contract says can never happen, shed or storm or not.

    *ticker*, if given, is called as ``ticker(arrival)`` before every
    request — the hook background work (e.g. online-resharding pumps,
    :mod:`repro.serve.reshard`) uses to interleave with live traffic.
    It may swap ``served.backend`` (crash recovery does).
    """
    rng = random.Random(seed ^ 0x570F)
    injector = served.breaker_device.injector
    latency = served.breaker_device.latency
    clock = served.clock
    report = StormReport()
    priorities = (Priority.HIGH, Priority.NORMAL, Priority.LOW)
    arrival = clock.now()
    for phase in phases:
        injector.transient_read = {
            "run": phase.transient_read,
            "page": phase.transient_read,
            "filter": phase.transient_read,
            "*": 0.0,
        }
        latency.slowdown = phase.slowdown
        latency.spike_prob = phase.spike_prob
        phase_report = PhaseReport(phase.name)
        report.phases.append(phase_report)
        for _ in range(phase.n_requests):
            arrival += rng.expovariate(1.0 / phase.mean_interarrival)
            if ticker is not None:
                ticker(arrival)
            present = rng.random() < present_fraction
            key = rng.randrange(n_keys) if present else n_keys + rng.randrange(n_keys)
            priority = rng.choices(priorities, weights=priority_weights)[0]
            response = served.serve(key, priority=priority, arrival=arrival)
            phase_report.outcomes[response.outcome] += 1
            if response.outcome is ServeOutcome.SERVED:
                phase_report.latencies.append(response.latency)
            if present and response.answer.value == "absent":
                report.false_negatives += 1
    report.breaker_opens = served.breaker_device.n_transitions(BreakerState.OPEN)
    report.breaker_closes = served.breaker_device.n_transitions(BreakerState.CLOSED)
    served.publish_gauges()
    return report
