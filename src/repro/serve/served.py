"""`ServedFilter`: the deadline-aware serving facade (docs/robustness.md).

One call — ``query(key, deadline, priority)`` — runs the full serving
pipeline over any deadline-aware backend (:class:`~repro.apps.lsm.LSMTree`
or :class:`~repro.adaptive.dictionary.FilteredDictionary`, anything with
``lookup(key, deadline=..., degrade_on_error=...)``):

1. **admission** — overloaded queues shed the request (`SHED`);
2. **deadline** — a request whose budget is already gone, or whose scan
   cannot finish in time, times out (`TIMED_OUT`);
3. **degradation** — runs behind an open circuit breaker or exhausted
   retries are skipped (`DEGRADED`);
4. otherwise the authoritative answer is returned (`SERVED`).

The safety invariant, inherited from the one-sided-error contract every
filter in this repo obeys: **no path ever answers a definite ABSENT it
cannot prove.**  Shed, timed-out, and degraded requests answer
:data:`~repro.common.clock.Answer.MAYBE` — the same thing a filter
positive means — so chaos can cost the caller extra reads, never a lost
key.  Every outcome is metered through :mod:`repro.obs`
(``repro_serve_requests_total``, ``repro_serve_latency_seconds``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.common.clock import Answer, Deadline, SimulatedClock
from repro.obs.metrics import default_registry
from repro.obs.tracing import trace
from repro.serve.admission import AdmissionController, Priority
from repro.serve.breaker import BreakerState


class ServeOutcome(enum.Enum):
    SERVED = "served"          # complete, in-budget, authoritative answer
    DEGRADED = "degraded"      # some runs unreachable: conservative MAYBE
    SHED = "shed"              # refused at admission: conservative MAYBE
    TIMED_OUT = "timed_out"    # deadline expired: conservative MAYBE


@dataclass
class ServedResponse:
    """Everything one served request resolved to."""

    answer: Answer
    outcome: ServeOutcome
    value: Any = None
    priority: Priority = Priority.NORMAL
    arrival: float = 0.0
    finished: float = 0.0
    queue_delay: float = 0.0
    runs_probed: int = 0
    runs_skipped: int = 0

    @property
    def latency(self) -> float:
        """Arrival-to-answer simulated seconds (0 for queue-front sheds)."""
        return max(0.0, self.finished - self.arrival)

    def __iter__(self):
        # Supports the documented two-tuple form:
        #   answer, outcome = served.query(key, ...)
        return iter((self.answer, self.outcome))


class ServedFilter:
    """Deadline/priority serving facade over a deadline-aware backend."""

    def __init__(
        self,
        backend: Any,
        clock: SimulatedClock,
        *,
        admission: AdmissionController | None = None,
        breaker_device: Any = None,
        default_budget: float = 0.050,
        negative_cache: Any = None,
    ):
        if not hasattr(backend, "lookup"):
            raise TypeError(
                "backend must expose lookup(key, deadline=..., degrade_on_error=...)"
            )
        if default_budget <= 0:
            raise ValueError("default_budget must be positive")
        self.backend = backend
        self.clock = clock
        self.admission = admission
        self.breaker_device = breaker_device
        self.default_budget = default_budget
        # Optional repro.cache.NegativeLookupCache: serves memoized
        # authoritative ABSENTs without a backend scan.  Versioned by the
        # backend's mutation_epoch, and populated ONLY from SERVED+ABSENT
        # responses — a degraded, shed, or timed-out MAYBE is not an
        # answer and must never be frozen into one (docs/robustness.md).
        self.negative_cache = negative_cache

    # -- the serving pipeline ----------------------------------------------------

    def query(
        self,
        key: Any,
        deadline: float | Deadline | None = None,
        priority: Priority = Priority.NORMAL,
    ) -> ServedResponse:
        """Serve one lookup; unpacks as ``(answer, outcome)``.

        *deadline* is either a relative budget in simulated seconds, an
        absolute :class:`~repro.common.clock.Deadline`, or None for the
        facade's default budget.
        """
        return self.serve(key, deadline=deadline, priority=priority)

    def serve(
        self,
        key: Any,
        *,
        deadline: float | Deadline | None = None,
        priority: Priority = Priority.NORMAL,
        arrival: float | None = None,
        tenant: Any = None,
    ) -> ServedResponse:
        """:meth:`query` with explicit arrival time, for load generators.

        *arrival* may lie in the past (the request queued behind slower
        ones — its queue delay counts against the deadline) or in the
        future (the server idles forward to it).  *tenant*, if given, is
        billed against that tenant's quota bucket at admission (a quota
        shed is a MAYBE like any other shed).
        """
        if arrival is None:
            arrival = self.clock.now()
        self.clock.advance_to(arrival)
        if isinstance(deadline, Deadline):
            budget_deadline = deadline
        else:
            budget = self.default_budget if deadline is None else float(deadline)
            budget_deadline = Deadline(self.clock, arrival + budget)
        response = ServedResponse(
            Answer.MAYBE, ServeOutcome.SHED, priority=priority, arrival=arrival
        )

        if self.admission is not None:
            decision = self.admission.admit(arrival, priority, tenant=tenant)
            response.queue_delay = decision.queue_delay
            if not decision.admitted:
                # Shed before any work: the safe answer is always-maybe.
                response.finished = self.clock.now()
                self._meter(response)
                return response
        else:
            response.queue_delay = max(0.0, self.clock.now() - arrival)

        if budget_deadline.expired():
            # Queued past the whole budget: timing out now is cheaper than
            # starting a scan that cannot finish in time.
            response.outcome = ServeOutcome.TIMED_OUT
            response.finished = self.clock.now()
            self._meter(response)
            return response

        epoch = getattr(self.backend, "mutation_epoch", 0)
        if self.negative_cache is not None and self.negative_cache.known_absent(
            key, epoch
        ):
            # Memoized authoritative ABSENT under the current epoch: no
            # backend scan, no device I/O, no breaker traffic.
            response.answer = Answer.ABSENT
            response.outcome = ServeOutcome.SERVED
            response.finished = self.clock.now()
            self._meter(response)
            return response

        started = self.clock.now()
        with trace("serve.query", key=key, priority=priority.name) as span:
            result = self.backend.lookup(
                key, deadline=budget_deadline, degrade_on_error=True
            )
            span.set_tag("state", result.state.value)
        if self.admission is not None:
            self.admission.record_service(self.clock.now() - started)

        response.answer = result.state
        response.value = result.value
        response.runs_probed = result.runs_probed
        response.runs_skipped = result.runs_skipped
        if result.complete:
            response.outcome = ServeOutcome.SERVED
        elif result.reason == "deadline":
            response.outcome = ServeOutcome.TIMED_OUT
        else:
            response.outcome = ServeOutcome.DEGRADED
        response.finished = self.clock.now()
        if (
            self.negative_cache is not None
            and response.outcome is ServeOutcome.SERVED
            and response.answer is Answer.ABSENT
        ):
            self.negative_cache.record_absent(key, epoch)
        self._meter(response)
        return response

    # -- telemetry ---------------------------------------------------------------

    def _meter(self, response: ServedResponse) -> None:
        registry = default_registry()
        registry.counter(
            "repro_serve_requests_total",
            "served-filter requests, by outcome and priority",
            labels=("outcome", "priority"),
        ).labels(
            outcome=response.outcome.value,
            priority=response.priority.name.lower(),
        ).inc()
        registry.histogram(
            "repro_serve_latency_seconds",
            "arrival-to-answer simulated latency, by outcome",
            labels=("outcome",),
        ).labels(outcome=response.outcome.value).observe(response.latency)

    def publish_gauges(self) -> None:
        """Point-in-time serving gauges (breaker states, service EWMA)."""
        registry = default_registry()
        if self.breaker_device is not None:
            breakers = self.breaker_device.breakers.values()
            by_state = registry.gauge(
                "repro_serve_breakers", "circuit breakers by state",
                labels=("state",),
            )
            for state in BreakerState:
                by_state.labels(state=state.value).set(
                    sum(1 for b in breakers if b.state is state)
                )
        if self.admission is not None:
            registry.gauge(
                "repro_serve_service_ewma_seconds",
                "admission controller's service-time estimate",
            ).set(self.admission.service_ewma)
            registry.gauge(
                "repro_serve_shed_rate", "shed fraction since startup"
            ).set(self.admission.stats.shed_rate())
