"""Shared substrate for variable-length-fingerprint filters (§2.2).

Taffy cuckoo, InfiniFilter and Aleph all rest on the same trick (traced by
the tutorial to Pagh–Segev–Wieder 2013): treat each key's hash as an
infinite bit string, use a prefix of it as the bucket address, and store
the *next* ℓ bits as the fingerprint.  Expanding the table claims one more
address bit — which is exactly the top bit of every stored fingerprint, so
entries can be rehomed without the original keys, each losing one
fingerprint bit.  Entries inserted after an expansion get full-length
fingerprints again, so recent entries (always the majority, since capacity
doubles) keep the FPR stable.

An entry whose fingerprint is exhausted is *void*: it matches every query
in its bucket.  What a design does with voids is what separates the three
filters; this base class just reports them to the subclass hook.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.hashing import hash64
from repro.core.errors import DeletionError, FilterFullError
from repro.core.interfaces import Key

DEFAULT_BUCKET_CELLS = 8
DEFAULT_MAX_LOAD = 0.85


@dataclass
class Entry:
    """A stored fingerprint: *length* leading hash bits in *value*."""

    length: int
    value: int


class VarLenFingerprintTable:
    """Bucketed table of variable-length fingerprints with doubling."""

    def __init__(
        self,
        address_bits: int,
        fingerprint_bits: int,
        *,
        bucket_cells: int = DEFAULT_BUCKET_CELLS,
        max_load: float = DEFAULT_MAX_LOAD,
        seed: int = 0,
    ):
        if not 1 <= address_bits <= 40:
            raise ValueError("address_bits must be in [1, 40]")
        if not 1 <= fingerprint_bits <= 20:
            raise ValueError("fingerprint_bits must be in [1, 20]")
        self.address_bits = address_bits
        self.full_length = fingerprint_bits
        self.bucket_cells = bucket_cells
        self.max_load = max_load
        self.seed = seed
        self.n_expansions = 0
        self._buckets: list[list[Entry]] = [[] for _ in range(1 << address_bits)]
        self._n = 0

    # -- hashing ---------------------------------------------------------------

    def _hash(self, key: Key) -> int:
        return hash64(key, self.seed)

    def _address(self, h: int) -> int:
        return h >> (64 - self.address_bits)

    def _fingerprint_bits_of(self, h: int, length: int) -> int:
        """The *length* hash bits that follow the current address prefix."""
        if length == 0:
            return 0
        return (h >> (64 - self.address_bits - length)) & ((1 << length) - 1)

    # -- operations -------------------------------------------------------------

    @property
    def n_buckets(self) -> int:
        return 1 << self.address_bits

    @property
    def capacity(self) -> int:
        return int(self.n_buckets * self.bucket_cells * self.max_load)

    def insert_hash(self, h: int) -> None:
        if self._n >= self.capacity:
            raise FilterFullError("variable-length fingerprint table at max load")
        bucket = self._buckets[self._address(h)]
        if len(bucket) >= self.bucket_cells:
            raise FilterFullError("bucket overflow in fingerprint table")
        bucket.append(Entry(self.full_length, self._fingerprint_bits_of(h, self.full_length)))
        self._n += 1

    def matches_hash(self, h: int) -> bool:
        bucket = self._buckets[self._address(h)]
        for entry in bucket:
            if entry.value == self._fingerprint_bits_of(h, entry.length):
                return True
        return False

    def delete_hash(self, h: int) -> None:
        """Remove one matching entry, preferring the longest (most specific)
        match so deletes disturb void entries last."""
        bucket = self._buckets[self._address(h)]
        best = None
        for i, entry in enumerate(bucket):
            if entry.value == self._fingerprint_bits_of(h, entry.length):
                if best is None or entry.length > bucket[best].length:
                    best = i
        if best is None:
            raise DeletionError("delete of a key that was never inserted")
        bucket.pop(best)
        self._n -= 1

    def expand(self) -> list[tuple[int, Entry]]:
        """Double the bucket array, shortening every fingerprint by one bit.

        Entries that *would* go void (length already 0) are removed and
        returned as ``(old_bucket_index, entry)`` for the caller to handle;
        all others are rehomed using their sacrificed top bit.
        """
        old_buckets = self._buckets
        self.address_bits += 1
        self.n_expansions += 1
        self._buckets = [[] for _ in range(1 << self.address_bits)]
        voided: list[tuple[int, Entry]] = []
        for b, bucket in enumerate(old_buckets):
            for entry in bucket:
                if entry.length == 0:
                    voided.append((b, entry))
                    self._n -= 1
                    continue
                top = entry.value >> (entry.length - 1)
                child = (b << 1) | top
                self._buckets[child].append(
                    Entry(entry.length - 1, entry.value & ((1 << (entry.length - 1)) - 1))
                )
        return voided

    def place_entry(self, bucket_index: int, entry: Entry) -> None:
        """Put an explicit entry into a bucket (void duplication etc.)."""
        self._buckets[bucket_index].append(entry)
        self._n += 1

    def min_entry_length(self) -> int | None:
        """Shortest fingerprint currently stored (None when empty)."""
        lengths = [e.length for bucket in self._buckets for e in bucket]
        return min(lengths) if lengths else None

    def __len__(self) -> int:
        return self._n

    @property
    def size_in_bits(self) -> int:
        """Fixed slots, each wide enough for a full fingerprint plus the
        unary self-delimiter that makes variable lengths decodable."""
        return self.n_buckets * self.bucket_cells * (self.full_length + 2)

    def entry_lengths(self) -> dict[int, int]:
        """Histogram {fingerprint length: count} (diagnostics/tests)."""
        hist: dict[int, int] = {}
        for bucket in self._buckets:
            for entry in bucket:
                hist[entry.length] = hist.get(entry.length, 0) + 1
        return hist
