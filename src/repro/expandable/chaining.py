"""Chained filters: the straightforward answers to filter expansion (§2.2).

All three designs add whole filters as the data grows, so nothing is ever
rehashed — but *every* filter in the chain must be probed on a query, which
is the cost the tutorial calls out ("this approach increases query costs as
all filters along the chain potentially need to be searched").

* :class:`ChainedFilter` — fixed-size Bloom links (Guo et al.).
* :class:`ScalableBloomFilter` — geometric links, tightening ε (Almeida).
* :class:`DynamicCuckooFilter` — fixed-size cuckoo links (Chen et al.,
  ICNP 2017): the chain variant that also supports deletes.
"""

from __future__ import annotations

from repro.core.errors import DeletionError, FilterFullError
from repro.core.interfaces import ExpandableFilter, Key
from repro.filters.bloom import BloomFilter
from repro.filters.cuckoo import CuckooFilter


class ChainedFilter(ExpandableFilter):
    """A linked list of fixed-size Bloom filters (Guo et al., Chen et al.).

    Each link is sized for *link_capacity* keys at the *same* ε, so the
    overall false-positive rate grows linearly with the number of links:
    FPR ≈ 1 − (1 − ε)^links.
    """

    supports_deletes = False

    def __init__(
        self,
        link_capacity: int,
        epsilon: float,
        *,
        seed: int = 0,
    ):
        if link_capacity <= 0:
            raise ValueError("link_capacity must be positive")
        self.link_capacity = link_capacity
        self.epsilon = epsilon
        self.seed = seed
        self._links: list[BloomFilter] = [BloomFilter(link_capacity, epsilon, seed=seed)]
        self._n = 0

    def insert(self, key: Key) -> None:
        tail = self._links[-1]
        if len(tail) >= tail.capacity:
            self.expand()
            tail = self._links[-1]
        tail.insert(key)
        self._n += 1

    def expand(self) -> None:
        self._links.append(
            BloomFilter(
                self.link_capacity, self.epsilon, seed=self.seed + len(self._links)
            )
        )

    def may_contain(self, key: Key) -> bool:
        return any(link.may_contain(key) for link in self._links)

    def query_cost(self, key: Key) -> int:
        """Filters probed for *key* (worst case on a negative: all links)."""
        cost = 0
        for link in self._links:
            cost += 1
            if link.may_contain(key):
                break
        return cost

    @property
    def n_links(self) -> int:
        return len(self._links)

    @property
    def capacity(self) -> int:
        return self.link_capacity * len(self._links)

    def __len__(self) -> int:
        return self._n

    @property
    def size_in_bits(self) -> int:
        return sum(link.size_in_bits for link in self._links)


class ScalableBloomFilter(ExpandableFilter):
    """Scalable Bloom filter (Almeida et al. 2007).

    Links grow geometrically (×2) and their FPRs tighten geometrically
    (×r, r = 0.5), so the total FPR converges to ε/(1−r) = 2ε no matter how
    far the filter grows — at the price of a Θ(log n) chain to probe.
    """

    supports_deletes = False
    GROWTH = 2
    TIGHTENING = 0.5

    def __init__(self, initial_capacity: int, epsilon: float, *, seed: int = 0):
        if initial_capacity <= 0:
            raise ValueError("initial_capacity must be positive")
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        self.initial_capacity = initial_capacity
        self.epsilon = epsilon
        self.seed = seed
        self._links: list[BloomFilter] = [
            BloomFilter(initial_capacity, epsilon * (1 - self.TIGHTENING), seed=seed)
        ]
        self._n = 0

    def insert(self, key: Key) -> None:
        tail = self._links[-1]
        if len(tail) >= tail.capacity:
            self.expand()
            tail = self._links[-1]
        tail.insert(key)
        self._n += 1

    def expand(self) -> None:
        i = len(self._links)
        capacity = self.initial_capacity * self.GROWTH**i
        link_epsilon = self.epsilon * (1 - self.TIGHTENING) * self.TIGHTENING**i
        self._links.append(BloomFilter(capacity, link_epsilon, seed=self.seed + i))

    def may_contain(self, key: Key) -> bool:
        return any(link.may_contain(key) for link in self._links)

    def query_cost(self, key: Key) -> int:
        cost = 0
        for link in self._links:
            cost += 1
            if link.may_contain(key):
                break
        return cost

    @property
    def n_links(self) -> int:
        return len(self._links)

    @property
    def capacity(self) -> int:
        return sum(link.capacity for link in self._links)

    def __len__(self) -> int:
        return self._n

    @property
    def size_in_bits(self) -> int:
        return sum(link.size_in_bits for link in self._links)

    def total_epsilon_bound(self) -> float:
        """The convergent bound: Σ εᵢ ≤ ε."""
        return self.epsilon


class DynamicCuckooFilter(ExpandableFilter):
    """The Dynamic Cuckoo Filter (Chen, Liao, Jin & Wu 2017).

    A chain of fixed-size cuckoo filters: inserts go to the newest link
    with room; deletes search the chain for the fingerprint (cuckoo links,
    unlike Bloom links, can delete); queries probe every link.  Compaction
    of sparse links is modelled by dropping emptied links.
    """

    supports_deletes = True

    def __init__(self, link_capacity: int, epsilon: float, *, seed: int = 0):
        if link_capacity <= 0:
            raise ValueError("link_capacity must be positive")
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        self.link_capacity = link_capacity
        self.epsilon = epsilon
        self.seed = seed
        self._links: list[CuckooFilter] = [self._new_link(0)]
        self._n = 0

    def _new_link(self, index: int) -> CuckooFilter:
        # Every link MUST share one hash seed: fingerprints are then
        # chain-transferable (Chen et al. §III), so a key and a
        # fingerprint-colliding twin hold one copy each *somewhere* in the
        # chain and delete() removing any one copy is multiset-safe.  With
        # per-link seeds, delete(x) can consume y's copy in an earlier link
        # while x's survives in a later one — a false negative for y.
        del index
        return CuckooFilter.for_capacity(
            self.link_capacity, self.epsilon, seed=self.seed
        )

    def insert(self, key: Key) -> None:
        for link in reversed(self._links):
            if len(link) < self.link_capacity:
                try:
                    link.insert(key)
                    self._n += 1
                    return
                except FilterFullError:
                    continue
        self.expand()
        self._links[-1].insert(key)
        self._n += 1

    def expand(self) -> None:
        self._links.append(self._new_link(len(self._links)))

    def may_contain(self, key: Key) -> bool:
        return any(link.may_contain(key) for link in self._links)

    def delete(self, key: Key) -> None:
        for link in self._links:
            try:
                link.delete(key)
            except DeletionError:
                continue
            self._n -= 1
            if len(link) == 0 and len(self._links) > 1:
                self._links.remove(link)  # compaction of an emptied link
            return
        raise DeletionError("delete of a key that was never inserted")

    def query_cost(self, key: Key) -> int:
        cost = 0
        for link in self._links:
            cost += 1
            if link.may_contain(key):
                break
        return cost

    @property
    def n_links(self) -> int:
        return len(self._links)

    @property
    def capacity(self) -> int:
        return self.link_capacity * len(self._links)

    def __len__(self) -> int:
        return self._n

    @property
    def size_in_bits(self) -> int:
        return sum(link.size_in_bits for link in self._links)
