"""Bentley–Saxe dynamization: make any static filter insert-capable.

§2.2's static filters (XOR, ribbon) beat dynamic filters on space but
cannot insert.  The classic fix — used by the tutorial authors themselves
to make Mantis incrementally updatable (Almodaresi et al. 2022) — is the
Bentley–Saxe transformation: keep a logarithmic collection of static
structures with sizes following the binary representation of n; an insert
buffers into level 0, and a carry chain rebuilds merged levels exactly like
binary addition.

Costs match the theory: O(log n) structures probed per query, O(log n)
amortised rebuild work per insert — the same trade as the §2.2 chains but
with *static* space efficiency inside every level.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.core.interfaces import DynamicFilter, Key

BUFFER_CAPACITY = 64


class BentleySaxeFilter(DynamicFilter):
    """Dynamized wrapper over a static filter builder.

    Parameters
    ----------
    build:
        ``build(keys) -> static filter`` with ``may_contain`` and
        ``size_in_bits``.  Called on every level rebuild.
    """

    supports_deletes = False

    def __init__(
        self,
        build: Callable[[list[Key]], object],
        *,
        buffer_capacity: int = BUFFER_CAPACITY,
    ):
        if buffer_capacity < 1:
            raise ValueError("buffer_capacity must be positive")
        self._build = build
        self._buffer_capacity = buffer_capacity
        self._buffer: list[Key] = []
        # levels[i] is either None or (filter, keys) holding
        # buffer_capacity · 2^i keys.
        self._levels: list[tuple[object, list[Key]] | None] = []
        self._n = 0
        self.rebuilds = 0
        self.keys_rebuilt = 0

    def insert(self, key: Key) -> None:
        self._buffer.append(key)
        self._n += 1
        if len(self._buffer) >= self._buffer_capacity:
            self._carry(self._buffer)
            self._buffer = []

    def extend(self, keys: Iterable[Key]) -> None:
        for key in keys:
            self.insert(key)

    def _carry(self, keys: list[Key]) -> None:
        """Binary-addition carry: merge into the first empty level."""
        level = 0
        while True:
            if level >= len(self._levels):
                self._levels.append(None)
            slot = self._levels[level]
            if slot is None:
                self.rebuilds += 1
                self.keys_rebuilt += len(keys)
                self._levels[level] = (self._build(keys), keys)
                return
            _, resident = slot
            self._levels[level] = None
            keys = resident + keys
            level += 1

    def may_contain(self, key: Key) -> bool:
        if key in self._buffer:
            return True
        return any(
            slot is not None and slot[0].may_contain(key) for slot in self._levels
        )

    def query_cost(self, key: Key) -> int:
        """Structures probed: the O(log n) Bentley–Saxe tax."""
        return 1 + sum(1 for slot in self._levels if slot is not None)

    @property
    def n_levels(self) -> int:
        return sum(1 for slot in self._levels if slot is not None)

    @property
    def amortised_rebuild_factor(self) -> float:
        """keys rebuilt / keys inserted ≈ log₂(n / buffer)."""
        return self.keys_rebuilt / self._n if self._n else 0.0

    def __len__(self) -> int:
        return self._n

    @property
    def size_in_bits(self) -> int:
        total = 64 * len(self._buffer)  # raw buffered keys
        for slot in self._levels:
            if slot is not None:
                total += slot[0].size_in_bits
        return total
