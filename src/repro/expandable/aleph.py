"""Aleph filter (Dayan, Bercea & Pagh 2024, "To Infinity in Constant Time").

Improves InfiniFilter by keeping void entries *inside* the main table: when
an expansion voids an entry, the void is duplicated into both child buckets
(it has no bit left to choose one), so a query remains a single bucket
probe — the constant-time guarantee the tutorial highlights.  Because
capacity doubles with every expansion while voids only double past the
fingerprint budget, the void *fraction* stays bounded and so does the FPR.

Deletes prefer the longest (most specific) matching entry, removing a void
only as a last resort — mirroring Aleph's rejuvenation-friendly ordering.
"""

from __future__ import annotations

import math

from repro.core.interfaces import ExpandableFilter, Key
from repro.expandable.varlen import (
    DEFAULT_BUCKET_CELLS,
    Entry,
    VarLenFingerprintTable,
)


class AlephFilter(ExpandableFilter):
    """Expandable filter with deletes, unbounded growth and O(1) queries."""

    supports_deletes = True

    def __init__(
        self,
        address_bits: int,
        fingerprint_bits: int,
        *,
        bucket_cells: int = DEFAULT_BUCKET_CELLS,
        seed: int = 0,
    ):
        self._table = VarLenFingerprintTable(
            address_bits, fingerprint_bits, bucket_cells=bucket_cells, seed=seed
        )
        self.seed = seed

    def insert(self, key: Key) -> None:
        self._table.insert_hash(self._table._hash(key))

    def may_contain(self, key: Key) -> bool:
        return self._table.matches_hash(self._table._hash(key))

    def delete(self, key: Key) -> None:
        self._table.delete_hash(self._table._hash(key))

    def expand(self) -> None:
        voided = self._table.expand()
        # A void entry matches every key of its old bucket; both children
        # inherit it so no false negative can appear.
        for old_bucket, _entry in voided:
            self._table.place_entry((old_bucket << 1) | 0, Entry(0, 0))
            self._table.place_entry((old_bucket << 1) | 1, Entry(0, 0))
        if voided and len(self._table) >= self.capacity:
            # Voids are doubling as fast as capacity: the fingerprint budget
            # is far too small for this growth and expanding cannot help.
            from repro.core.errors import NotExpandableError

            raise NotExpandableError(
                "void entries dominate the table; configure more fingerprint "
                "bits for this growth range"
            )

    def query_cost(self, key: Key) -> int:
        """Structures probed per query: always exactly one (the O(1) claim)."""
        return 1

    @property
    def capacity(self) -> int:
        return self._table.capacity

    @property
    def n_expansions(self) -> int:
        return self._table.n_expansions

    @property
    def n_void_entries(self) -> int:
        return self._table.entry_lengths().get(0, 0)

    def expected_fpr(self) -> float:
        hist = self._table.entry_lengths()
        return sum(c * 2.0**-length for length, c in hist.items()) / self._table.n_buckets

    def __len__(self) -> int:
        return len(self._table)

    @property
    def size_in_bits(self) -> int:
        return self._table.size_in_bits

    @classmethod
    def for_capacity(
        cls, capacity: int, epsilon: float, *, seed: int = 0
    ) -> "AlephFilter":
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        cells = DEFAULT_BUCKET_CELLS
        address_bits = max(
            1, math.ceil(math.log2(max(2.0, capacity / (cells * 0.85))))
        )
        fingerprint_bits = min(20, max(1, math.ceil(math.log2(cells / epsilon))))
        return cls(address_bits, fingerprint_bits, seed=seed)
