"""Taffy cuckoo filter (Apple 2022, "Stretching your data with taffy filters").

Expands by doubling a variable-length-fingerprint table: every existing
entry sacrifices one fingerprint bit to address the larger table, while
entries inserted afterwards get full-length fingerprints.  Queries stay a
single bucket probe and the FPR stays stable (recent full-length entries
always dominate).  Deletes are not supported, and expansion is bounded by a
known universe: once the oldest entry would run out of fingerprint bits,
the filter cannot stretch further (§2.2).
"""

from __future__ import annotations

import math

from repro.core.errors import NotExpandableError
from repro.core.interfaces import ExpandableFilter, Key
from repro.expandable.varlen import DEFAULT_BUCKET_CELLS, VarLenFingerprintTable


class TaffyCuckooFilter(ExpandableFilter):
    """Expandable filter with stable FPR and fast queries; no deletes."""

    supports_deletes = False

    def __init__(
        self,
        address_bits: int,
        fingerprint_bits: int,
        *,
        bucket_cells: int = DEFAULT_BUCKET_CELLS,
        seed: int = 0,
    ):
        self._table = VarLenFingerprintTable(
            address_bits, fingerprint_bits, bucket_cells=bucket_cells, seed=seed
        )
        self.seed = seed

    def insert(self, key: Key) -> None:
        self._table.insert_hash(self._table._hash(key))

    def may_contain(self, key: Key) -> bool:
        return self._table.matches_hash(self._table._hash(key))

    def expand(self) -> None:
        shortest = self._table.min_entry_length()
        if shortest == 0:
            raise NotExpandableError(
                "taffy filter at its universe bound: an entry has no "
                "fingerprint bits left to sacrifice"
            )
        voided = self._table.expand()
        assert not voided  # guarded by the min-length check above

    def query_cost(self, key: Key) -> int:
        """Structures probed per query: always exactly one."""
        return 1

    @property
    def capacity(self) -> int:
        return self._table.capacity

    @property
    def n_expansions(self) -> int:
        return self._table.n_expansions

    def expected_fpr(self) -> float:
        """Σ over stored entries of 2^-length, normalised per bucket load."""
        hist = self._table.entry_lengths()
        if not self._table.n_buckets:
            return 0.0
        return sum(c * 2.0**-length for length, c in hist.items()) / self._table.n_buckets

    def __len__(self) -> int:
        return len(self._table)

    @property
    def size_in_bits(self) -> int:
        return self._table.size_in_bits

    @classmethod
    def for_capacity(
        cls, capacity: int, epsilon: float, *, seed: int = 0
    ) -> "TaffyCuckooFilter":
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        cells = DEFAULT_BUCKET_CELLS
        address_bits = max(
            1, math.ceil(math.log2(max(2.0, capacity / (cells * 0.85))))
        )
        fingerprint_bits = min(20, max(1, math.ceil(math.log2(cells / epsilon))))
        return cls(address_bits, fingerprint_bits, seed=seed)
