"""Expandable filters (§2.2): growing capacity without the original keys.

The §2.2 design space, in increasing sophistication:

* :class:`ChainedFilter` — fixed-size filters chained as the data grows
  (Guo et al.); query cost grows linearly with the chain.
* :class:`ScalableBloomFilter` — geometrically growing chain with
  tightening FPRs (Almeida et al.); bounded total FPR, log-length chain.
* :class:`NaiveExpandableQuotientFilter` — quotient-filter doubling that
  sacrifices a fingerprint bit per expansion; FPR doubles each time and
  the filter eventually cannot expand at all.
* :class:`TaffyCuckooFilter` — variable-length fingerprints (Apple 2022);
  stable FPR, fast queries, no deletes.
* :class:`InfiniFilter` — variable-length fingerprints with deletes and
  unbounded growth (Dayan et al. 2023); queries are not constant time.
* :class:`AlephFilter` — InfiniFilter with constant-time operations
  (Dayan et al. 2024).
"""

from repro.expandable.aleph import AlephFilter
from repro.expandable.bentley_saxe import BentleySaxeFilter
from repro.expandable.chaining import (
    ChainedFilter,
    DynamicCuckooFilter,
    ScalableBloomFilter,
)
from repro.expandable.infinifilter import InfiniFilter
from repro.expandable.naive import NaiveExpandableQuotientFilter
from repro.expandable.taffy import TaffyCuckooFilter

__all__ = [
    "AlephFilter",
    "BentleySaxeFilter",
    "ChainedFilter",
    "DynamicCuckooFilter",
    "InfiniFilter",
    "NaiveExpandableQuotientFilter",
    "ScalableBloomFilter",
    "TaffyCuckooFilter",
]
