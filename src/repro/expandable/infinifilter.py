"""InfiniFilter (Dayan, Bercea, Reviriego & Pagh 2023, SIGMOD).

Extends the variable-length-fingerprint scheme with deletes and *unbounded*
expansion: entries whose fingerprints are exhausted ("void" entries) are
demoted into a chain of frozen per-generation summaries instead of blocking
expansion.  The cost — and the reason the tutorial notes that InfiniFilter
"queries are not constant time" — is that a query must consult the main
table *and* every legacy generation that holds void entries, so query cost
grows with the number of expansions past the fingerprint budget
(O(log(n/n₀)) worst case; experiment F2 measures this).
"""

from __future__ import annotations

import math

from repro.core.errors import DeletionError
from repro.core.interfaces import ExpandableFilter, Key
from repro.expandable.varlen import DEFAULT_BUCKET_CELLS, VarLenFingerprintTable


class _LegacyGeneration:
    """Frozen record of the bucket addresses that held void entries when
    the table had *address_bits* address bits."""

    __slots__ = ("address_bits", "addresses")

    def __init__(self, address_bits: int):
        self.address_bits = address_bits
        self.addresses: dict[int, int] = {}  # address -> void entry count

    def add(self, address: int) -> None:
        self.addresses[address] = self.addresses.get(address, 0) + 1

    def matches(self, h: int) -> bool:
        return (h >> (64 - self.address_bits)) in self.addresses

    def remove(self, h: int) -> bool:
        address = h >> (64 - self.address_bits)
        count = self.addresses.get(address, 0)
        if count == 0:
            return False
        if count == 1:
            del self.addresses[address]
        else:
            self.addresses[address] = count - 1
        return True

    @property
    def n_entries(self) -> int:
        return sum(self.addresses.values())

    @property
    def size_in_bits(self) -> int:
        return self.n_entries * max(1, self.address_bits)


class InfiniFilter(ExpandableFilter):
    """Expandable filter with deletes and unbounded growth; queries probe
    the main table plus every non-empty legacy generation."""

    supports_deletes = True

    def __init__(
        self,
        address_bits: int,
        fingerprint_bits: int,
        *,
        bucket_cells: int = DEFAULT_BUCKET_CELLS,
        seed: int = 0,
    ):
        self._table = VarLenFingerprintTable(
            address_bits, fingerprint_bits, bucket_cells=bucket_cells, seed=seed
        )
        self._legacy: list[_LegacyGeneration] = []
        self.seed = seed

    def insert(self, key: Key) -> None:
        self._table.insert_hash(self._table._hash(key))

    def may_contain(self, key: Key) -> bool:
        h = self._table._hash(key)
        if self._table.matches_hash(h):
            return True
        return any(generation.matches(h) for generation in self._legacy)

    def delete(self, key: Key) -> None:
        h = self._table._hash(key)
        try:
            self._table.delete_hash(h)
            return
        except DeletionError:
            pass
        for generation in self._legacy:
            if generation.remove(h):
                return
        raise DeletionError("delete of a key that was never inserted")

    def expand(self) -> None:
        old_bits = self._table.address_bits
        voided = self._table.expand()
        if voided:
            generation = _LegacyGeneration(old_bits)
            for bucket_index, _entry in voided:
                generation.add(bucket_index)
            self._legacy.append(generation)

    def query_cost(self, key: Key) -> int:
        """Structures probed: main table + all legacy generations."""
        return 1 + len(self._legacy)

    @property
    def capacity(self) -> int:
        return self._table.capacity

    @property
    def n_expansions(self) -> int:
        return self._table.n_expansions

    @property
    def n_void_entries(self) -> int:
        return sum(generation.n_entries for generation in self._legacy)

    def expected_fpr(self) -> float:
        hist = self._table.entry_lengths()
        main = sum(c * 2.0**-length for length, c in hist.items()) / self._table.n_buckets
        legacy = sum(
            generation.n_entries / (1 << generation.address_bits)
            for generation in self._legacy
        )
        return main + legacy

    def __len__(self) -> int:
        return len(self._table) + self.n_void_entries

    @property
    def size_in_bits(self) -> int:
        return self._table.size_in_bits + sum(
            generation.size_in_bits for generation in self._legacy
        )

    @classmethod
    def for_capacity(
        cls, capacity: int, epsilon: float, *, seed: int = 0
    ) -> "InfiniFilter":
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        cells = DEFAULT_BUCKET_CELLS
        address_bits = max(
            1, math.ceil(math.log2(max(2.0, capacity / (cells * 0.85))))
        )
        fingerprint_bits = min(20, max(1, math.ceil(math.log2(cells / epsilon))))
        return cls(address_bits, fingerprint_bits, seed=seed)
