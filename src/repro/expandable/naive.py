"""Naive quotient-filter expansion: double and sacrifice a fingerprint bit.

§2.2: "it is possible to double their capacity and sacrifice one bit from
each fingerprint ... The problem is that the fingerprints shrink as the
data grows, and this increases the false positive rate.  Eventually, the
fingerprint bits run out, at which point the filter returns a positive for
every query, and it cannot continue expanding."

This class exists to demonstrate exactly that failure mode (experiment F1):
the fingerprint is fixed at p = q₀ + r₀ bits forever; every expansion moves
one bit from the remainder to the quotient, doubling the FPR, until r = 0.
"""

from __future__ import annotations

import math

from repro.core.errors import NotExpandableError
from repro.core.interfaces import ExpandableFilter, Key
from repro.filters.quotient import DEFAULT_MAX_LOAD, QuotientFilter


class NaiveExpandableQuotientFilter(ExpandableFilter):
    """Quotient filter that expands by re-splitting its fixed fingerprint."""

    supports_deletes = True

    def __init__(self, quotient_bits: int, remainder_bits: int, *, seed: int = 0):
        self._qf = QuotientFilter(quotient_bits, remainder_bits, seed=seed)
        self.seed = seed
        self.n_expansions = 0

    # The stored fingerprint never changes width: (q << r) | rem is the same
    # p-bit value before and after a re-split, so expansion is lossless.

    def insert(self, key: Key) -> None:
        self._qf.insert(key)

    def delete(self, key: Key) -> None:
        self._qf.delete(key)

    def may_contain(self, key: Key) -> bool:
        if self._qf.remainder_bits == 0:  # defensive: cannot be constructed
            return True
        return self._qf.may_contain(key)

    def expand(self) -> None:
        """Double the table, stealing one remainder bit for addressing."""
        old = self._qf
        if old.remainder_bits <= 1:
            raise NotExpandableError(
                "fingerprint bits exhausted: a further doubling would leave "
                "zero remainder bits and every query would return positive"
            )
        new = QuotientFilter(
            old.quotient_bits + 1,
            old.remainder_bits - 1,
            seed=old.seed,
            max_load=old.max_load,
        )
        for fp in old.iter_fingerprints():
            # Same p-bit fingerprint, new split point.
            new._insert_fingerprint(fp)
        self._qf = new
        self.n_expansions += 1

    @property
    def capacity(self) -> int:
        return self._qf.capacity

    @property
    def remainder_bits(self) -> int:
        return self._qf.remainder_bits

    @property
    def can_expand(self) -> bool:
        return self._qf.remainder_bits > 1

    def query_cost(self, key: Key) -> int:
        """One structure probe, always (expansion never adds probes)."""
        return 1

    def expected_fpr(self) -> float:
        return self._qf.expected_fpr()

    def __len__(self) -> int:
        return len(self._qf)

    @property
    def size_in_bits(self) -> int:
        return self._qf.size_in_bits

    @classmethod
    def for_capacity(
        cls, capacity: int, epsilon: float, *, seed: int = 0
    ) -> "NaiveExpandableQuotientFilter":
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        quotient_bits = max(1, math.ceil(math.log2(capacity / DEFAULT_MAX_LOAD)))
        remainder_bits = max(1, math.ceil(math.log2(1 / epsilon)))
        return cls(quotient_bits, remainder_bits, seed=seed)
