"""Synthetic URL workloads (substitute for malicious-URL feeds).

Produces a URL universe, a malicious subset (the *yes list*), a set of
popular benign URLs that must never be blocked (candidate *no list*), and
skewed query streams — the setting of the tutorial's §3.3 blocking case
study.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.synthetic import zipf_queries

_TLDS = ["com", "org", "net", "io", "dev", "info"]
_WORDS = [
    "alpha", "bravo", "cedar", "delta", "ember", "falcon", "garnet", "harbor",
    "indigo", "juniper", "krypton", "lumen", "meadow", "nimbus", "onyx",
    "prairie", "quartz", "raven", "summit", "timber", "umber", "vortex",
    "willow", "xenon", "yonder", "zephyr",
]


def _make_url(rng: np.random.Generator) -> str:
    host = "-".join(
        _WORDS[int(i)] for i in rng.integers(0, len(_WORDS), size=2)
    )
    tld = _TLDS[int(rng.integers(0, len(_TLDS)))]
    path = "/".join(
        _WORDS[int(i)] for i in rng.integers(0, len(_WORDS), size=int(rng.integers(1, 4)))
    )
    token = int(rng.integers(0, 1 << 32))
    return f"https://{host}.{tld}/{path}?id={token:08x}"


def url_universe(n_urls: int, seed: int = 0) -> list[str]:
    """*n_urls* distinct synthetic URLs."""
    rng = np.random.default_rng(seed)
    urls: set[str] = set()
    while len(urls) < n_urls:
        urls.add(_make_url(rng))
    return sorted(urls)


def split_malicious(
    urls: list[str], malicious_fraction: float, seed: int = 0
) -> tuple[list[str], list[str]]:
    """Partition *urls* into (malicious, benign)."""
    rng = np.random.default_rng(seed)
    n_bad = int(len(urls) * malicious_fraction)
    order = rng.permutation(len(urls))
    malicious = [urls[i] for i in order[:n_bad]]
    benign = [urls[i] for i in order[n_bad:]]
    return malicious, benign


def url_query_stream(
    benign: list[str],
    malicious: list[str],
    n_queries: int,
    malicious_rate: float = 0.05,
    skew: float = 1.0,
    seed: int = 0,
) -> list[tuple[str, bool]]:
    """A browsing stream of (url, is_malicious) pairs.

    Benign traffic is Zipf-skewed (users revisit popular sites — exactly why
    a popular benign URL that false-positives is so costly); malicious hits
    are injected uniformly at *malicious_rate*.
    """
    rng = np.random.default_rng(seed)
    benign_draws = zipf_queries(benign, n_queries, skew, seed ^ 0xB19)
    stream: list[tuple[str, bool]] = []
    for url in benign_draws:
        if malicious and rng.random() < malicious_rate:
            stream.append((malicious[int(rng.integers(len(malicious)))], True))
        else:
            stream.append((url, False))
    return stream
