"""Workload generators used by the experiment suite.

All generators are seeded and deterministic.  They substitute for the
proprietary traces and real datasets the surveyed systems were evaluated on
(see DESIGN.md "Substitutions").
"""

from repro.workloads.dna import (
    extract_kmers,
    random_genome,
    sequencing_experiments,
)
from repro.workloads.synthetic import (
    adversarial_repeat_queries,
    correlated_range_queries,
    disjoint_key_sets,
    random_key_set,
    random_range_queries,
    zipf_multiset,
    zipf_queries,
)
from repro.workloads.urls import url_universe, url_query_stream

__all__ = [
    "adversarial_repeat_queries",
    "correlated_range_queries",
    "disjoint_key_sets",
    "extract_kmers",
    "random_genome",
    "random_key_set",
    "random_range_queries",
    "sequencing_experiments",
    "url_query_stream",
    "url_universe",
    "zipf_multiset",
    "zipf_queries",
]
