"""YCSB-style mixed workloads for the LSM experiments.

The standard cloud-serving benchmark mixes, as used throughout the
LSM-tree literature the tutorial draws on (RocksDB at Facebook is
characterised in exactly these terms — Cao et al., cited in §1):

* **A** — update heavy (50% reads / 50% updates)
* **B** — read mostly (95% / 5%)
* **C** — read only
* **D** — read latest (reads skewed to recent inserts)
* **E** — short scans (95% scans / 5% inserts)

Keys are drawn Zipfian (the YCSB default).  ``run_workload`` drives any
object with put/get/range_query (our :class:`~repro.apps.lsm.LSMTree`),
and reports the operation mix actually issued.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

WORKLOADS = {
    "A": {"read": 0.5, "update": 0.5},
    "B": {"read": 0.95, "update": 0.05},
    "C": {"read": 1.0},
    "D": {"read_latest": 0.95, "insert": 0.05},
    "E": {"scan": 0.95, "insert": 0.05},
}


@dataclass
class WorkloadResult:
    ops: dict[str, int] = field(default_factory=dict)
    read_misses: int = 0

    def count(self, op: str) -> None:
        self.ops[op] = self.ops.get(op, 0) + 1


def _zipf_indexes(rng, n: int, count: int, skew: float = 0.99) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-skew
    weights /= weights.sum()
    return rng.choice(n, size=count, p=weights)


def run_workload(
    store,
    workload: str,
    n_ops: int,
    *,
    key_space: list[int],
    scan_length: int = 64,
    seed: int = 0,
) -> WorkloadResult:
    """Drive *store* with *n_ops* operations of the named YCSB mix.

    ``key_space`` is the pool of keys (pre-loaded keys first; inserts
    append fresh ones from beyond the pool).
    """
    spec = WORKLOADS.get(workload)
    if spec is None:
        raise ValueError(f"unknown workload {workload!r}; choose from {sorted(WORKLOADS)}")
    rng = np.random.default_rng(seed)
    result = WorkloadResult()
    keys = list(key_space)
    op_names = list(spec)
    op_probs = np.asarray([spec[o] for o in op_names])
    ops = rng.choice(len(op_names), size=n_ops, p=op_probs / op_probs.sum())
    zipf_picks = iter(_zipf_indexes(rng, len(keys), n_ops))
    next_fresh = max(keys) + 1

    for op_index in ops:
        op = op_names[int(op_index)]
        result.count(op)
        if op == "read":
            key = keys[int(next(zipf_picks))]
            if store.get(key) is None:
                result.read_misses += 1
        elif op == "read_latest":
            # Skewed towards the most recently inserted keys.
            offset = int(next(zipf_picks)) % len(keys)
            key = keys[len(keys) - 1 - offset % max(1, len(keys) // 10)]
            if store.get(key) is None:
                result.read_misses += 1
        elif op == "update":
            key = keys[int(next(zipf_picks))]
            store.put(key, int(rng.integers(1 << 30)))
        elif op == "insert":
            store.put(next_fresh, int(rng.integers(1 << 30)))
            keys.append(next_fresh)
            next_fresh += 1
        elif op == "scan":
            lo = keys[int(next(zipf_picks))]
            store.range_query(lo, lo + scan_length - 1)
    return result
