"""Synthetic key and query generators.

Covers the workload shapes the tutorial's claims are stated over:

* uniform random key sets (the default filter benchmark),
* Zipfian query streams (Bender et al.'s adaptivity analysis, CQF skew),
* adversarial repeat-the-false-positive streams (the adaptive-adversary
  model of §2.3),
* correlated range queries (the SuRF-killing workload of §2.5).
"""

from __future__ import annotations

import numpy as np

KEY_UNIVERSE_BITS = 48
KEY_UNIVERSE = 1 << KEY_UNIVERSE_BITS


def random_key_set(n: int, seed: int = 0, universe: int = KEY_UNIVERSE) -> list[int]:
    """*n* distinct uniform keys from ``[0, universe)``."""
    rng = np.random.default_rng(seed)
    keys: set[int] = set()
    while len(keys) < n:
        batch = rng.integers(0, universe, size=n - len(keys) + 16, dtype=np.int64)
        keys.update(int(k) for k in batch)
    return sorted(keys)[:n]


def disjoint_key_sets(
    n_members: int, n_negatives: int, seed: int = 0, universe: int = KEY_UNIVERSE
) -> tuple[list[int], list[int]]:
    """A member set and a disjoint negative-query set."""
    combined = random_key_set(n_members + n_negatives, seed, universe)
    rng = np.random.default_rng(seed ^ 0x5EED)
    order = rng.permutation(len(combined))
    members = [combined[i] for i in order[:n_members]]
    negatives = [combined[i] for i in order[n_members:]]
    return members, negatives


def zipf_queries(
    population: list[int], n_queries: int, skew: float, seed: int = 0
) -> list[int]:
    """*n_queries* draws from *population* with Zipf(*skew*) rank weights.

    skew=0 degenerates to uniform; larger skew concentrates queries on a few
    hot elements — the regime where non-adaptive filters keep repeating the
    same false positives.
    """
    if not population:
        raise ValueError("population must be non-empty")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, len(population) + 1, dtype=np.float64)
    weights = ranks ** (-skew) if skew > 0 else np.ones_like(ranks)
    weights /= weights.sum()
    draws = rng.choice(len(population), size=n_queries, p=weights)
    return [population[i] for i in draws]


def zipf_multiset(
    n_distinct: int, n_total: int, skew: float, seed: int = 0
) -> dict[int, int]:
    """A multiset: *n_distinct* keys with Zipf-distributed multiplicities
    summing to roughly *n_total*.  Feeds the counting-filter experiments."""
    keys = random_key_set(n_distinct, seed)
    draws = zipf_queries(keys, n_total, skew, seed ^ 0xC0)
    counts: dict[int, int] = {}
    for key in draws:
        counts[key] = counts.get(key, 0) + 1
    return counts


def adversarial_repeat_queries(
    negatives: list[int],
    is_false_positive,
    n_queries: int,
    seed: int = 0,
) -> list[int]:
    """The adaptive adversary of §2.3.

    Probes fresh negatives; whenever one comes back as a false positive the
    adversary re-asks it (half of all queries replay a known FP).  Every
    issued query — fresh or replayed — goes through the
    ``is_false_positive(key)`` oracle, which in the dictionary setting *is*
    the query (the adversary learns the truth by watching the disk access).
    A replay that no longer false-positives (the filter adapted) is dropped
    from the replay pool: the adversary only hammers what still works.
    Returns the query sequence actually issued.
    """
    rng = np.random.default_rng(seed)
    discovered: list[int] = []
    fresh = list(negatives)
    rng.shuffle(fresh)
    fresh_iter = iter(fresh)
    queries: list[int] = []
    while len(queries) < n_queries:
        # Alternate: half the time re-ask a known FP, half probe fresh keys.
        replay = bool(discovered) and rng.random() < 0.5
        if replay:
            index = int(rng.integers(len(discovered)))
            key = discovered[index]
        else:
            key = next(fresh_iter, None)
            if key is None:
                if not discovered:
                    break
                replay = True
                index = int(rng.integers(len(discovered)))
                key = discovered[index]
        queries.append(key)
        still_fp = is_false_positive(key)
        if replay and not still_fp:
            discovered.pop(index)
        elif not replay and still_fp:
            discovered.append(key)
    return queries


def random_range_queries(
    n_queries: int,
    range_len: int,
    seed: int = 0,
    universe: int = KEY_UNIVERSE,
) -> list[tuple[int, int]]:
    """Uniform [lo, lo + range_len - 1] interval queries."""
    rng = np.random.default_rng(seed)
    los = rng.integers(0, universe - range_len, size=n_queries, dtype=np.int64)
    return [(int(lo), int(lo) + range_len - 1) for lo in los]


def correlated_range_queries(
    keys: list[int],
    n_queries: int,
    range_len: int,
    gap: int,
    seed: int = 0,
) -> list[tuple[int, int]]:
    """Ranges starting just *gap* above an existing key.

    This is the key-query–correlated workload of §2.5 under which trie-based
    filters (SuRF) lose their filtering power: queried ranges share long
    prefixes with stored keys without containing them.
    """
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, len(keys), size=n_queries)
    out = []
    for i in picks:
        lo = keys[int(i)] + gap
        out.append((lo, lo + range_len - 1))
    return out
