"""Synthetic genomic workloads (substitute for SRA sequencing data).

Generates random genomes, sequencing-style reads, k-mer sets and families of
related "experiments" with controllable shared content — enough structure to
exercise the de Bruijn graph, Sequence Bloom Tree and Mantis reproductions.
"""

from __future__ import annotations

import numpy as np

BASES = "ACGT"
_BASE_CODE = {base: code for code, base in enumerate(BASES)}


def random_genome(length: int, seed: int = 0) -> str:
    """A uniform random DNA string of *length* bases."""
    rng = np.random.default_rng(seed)
    return "".join(BASES[i] for i in rng.integers(0, 4, size=length))


def mutate(genome: str, rate: float, seed: int = 0) -> str:
    """Point-mutate each base independently with probability *rate*."""
    rng = np.random.default_rng(seed)
    out = list(genome)
    for i in range(len(out)):
        if rng.random() < rate:
            out[i] = BASES[int(rng.integers(0, 4))]
    return "".join(out)


def extract_kmers(sequence: str, k: int) -> list[str]:
    """All length-*k* substrings, in order (duplicates preserved)."""
    if k <= 0:
        raise ValueError("k must be positive")
    if len(sequence) < k:
        return []
    return [sequence[i : i + k] for i in range(len(sequence) - k + 1)]


def kmer_to_int(kmer: str) -> int:
    """2-bit pack a k-mer into an integer key."""
    value = 0
    for base in kmer:
        value = (value << 2) | _BASE_CODE[base]
    return value


def int_to_kmer(value: int, k: int) -> str:
    out = []
    for _ in range(k):
        out.append(BASES[value & 3])
        value >>= 2
    return "".join(reversed(out))


def sequencing_reads(
    genome: str, n_reads: int, read_len: int, error_rate: float = 0.0, seed: int = 0
) -> list[str]:
    """Fixed-length reads from random positions, with optional base errors."""
    if read_len > len(genome):
        raise ValueError("read length exceeds genome length")
    rng = np.random.default_rng(seed)
    starts = rng.integers(0, len(genome) - read_len + 1, size=n_reads)
    reads = []
    for start in starts:
        read = genome[int(start) : int(start) + read_len]
        if error_rate > 0:
            read = mutate(read, error_rate, int(rng.integers(1 << 31)))
        reads.append(read)
    return reads


def sequencing_experiments(
    n_experiments: int,
    genome_len: int,
    k: int,
    shared_fraction: float = 0.5,
    seed: int = 0,
) -> list[set[str]]:
    """Families of k-mer sets with controlled overlap.

    A core genome contributes *shared_fraction* of each experiment's
    sequence; the rest is experiment-private.  Mirrors how real sequencing
    experiments share housekeeping content — the regime SBT/Mantis index.
    """
    if not 0.0 <= shared_fraction <= 1.0:
        raise ValueError("shared_fraction must be in [0, 1]")
    core_len = int(genome_len * shared_fraction)
    core = random_genome(core_len, seed) if core_len >= k else ""
    experiments = []
    for i in range(n_experiments):
        private = random_genome(genome_len - core_len, seed ^ (0xD0A + i * 7919))
        kmers = set(extract_kmers(core, k)) | set(extract_kmers(private, k))
        experiments.append(kmers)
    return experiments
