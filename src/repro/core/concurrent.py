"""Thread-scalable filter wrapper (§1's "achieve high concurrency").

Production quotient/cuckoo filters scale across threads by partitioning
the table and locking per region.  The Python-appropriate equivalent is
hash-sharding: the key space is split across independent filter shards,
each guarded by its own lock, so concurrent operations on different shards
never contend.  Correctness (linearizable per key) holds for any wrapped
dynamic filter; throughput scaling is bounded by the GIL in CPython but
the contention behaviour — the thing the design controls — is real and
tested.
"""

from __future__ import annotations

import threading
from collections.abc import Callable

import numpy as np

from repro.core.interfaces import DynamicFilter, Key, KeyBatch, as_key_list
from repro.common.hashing import hash_to_range


class ShardedFilter(DynamicFilter):
    """Lock-striped composition of independent filter shards."""

    def __init__(
        self,
        shard_factory: Callable[[int], DynamicFilter],
        n_shards: int = 8,
        *,
        seed: int = 0,
    ):
        if n_shards < 1:
            raise ValueError("n_shards must be positive")
        self.n_shards = n_shards
        self.seed = seed
        self._shards = [shard_factory(i) for i in range(n_shards)]
        self._locks = [threading.Lock() for _ in range(n_shards)]

    @property
    def supports_deletes(self) -> bool:
        """Recomputed from the live shards on every access.

        A shard's delete support can change after construction — e.g. an
        expandable shard that adds a non-deletable layer when it grows —
        so caching this at ``__init__`` time would keep advertising
        deletes the shards can no longer honour.
        """
        return all(s.supports_deletes for s in self._shards)

    def _shard_of(self, key: Key) -> int:
        return hash_to_range(key, self.n_shards, self.seed ^ 0x5AAD)

    def insert(self, key: Key) -> None:
        i = self._shard_of(key)
        with self._locks[i]:
            self._shards[i].insert(key)

    def may_contain(self, key: Key) -> bool:
        i = self._shard_of(key)
        with self._locks[i]:
            return self._shards[i].may_contain(key)

    def delete(self, key: Key) -> None:
        i = self._shard_of(key)
        with self._locks[i]:
            self._shards[i].delete(key)

    # -- batch API (docs/performance.md) ---------------------------------------

    def _group_by_shard(self, keys: KeyBatch) -> dict[int, tuple[list[int], list]]:
        """Partition a batch: shard index -> (positions, keys), order kept."""
        groups: dict[int, tuple[list[int], list]] = {}
        for position, key in enumerate(as_key_list(keys)):
            shard = self._shard_of(key)
            bucket = groups.get(shard)
            if bucket is None:
                bucket = groups[shard] = ([], [])
            bucket[0].append(position)
            bucket[1].append(key)
        return groups

    def insert_many(self, keys: KeyBatch) -> None:
        """Batch insert: one grouped ``insert_many`` per touched shard.

        Each shard's lock is taken once per batch instead of once per
        key, and each shard sees its keys in their original relative
        order.  On ``FilterFullError`` the keys already handed to shards
        stay inserted (the cross-shard processing order is by shard, not
        by batch position — shards are independent, so only the failing
        shard's progress is partial).
        """
        for shard, (_positions, shard_keys) in self._group_by_shard(keys).items():
            with self._locks[shard]:
                self._shards[shard].insert_many(shard_keys)

    def may_contain_many(self, keys: KeyBatch) -> np.ndarray:
        """Batch probe: group per shard, one vectorised kernel call (and
        one lock acquisition) per shard, answers scattered back in batch
        order."""
        key_list = as_key_list(keys)
        out = np.zeros(len(key_list), dtype=bool)
        for shard, (positions, shard_keys) in self._group_by_shard(key_list).items():
            with self._locks[shard]:
                out[positions] = self._shards[shard].may_contain_many(shard_keys)
        return out

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    @property
    def size_in_bits(self) -> int:
        return sum(shard.size_in_bits for shard in self._shards)

    @property
    def shard_loads(self) -> list[int]:
        """Per-shard key counts (hashing keeps these balanced)."""
        return [len(shard) for shard in self._shards]
