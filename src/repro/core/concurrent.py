"""Thread-scalable filter wrapper (§1's "achieve high concurrency").

Production quotient/cuckoo filters scale across threads by partitioning
the table and locking per region.  The Python-appropriate equivalent is
hash-sharding: the key space is split across independent filter shards,
each guarded by its own lock, so concurrent operations on different shards
never contend.  Correctness (linearizable per key) holds for any wrapped
dynamic filter; throughput scaling is bounded by the GIL in CPython but
the contention behaviour — the thing the design controls — is real and
tested.

Routing is pluggable (:mod:`repro.core.routing`): the default
:class:`~repro.core.routing.HashRouter` reproduces the historical
hard-coded mapping bit-for-bit, while range / consistent-hash routers
enable *online resharding* — between :meth:`ShardedFilter.begin_migration`
and :meth:`ShardedFilter.complete_migration` every write double-applies
to old and new owners and every probe ORs both, so mid-migration answers
can be false positives (the filter contract) but never false negatives.
"""

from __future__ import annotations

import threading
from collections.abc import Callable

import numpy as np

from repro.core.interfaces import DynamicFilter, Key, KeyBatch, as_key_list
from repro.core.routing import HashRouter, Router


class ShardedFilter(DynamicFilter):
    """Lock-striped composition of independent filter shards."""

    def __init__(
        self,
        shard_factory: Callable[[int], DynamicFilter],
        n_shards: int = 8,
        *,
        seed: int = 0,
        router: Router | None = None,
    ):
        if n_shards < 1:
            raise ValueError("n_shards must be positive")
        self.seed = seed
        self._shards = [shard_factory(i) for i in range(n_shards)]
        self._locks = [threading.Lock() for _ in range(n_shards)]
        # The default router is bit-identical to the historical inline
        # hash_to_range(key, n_shards, seed ^ 0x5AAD) mapping.
        self._router = router if router is not None else HashRouter(
            n_shards, seed=seed
        )
        self._next_router: Router | None = None
        self._check_router(self._router)

    def _check_router(self, router: Router) -> None:
        if max(router.shard_ids(), default=0) >= len(self._shards):
            raise ValueError(
                "router routes to shard ids beyond the shard list; "
                "add_shard() the new shards first"
            )

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def router(self) -> Router:
        return self._router

    @property
    def routing_epoch(self) -> int:
        """Version of the active routing table; bumps at cutover."""
        return self._router.epoch

    @property
    def migrating(self) -> bool:
        return self._next_router is not None

    @property
    def supports_deletes(self) -> bool:
        """Recomputed from the live shards on every access.

        A shard's delete support can change after construction — e.g. an
        expandable shard that adds a non-deletable layer when it grows —
        so caching this at ``__init__`` time would keep advertising
        deletes the shards can no longer honour.
        """
        return all(s.supports_deletes for s in self._shards)

    # -- resharding hooks (repro.serve.reshard drives these) -------------------

    def add_shard(self, shard: DynamicFilter) -> int:
        """Append a shard (and its lock); returns its id for routers."""
        self._shards.append(shard)
        self._locks.append(threading.Lock())
        return len(self._shards) - 1

    def begin_migration(self, new_router: Router) -> None:
        """Enter double-apply/double-read mode toward *new_router*.

        Until :meth:`complete_migration`, inserts land in both the old
        and the new owner and probes OR both — so a concurrent reader can
        see an extra positive (harmless) but never misses a key.
        """
        if self._next_router is not None:
            raise RuntimeError("a migration is already in progress")
        self._check_router(new_router)
        self._next_router = new_router

    def complete_migration(self) -> None:
        """Cut over: the new router becomes the only routing table."""
        if self._next_router is None:
            raise RuntimeError("no migration in progress")
        self._router = self._next_router
        self._next_router = None

    def _owners(self, key: Key) -> tuple[int, ...]:
        primary = self._router.owner(key)
        if self._next_router is None:
            return (primary,)
        secondary = self._next_router.owner(key)
        return (primary,) if secondary == primary else (primary, secondary)

    def _shard_of(self, key: Key) -> int:
        # Compat shim: callers of the old private helper get the router's
        # primary owner (identical to the historical mapping under the
        # default HashRouter).
        return self._router.owner(key)

    def insert(self, key: Key) -> None:
        for i in self._owners(key):
            with self._locks[i]:
                self._shards[i].insert(key)

    def may_contain(self, key: Key) -> bool:
        for i in self._owners(key):
            with self._locks[i]:
                if self._shards[i].may_contain(key):
                    return True
        return False

    def delete(self, key: Key) -> None:
        owners = self._owners(key)
        primary = owners[0]
        with self._locks[primary]:
            self._shards[primary].delete(key)
        # During a migration the secondary owner may not have seen the
        # key yet (inserted before double-apply began), and deleting a
        # never-inserted key is undefined for counting filters — so the
        # secondary delete is guarded by a containment check.
        for i in owners[1:]:
            with self._locks[i]:
                if self._shards[i].may_contain(key):
                    self._shards[i].delete(key)

    # -- batch API (docs/performance.md) ---------------------------------------

    def _group_by_shard(self, keys: KeyBatch) -> dict[int, tuple[list[int], list]]:
        """Partition a batch: shard index -> (positions, keys), order kept.

        During a migration a key appears in *both* owners' groups, so the
        batch paths double-apply/double-read exactly like the scalar ones.
        """
        groups: dict[int, tuple[list[int], list]] = {}
        for position, key in enumerate(as_key_list(keys)):
            for shard in self._owners(key):
                bucket = groups.get(shard)
                if bucket is None:
                    bucket = groups[shard] = ([], [])
                bucket[0].append(position)
                bucket[1].append(key)
        return groups

    def insert_many(self, keys: KeyBatch) -> None:
        """Batch insert: one grouped ``insert_many`` per touched shard.

        Each shard's lock is taken once per batch instead of once per
        key, and each shard sees its keys in their original relative
        order.  On ``FilterFullError`` the keys already handed to shards
        stay inserted (the cross-shard processing order is by shard, not
        by batch position — shards are independent, so only the failing
        shard's progress is partial).
        """
        for shard, (_positions, shard_keys) in self._group_by_shard(keys).items():
            with self._locks[shard]:
                self._shards[shard].insert_many(shard_keys)

    def may_contain_many(self, keys: KeyBatch) -> np.ndarray:
        """Batch probe: group per shard, one vectorised kernel call (and
        one lock acquisition) per shard, answers scattered back in batch
        order (OR-combined across owners during a migration)."""
        key_list = as_key_list(keys)
        out = np.zeros(len(key_list), dtype=bool)
        for shard, (positions, shard_keys) in self._group_by_shard(key_list).items():
            with self._locks[shard]:
                hits = self._shards[shard].may_contain_many(shard_keys)
            out[positions] |= hits
        return out

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    @property
    def size_in_bits(self) -> int:
        return sum(shard.size_in_bits for shard in self._shards)

    @property
    def shard_loads(self) -> list[int]:
        """Per-shard key counts (hashing keeps these balanced)."""
        return [len(shard) for shard in self._shards]
