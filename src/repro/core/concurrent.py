"""Thread-scalable filter wrapper (§1's "achieve high concurrency").

Production quotient/cuckoo filters scale across threads by partitioning
the table and locking per region.  The Python-appropriate equivalent is
hash-sharding: the key space is split across independent filter shards,
each guarded by its own lock, so concurrent operations on different shards
never contend.  Correctness (linearizable per key) holds for any wrapped
dynamic filter; throughput scaling is bounded by the GIL in CPython but
the contention behaviour — the thing the design controls — is real and
tested.
"""

from __future__ import annotations

import threading
from collections.abc import Callable

from repro.core.interfaces import DynamicFilter, Key
from repro.common.hashing import hash_to_range


class ShardedFilter(DynamicFilter):
    """Lock-striped composition of independent filter shards."""

    def __init__(
        self,
        shard_factory: Callable[[int], DynamicFilter],
        n_shards: int = 8,
        *,
        seed: int = 0,
    ):
        if n_shards < 1:
            raise ValueError("n_shards must be positive")
        self.n_shards = n_shards
        self.seed = seed
        self._shards = [shard_factory(i) for i in range(n_shards)]
        self._locks = [threading.Lock() for _ in range(n_shards)]
        self.supports_deletes = all(s.supports_deletes for s in self._shards)

    def _shard_of(self, key: Key) -> int:
        return hash_to_range(key, self.n_shards, self.seed ^ 0x5AAD)

    def insert(self, key: Key) -> None:
        i = self._shard_of(key)
        with self._locks[i]:
            self._shards[i].insert(key)

    def may_contain(self, key: Key) -> bool:
        i = self._shard_of(key)
        with self._locks[i]:
            return self._shards[i].may_contain(key)

    def delete(self, key: Key) -> None:
        i = self._shard_of(key)
        with self._locks[i]:
            self._shards[i].delete(key)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    @property
    def size_in_bits(self) -> int:
        return sum(shard.size_in_bits for shard in self._shards)

    @property
    def shard_loads(self) -> list[int]:
        """Per-shard key counts (hashing keeps these balanced)."""
        return [len(shard) for shard in self._shards]
