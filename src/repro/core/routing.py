"""Pluggable, versioned shard routing (ROADMAP #4, docs/robustness.md).

A :class:`Router` maps keys to shard ids.  Every router carries an
``epoch`` — a version number that bumps whenever ownership changes — so
layers above (the sharded store, negative caches, migration journals)
can tell "same topology" from "keys moved" without diffing tables.
Routers are value objects: topology changes (:meth:`HashRangeRouter.split`,
:meth:`ConsistentHashRouter.with_shard`, …) return a *new* router at
``epoch + 1`` and never mutate the old one, which is exactly what online
resharding needs — a migration is an ``(old_router, new_router)`` pair,
and a key must move iff the two disagree about its owner.

All routers serialize to JSON-safe manifests (:meth:`Router.to_manifest`
/ :func:`router_from_manifest`) so routing survives crashes through the
same double-buffered-manifest discipline the LSM-tree uses.
"""

from __future__ import annotations

import bisect
import warnings
from typing import Any

from repro.common.hashing import hash64, hash_to_range

# XORed into the user seed before hashing so shard choice stays
# decorrelated from the filters' own hash functions (the historical
# ShardedFilter constant — kept bit-identical for compatibility).
SHARD_SALT = 0x5AAD

_SPACE = 1 << 64  # routers partition the full 64-bit hash space


class Router:
    """Maps keys to shard ids; versioned by ``epoch``."""

    kind = "base"

    def __init__(self, *, epoch: int = 0):
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        self.epoch = epoch

    def owner(self, key: Any) -> int:
        raise NotImplementedError

    def shard_ids(self) -> tuple[int, ...]:
        raise NotImplementedError

    def preference_list(self, key: Any, n: int) -> tuple[int, ...]:
        """The first ``min(n, len(shards))`` distinct shards responsible
        for *key*, primary first — the replica placement set.

        The base rule walks successors of the owner in sorted-id order
        (wrapping), so any router gets a deterministic placement;
        :class:`ConsistentHashRouter` overrides this with a true ring
        walk, which is the placement replication should prefer (adding a
        shard shifts only neighbouring replica sets).
        """
        if n < 1:
            raise ValueError("preference list size must be positive")
        ids = sorted(self.shard_ids())
        start = ids.index(self.owner(key))
        take = min(n, len(ids))
        return tuple(ids[(start + i) % len(ids)] for i in range(take))

    def to_manifest(self) -> dict:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(epoch={self.epoch}, shards={self.shard_ids()})"


class HashRouter(Router):
    """The historical ``ShardedFilter`` mapping: multiply-shift over a
    fixed shard count.  Bit-identical to the old hard-coded
    ``hash_to_range(key, n_shards, seed ^ 0x5AAD)``, so plugging the
    default router in changes nothing.  Fixed fan — it cannot split."""

    kind = "hash"

    def __init__(self, n_shards: int, *, seed: int = 0, epoch: int = 0):
        if n_shards < 1:
            raise ValueError("n_shards must be positive")
        super().__init__(epoch=epoch)
        self.n_shards = n_shards
        self.seed = seed

    def owner(self, key: Any) -> int:
        return hash_to_range(key, self.n_shards, self.seed ^ SHARD_SALT)

    def shard_ids(self) -> tuple[int, ...]:
        return tuple(range(self.n_shards))

    def to_manifest(self) -> dict:
        return {
            "kind": self.kind, "epoch": self.epoch,
            "n_shards": self.n_shards, "seed": self.seed,
        }


class ModuloRouter(Router):
    """Deprecated: the pre-Router hard-coded modulo mapping.

    Kept only as a compat shim for callers that depended on
    ``hash64(key) % n_shards``; emits a :class:`DeprecationWarning` at
    construction.  Use :class:`HashRouter` (same balance, faster
    multiply-shift reduction) or :class:`HashRangeRouter` (splittable).
    """

    kind = "modulo"

    def __init__(self, n_shards: int, *, seed: int = 0, epoch: int = 0):
        warnings.warn(
            "ModuloRouter is a deprecated compat shim; use HashRouter or "
            "HashRangeRouter instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if n_shards < 1:
            raise ValueError("n_shards must be positive")
        super().__init__(epoch=epoch)
        self.n_shards = n_shards
        self.seed = seed

    def owner(self, key: Any) -> int:
        return hash64(key, self.seed ^ SHARD_SALT) % self.n_shards

    def shard_ids(self) -> tuple[int, ...]:
        return tuple(range(self.n_shards))

    def to_manifest(self) -> dict:
        return {
            "kind": self.kind, "epoch": self.epoch,
            "n_shards": self.n_shards, "seed": self.seed,
        }


class HashRangeRouter(Router):
    """Contiguous ranges of the 64-bit hash space, one owner per range.

    ``bounds`` is a sorted tuple of ``(upper_exclusive, shard_id)`` pairs
    whose last upper bound is 2**64, so every hash value has exactly one
    owner by construction.  :meth:`split` and :meth:`merge` return new
    routers at ``epoch + 1`` — the primitives online resharding is built
    from (split a hot shard's widest range; merge a cold shard away).
    """

    kind = "hash_range"

    def __init__(self, bounds, *, seed: int = 0, epoch: int = 0):
        super().__init__(epoch=epoch)
        self.seed = seed
        self.bounds = tuple((int(upper), int(shard)) for upper, shard in bounds)
        if not self.bounds:
            raise ValueError("bounds must be non-empty")
        uppers = [u for u, _ in self.bounds]
        if uppers != sorted(uppers) or len(set(uppers)) != len(uppers):
            raise ValueError("bounds must be strictly increasing")
        if self.bounds[-1][0] != _SPACE:
            raise ValueError("last upper bound must cover the hash space")
        self._uppers = uppers

    @classmethod
    def uniform(cls, shard_ids, *, seed: int = 0, epoch: int = 0) -> "HashRangeRouter":
        """Equal-width ranges over *shard_ids*, in the order given."""
        ids = list(shard_ids)
        if not ids:
            raise ValueError("need at least one shard")
        n = len(ids)
        bounds = [((i + 1) * _SPACE // n, ids[i]) for i in range(n)]
        return cls(bounds, seed=seed, epoch=epoch)

    def owner(self, key: Any) -> int:
        h = hash64(key, self.seed ^ SHARD_SALT)
        return self.bounds[bisect.bisect_right(self._uppers, h)][1]

    def shard_ids(self) -> tuple[int, ...]:
        return tuple(sorted({shard for _, shard in self.bounds}))

    def ranges_of(self, shard: int) -> list[tuple[int, int]]:
        """The ``[lo, hi)`` hash ranges *shard* owns."""
        out = []
        lo = 0
        for upper, owner in self.bounds:
            if owner == shard:
                out.append((lo, upper))
            lo = upper
        return out

    def split(
        self, source: int, target: int, histogram=None
    ) -> "HashRangeRouter":
        """Hand the upper part of one of *source*'s ranges to *target*.

        Without a *histogram* the widest range is cut at its geometric
        midpoint — correct for uniformly hashed keys, but a skewed
        (adversarial or low-entropy) key set can leave one half nearly
        empty.  With *histogram* — an iterable of observed 64-bit key
        hash points, e.g. from ``ShardedStore.key_histogram(source)`` —
        the cut goes through the range holding the most observed keys,
        at their median point, so each side inherits half the *observed*
        population rather than half the hash space.
        """
        if target in self.shard_ids() and target != source:
            raise ValueError(f"target shard {target} already owns ranges")
        ranges = self.ranges_of(source)
        if not ranges:
            raise ValueError(f"shard {source} owns no range")
        lo, hi = max(ranges, key=lambda r: r[1] - r[0])
        mid = (lo + hi) // 2
        if histogram is not None:
            points = sorted(int(p) for p in histogram)
            per_range = {
                (rlo, rhi): [p for p in points if rlo <= p < rhi]
                for rlo, rhi in ranges
            }
            busiest, occupants = max(
                per_range.items(), key=lambda item: (len(item[1]), item[0][1] - item[0][0])
            )
            if occupants:
                lo, hi = busiest
                # Cut *after* the lower half's last occupant so the halves
                # carry equal observed load; clamp to keep both sides
                # non-empty ranges.
                median = occupants[len(occupants) // 2]
                mid = min(max(median, lo + 1), hi - 1)
        if mid == lo:
            raise ValueError(f"shard {source}'s range is too narrow to split")
        new_bounds = []
        for upper, owner in self.bounds:
            if upper == hi and owner == source:
                new_bounds.append((mid, source))
                new_bounds.append((hi, target))
            else:
                new_bounds.append((upper, owner))
        return HashRangeRouter(new_bounds, seed=self.seed, epoch=self.epoch + 1)

    def merge(self, source: int, dest: int) -> "HashRangeRouter":
        """Reassign every range *source* owns to *dest* (retiring *source*)."""
        if source == dest:
            raise ValueError("merge source and dest must differ")
        if source not in self.shard_ids() or dest not in self.shard_ids():
            raise ValueError("merge endpoints must both own ranges")
        reassigned = [
            (upper, dest if owner == source else owner)
            for upper, owner in self.bounds
        ]
        # Coalesce adjacent ranges that now share an owner.
        coalesced: list[tuple[int, int]] = []
        for upper, owner in reassigned:
            if coalesced and coalesced[-1][1] == owner:
                coalesced[-1] = (upper, owner)
            else:
                coalesced.append((upper, owner))
        return HashRangeRouter(coalesced, seed=self.seed, epoch=self.epoch + 1)

    def to_manifest(self) -> dict:
        return {
            "kind": self.kind, "epoch": self.epoch, "seed": self.seed,
            "bounds": [[upper, shard] for upper, shard in self.bounds],
        }


class ConsistentHashRouter(Router):
    """Classic consistent-hash ring with virtual nodes.

    Adding or removing one shard moves only ~1/n of the key space —
    the other shape online resharding takes when capacity, not one hot
    range, is the problem.  ``vnodes`` virtual points per shard keep the
    per-shard load spread tight.
    """

    kind = "consistent"

    def __init__(self, shard_ids, *, seed: int = 0, vnodes: int = 16, epoch: int = 0):
        super().__init__(epoch=epoch)
        ids = sorted(set(shard_ids))
        if not ids:
            raise ValueError("need at least one shard")
        if vnodes < 1:
            raise ValueError("vnodes must be positive")
        self.seed = seed
        self.vnodes = vnodes
        self._ids = tuple(ids)
        points = []
        for shard in ids:
            for v in range(vnodes):
                points.append((hash64(f"vnode:{shard}:{v}", seed), shard))
        points.sort()
        self._points = points
        self._hashes = [h for h, _ in points]

    def owner(self, key: Any) -> int:
        h = hash64(key, self.seed ^ SHARD_SALT)
        i = bisect.bisect_right(self._hashes, h)
        if i == len(self._points):
            i = 0  # wrap around the ring
        return self._points[i][1]

    def shard_ids(self) -> tuple[int, ...]:
        return self._ids

    def preference_list(self, key: Any, n: int) -> tuple[int, ...]:
        """Walk the ring clockwise from the key's point, collecting the
        first ``min(n, len(shards))`` *distinct* shards (Dynamo-style
        replica placement: successive vnodes owned by the same shard are
        skipped, so replicas land on different shards)."""
        if n < 1:
            raise ValueError("preference list size must be positive")
        take = min(n, len(self._ids))
        h = hash64(key, self.seed ^ SHARD_SALT)
        i = bisect.bisect_right(self._hashes, h)
        chosen: list[int] = []
        for step in range(len(self._points)):
            shard = self._points[(i + step) % len(self._points)][1]
            if shard not in chosen:
                chosen.append(shard)
                if len(chosen) == take:
                    break
        return tuple(chosen)

    def with_shard(self, shard: int) -> "ConsistentHashRouter":
        if shard in self._ids:
            raise ValueError(f"shard {shard} is already on the ring")
        return ConsistentHashRouter(
            self._ids + (shard,), seed=self.seed, vnodes=self.vnodes,
            epoch=self.epoch + 1,
        )

    def without_shard(self, shard: int) -> "ConsistentHashRouter":
        if shard not in self._ids:
            raise ValueError(f"shard {shard} is not on the ring")
        if len(self._ids) == 1:
            raise ValueError("cannot remove the last shard")
        remaining = tuple(s for s in self._ids if s != shard)
        return ConsistentHashRouter(
            remaining, seed=self.seed, vnodes=self.vnodes, epoch=self.epoch + 1
        )

    def to_manifest(self) -> dict:
        return {
            "kind": self.kind, "epoch": self.epoch, "seed": self.seed,
            "vnodes": self.vnodes, "shards": list(self._ids),
        }


def router_from_manifest(raw: dict) -> Router:
    """Rehydrate any router from its JSON manifest (inverse of
    ``to_manifest``); raises ``ValueError`` on unknown kinds."""
    kind = raw.get("kind")
    epoch = int(raw.get("epoch", 0))
    seed = int(raw.get("seed", 0))
    if kind == HashRouter.kind:
        return HashRouter(int(raw["n_shards"]), seed=seed, epoch=epoch)
    if kind == ModuloRouter.kind:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            return ModuloRouter(int(raw["n_shards"]), seed=seed, epoch=epoch)
    if kind == HashRangeRouter.kind:
        return HashRangeRouter(
            [(int(u), int(s)) for u, s in raw["bounds"]], seed=seed, epoch=epoch
        )
    if kind == ConsistentHashRouter.kind:
        return ConsistentHashRouter(
            raw["shards"], seed=seed, vnodes=int(raw["vnodes"]), epoch=epoch
        )
    raise ValueError(f"unknown router kind {kind!r}")
