"""Bloofi: a hierarchical filter-of-filters index (Crainiceanu & Lemire).

``ShardedFilter`` answers "which shard may hold this key?" by probing
every shard — O(N) filter probes per lookup.  At fleet scale (thousands
to millions of per-tenant filters) that is the whole query budget.
Bloofi (PAPERS.md) turns the fleet into a B-tree-shaped index: each
leaf is one tenant's Bloom filter, each interior node stores the
**bit-OR** of its children, and a lookup descends only into subtrees
whose OR says MAYBE.  Because every filter shares one geometry
``(m, k, seed)``, a key probes the *same* bit positions at every level,
and an interior OR that misses any of them proves no descendant leaf
can match — pruning is exact with respect to the leaves.

Maintenance follows the paper's split:

* **inserts** propagate incrementally — the key's k bits are OR-ed into
  every ancestor on the way up (O(k · height));
* **tenant add** descends to the least-loaded bottom node and splits
  nodes B-tree-style when they exceed ``max_fanout`` (all leaves stay
  at one depth);
* **tenant remove** is *lazy*: the leaf unlinks (with underflow
  merge/borrow) but ancestor ORs keep the dead tenant's bits — a safe
  superset that only costs extra descents, never a wrong answer;
* a **periodic full re-OR** (:meth:`BloofiTree.reor`, automatic every
  ``reor_interval`` removals) recomputes every interior OR bottom-up
  and sheds that deletion staleness.

The safety invariant everything above preserves: **every interior OR is
a bitwise superset of the OR of its descendant leaves**, so a present
key can never be pruned away — the tree inherits the one-sided-error
contract of its leaves.  A *degraded* node (its OR unreadable, injected
by the serving layer's chaos hooks) is treated as MAYBE and descended
unconditionally: degradation widens the search, never narrows it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.interfaces import Key
from repro.filters.bloom import BloomFilter


@dataclass(frozen=True)
class BloofiConfig:
    """Geometry + maintenance knobs for one Bloofi tree.

    All leaves share ``(leaf_capacity, epsilon, seed)`` — that triple
    fixes the bit-array shape and hash path, which is what makes the
    interior ORs meaningful.  ``max_fanout`` bounds node width
    (``min_fanout`` = half, B-tree style); ``reor_interval`` is the
    number of tenant removals tolerated before an automatic full re-OR.
    """

    leaf_capacity: int = 64
    epsilon: float = 0.01
    seed: int = 0
    max_fanout: int = 8
    reor_interval: int = 64

    def __post_init__(self):
        if self.leaf_capacity < 1:
            raise ValueError("leaf_capacity must be positive")
        if not 0 < self.epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        if self.max_fanout < 2:
            raise ValueError("max_fanout must be at least 2")
        if self.reor_interval < 1:
            raise ValueError("reor_interval must be positive")

    @property
    def min_fanout(self) -> int:
        return max(2, self.max_fanout // 2)


class _Node:
    """One tree node: a leaf (tenant + filter) or an interior OR."""

    __slots__ = ("words", "children", "parent", "tenant", "filter", "n_leaves")

    def __init__(self, *, tenant=None, filt: BloomFilter | None = None,
                 n_words: int = 0):
        self.parent: _Node | None = None
        self.tenant = tenant
        self.filter = filt
        if filt is not None:           # leaf: words alias the filter's bits
            self.words = filt._bits.words
            self.children = None
            self.n_leaves = 1
        else:                          # interior: own OR accumulator
            self.words = np.zeros(n_words, dtype=np.uint64)
            self.children: list[_Node] = []
            self.n_leaves = 0

    @property
    def is_leaf(self) -> bool:
        return self.children is None


@dataclass
class BloofiLookup:
    """One descent's result: candidate tenants plus probe accounting.

    ``tenants`` are exactly the leaves whose summary filter answered
    MAYBE (or whose summary was degraded — listed in ``degraded_leaves``
    too, since an unreadable leaf cannot prove absence).  ``probes`` is
    the number of node filters actually tested — the quantity the
    router-vs-flat benchmark compares; ``probes_by_level`` splits it by
    depth (root = level 0).  ``degraded_descents`` counts interior nodes
    whose OR was unreadable and were therefore descended without
    pruning.
    """

    tenants: list = field(default_factory=list)
    probes: int = 0
    probes_by_level: dict[int, int] = field(default_factory=dict)
    degraded_descents: int = 0
    degraded_leaves: list = field(default_factory=list)


class BloofiTree:
    """Bit-OR B-tree over same-geometry per-tenant Bloom filters."""

    def __init__(self, config: BloofiConfig | None = None):
        self.config = config if config is not None else BloofiConfig()
        # Template fixes the shared geometry; never inserted into.
        self._template = BloomFilter(
            self.config.leaf_capacity, self.config.epsilon,
            seed=self.config.seed,
        )
        self._n_words = len(self._template._bits.words)
        self._root = _Node(n_words=self._n_words)
        self._leaves: dict[Any, _Node] = {}
        self._removals_since_reor = 0
        self.reor_runs = 0
        # Cached aggregates (size, height) are recomputed lazily and
        # invalidated on every child-membership change — never trust a
        # structural property cached across splits/merges
        # (the ShardedFilter.supports_deletes lesson, tests/test_tenant.py).
        self._agg_cache: dict[str, Any] = {}

    # -- geometry ---------------------------------------------------------------

    def make_leaf_filter(self) -> BloomFilter:
        """A fresh empty filter with this tree's shared geometry."""
        return BloomFilter(
            self.config.leaf_capacity, self.config.epsilon,
            seed=self.config.seed,
        )

    def _check_geometry(self, filt: BloomFilter) -> None:
        t = self._template
        if (filt._m, filt._k, filt.seed) != (t._m, t._k, t.seed):
            raise ValueError(
                "leaf filter geometry (m, k, seed) must match the tree's; "
                "build leaves with make_leaf_filter()"
            )

    def _probe_arrays(self, key: Key) -> tuple[np.ndarray, np.ndarray]:
        """(word indexes, bit masks) for *key* — shared by every level."""
        pos = self._template.bit_positions(key)
        return pos >> 6, (np.uint64(1) << (pos & 63).astype(np.uint64))

    # -- aggregate properties ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._leaves)

    @property
    def n_tenants(self) -> int:
        return len(self._leaves)

    def tenant_ids(self) -> list:
        return list(self._leaves)

    def tenant_filter(self, tenant) -> BloomFilter:
        return self._leaves[tenant].filter

    def __contains__(self, tenant) -> bool:
        return tenant in self._leaves

    @property
    def height(self) -> int:
        """Levels of interior nodes above the leaves (0 = leaves hang
        off the root)."""
        cached = self._agg_cache.get("height")
        if cached is None:
            cached = 0
            node = self._root
            while node.children and not node.children[0].is_leaf:
                cached += 1
                node = node.children[0]
            self._agg_cache["height"] = cached
        return cached

    @property
    def size_in_bits(self) -> int:
        """Total bits across interior ORs and leaf filters (cached;
        invalidated on any child-membership change)."""
        cached = self._agg_cache.get("size_in_bits")
        if cached is None:
            n_interior = sum(1 for _ in self._walk_interior())
            cached = (n_interior * self._n_words * 64
                      + sum(leaf.filter.size_in_bits
                            for leaf in self._leaves.values()))
            self._agg_cache["size_in_bits"] = cached
        return cached

    def _invalidate_aggregates(self) -> None:
        self._agg_cache.clear()

    def _walk_interior(self):
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                continue
            yield node
            stack.extend(node.children)

    # -- maintenance: add / remove / split / merge ------------------------------

    def add_tenant(self, tenant, filt: BloomFilter | None = None) -> BloomFilter:
        """Attach a leaf for *tenant*; returns its summary filter.

        A caller-provided *filt* (e.g. a pre-loaded filter recovered
        from disk) must share the tree's geometry; its bits are OR-ed
        into every ancestor immediately.
        """
        if tenant in self._leaves:
            raise ValueError(f"tenant {tenant!r} is already indexed")
        if filt is None:
            filt = self.make_leaf_filter()
        else:
            self._check_geometry(filt)
        leaf = _Node(tenant=tenant, filt=filt)
        # Descend to the least-loaded bottom interior node (keeps the
        # tree balanced without the paper's similarity heuristic, which
        # buys FPR, not correctness).
        node = self._root
        while node.children and not node.children[0].is_leaf:
            node = min(node.children, key=lambda c: c.n_leaves)
        node.children.append(leaf)
        leaf.parent = node
        cursor = node
        while cursor is not None:
            cursor.n_leaves += 1
            cursor.words |= leaf.words
            cursor = cursor.parent
        self._leaves[tenant] = leaf
        if len(node.children) > self.config.max_fanout:
            self._split(node)
        self._invalidate_aggregates()
        return filt

    def _split(self, node: _Node) -> None:
        """B-tree split: half of *node*'s children move to a new sibling."""
        half = len(node.children) // 2
        sibling = _Node(n_words=self._n_words)
        sibling.children = node.children[half:]
        node.children = node.children[:half]
        for child in sibling.children:
            child.parent = sibling
        self._refresh(node)
        self._refresh(sibling)
        parent = node.parent
        if parent is None:
            # Root split: the tree grows one level.
            new_root = _Node(n_words=self._n_words)
            new_root.children = [node, sibling]
            node.parent = sibling.parent = new_root
            new_root.n_leaves = node.n_leaves + sibling.n_leaves
            new_root.words |= node.words
            new_root.words |= sibling.words
            self._root = new_root
        else:
            parent.children.insert(parent.children.index(node) + 1, sibling)
            sibling.parent = parent
            if len(parent.children) > self.config.max_fanout:
                self._split(parent)
        self._invalidate_aggregates()

    def _refresh(self, node: _Node) -> None:
        """Recompute *node*'s OR and leaf count from its children."""
        node.words[:] = 0
        node.n_leaves = 0
        for child in node.children:
            node.words |= child.words
            node.n_leaves += child.n_leaves

    def remove_tenant(self, tenant) -> None:
        """Unlink *tenant*'s leaf (lazily: ancestor ORs keep its bits).

        Underflowing interiors merge into (or borrow from) a sibling so
        non-root nodes keep at least ``min_fanout`` children.  Every
        ``reor_interval`` removals an automatic :meth:`reor` sheds the
        accumulated superset staleness.
        """
        leaf = self._leaves.pop(tenant, None)
        if leaf is None:
            raise KeyError(f"tenant {tenant!r} is not indexed")
        parent = leaf.parent
        parent.children.remove(leaf)
        leaf.parent = None
        cursor = parent
        while cursor is not None:
            cursor.n_leaves -= 1
            cursor = cursor.parent
        self._rebalance(parent)
        self._invalidate_aggregates()
        self._removals_since_reor += 1
        if self._removals_since_reor >= self.config.reor_interval:
            self.reor()

    def _rebalance(self, node: _Node) -> None:
        """Restore the fanout floor after a removal under *node*."""
        if node.parent is None:
            # The root may hold any number of children; collapse it when
            # a single interior child remains (the tree shrinks a level).
            while (node.children and len(node.children) == 1
                   and not node.children[0].is_leaf):
                self._root = node.children[0]
                self._root.parent = None
                node = self._root
            return
        if len(node.children) >= self.config.min_fanout:
            return
        parent = node.parent
        index = parent.children.index(node)
        sibling = min(
            (c for c in parent.children if c is not node),
            key=lambda c: len(c.children),
        )
        if (len(sibling.children) + len(node.children)
                <= self.config.max_fanout):
            # Merge: the sibling adopts every child (its OR grows by
            # theirs — still exact-or-superset), and the emptied node
            # unlinks; the parent may underflow in turn.
            for child in node.children:
                child.parent = sibling
                sibling.words |= child.words
                sibling.n_leaves += child.n_leaves
            sibling.children.extend(node.children)
            node.children = []
            parent.children.pop(index)
            if len(sibling.children) > self.config.max_fanout:
                self._split(sibling)
            self._rebalance(parent)
        else:
            # Borrow: pull children across until the floor is met.  The
            # donor's OR keeps the moved bits (lazy superset, reor()
            # tightens); the receiver's OR grows exactly.
            while len(node.children) < self.config.min_fanout:
                moved = sibling.children.pop()
                moved.parent = node
                node.children.append(moved)
                node.words |= moved.words
                node.n_leaves += moved.n_leaves
                sibling.n_leaves -= moved.n_leaves

    # -- inserts and lookups ----------------------------------------------------

    def insert(self, tenant, key: Key) -> None:
        """Insert *key* into *tenant*'s filter and OR the k bits upward."""
        leaf = self._leaves.get(tenant)
        if leaf is None:
            raise KeyError(f"tenant {tenant!r} is not indexed")
        leaf.filter.insert(key)
        widx, masks = self._probe_arrays(key)
        node = leaf.parent
        while node is not None:
            np.bitwise_or.at(node.words, widx, masks)
            node = node.parent

    def insert_many(self, tenant, keys) -> None:
        """Batch insert: one leaf scatter, then one OR pass per ancestor."""
        leaf = self._leaves.get(tenant)
        if leaf is None:
            raise KeyError(f"tenant {tenant!r} is not indexed")
        keys = list(keys)
        if not keys:
            return
        leaf.filter.insert_many(keys)
        node = leaf.parent
        while node is not None:
            node.words |= leaf.words
            node = node.parent

    def _matches(self, node: _Node, widx: np.ndarray, masks: np.ndarray) -> bool:
        return bool(((node.words[widx] & masks) == masks).all())

    def candidates(
        self,
        key: Key,
        *,
        fault: Callable[[str, int], bool] | None = None,
        on_probe: Callable[[int], None] | None = None,
    ) -> BloofiLookup:
        """Descend from the root; return every tenant that may hold *key*.

        *fault*, if given, is called as ``fault(kind, depth)`` with
        ``kind`` in ``{"node", "leaf"}`` before each filter read; a True
        return marks that read degraded.  A degraded interior node is
        descended unconditionally (its OR cannot prune), and a degraded
        leaf is reported as a candidate (its filter cannot prove
        absence) — chaos widens the candidate set, never narrows it.
        *on_probe*, if given, is called as ``on_probe(depth)`` after
        each filter actually read — the serving layer's latency hook.
        """
        result = BloofiLookup()
        if not self._leaves:
            return result
        widx, masks = self._probe_arrays(key)
        stack = [(self._root, 0)]
        while stack:
            node, depth = stack.pop()
            if fault is not None and fault(
                "leaf" if node.is_leaf else "node", depth
            ):
                if node.is_leaf:
                    result.tenants.append(node.tenant)
                    result.degraded_leaves.append(node.tenant)
                else:
                    result.degraded_descents += 1
                    stack.extend((c, depth + 1) for c in node.children)
                continue
            result.probes += 1
            result.probes_by_level[depth] = (
                result.probes_by_level.get(depth, 0) + 1
            )
            if on_probe is not None:
                on_probe(depth)
            if not self._matches(node, widx, masks):
                continue
            if node.is_leaf:
                result.tenants.append(node.tenant)
            else:
                stack.extend((c, depth + 1) for c in node.children)
        return result

    def may_contain_any(self, key: Key) -> bool:
        """True iff some tenant's filter may hold *key* (root probe +
        descent, no candidate list allocation avoided for simplicity)."""
        return bool(self.candidates(key).tenants)

    def tenant_may_contain(self, tenant, key: Key) -> bool:
        """Direct leaf probe, no descent (the per-tenant fast path)."""
        leaf = self._leaves.get(tenant)
        if leaf is None:
            raise KeyError(f"tenant {tenant!r} is not indexed")
        return leaf.filter.may_contain(key)

    # -- staleness maintenance --------------------------------------------------

    def reor(self) -> int:
        """Full bottom-up re-OR of every interior node.

        Returns the number of stale bits cleared.  This is the periodic
        pass that sheds lazy-removal staleness; between calls the
        interior ORs are supersets (never subsets) of their descendant
        leaves' OR, so skipping it costs descents, not correctness.
        """
        cleared = 0

        def rebuild(node: _Node) -> np.ndarray:
            nonlocal cleared
            if node.is_leaf:
                return node.words
            exact = np.zeros(self._n_words, dtype=np.uint64)
            for child in node.children:
                exact |= rebuild(child)
            stale = node.words & ~exact
            if stale.any():
                from repro.common.bitvector import popcount64

                cleared += int(popcount64(stale).sum())
            node.words[:] = exact
            return exact

        rebuild(self._root)
        self._removals_since_reor = 0
        self.reor_runs += 1
        return cleared

    def stale_fraction(self) -> float:
        """Fraction of interior set bits not justified by any descendant
        leaf — 0.0 right after :meth:`reor`, grows with lazy removals."""
        from repro.common.bitvector import popcount64

        total = 0
        stale = 0

        def walk(node: _Node) -> np.ndarray:
            nonlocal total, stale
            if node.is_leaf:
                return node.words
            exact = np.zeros(self._n_words, dtype=np.uint64)
            for child in node.children:
                exact |= walk(child)
            total += int(popcount64(node.words).sum())
            stale += int(popcount64(node.words & ~exact).sum())
            return exact

        walk(self._root)
        return stale / total if total else 0.0

    # -- self-audit -------------------------------------------------------------

    def check_invariants(self) -> list[str]:
        """Audit the structural invariants; returns failure strings.

        Checked: every interior OR is a superset of the OR of its
        children (transitively, of its descendant leaves); leaf counts
        are consistent; all leaves sit at one depth; non-root interiors
        respect the fanout bounds; the leaf registry matches the tree.
        """
        failures: list[str] = []
        seen_tenants: list = []
        leaf_depths: set[int] = set()

        def walk(node: _Node, depth: int) -> int:
            if node.is_leaf:
                seen_tenants.append(node.tenant)
                leaf_depths.add(depth)
                return 1
            n = 0
            union = np.zeros(self._n_words, dtype=np.uint64)
            for child in node.children:
                if child.parent is not node:
                    failures.append(f"broken parent link at depth {depth}")
                n += walk(child, depth + 1)
                union |= child.words
            if (union & ~node.words).any():
                failures.append(
                    f"interior OR at depth {depth} is missing child bits "
                    "(would prune a present key)"
                )
            if node.n_leaves != n:
                failures.append(
                    f"leaf count at depth {depth}: cached {node.n_leaves}, "
                    f"actual {n}"
                )
            if node is not self._root:
                if not (self.config.min_fanout <= len(node.children)
                        <= self.config.max_fanout):
                    failures.append(
                        f"fanout {len(node.children)} outside "
                        f"[{self.config.min_fanout}, {self.config.max_fanout}] "
                        f"at depth {depth}"
                    )
            return n

        walk(self._root, 0)
        if sorted(seen_tenants, key=repr) != sorted(self._leaves, key=repr):
            failures.append("leaf registry disagrees with the tree's leaves")
        if len(leaf_depths) > 1:
            failures.append(f"leaves at multiple depths: {sorted(leaf_depths)}")
        return failures
