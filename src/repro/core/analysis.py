"""Closed-form space and FPR formulas quoted by the tutorial (§2, §2.7).

Each function returns *bits per key* for a target false-positive rate ε.
Benchmark T2 checks the implementations against these formulas.
"""

from __future__ import annotations

import math


def _check_epsilon(epsilon: float) -> None:
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must be in (0, 1)")


def information_lower_bound_bits_per_key(epsilon: float) -> float:
    """The n·log₂(1/ε) lower bound for membership (plus Ω(n) for dynamic)."""
    _check_epsilon(epsilon)
    return math.log2(1 / epsilon)


def bloom_bits_per_key(epsilon: float) -> float:
    """Bloom filter: 1.44·log₂(1/ε) bits/key at the optimal hash count."""
    _check_epsilon(epsilon)
    return math.log2(math.e) * math.log2(1 / epsilon)


def quotient_bits_per_key(epsilon: float, metadata_bits: float = 2.125) -> float:
    """Quotient filter: log₂(1/ε) + metadata bits/key.

    The tutorial quotes 2.125 metadata bits (counting quotient filter);
    the original QF uses 3 and the vector QF 2.914 (§2.1 footnote).
    """
    _check_epsilon(epsilon)
    return math.log2(1 / epsilon) + metadata_bits


def cuckoo_bits_per_key(epsilon: float) -> float:
    """Cuckoo filter: log₂(1/ε) + 3 bits/key (4-way table at 95% load)."""
    _check_epsilon(epsilon)
    return math.log2(1 / epsilon) + 3.0


def xor_bits_per_key(epsilon: float) -> float:
    """XOR filter: 1.22·log₂(1/ε) bits/key."""
    _check_epsilon(epsilon)
    return 1.22 * math.log2(1 / epsilon)


def xor_plus_bits_per_key(epsilon: float) -> float:
    """XOR+ filter: 1.08·log₂(1/ε) + 0.5 bits/key."""
    _check_epsilon(epsilon)
    return 1.08 * math.log2(1 / epsilon) + 0.5


def ribbon_bits_per_key(epsilon: float) -> float:
    """Ribbon filter: 1.005·log₂(1/ε) + 0.008 bits/key (idealised)."""
    _check_epsilon(epsilon)
    return 1.005 * math.log2(1 / epsilon) + 0.008


def bloom_optimal_hashes(bits_per_key: float) -> int:
    """Optimal k = ln2 · (m/n), at least 1."""
    return max(1, round(math.log(2) * bits_per_key))


def bloom_fpr(bits_per_key: float, n_hashes: int) -> float:
    """Expected Bloom FPR for m/n bits per key and k hashes."""
    if bits_per_key <= 0:
        return 1.0
    return (1 - math.exp(-n_hashes / bits_per_key)) ** n_hashes


def range_filter_lower_bound_bits_per_key(epsilon: float, max_range: int) -> float:
    """Goswami et al. §2.5 bound: Ω(log₂(L/ε)) − O(1) bits/key."""
    _check_epsilon(epsilon)
    if max_range < 1:
        raise ValueError("max_range must be at least 1")
    return math.log2(max_range / epsilon)


def monkey_allocation(level_entries: list[int], total_bits: float) -> list[float]:
    """Monkey's optimal per-level FPRs (Dayan, Athanassoulis & Idreos 2017).

    Minimises the expected point-lookup cost Σᵢ pᵢ (one run per level,
    leveled LSM) subject to the Bloom memory budget
    Σᵢ nᵢ·log_c(pᵢ) = M, with c = 0.6185 (Bloom's ε-per-bit constant).
    The Lagrangian gives pᵢ ∝ nᵢ — exponentially smaller FPRs for the
    exponentially smaller levels — with water-filling for levels whose
    unconstrained optimum exceeds 1 (they get no filter at all).

    Returns the per-level FPR list aligned with *level_entries*.
    """
    if not level_entries:
        return []
    if any(n <= 0 for n in level_entries):
        raise ValueError("level entry counts must be positive")
    if total_bits < 0:
        raise ValueError("total_bits must be non-negative")
    ln_c = math.log(0.6185)
    active = list(range(len(level_entries)))
    fprs = [1.0] * len(level_entries)
    while True:
        n_active = [level_entries[i] for i in active]
        # Solve ln λ from Σ nᵢ·ln(λ·nᵢ)/ln c = M over the active set.
        ln_lambda = (total_bits * ln_c - sum(n * math.log(n) for n in n_active)) / sum(
            n_active
        )
        overflow = [
            i for i in active if ln_lambda + math.log(level_entries[i]) >= 0.0
        ]
        if not overflow:
            for i in active:
                fprs[i] = math.exp(ln_lambda) * level_entries[i]
            return fprs
        # Water-filling: saturated levels keep p=1 (no filter), re-solve.
        for i in overflow:
            fprs[i] = 1.0
        active = [i for i in active if i not in overflow]
        if not active:
            return fprs


def uniform_allocation(level_entries: list[int], total_bits: float) -> list[float]:
    """The pre-Monkey status quo: same bits/key — hence same FPR — per level."""
    if not level_entries:
        return []
    bits_per_key = total_bits / sum(level_entries)
    fpr = min(1.0, 0.6185**bits_per_key)
    return [fpr] * len(level_entries)
