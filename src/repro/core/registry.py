"""Filter factory and the tutorial's §2 taxonomy as data.

``FEATURE_MATRIX`` is experiment T1: the static/semi-dynamic/dynamic
classification and per-filter feature set exactly as the tutorial lays it
out, kept next to the factory so it cannot drift from the implementations.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from typing import Any

from repro.core.interfaces import Key


@dataclass(frozen=True)
class FilterFeatures:
    """One row of the tutorial's taxonomy."""

    name: str
    kind: str  # "static" | "semi-dynamic" | "dynamic"
    inserts: bool
    deletes: bool
    counting: bool
    expandable: bool
    adaptive: bool
    values: bool  # maplet: associates values with keys
    ranges: bool
    paper_section: str


FEATURE_MATRIX: dict[str, FilterFeatures] = {
    name: FilterFeatures(name, *row)
    for name, row in {
        "bloom": ("semi-dynamic", True, False, False, False, False, False, False, "§2"),
        "blocked-bloom": ("semi-dynamic", True, False, False, False, False, False, False, "§2"),
        "prefix": ("semi-dynamic", True, False, False, False, False, False, False, "§2"),
        "quotient": ("dynamic", True, True, False, False, False, False, False, "§2.1"),
        "cuckoo": ("dynamic", True, True, False, False, False, False, False, "§2.1"),
        "vector-quotient": ("dynamic", True, True, False, False, False, False, False, "§2.1"),
        "morton": ("dynamic", True, True, False, False, False, False, False, "§2.1"),
        "crate": ("dynamic", True, True, False, False, False, False, False, "§2.1"),
        "xor": ("static", False, False, False, False, False, False, False, "§2.7"),
        "xor-plus": ("static", False, False, False, False, False, False, False, "§2.7"),
        "ribbon": ("static", False, False, False, False, False, False, False, "§2.7"),
        "counting-bloom": ("dynamic", True, True, True, False, False, False, False, "§2.6"),
        "dleft": ("dynamic", True, True, True, False, False, False, False, "§2.6"),
        "spectral-bloom": ("dynamic", True, True, True, False, False, False, False, "§2.6"),
        "cqf": ("dynamic", True, True, True, True, False, False, False, "§2.6"),
        "chained": ("dynamic", True, False, False, True, False, False, False, "§2.2"),
        "scalable-bloom": ("dynamic", True, False, False, True, False, False, False, "§2.2"),
        "dynamic-cuckoo": ("dynamic", True, True, False, True, False, False, False, "§2.2"),
        "bentley-saxe-xor": ("dynamic", True, False, False, True, False, False, False, "§2.2"),
        "naive-expandable-qf": ("dynamic", True, True, False, True, False, False, False, "§2.2"),
        "taffy-cuckoo": ("dynamic", True, False, False, True, False, False, False, "§2.2"),
        "infinifilter": ("dynamic", True, True, False, True, False, False, False, "§2.2"),
        "aleph": ("dynamic", True, True, False, True, False, False, False, "§2.2"),
        "adaptive-cuckoo": ("dynamic", True, True, False, False, True, False, False, "§2.3"),
        "telescoping": ("dynamic", True, True, False, False, True, False, False, "§2.3"),
        "adaptive-quotient": ("dynamic", True, True, False, False, True, False, False, "§2.3"),
        "bloomier": ("static", False, False, False, False, False, True, False, "§2.4"),
        "qf-maplet": ("dynamic", True, True, False, True, False, True, False, "§2.4"),
        "slimdb-maplet": ("dynamic", True, True, False, False, False, True, False, "§2.4"),
        "surf": ("static", False, False, False, False, False, False, True, "§2.5"),
        "rosetta": ("semi-dynamic", True, False, False, False, False, False, True, "§2.5"),
        "proteus": ("static", False, False, False, False, False, False, True, "§2.5"),
        "snarf": ("static", False, False, False, False, False, False, True, "§2.5"),
        "grafite": ("static", False, False, False, False, False, False, True, "§2.5"),
        "rencoder": ("static", False, False, False, False, False, False, True, "§2.5"),
        "arf": ("semi-dynamic", False, False, False, False, True, False, True, "§2.5"),
        "seesaw": ("static", False, False, True, False, True, False, False, "§3.3"),
        "stacked": ("static", False, False, False, False, False, False, False, "§2.8"),
        "learned": ("static", False, False, False, False, False, False, False, "§2.8"),
    }.items()
}


def available_filters() -> list[str]:
    """Names accepted by :func:`make_filter`."""
    return sorted(FEATURE_MATRIX)


def make_filter(
    name: str,
    *,
    capacity: int | None = None,
    epsilon: float = 0.01,
    keys: Iterable[Key] | None = None,
    seed: int = 0,
    instrument: bool | str = False,
    **kwargs: Any,
):
    """Construct a filter by taxonomy name.

    Dynamic/semi-dynamic filters need *capacity*; static filters need
    *keys*.  Extra keyword arguments pass through to the constructor.

    With ``instrument=True`` (or a string naming the metric series) the
    result is wrapped in :class:`~repro.obs.instrument.InstrumentedFilter`,
    so probe/insert telemetry accrues to the default registry under the
    taxonomy name — the observability hook for every filter family.
    """
    if instrument:
        from repro.obs.instrument import InstrumentedFilter

        inner = make_filter(
            name, capacity=capacity, epsilon=epsilon, keys=keys, seed=seed, **kwargs
        )
        return InstrumentedFilter(
            inner, name=instrument if isinstance(instrument, str) else name
        )
    features = FEATURE_MATRIX.get(name)
    if features is None:
        raise ValueError(f"unknown filter {name!r}; see available_filters()")
    if features.kind == "static":
        if keys is None:
            raise ValueError(f"{name} is static: pass keys=...")
        from repro.core.interfaces import as_key_list

        key_list = as_key_list(keys)
    else:
        if capacity is None:
            raise ValueError(f"{name} is {features.kind}: pass capacity=...")

    if name == "bloom":
        from repro.filters.bloom import BloomFilter

        return BloomFilter(capacity, epsilon, seed=seed, **kwargs)
    if name == "blocked-bloom":
        from repro.filters.bloom import BlockedBloomFilter

        return BlockedBloomFilter(capacity, epsilon, seed=seed, **kwargs)
    if name == "prefix":
        from repro.filters.prefix import PrefixFilter

        return PrefixFilter(capacity, epsilon, seed=seed, **kwargs)
    if name == "quotient":
        from repro.filters.quotient import QuotientFilter

        return QuotientFilter.for_capacity(capacity, epsilon, seed=seed, **kwargs)
    if name == "cuckoo":
        from repro.filters.cuckoo import CuckooFilter

        return CuckooFilter.for_capacity(capacity, epsilon, seed=seed, **kwargs)
    if name == "vector-quotient":
        from repro.filters.vector_quotient import VectorQuotientFilter

        return VectorQuotientFilter.for_capacity(capacity, epsilon, seed=seed, **kwargs)
    if name == "morton":
        from repro.filters.morton import MortonFilter

        return MortonFilter.for_capacity(capacity, epsilon, seed=seed, **kwargs)
    if name == "crate":
        from repro.filters.crate import CrateFilter

        return CrateFilter.for_capacity(capacity, epsilon, seed=seed, **kwargs)
    if name == "dynamic-cuckoo":
        from repro.expandable.chaining import DynamicCuckooFilter

        return DynamicCuckooFilter(capacity, epsilon, seed=seed, **kwargs)
    if name == "bentley-saxe-xor":
        from repro.expandable.bentley_saxe import BentleySaxeFilter
        from repro.filters.xor import XorFilter

        return BentleySaxeFilter(
            lambda keys: XorFilter.build(keys, epsilon, seed=seed), **kwargs
        )
    if name == "xor":
        from repro.filters.xor import XorFilter

        return XorFilter.build(key_list, epsilon, seed=seed, **kwargs)
    if name == "xor-plus":
        from repro.filters.xor import XorPlusFilter

        return XorPlusFilter.build(key_list, epsilon, seed=seed, **kwargs)
    if name == "ribbon":
        from repro.filters.ribbon import RibbonFilter

        return RibbonFilter.build(key_list, epsilon, seed=seed, **kwargs)
    if name == "counting-bloom":
        from repro.counting.counting_bloom import CountingBloomFilter

        return CountingBloomFilter(capacity, epsilon, seed=seed, **kwargs)
    if name == "dleft":
        from repro.counting.dleft import DLeftCountingFilter

        return DLeftCountingFilter.for_capacity(capacity, epsilon, seed=seed, **kwargs)
    if name == "spectral-bloom":
        from repro.counting.spectral import SpectralBloomFilter

        return SpectralBloomFilter(capacity, epsilon, seed=seed, **kwargs)
    if name == "cqf":
        from repro.counting.cqf import CountingQuotientFilter

        return CountingQuotientFilter.for_capacity(
            capacity, epsilon, seed=seed, **kwargs
        )
    if name == "chained":
        from repro.expandable.chaining import ChainedFilter

        return ChainedFilter(capacity, epsilon, seed=seed, **kwargs)
    if name == "scalable-bloom":
        from repro.expandable.chaining import ScalableBloomFilter

        return ScalableBloomFilter(capacity, epsilon, seed=seed, **kwargs)
    if name == "naive-expandable-qf":
        from repro.expandable.naive import NaiveExpandableQuotientFilter

        return NaiveExpandableQuotientFilter.for_capacity(
            capacity, epsilon, seed=seed, **kwargs
        )
    if name == "taffy-cuckoo":
        from repro.expandable.taffy import TaffyCuckooFilter

        return TaffyCuckooFilter.for_capacity(capacity, epsilon, seed=seed, **kwargs)
    if name == "infinifilter":
        from repro.expandable.infinifilter import InfiniFilter

        return InfiniFilter.for_capacity(capacity, epsilon, seed=seed, **kwargs)
    if name == "aleph":
        from repro.expandable.aleph import AlephFilter

        return AlephFilter.for_capacity(capacity, epsilon, seed=seed, **kwargs)
    if name == "adaptive-cuckoo":
        from repro.adaptive.adaptive_cuckoo import AdaptiveCuckooFilter

        return AdaptiveCuckooFilter.for_capacity(capacity, epsilon, seed=seed, **kwargs)
    if name == "telescoping":
        from repro.adaptive.telescoping import TelescopingFilter

        return TelescopingFilter.for_capacity(capacity, epsilon, seed=seed, **kwargs)
    if name == "adaptive-quotient":
        from repro.adaptive.adaptive_quotient import AdaptiveQuotientFilter

        return AdaptiveQuotientFilter.for_capacity(
            capacity, epsilon, seed=seed, **kwargs
        )
    if name == "seesaw":
        from repro.adaptive.seesaw import SeesawCountingFilter

        return SeesawCountingFilter(key_list, epsilon=epsilon, seed=seed, **kwargs)
    raise ValueError(
        f"{name} requires a specialised constructor (maplets, range filters and "
        f"learned filters take structured inputs); build it from its module"
    )
