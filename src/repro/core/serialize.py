"""Serialization for the core filters.

Filters guard on-disk data, so they must themselves be persistable: an
LSM-tree reopening after a restart cannot afford to rebuild every run's
filter from its keys.  ``dumps``/``loads`` give the core filters a compact,
versioned binary form.

Two frame versions exist:

* ``BBF1`` (legacy, read-only): magic + body, where body is a small struct
  header plus the raw packed words.  No integrity protection — a flipped
  bit silently decodes into a different filter.
* ``BBF2`` (current, default for :func:`dumps`)::

      b"BBF2" | uint32 body_len | uint32 crc32(body) | body

  The body is byte-identical to a ``BBF1`` body, but the frame detects
  corruption: any mutation of length, checksum, or body raises
  :class:`~repro.core.errors.ChecksumError`; a mutated magic raises
  ``ValueError``.  :func:`verify` checks frame integrity without paying
  for a full decode, which is what a storage engine's scrubber wants.

Supported: :class:`~repro.filters.bloom.BloomFilter`,
:class:`~repro.filters.quotient.QuotientFilter`,
:class:`~repro.filters.cuckoo.CuckooFilter`,
:class:`~repro.filters.xor.XorFilter`,
:class:`~repro.filters.ribbon.RibbonFilter`.
"""

from __future__ import annotations

import math
import struct
import zlib

import numpy as np

from repro.core.errors import ChecksumError
from repro.filters.bloom import BloomFilter
from repro.filters.cuckoo import CuckooFilter
from repro.filters.quotient import QuotientFilter
from repro.filters.ribbon import RibbonFilter
from repro.filters.xor import XorFilter

_MAGIC_V1 = b"BBF1"
_MAGIC_V2 = b"BBF2"
_FRAME_HEADER = struct.Struct("<II")  # body length, CRC32 of body

_KIND_BLOOM = 1
_KIND_QUOTIENT = 2
_KIND_CUCKOO = 3
_KIND_XOR = 4
_KIND_RIBBON = 5

_KNOWN_KINDS = (_KIND_BLOOM, _KIND_QUOTIENT, _KIND_CUCKOO, _KIND_XOR, _KIND_RIBBON)


# -- generic checksummed frame ---------------------------------------------------

def frame(body: bytes) -> bytes:
    """Wrap *body* in a length+CRC32 frame (no magic; see ``BBF2`` for the
    filter-blob frame).  Storage engines reuse this for their own blobs
    (manifests, WAL records, run data)."""
    return _FRAME_HEADER.pack(len(body), zlib.crc32(body)) + body


def unframe(data: bytes) -> bytes:
    """Inverse of :func:`frame`; raises :class:`ChecksumError` on any
    length or checksum mismatch."""
    if len(data) < _FRAME_HEADER.size:
        raise ChecksumError(
            f"frame truncated: {len(data)} bytes < {_FRAME_HEADER.size}-byte header"
        )
    length, crc = _FRAME_HEADER.unpack_from(data)
    body = data[_FRAME_HEADER.size:]
    if len(body) != length:
        raise ChecksumError(
            f"frame length mismatch: header says {length} bytes, got {len(body)}"
        )
    if zlib.crc32(body) != crc:
        raise ChecksumError("frame checksum mismatch: blob corrupted")
    return body


# -- encode ----------------------------------------------------------------------

def _dumps_body(filt) -> bytes:
    """The version-independent body: kind byte + header + packed words."""
    if isinstance(filt, BloomFilter):
        header = struct.pack(
            "<BQdQqB", _KIND_BLOOM, filt.capacity, filt.epsilon, filt._n,
            filt.seed, filt._k,
        )
        return header + filt._bits.words.tobytes()
    if isinstance(filt, QuotientFilter):
        header = struct.pack(
            "<BBBqQd", _KIND_QUOTIENT, filt.quotient_bits, filt.remainder_bits,
            filt.seed, filt._n, filt.max_load,
        )
        payload = b"".join(
            arr.words.tobytes()
            for arr in (filt._remainders, filt._occupied, filt._continuation, filt._shifted)
        )
        return header + payload
    if isinstance(filt, CuckooFilter):
        stash = filt._stash if filt._stash is not None else 0
        header = struct.pack(
            "<BQBBqQQ", _KIND_CUCKOO, filt.n_buckets, filt.fingerprint_bits,
            filt.bucket_size, filt.seed, filt._n, stash,
        )
        return header + filt._table.tobytes()
    if isinstance(filt, XorFilter):
        header = struct.pack(
            "<BBQQQ", _KIND_XOR, filt.fingerprint_bits, filt._n,
            filt._segment, filt.seed,
        )
        return header + filt._table.words.tobytes()
    if isinstance(filt, RibbonFilter):
        header = struct.pack(
            "<BBQQQ", _KIND_RIBBON, filt.fingerprint_bits, filt._n,
            filt._m, filt.seed,
        )
        return header + filt._solution.words.tobytes()
    raise TypeError(f"serialization not supported for {type(filt).__name__}")


def dumps(filt, version: int = 2) -> bytes:
    """Serialize a supported filter to bytes.

    *version* 2 (default) writes a checksummed ``BBF2`` frame; version 1
    writes the legacy unprotected ``BBF1`` layout.
    """
    body = _dumps_body(filt)
    if version == 2:
        return _MAGIC_V2 + frame(body)
    if version == 1:
        return _MAGIC_V1 + body
    raise ValueError(f"unsupported serialization version {version!r}")


# -- decode ----------------------------------------------------------------------

def _exact_words(data: bytes, what: str) -> np.ndarray:
    """View *data* as uint64 words; reject ragged or misaligned payloads."""
    if len(data) % 8:
        raise ValueError(
            f"malformed filter blob: {what} payload is {len(data)} bytes, "
            "not a whole number of 64-bit words"
        )
    return np.frombuffer(data, dtype=np.uint64)


def _expect_payload(words: np.ndarray, expected: int, what: str) -> None:
    if words.size != expected:
        raise ValueError(
            f"malformed filter blob: {what} payload has {words.size} words, "
            f"expected {expected} (truncated or trailing garbage)"
        )


def _unpack_header(fmt: str, body: bytes, what: str):
    size = struct.calcsize(fmt)
    if len(body) < size:
        raise ValueError(
            f"malformed filter blob: {what} header truncated "
            f"({len(body)} bytes < {size})"
        )
    return struct.unpack(fmt, body[:size]), body[size:]


def _packed_words(n_fields: int, width: int) -> int:
    return (n_fields * width + 63) // 64


def _loads_body(body: bytes):
    """Decode a version-independent body (shared by BBF1 and BBF2).

    Header fields are range-checked and the header-implied payload size is
    computed *before* any filter is constructed: a corrupted (legacy BBF1)
    header must fail with ``ValueError``, not trigger a giant allocation.
    """
    if not body:
        raise ValueError("malformed filter blob: empty body")
    kind = body[0]
    if kind == _KIND_BLOOM:
        (_, capacity, epsilon, n, seed, k), payload = _unpack_header(
            "<BQdQqB", body, "bloom"
        )
        if capacity <= 0 or not 0.0 < epsilon < 1.0 or k < 1:
            raise ValueError("malformed filter blob: bloom header out of range")
        words = _exact_words(payload, "bloom")
        bits_per_key = math.log2(math.e) * math.log2(1 / epsilon)
        m = max(64, math.ceil(capacity * bits_per_key))
        _expect_payload(words, (m + 63) // 64, "bloom")
        filt = BloomFilter(capacity, epsilon, n_hashes=k, seed=seed)
        filt._n = n
        filt._bits.words[:] = words
        return filt
    if kind == _KIND_QUOTIENT:
        (_, q_bits, r_bits, seed, n, max_load), payload = _unpack_header(
            "<BBBqQd", body, "quotient"
        )
        if not 0 < q_bits <= 56 or r_bits < 1 or not 0.0 < max_load < 1.0:
            raise ValueError("malformed filter blob: quotient header out of range")
        words = _exact_words(payload, "quotient")
        slots = 1 << q_bits
        _expect_payload(
            words, _packed_words(slots, r_bits) + 3 * _packed_words(slots, 1), "quotient"
        )
        filt = QuotientFilter(q_bits, r_bits, seed=seed, max_load=max_load)
        filt._n = n
        arrays = (filt._remainders, filt._occupied, filt._continuation, filt._shifted)
        cursor = 0
        for arr in arrays:
            span = arr.words.size
            arr.words[:] = words[cursor : cursor + span]
            cursor += span
        return filt
    if kind == _KIND_CUCKOO:
        (_, n_buckets, f_bits, bucket_size, seed, n, stash), payload = _unpack_header(
            "<BQBBqQQ", body, "cuckoo"
        )
        if n_buckets < 1 or bucket_size < 1 or not 0 < f_bits <= 64:
            raise ValueError("malformed filter blob: cuckoo header out of range")
        words = _exact_words(payload, "cuckoo")
        _expect_payload(words, n_buckets * bucket_size, "cuckoo")
        filt = CuckooFilter(n_buckets, f_bits, bucket_size=bucket_size, seed=seed)
        filt._n = n
        filt._stash = stash if stash else None
        filt._table[:] = words.reshape(n_buckets, bucket_size)
        return filt
    if kind == _KIND_XOR:
        (_, f_bits, n, segment, seed), payload = _unpack_header("<BBQQQ", body, "xor")
        if not 0 < f_bits <= 64:
            raise ValueError("malformed filter blob: xor header out of range")
        words = _exact_words(payload, "xor")
        _expect_payload(words, _packed_words(segment * 3, f_bits), "xor")
        filt = XorFilter.__new__(XorFilter)
        filt.fingerprint_bits = f_bits
        filt._n = n
        filt._segment = segment
        filt._n_slots = segment * 3
        filt.seed = seed
        from repro.common.bitvector import PackedArray

        filt._table = PackedArray(filt._n_slots, f_bits)
        filt._table.words[:] = words
        return filt
    if kind == _KIND_RIBBON:
        (_, f_bits, n, m, seed), payload = _unpack_header("<BBQQQ", body, "ribbon")
        if not 0 < f_bits <= 64:
            raise ValueError("malformed filter blob: ribbon header out of range")
        words = _exact_words(payload, "ribbon")
        _expect_payload(words, _packed_words(m, f_bits), "ribbon")
        filt = RibbonFilter.__new__(RibbonFilter)
        filt.fingerprint_bits = f_bits
        filt._n = n
        filt._m = m
        filt.seed = seed
        from repro.common.bitvector import PackedArray

        filt._solution = PackedArray(m, f_bits)
        filt._solution.words[:] = words
        return filt
    raise ValueError(f"unknown filter kind {kind}")


def loads(data: bytes):
    """Deserialize bytes produced by :func:`dumps` (either frame version).

    Raises ``ValueError`` on any malformed input (empty, short, bad magic,
    bad kind, ragged payload) and :class:`ChecksumError` — itself a
    ``ValueError`` — when a ``BBF2`` frame fails its integrity check.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise TypeError(f"expected bytes, got {type(data).__name__}")
    data = bytes(data)
    if len(data) < 4:
        raise ValueError(
            f"not a beyondbloom filter blob: {len(data)} bytes is too short "
            "for a magic number"
        )
    magic = data[:4]
    if magic == _MAGIC_V2:
        return _loads_checked(unframe(data[4:]))
    if magic == _MAGIC_V1:
        return _loads_checked(data[4:])
    raise ValueError(f"not a beyondbloom filter blob (bad magic {magic!r})")


def _loads_checked(body: bytes):
    """Decode a body, converting stray decoder faults on hand-crafted or
    legacy-corrupted input into ``ValueError`` with a clear message."""
    try:
        return _loads_body(body)
    except ValueError:
        raise
    except Exception as exc:  # struct.error, OverflowError, numpy errors …
        raise ValueError(f"malformed filter blob: {exc}") from exc


def verify(data: bytes) -> bool:
    """Integrity-check a blob without fully decoding it.

    For ``BBF2`` frames this validates magic, length, and CRC32 — the check
    a scrubber runs over every blob on the device.  For legacy ``BBF1``
    blobs (no checksum) only structural plausibility is checked: magic,
    a known kind byte, and an intact header; payload corruption is
    undetectable by design, which is why ``BBF2`` exists.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        return False
    data = bytes(data)
    if len(data) < 5:
        return False
    magic = data[:4]
    if magic == _MAGIC_V2:
        try:
            body = unframe(data[4:])
        except ChecksumError:
            return False
        return bool(body) and body[0] in _KNOWN_KINDS
    if magic == _MAGIC_V1:
        body = data[4:]
        if body[0] not in _KNOWN_KINDS:
            return False
        fmt = {
            _KIND_BLOOM: "<BQdQqB",
            _KIND_QUOTIENT: "<BBBqQd",
            _KIND_CUCKOO: "<BQBBqQQ",
            _KIND_XOR: "<BBQQQ",
            _KIND_RIBBON: "<BBQQQ",
        }[body[0]]
        return len(body) >= struct.calcsize(fmt) and len(body[struct.calcsize(fmt):]) % 8 == 0
    return False
