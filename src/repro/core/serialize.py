"""Serialization for the core filters.

Filters guard on-disk data, so they must themselves be persistable: an
LSM-tree reopening after a restart cannot afford to rebuild every run's
filter from its keys.  ``dumps``/``loads`` give the core filters a compact,
versioned binary form: a small struct header plus the raw packed words.

Supported: :class:`~repro.filters.bloom.BloomFilter`,
:class:`~repro.filters.quotient.QuotientFilter`,
:class:`~repro.filters.cuckoo.CuckooFilter`,
:class:`~repro.filters.xor.XorFilter`,
:class:`~repro.filters.ribbon.RibbonFilter`.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.filters.bloom import BloomFilter
from repro.filters.cuckoo import CuckooFilter
from repro.filters.quotient import QuotientFilter
from repro.filters.ribbon import RibbonFilter
from repro.filters.xor import XorFilter

_MAGIC = b"BBF1"
_KIND_BLOOM = 1
_KIND_QUOTIENT = 2
_KIND_CUCKOO = 3
_KIND_XOR = 4
_KIND_RIBBON = 5


def dumps(filt) -> bytes:
    """Serialize a supported filter to bytes."""
    if isinstance(filt, BloomFilter):
        header = struct.pack(
            "<BQdQqB", _KIND_BLOOM, filt.capacity, filt.epsilon, filt._n,
            filt.seed, filt._k,
        )
        return _MAGIC + header + filt._bits.words.tobytes()
    if isinstance(filt, QuotientFilter):
        header = struct.pack(
            "<BBBqQd", _KIND_QUOTIENT, filt.quotient_bits, filt.remainder_bits,
            filt.seed, filt._n, filt.max_load,
        )
        payload = b"".join(
            arr.words.tobytes()
            for arr in (filt._remainders, filt._occupied, filt._continuation, filt._shifted)
        )
        return _MAGIC + header + payload
    if isinstance(filt, CuckooFilter):
        stash = filt._stash if filt._stash is not None else 0
        header = struct.pack(
            "<BQBBqQQ", _KIND_CUCKOO, filt.n_buckets, filt.fingerprint_bits,
            filt.bucket_size, filt.seed, filt._n, stash,
        )
        return _MAGIC + header + filt._table.tobytes()
    if isinstance(filt, XorFilter):
        header = struct.pack(
            "<BBQQQ", _KIND_XOR, filt.fingerprint_bits, filt._n,
            filt._segment, filt.seed,
        )
        return _MAGIC + header + filt._table.words.tobytes()
    if isinstance(filt, RibbonFilter):
        header = struct.pack(
            "<BBQQQ", _KIND_RIBBON, filt.fingerprint_bits, filt._n,
            filt._m, filt.seed,
        )
        return _MAGIC + header + filt._solution.words.tobytes()
    raise TypeError(f"serialization not supported for {type(filt).__name__}")


def loads(data: bytes):
    """Deserialize bytes produced by :func:`dumps`."""
    if data[:4] != _MAGIC:
        raise ValueError("not a beyondbloom filter blob")
    kind = data[4]
    body = data[4:]
    if kind == _KIND_BLOOM:
        size = struct.calcsize("<BQdQqB")
        _, capacity, epsilon, n, seed, k = struct.unpack("<BQdQqB", body[:size])
        filt = BloomFilter(capacity, epsilon, n_hashes=k, seed=seed)
        filt._n = n
        filt._bits.words[:] = np.frombuffer(body[size:], dtype=np.uint64)
        return filt
    if kind == _KIND_QUOTIENT:
        size = struct.calcsize("<BBBqQd")
        _, q_bits, r_bits, seed, n, max_load = struct.unpack("<BBBqQd", body[:size])
        filt = QuotientFilter(q_bits, r_bits, seed=seed, max_load=max_load)
        filt._n = n
        words = np.frombuffer(body[size:], dtype=np.uint64)
        cursor = 0
        for arr in (filt._remainders, filt._occupied, filt._continuation, filt._shifted):
            span = arr.words.size
            arr.words[:] = words[cursor : cursor + span]
            cursor += span
        return filt
    if kind == _KIND_CUCKOO:
        size = struct.calcsize("<BQBBqQQ")
        _, n_buckets, f_bits, bucket_size, seed, n, stash = struct.unpack(
            "<BQBBqQQ", body[:size]
        )
        filt = CuckooFilter(n_buckets, f_bits, bucket_size=bucket_size, seed=seed)
        filt._n = n
        filt._stash = stash if stash else None
        filt._table[:] = np.frombuffer(body[size:], dtype=np.uint64).reshape(
            filt.n_buckets, bucket_size
        )
        return filt
    if kind == _KIND_XOR:
        size = struct.calcsize("<BBQQQ")
        _, f_bits, n, segment, seed = struct.unpack("<BBQQQ", body[:size])
        filt = XorFilter.__new__(XorFilter)
        filt.fingerprint_bits = f_bits
        filt._n = n
        filt._segment = segment
        filt._n_slots = segment * 3
        filt.seed = seed
        from repro.common.bitvector import PackedArray

        filt._table = PackedArray(filt._n_slots, f_bits)
        filt._table.words[:] = np.frombuffer(body[size:], dtype=np.uint64)
        return filt
    if kind == _KIND_RIBBON:
        size = struct.calcsize("<BBQQQ")
        _, f_bits, n, m, seed = struct.unpack("<BBQQQ", body[:size])
        filt = RibbonFilter.__new__(RibbonFilter)
        filt.fingerprint_bits = f_bits
        filt._n = n
        filt._m = m
        filt.seed = seed
        from repro.common.bitvector import PackedArray

        filt._solution = PackedArray(m, f_bits)
        filt._solution.words[:] = np.frombuffer(body[size:], dtype=np.uint64)
        return filt
    raise ValueError(f"unknown filter kind {kind}")
