"""Exception hierarchy for the filter library."""

from __future__ import annotations


class FilterError(Exception):
    """Base class for all filter-specific failures."""


class FilterFullError(FilterError):
    """Raised when an insertion cannot be placed (table at capacity).

    Dynamic filters with open-addressing layouts (quotient, cuckoo) fail
    structurally rather than silently degrading; callers that need unbounded
    growth should use an expandable filter instead.
    """


class ImmutableFilterError(FilterError):
    """Raised on mutation of a static (build-once) filter."""


class NotExpandableError(FilterError):
    """Raised when a filter cannot expand further.

    The canonical case is the naive quotient-filter doubling of §2.2: each
    doubling sacrifices one fingerprint bit, and once the bits run out the
    filter can no longer expand (and answers positive for every query).
    """


class DeletionError(FilterError):
    """Raised on a delete that the structure can prove was never inserted."""


class ChecksumError(FilterError, ValueError):
    """Raised when a serialized blob fails its integrity check.

    A ``BBF2`` frame carries a CRC32 checksum and payload length over its
    body; a mismatch means the blob was corrupted at rest (bit flip) or in
    flight (torn write).  Also a :class:`ValueError` so callers that treat
    "malformed input" uniformly can catch one type.
    """
