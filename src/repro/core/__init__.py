"""The modern filter API the tutorial advocates.

This package is the paper's "primary contribution" rendered as code: a
unified interface hierarchy covering the whole §2 taxonomy (static /
semi-dynamic / dynamic, counting, adaptive, expandable, maplets, range
filters), closed-form space/FPR analysis, and a factory + feature matrix.
"""

from repro.core.analysis import (
    bloom_bits_per_key,
    cuckoo_bits_per_key,
    information_lower_bound_bits_per_key,
    quotient_bits_per_key,
    ribbon_bits_per_key,
    xor_bits_per_key,
    xor_plus_bits_per_key,
)
from repro.core.errors import (
    ChecksumError,
    FilterError,
    FilterFullError,
    ImmutableFilterError,
    NotExpandableError,
)
from repro.core.interfaces import (
    AdaptiveFilter,
    CountingFilter,
    DynamicFilter,
    ExpandableFilter,
    Filter,
    Maplet,
    RangeFilter,
    StaticFilter,
)
from repro.core.bloofi import BloofiConfig, BloofiLookup, BloofiTree
from repro.core.registry import FEATURE_MATRIX, available_filters, make_filter

__all__ = [
    "AdaptiveFilter",
    "BloofiConfig",
    "BloofiLookup",
    "BloofiTree",
    "ChecksumError",
    "CountingFilter",
    "DynamicFilter",
    "ExpandableFilter",
    "FEATURE_MATRIX",
    "Filter",
    "FilterError",
    "FilterFullError",
    "ImmutableFilterError",
    "Maplet",
    "NotExpandableError",
    "RangeFilter",
    "StaticFilter",
    "available_filters",
    "bloom_bits_per_key",
    "cuckoo_bits_per_key",
    "information_lower_bound_bits_per_key",
    "make_filter",
    "quotient_bits_per_key",
    "ribbon_bits_per_key",
    "xor_bits_per_key",
    "xor_plus_bits_per_key",
]
