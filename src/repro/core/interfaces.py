"""Abstract interfaces for the §2 filter taxonomy.

The tutorial's thesis is that applications should program against the
*modern filter API* — deletes, counting, values, ranges, adaptivity,
expansion — rather than the lowest-common-denominator Bloom interface.
These ABCs are that API.

Key conventions
---------------
* Keys are ``int | str | bytes``; filters hash internally.
* ``may_contain`` never returns a false negative for an inserted key.
* ``size_in_bits`` is the *logical* encoded size (see DESIGN.md).
* All filters take a ``seed`` so experiments are reproducible.

Batch API (docs/performance.md)
-------------------------------
``may_contain_many`` / ``insert_many`` operate on a whole key batch per
call.  The base-class defaults loop the scalar operations, so every
filter family is batch-correct by construction; the workhorse families
(Bloom, cuckoo, quotient, XOR, ribbon) override them with vectorised
numpy kernels.  The contract: ``may_contain_many(keys)`` returns a bool
ndarray of ``len(keys)`` where element *i* equals ``may_contain(keys[i])``
exactly — same hash path, same result, order preserved — and
``insert_many`` is equivalent to inserting each key in order.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

Key = int | str | bytes

KeyBatch = "Sequence[Key] | np.ndarray"


def as_key_list(keys) -> list:
    """Normalise a key batch to a list of plain Python keys.

    numpy integer arrays become Python ints (``tolist``), so scalar
    fallbacks and ground-truth set lookups see hashable built-in types.
    """
    if isinstance(keys, np.ndarray):
        return keys.tolist()
    if isinstance(keys, list):
        return keys
    return list(keys)


class Filter(abc.ABC):
    """Approximate-membership base: the one operation every filter has."""

    @abc.abstractmethod
    def may_contain(self, key: Key) -> bool:
        """True if *key* may be in the set; False means definitely absent."""

    def __contains__(self, key: Key) -> bool:
        return self.may_contain(key)

    def may_contain_many(self, keys: KeyBatch) -> np.ndarray:
        """Batch membership: element *i* is ``may_contain(keys[i])``.

        This default loops the scalar probe, so it is correct for every
        subclass; the hot families override it with vectorised kernels.
        Returns a bool ndarray (empty batches return an empty array).
        """
        key_list = as_key_list(keys)
        return np.fromiter(
            (self.may_contain(key) for key in key_list),
            dtype=bool,
            count=len(key_list),
        )

    @property
    @abc.abstractmethod
    def size_in_bits(self) -> int:
        """Logical encoded size of the structure in bits."""

    @property
    def bits_per_key(self) -> float:
        """Logical bits per stored key (0.0 when empty).

        Empty filters report 0.0, not nan: a nan silently poisons any
        benchmark aggregate it is averaged into.
        """
        n = len(self)
        return self.size_in_bits / n if n else 0.0

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of keys currently represented."""


class StaticFilter(Filter):
    """Build-once filter over a known key set (XOR, ribbon, Bloomier).

    Construction happens in ``__init__`` (or a ``build`` classmethod); any
    mutation raises :class:`~repro.core.errors.ImmutableFilterError`.
    """

    @classmethod
    @abc.abstractmethod
    def build(cls, keys: Iterable[Key], epsilon: float, *, seed: int = 0) -> "StaticFilter":
        """Construct a filter over *keys* with target false-positive rate."""


class DynamicFilter(Filter):
    """Filter supporting online inserts; deletes where `supports_deletes`."""

    supports_deletes: bool = False

    @abc.abstractmethod
    def insert(self, key: Key) -> None:
        """Add *key*.  Raises FilterFullError if it cannot be placed."""

    def insert_many(self, keys: KeyBatch) -> None:
        """Insert a key batch, equivalent to inserting each key in order.

        On ``FilterFullError`` the keys inserted so far stay inserted
        (same partial-progress semantics as the scalar loop it mirrors).
        """
        for key in as_key_list(keys):
            self.insert(key)

    def delete(self, key: Key) -> None:
        """Remove one copy of *key* (must have been inserted)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support deletion"
        )


class CountingFilter(DynamicFilter):
    """Multiset filter: queries return occurrence counts (§2.6).

    Counts may err high with probability at most the error rate, never low
    (absent counter saturation, which implementations must surface).
    """

    supports_deletes = True

    @abc.abstractmethod
    def count(self, key: Key) -> int:
        """Estimated multiplicity of *key* (0 means definitely absent)."""

    def may_contain(self, key: Key) -> bool:
        return self.count(key) > 0


class Maplet(abc.ABC):
    """Key/value filter (§2.4): returns candidate values for a key.

    ``get`` returns every value whose fingerprint matched — the associated
    value plus possibly arbitrary extras.  PRS/NRS (expected positive /
    negative result sizes) are the quality metrics.
    """

    @abc.abstractmethod
    def get(self, key: Key) -> list[Any]:
        """Candidate values for *key* (possibly empty)."""

    def may_contain(self, key: Key) -> bool:
        return bool(self.get(key))

    @property
    @abc.abstractmethod
    def size_in_bits(self) -> int: ...

    @abc.abstractmethod
    def __len__(self) -> int: ...

    @property
    def bits_per_key(self) -> float:
        n = len(self)
        return self.size_in_bits / n if n else 0.0


class DynamicMaplet(Maplet):
    """Maplet with online insert/delete (quotient/cuckoo-based)."""

    @abc.abstractmethod
    def insert(self, key: Key, value: Any) -> None: ...

    @abc.abstractmethod
    def delete(self, key: Key, value: Any) -> None: ...


class RangeFilter(abc.ABC):
    """ε-approximate range-emptiness structure over integer keys (§2.5)."""

    @abc.abstractmethod
    def may_intersect(self, lo: int, hi: int) -> bool:
        """True if [lo, hi] may contain a key; False means certainly empty."""

    def may_contain(self, key: int) -> bool:
        """Point query = degenerate range query."""
        return self.may_intersect(key, key)

    @property
    @abc.abstractmethod
    def size_in_bits(self) -> int: ...

    @abc.abstractmethod
    def __len__(self) -> int: ...

    @property
    def bits_per_key(self) -> float:
        n = len(self)
        return self.size_in_bits / n if n else 0.0


class AdaptiveFilter(DynamicFilter):
    """Filter that can fix a discovered false positive (§2.3).

    The host dictionary calls ``report_false_positive`` after paying the
    remote access that exposed the error; a (monotone) adaptive filter then
    guarantees the same negative key keeps false-positiving with probability
    at most ε, independent of history.
    """

    @abc.abstractmethod
    def report_false_positive(self, key: Key) -> None:
        """Adapt so that *key* (a confirmed negative) stops matching."""


class ExpandableFilter(DynamicFilter):
    """Filter that grows capacity without access to the original keys (§2.2)."""

    @abc.abstractmethod
    def expand(self) -> None:
        """Increase capacity (typically doubling).

        Raises :class:`~repro.core.errors.NotExpandableError` when the
        design has exhausted its ability to grow.
        """

    @property
    @abc.abstractmethod
    def capacity(self) -> int:
        """Current insert capacity."""

    def insert_autogrow(self, key: Key) -> None:
        """Insert, expanding as needed — the API applications actually want."""
        from repro.core.errors import FilterFullError

        while True:
            try:
                self.insert(key)
                return
            except FilterFullError:
                self.expand()
