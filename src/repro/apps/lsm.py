"""LSM-tree simulator with pluggable filters (§3.1).

An in-memory model of an LSM-tree over a simulated block device, built to
measure exactly what the tutorial's storage claims are stated in: device
I/Os per lookup and bytes written per byte ingested (write amplification).

Reproduced design space:

* **Compaction**: ``leveling`` (one run per level), ``tiering`` (up to T
  runs per level), ``lazy-leveling`` (Dostoevsky: tiering everywhere,
  leveling at the largest level).
* **Point filters**: ``none``, ``uniform`` (same ε on every run — how
  systems used Bloom filters before Monkey), ``monkey`` (ε_i shrinking by
  the size ratio for smaller levels, making ΣFPR converge: O(ε) instead of
  O(ε·lg N) wasted I/Os).
* **Range filters**: any :class:`~repro.core.interfaces.RangeFilter`
  factory, built per run at flush/compaction (experiment F8).
* **Maplet mode**: replace per-run filters with a single maplet mapping
  each key to its run (SlimDB / Chucky / SplinterDB, §3.1): a lookup
  probes only the runs the maplet names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.common.storage import BlockDevice
from repro.filters.bloom import BloomFilter
from repro.maplets.qf_maplet import QuotientFilterMaplet

_ENTRY_BYTES = 16


class _Tombstone:
    """Sentinel marking a deleted key until compaction drops it."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<tombstone>"


TOMBSTONE = _Tombstone()


@dataclass
class LSMConfig:
    """Tuning knobs for the simulated LSM-tree."""

    size_ratio: int = 10
    memtable_entries: int = 128
    compaction: str = "leveling"  # "leveling" | "tiering" | "lazy-leveling"
    filter_policy: str = "monkey"  # "none" | "uniform" | "monkey"
    largest_level_epsilon: float = 0.01
    range_filter_factory: Callable[[list[int]], Any] | None = None
    # GRF mode (§3.1): one tree-wide range filter instead of one per run.
    global_range_filter_factory: Callable[[list[int]], Any] | None = None
    use_maplet: bool = False
    maplet_capacity: int = 1 << 16
    seed: int = 0

    def __post_init__(self):
        if self.size_ratio < 2:
            raise ValueError("size_ratio must be at least 2")
        if self.compaction not in ("leveling", "tiering", "lazy-leveling"):
            raise ValueError(f"unknown compaction policy {self.compaction!r}")
        if self.filter_policy not in ("none", "uniform", "monkey"):
            raise ValueError(f"unknown filter policy {self.filter_policy!r}")


class _Run:
    """One immutable sorted run on the device."""

    __slots__ = ("run_id", "level", "keys", "values", "filter", "range_filter", "seq")

    def __init__(self, run_id, level, keys, values, filt, range_filter, seq):
        self.run_id = run_id
        self.level = level
        self.keys = keys  # sorted list[int]
        self.values = values  # parallel list
        self.filter = filt
        self.range_filter = range_filter
        self.seq = seq  # recency: larger = newer data

    def __len__(self) -> int:
        return len(self.keys)

    def get(self, key: int):
        from bisect import bisect_left

        i = bisect_left(self.keys, key)
        if i < len(self.keys) and self.keys[i] == key:
            return True, self.values[i]
        return False, None


@dataclass
class LSMStats:
    lookups: int = 0
    lookup_ios: int = 0
    wasted_lookup_ios: int = 0
    range_queries: int = 0
    range_ios: int = 0
    wasted_range_ios: int = 0
    bytes_ingested: int = 0
    compactions: int = 0

    @property
    def ios_per_lookup(self) -> float:
        return self.lookup_ios / self.lookups if self.lookups else 0.0

    @property
    def wasted_ios_per_lookup(self) -> float:
        return self.wasted_lookup_ios / self.lookups if self.lookups else 0.0


class LSMTree:
    """Filtered LSM-tree over a simulated block device."""

    def __init__(self, config: LSMConfig | None = None):
        self.config = config or LSMConfig()
        self.device = BlockDevice()
        self.stats = LSMStats()
        self._memtable: dict[int, Any] = {}
        self._levels: list[list[_Run]] = []
        self._next_run_id = 0
        self._next_seq = 0
        self._maplet: QuotientFilterMaplet | None = None
        if self.config.use_maplet:
            self._maplet = QuotientFilterMaplet.for_capacity(
                self.config.maplet_capacity, self.config.largest_level_epsilon,
                seed=self.config.seed,
            )
        self._global_range_filter: Any = None
        self._global_dirty = True

    # -- write path ------------------------------------------------------------

    def put(self, key: int, value: Any) -> None:
        self._memtable[key] = value
        self.stats.bytes_ingested += _ENTRY_BYTES
        if len(self._memtable) >= self.config.memtable_entries:
            self.flush()

    def delete(self, key: int) -> None:
        """Delete via tombstone (the LSM way: deletes are writes)."""
        self.put(key, TOMBSTONE)

    def flush(self) -> None:
        if not self._memtable:
            return
        keys = sorted(self._memtable)
        values = [self._memtable[k] for k in keys]
        self._memtable = {}
        self._emit_run(0, keys, values)
        self._maybe_compact()

    def _emit_run(self, level: int, keys: list[int], values: list[Any]) -> _Run:
        run = _Run(
            self._next_run_id,
            level,
            keys,
            values,
            self._build_filter(level, keys),
            self._build_range_filter(keys),
            self._next_seq,
        )
        self._next_run_id += 1
        self._next_seq += 1
        while len(self._levels) <= level:
            self._levels.append([])
        self._levels[level].append(run)
        self.device.write(("run", run.run_id), None, size=len(keys) * _ENTRY_BYTES)
        if self._maplet is not None:
            for key in keys:
                self._maplet.insert(key, run.run_id)
        self._global_dirty = True
        return run

    def _retire_run(self, run: _Run) -> None:
        self.device.delete(("run", run.run_id))
        if self._maplet is not None:
            for key in run.keys:
                self._maplet.delete(key, run.run_id)
        self._global_dirty = True

    # -- filters -----------------------------------------------------------------

    def _level_epsilon(self, level: int) -> float:
        """Per-run FPR at *level* under the configured policy."""
        base = self.config.largest_level_epsilon
        if self.config.filter_policy == "uniform":
            return base
        # Monkey: the largest level runs at `base`; each smaller level gets
        # a size-ratio factor tighter so that Σ (runs × FPR) converges.
        deepest = max(len(self._levels) - 1, level, 1)
        return max(1e-9, base * self.config.size_ratio ** (level - deepest))

    def _build_filter(self, level: int, keys: list[int]):
        if self.config.filter_policy == "none" or not keys:
            return None
        bloom = BloomFilter(
            len(keys), self._level_epsilon(level), seed=self.config.seed ^ level
        )
        for key in keys:
            bloom.insert(key)
        return bloom

    def _build_range_filter(self, keys: list[int]):
        factory = self.config.range_filter_factory
        if factory is None or not keys:
            return None
        return factory(keys)

    # -- compaction --------------------------------------------------------------

    def _level_capacity_entries(self, level: int) -> int:
        return self.config.memtable_entries * self.config.size_ratio ** (level + 1)

    def _policy_at(self, level: int) -> str:
        if self.config.compaction == "lazy-leveling":
            deepest = len(self._levels) - 1
            return "leveling" if level >= deepest else "tiering"
        return self.config.compaction

    def _maybe_compact(self) -> None:
        level = 0
        while level < len(self._levels):
            runs = self._levels[level]
            if self._policy_at(level) == "tiering":
                if len(runs) >= self.config.size_ratio:
                    self._merge_into(level, level + 1)
            else:  # leveling
                if len(runs) > 1:
                    self._merge_into(level, level)
                runs = self._levels[level]
                if runs and len(runs[0]) > self._level_capacity_entries(level):
                    self._merge_into(level, level + 1)
            level += 1

    def _merge_into(self, src_level: int, dst_level: int) -> None:
        """Merge all runs at src (plus dst's runs when src != dst) into one
        new run at dst.  Newer values win."""
        sources = list(self._levels[src_level])
        self._levels[src_level] = []
        if dst_level != src_level:
            while len(self._levels) <= dst_level:
                self._levels.append([])
            if self._policy_at(dst_level) == "leveling":
                sources += self._levels[dst_level]
                self._levels[dst_level] = []
        merged: dict[int, tuple[int, Any]] = {}
        for run in sources:
            for key, value in zip(run.keys, run.values):
                prev = merged.get(key)
                if prev is None or run.seq > prev[0]:
                    merged[key] = (run.seq, value)
        for run in sources:
            self._retire_run(run)
        # Tombstones can be dropped once they reach the deepest data:
        # no deeper level and no sibling run at the destination may hold an
        # older version the tombstone still needs to shadow.
        at_bottom = not self._levels[dst_level] and all(
            not self._levels[i] for i in range(dst_level + 1, len(self._levels))
        )
        keys, values = [], []
        for key in sorted(merged):
            value = merged[key][1]
            if value is TOMBSTONE and at_bottom:
                continue
            keys.append(key)
            values.append(value)
        self._emit_run(dst_level, keys, values)
        self.stats.compactions += 1

    # -- read path -------------------------------------------------------------------

    def _runs_newest_first(self) -> list[_Run]:
        runs = [run for level in self._levels for run in level]
        runs.sort(key=lambda r: r.seq, reverse=True)
        return runs

    def _read_run(self, run: _Run, key: int):
        self.device.read(("run", run.run_id))
        return run.get(key)

    def get(self, key: int, default: Any = None) -> Any:
        self.stats.lookups += 1
        if key in self._memtable:
            value = self._memtable[key]
            return default if value is TOMBSTONE else value

        if self._maplet is not None:
            candidates = set(self._maplet.get(key))
            by_id = {
                run.run_id: run for level in self._levels for run in level
            }
            hits = sorted(
                (by_id[c] for c in candidates if c in by_id),
                key=lambda r: r.seq,
                reverse=True,
            )
            for run in hits:
                self.stats.lookup_ios += 1
                found, value = self._read_run(run, key)
                if found:
                    return default if value is TOMBSTONE else value
                self.stats.wasted_lookup_ios += 1
            return default

        for run in self._runs_newest_first():
            if run.filter is not None and not run.filter.may_contain(key):
                continue
            self.stats.lookup_ios += 1
            found, value = self._read_run(run, key)
            if found:
                return default if value is TOMBSTONE else value
            self.stats.wasted_lookup_ios += 1
        return default

    def _refresh_global_range_filter(self) -> None:
        factory = self.config.global_range_filter_factory
        if factory is None or not self._global_dirty:
            return
        all_keys = sorted(
            {key for level in self._levels for run in level for key in run.keys}
        )
        self._global_range_filter = factory(all_keys) if all_keys else None
        self._global_dirty = False

    def range_query(self, lo: int, hi: int) -> dict[int, Any]:
        """All live key/value pairs in [lo, hi]."""
        if lo > hi:
            raise ValueError("empty range: lo > hi")
        self.stats.range_queries += 1
        out: dict[int, tuple[int, Any]] = {}
        for key, value in self._memtable.items():
            if lo <= key <= hi:
                out[key] = (float("inf"), value)
        # GRF mode: one tree-wide filter answers emptiness before any run
        # is considered (§3.1: "a recent global range filter for LSM-tree").
        if self.config.global_range_filter_factory is not None:
            self._refresh_global_range_filter()
            if self._global_range_filter is not None and not (
                self._global_range_filter.may_intersect(lo, hi)
            ):
                return {
                    k: v for k, (_, v) in sorted(out.items()) if v is not TOMBSTONE
                }
        for run in self._runs_newest_first():
            if run.range_filter is not None and not run.range_filter.may_intersect(
                lo, hi
            ):
                continue
            self.stats.range_ios += 1
            self.device.read(("run", run.run_id))
            from bisect import bisect_left, bisect_right

            i, j = bisect_left(run.keys, lo), bisect_right(run.keys, hi)
            if i == j:
                self.stats.wasted_range_ios += 1
            for k in range(i, j):
                key = run.keys[k]
                if key not in out or run.seq > out[key][0]:
                    out[key] = (run.seq, run.values[k])
        return {
            k: v for k, (_, v) in sorted(out.items()) if v is not TOMBSTONE
        }

    # -- accounting ----------------------------------------------------------------------

    @property
    def n_entries_on_disk(self) -> int:
        return sum(len(run) for level in self._levels for run in level)

    @property
    def n_runs(self) -> int:
        return sum(len(level) for level in self._levels)

    @property
    def n_levels(self) -> int:
        return len(self._levels)

    @property
    def write_amplification(self) -> float:
        ingested = self.stats.bytes_ingested
        return self.device.stats.bytes_written / ingested if ingested else 0.0

    @property
    def filter_bits(self) -> int:
        if self._maplet is not None:
            return self._maplet.size_in_bits
        return sum(
            run.filter.size_in_bits
            for level in self._levels
            for run in level
            if run.filter is not None
        )

    @property
    def filter_bits_per_key(self) -> float:
        n = self.n_entries_on_disk
        return self.filter_bits / n if n else 0.0

    def sum_of_fprs(self) -> float:
        """Σ over runs of that run's expected FPR — the quantity Monkey
        makes converge (O(ε)) and uniform allocation lets grow (O(ε·L))."""
        total = 0.0
        for level in self._levels:
            for run in level:
                if run.filter is not None:
                    total += run.filter.epsilon
        return total
