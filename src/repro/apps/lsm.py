"""LSM-tree simulator with pluggable filters (§3.1).

An in-memory model of an LSM-tree over a simulated block device, built to
measure exactly what the tutorial's storage claims are stated in: device
I/Os per lookup and bytes written per byte ingested (write amplification).

Reproduced design space:

* **Compaction**: ``leveling`` (one run per level), ``tiering`` (up to T
  runs per level), ``lazy-leveling`` (Dostoevsky: tiering everywhere,
  leveling at the largest level).
* **Point filters**: ``none``, ``uniform`` (same ε on every run — how
  systems used Bloom filters before Monkey), ``monkey`` (ε_i shrinking by
  the size ratio for smaller levels, making ΣFPR converge: O(ε) instead of
  O(ε·lg N) wasted I/Os).
* **Range filters**: any :class:`~repro.core.interfaces.RangeFilter`
  factory, built per run at flush/compaction (experiment F8).
* **Maplet mode**: replace per-run filters with a single maplet mapping
  each key to its run (SlimDB / Chucky / SplinterDB, §3.1): a lookup
  probes only the runs the maplet names.

Durability model (docs/robustness.md):

Every persistent artifact is a checksummed blob on the device — run data
and write-ahead-log records are CRC32-framed pickles, filter blobs are
``BBF2`` frames (:mod:`repro.core.serialize`), and the manifest is a
CRC32-framed JSON document double-buffered across two slots with a
read-back verify, so a torn or lost manifest write can never orphan the
tree.  ``put`` is acknowledged only after its WAL record is on the
device; :meth:`LSMTree.recover` reopens a (possibly faulty) device by
loading the newest valid manifest (falling back to a device scan),
replaying the WAL, and loading every run's filter blob — rebuilding any
filter whose blob fails its checksum from the run's keys, or degrading
that run to "always probe" when rebuilding is disabled.  :meth:`scrub`
walks all blobs, reports corruption, and optionally repairs it — the
``bup bloom --check/--regenerate`` workflow as a method.

Telemetry (docs/observability.md): lookups, per-level filter probes and
realised false positives, WAL appends, flushes and compactions accrue as
counters in the default :mod:`repro.obs` registry;
:meth:`LSMTree.publish_gauges` derives per-level FP rates and tree-shape
gauges on demand, and the read path emits ``lsm.get`` → ``filter.probe``
/ ``device.read`` → ``retry.attempt`` trace spans whenever a
:class:`~repro.obs.tracing.TraceRecorder` is installed.
"""

from __future__ import annotations

import json
import pickle
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.clock import Answer, DeadlineExceeded, LookupResult
from repro.common.faults import CircuitOpenError, RetryPolicy, TransientIOError
from repro.common.storage import BlockDevice, IOStats
from repro.core.errors import ChecksumError
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.tracing import trace
from repro.core.serialize import dumps as filter_dumps
from repro.core.serialize import frame, loads as filter_loads, unframe, verify as filter_verify
from repro.filters.bloom import BloomFilter
from repro.maplets.qf_maplet import QuotientFilterMaplet

_ENTRY_BYTES = 16


class _Tombstone:
    """Sentinel marking a deleted key until compaction drops it."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<tombstone>"

    def __reduce__(self):
        # Pickle to the module singleton so identity survives WAL replay.
        return (_restore_tombstone, ())


TOMBSTONE = _Tombstone()


def _restore_tombstone() -> "_Tombstone":
    return TOMBSTONE


@dataclass
class LSMConfig:
    """Tuning knobs for the simulated LSM-tree."""

    size_ratio: int = 10
    memtable_entries: int = 128
    compaction: str = "leveling"  # "leveling" | "tiering" | "lazy-leveling"
    filter_policy: str = "monkey"  # "none" | "uniform" | "monkey"
    largest_level_epsilon: float = 0.01
    range_filter_factory: Callable[[list[int]], Any] | None = None
    # GRF mode (§3.1): one tree-wide range filter instead of one per run.
    global_range_filter_factory: Callable[[list[int]], Any] | None = None
    use_maplet: bool = False
    maplet_capacity: int = 1 << 16
    seed: int = 0
    # Durability knobs (docs/robustness.md).
    wal_enabled: bool = True
    retry_attempts: int = 4
    rebuild_filters_on_recovery: bool = True
    # Cache-tier knobs (docs/performance.md).  All default off, which
    # preserves the historical whole-run-block I/O model exactly.
    page_entries: int = 0  # >0: read runs at page granularity
    charge_filter_reads: bool = False  # probe cost includes the filter block
    filter_memo_entries: int = 0  # >0: memoize per-run negative verdicts

    def __post_init__(self):
        if self.size_ratio < 2:
            raise ValueError("size_ratio must be at least 2")
        if self.compaction not in ("leveling", "tiering", "lazy-leveling"):
            raise ValueError(f"unknown compaction policy {self.compaction!r}")
        if self.filter_policy not in ("none", "uniform", "monkey"):
            raise ValueError(f"unknown filter policy {self.filter_policy!r}")
        if self.retry_attempts < 1:
            raise ValueError("retry_attempts must be at least 1")
        if self.page_entries < 0 or self.filter_memo_entries < 0:
            raise ValueError("page_entries and filter_memo_entries must be >= 0")

    _PERSISTED = (
        "size_ratio", "memtable_entries", "compaction", "filter_policy",
        "largest_level_epsilon", "use_maplet", "maplet_capacity", "seed",
        "wal_enabled", "retry_attempts", "rebuild_filters_on_recovery",
        "page_entries", "charge_filter_reads", "filter_memo_entries",
    )

    def to_manifest(self) -> dict:
        """The JSON-serializable subset (factories cannot be persisted)."""
        return {name: getattr(self, name) for name in self._PERSISTED}

    @classmethod
    def from_manifest(cls, raw: dict) -> "LSMConfig":
        return cls(**{k: v for k, v in raw.items() if k in cls._PERSISTED})


class _Run:
    """One immutable sorted run on the device."""

    __slots__ = ("run_id", "level", "keys", "values", "filter", "range_filter",
                 "seq", "degraded")

    def __init__(self, run_id, level, keys, values, filt, range_filter, seq,
                 degraded=False):
        self.run_id = run_id
        self.level = level
        self.keys = keys  # sorted list[int]
        self.values = values  # parallel list
        self.filter = filt
        self.range_filter = range_filter
        self.seq = seq  # recency: larger = newer data
        self.degraded = degraded  # filter unrecoverable: always probe

    def __len__(self) -> int:
        return len(self.keys)

    def get(self, key: int):
        from bisect import bisect_left

        i = bisect_left(self.keys, key)
        if i < len(self.keys) and self.keys[i] == key:
            return True, self.values[i]
        return False, None


@dataclass
class LSMStats:
    lookups: int = 0
    lookup_ios: int = 0
    wasted_lookup_ios: int = 0
    range_queries: int = 0
    range_ios: int = 0
    wasted_range_ios: int = 0
    filter_ios: int = 0  # filter-block reads charged (charge_filter_reads)
    bytes_ingested: int = 0
    compactions: int = 0
    degraded_lookups: int = 0  # probes of runs whose filter was lost
    integrity_faults: int = 0  # lost/torn blocks detected by the engine

    @property
    def ios_per_lookup(self) -> float:
        return self.lookup_ios / self.lookups if self.lookups else 0.0

    @property
    def wasted_ios_per_lookup(self) -> float:
        return self.wasted_lookup_ios / self.lookups if self.lookups else 0.0


class _LSMMetrics:
    """Handles into the default registry, rebound when it is swapped.

    Metric names follow docs/observability.md: the per-level filter
    counters are the series ``python -m repro stats`` derives the
    per-level FP-rate table from.
    """

    __slots__ = ("registry", "lookups", "io_hit", "io_wasted", "probes", "fps",
                 "wal_appends", "flushes", "compactions")

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self.lookups = registry.counter(
            "repro_lsm_lookups_total", "point lookups served by LSMTree.get"
        )
        ios = registry.counter(
            "repro_lsm_lookup_ios_total", "run reads during lookups, by outcome",
            labels=("outcome",),
        )
        self.io_hit = ios.labels(outcome="hit")
        self.io_wasted = ios.labels(outcome="wasted")
        self.probes = registry.counter(
            "repro_lsm_filter_probes_total",
            "per-run filter probes during lookups, by level and result",
            labels=("level", "result"),
        )
        self.fps = registry.counter(
            "repro_lsm_filter_false_positives_total",
            "filter said maybe but the run did not hold the key, by level",
            labels=("level",),
        )
        self.wal_appends = registry.counter(
            "repro_lsm_wal_appends_total", "write-ahead-log records appended"
        )
        self.flushes = registry.counter(
            "repro_lsm_flushes_total", "memtable flushes"
        )
        self.compactions = registry.counter(
            "repro_lsm_compactions_total", "run merges (compactions)"
        )


@dataclass
class RecoveryReport:
    """What :meth:`LSMTree.recover` found and did."""

    runs_recovered: int = 0
    runs_lost: int = 0
    filters_loaded: int = 0
    filters_rebuilt: int = 0
    filters_degraded: int = 0
    wal_replayed: int = 0
    wal_lost: int = 0
    manifest_fallback: bool = False
    io: IOStats = field(default_factory=IOStats)


@dataclass
class ScrubReport:
    """What :meth:`LSMTree.scrub` checked, found, and repaired."""

    blocks_checked: int = 0
    corrupt: list = field(default_factory=list)
    repaired: list = field(default_factory=list)
    unreadable: list = field(default_factory=list)


class LSMTree:
    """Filtered LSM-tree over a simulated (possibly faulty) block device."""

    def __init__(self, config: LSMConfig | None = None, device: Any = None):
        self.config = config or LSMConfig()
        self.device = device if device is not None else BlockDevice()
        self.stats = LSMStats()
        self.retry = RetryPolicy(max_attempts=self.config.retry_attempts)
        self._memtable: dict[int, Any] = {}
        self._levels: list[list[_Run]] = []
        self._next_run_id = 0
        self._next_seq = 0
        self._next_wal_seq = 0
        self._wal_pending: list[int] = []
        self._manifest_epoch = 0
        self._pending_retire: list[Any] = []
        self._maplet: QuotientFilterMaplet | None = None
        if self.config.use_maplet:
            self._maplet = QuotientFilterMaplet.for_capacity(
                self.config.maplet_capacity, self.config.largest_level_epsilon,
                seed=self.config.seed,
            )
        self._global_range_filter: Any = None
        self._global_dirty = True
        self.recovery_report: RecoveryReport | None = None
        # Bumped on every write (put/delete); version token for external
        # negative-lookup caches (repro.cache.NegativeLookupCache) — an
        # ABSENT recorded under an older epoch is dead on arrival.
        self.mutation_epoch = 0
        self.filter_memo = None
        if self.config.filter_memo_entries > 0:
            from repro.cache.results import FilterResultCache

            self.filter_memo = FilterResultCache(self.config.filter_memo_entries)
        self._obs: _LSMMetrics | None = None

    def _metrics(self) -> _LSMMetrics:
        registry = default_registry()
        if self._obs is None or self._obs.registry is not registry:
            self._obs = _LSMMetrics(registry)
        return self._obs

    # -- device helpers ---------------------------------------------------------

    def _read_block(self, address):
        """Device read with bounded retry on transient faults."""
        with trace("device.read", address=address):
            return self.retry.call(self.device.read, address)

    def _safe_delete(self, address) -> None:
        """Strict delete: a missing block means a lost write or double-free
        happened earlier — count it instead of masking it."""
        try:
            self.device.delete(address, missing_ok=False)
        except KeyError:
            self.stats.integrity_faults += 1

    # -- write path ------------------------------------------------------------

    def put(self, key: int, value: Any) -> None:
        self.mutation_epoch += 1
        if self.config.wal_enabled:
            body = frame(pickle.dumps((key, value)))
            self.device.write(("wal", self._next_wal_seq), body, size=_ENTRY_BYTES)
            self._wal_pending.append(self._next_wal_seq)
            self._next_wal_seq += 1
            self._metrics().wal_appends.inc()
        self._memtable[key] = value
        self.stats.bytes_ingested += _ENTRY_BYTES
        if len(self._memtable) >= self.config.memtable_entries:
            self.flush()

    def delete(self, key: int) -> None:
        """Delete via tombstone (the LSM way: deletes are writes)."""
        self.put(key, TOMBSTONE)

    def flush(self) -> None:
        if not self._memtable:
            return
        self._metrics().flushes.inc()
        keys = sorted(self._memtable)
        values = [self._memtable[k] for k in keys]
        self._memtable = {}
        self._emit_run(0, keys, values)
        self._maybe_compact()
        self._checkpoint()

    def _emit_run(self, level: int, keys: list[int], values: list[Any]) -> _Run:
        run = _Run(
            self._next_run_id,
            level,
            keys,
            values,
            self._build_filter(level, keys),
            self._build_range_filter(keys),
            self._next_seq,
        )
        self._next_run_id += 1
        self._next_seq += 1
        while len(self._levels) <= level:
            self._levels.append([])
        self._levels[level].append(run)
        data = frame(pickle.dumps((run.level, run.seq, run.keys, run.values)))
        self.device.write(("run", run.run_id), data, size=len(keys) * _ENTRY_BYTES)
        for page in range(self._n_pages(run)):
            self._write_page(run, page)
        if run.filter is not None:
            blob = filter_dumps(run.filter)
            self.device.write(("filter", run.run_id), blob, size=len(blob))
        if self._maplet is not None:
            for key in keys:
                self._maplet.insert(key, run.run_id)
        self._global_dirty = True
        return run

    # -- paging (docs/performance.md) --------------------------------------------
    #
    # With ``page_entries > 0`` a run's data is *read* at page granularity
    # — ``("page", run_id, p)`` blocks of up to page_entries entries, the
    # sstable-data-block model — so a block cache sized well below the
    # run can hold the hot pages.  The whole-run block stays the durable
    # recovery artifact; pages are its read-granularity image.

    def _n_pages(self, run: _Run) -> int:
        entries = self.config.page_entries
        if entries <= 0 or not run.keys:
            return 0
        return (len(run.keys) + entries - 1) // entries

    def _page_of(self, run: _Run, key: int) -> int:
        from bisect import bisect_left

        i = min(bisect_left(run.keys, key), len(run.keys) - 1)
        return i // self.config.page_entries

    def _write_page(self, run: _Run, page: int) -> None:
        entries = self.config.page_entries
        lo = page * entries
        page_keys = run.keys[lo:lo + entries]
        page_values = run.values[lo:lo + entries]
        body = frame(pickle.dumps((page_keys, page_values)))
        self.device.write(
            ("page", run.run_id, page), body, size=len(page_keys) * _ENTRY_BYTES
        )

    def _retire_run(self, run: _Run) -> None:
        # Deletion is deferred to the next manifest checkpoint so that a
        # crash between compaction and checkpoint cannot orphan the tree:
        # the old manifest still describes blocks that still exist.
        self._pending_retire.append(("run", run.run_id))
        for page in range(self._n_pages(run)):
            self._pending_retire.append(("page", run.run_id, page))
        if self.device.exists(("filter", run.run_id)):
            self._pending_retire.append(("filter", run.run_id))
        if self.filter_memo is not None:
            # Run ids are never reused, so retired entries are garbage,
            # not a staleness hazard — this is pure space reclamation.
            self.filter_memo.drop_run(run.run_id)
        if self._maplet is not None:
            for key in run.keys:
                self._maplet.delete(key, run.run_id)
        self._global_dirty = True

    # -- manifest / checkpoint ---------------------------------------------------

    def _manifest_payload(self) -> bytes:
        manifest = {
            "epoch": self._manifest_epoch + 1,
            "next_run_id": self._next_run_id,
            "next_seq": self._next_seq,
            "wal_floor": self._next_wal_seq,
            "config": self.config.to_manifest(),
            "runs": [
                [run.run_id, run.level, run.seq, len(run.keys), run.filter is not None]
                for level in self._levels
                for run in level
            ],
        }
        return frame(json.dumps(manifest, sort_keys=True).encode())

    def _checkpoint(self) -> None:
        """Durably record the run set, then free superseded blocks.

        The manifest is double-buffered across two slots (alternating by
        epoch) and read back after writing: a lost, torn, or bit-flipped
        manifest write is detected and retried, and the previous slot
        stays valid throughout.
        """
        body = self._manifest_payload()
        slot = (self._manifest_epoch + 1) % 2
        address = ("manifest", slot)
        for _ in range(self.retry.max_attempts):
            self.device.write(address, body, size=len(body))
            try:
                written = self._read_block(address)
            except (TransientIOError, KeyError):
                written = None
            if written == body:
                break
            self.stats.integrity_faults += 1
        self._manifest_epoch += 1
        for addr in self._pending_retire:
            self._safe_delete(addr)
        self._pending_retire = []
        for seq in self._wal_pending:
            self._safe_delete(("wal", seq))
        self._wal_pending = []

    def checkpoint(self) -> None:
        """Public alias: persist the manifest without flushing the memtable
        (the memtable is already covered by the WAL)."""
        self._checkpoint()

    # -- filters -----------------------------------------------------------------

    def _level_epsilon(self, level: int) -> float:
        """Per-run FPR at *level* under the configured policy."""
        base = self.config.largest_level_epsilon
        if self.config.filter_policy == "uniform":
            return base
        # Monkey: the largest level runs at `base`; each smaller level gets
        # a size-ratio factor tighter so that Σ (runs × FPR) converges.
        deepest = max(len(self._levels) - 1, level, 1)
        return max(1e-9, base * self.config.size_ratio ** (level - deepest))

    def _build_filter(self, level: int, keys: list[int]):
        if self.config.filter_policy == "none" or not keys:
            return None
        bloom = BloomFilter(
            len(keys), self._level_epsilon(level), seed=self.config.seed ^ level
        )
        for key in keys:
            bloom.insert(key)
        return bloom

    def _build_range_filter(self, keys: list[int]):
        factory = self.config.range_filter_factory
        if factory is None or not keys:
            return None
        return factory(keys)

    # -- compaction --------------------------------------------------------------

    def _level_capacity_entries(self, level: int) -> int:
        return self.config.memtable_entries * self.config.size_ratio ** (level + 1)

    def _policy_at(self, level: int) -> str:
        if self.config.compaction == "lazy-leveling":
            deepest = len(self._levels) - 1
            return "leveling" if level >= deepest else "tiering"
        return self.config.compaction

    def _maybe_compact(self) -> None:
        level = 0
        while level < len(self._levels):
            runs = self._levels[level]
            if self._policy_at(level) == "tiering":
                if len(runs) >= self.config.size_ratio:
                    self._merge_into(level, level + 1)
            else:  # leveling
                if len(runs) > 1:
                    self._merge_into(level, level)
                runs = self._levels[level]
                if runs and len(runs[0]) > self._level_capacity_entries(level):
                    self._merge_into(level, level + 1)
            level += 1

    def _merge_into(self, src_level: int, dst_level: int) -> None:
        """Merge all runs at src (plus dst's runs when src != dst) into one
        new run at dst.  Newer values win."""
        sources = list(self._levels[src_level])
        self._levels[src_level] = []
        if dst_level != src_level:
            while len(self._levels) <= dst_level:
                self._levels.append([])
            if self._policy_at(dst_level) == "leveling":
                sources += self._levels[dst_level]
                self._levels[dst_level] = []
        merged: dict[int, tuple[int, Any]] = {}
        for run in sources:
            for key, value in zip(run.keys, run.values):
                prev = merged.get(key)
                if prev is None or run.seq > prev[0]:
                    merged[key] = (run.seq, value)
        for run in sources:
            self._retire_run(run)
        # Tombstones can be dropped once they reach the deepest data:
        # no deeper level and no sibling run at the destination may hold an
        # older version the tombstone still needs to shadow.
        at_bottom = not self._levels[dst_level] and all(
            not self._levels[i] for i in range(dst_level + 1, len(self._levels))
        )
        keys, values = [], []
        for key in sorted(merged):
            value = merged[key][1]
            if value is TOMBSTONE and at_bottom:
                continue
            keys.append(key)
            values.append(value)
        self._emit_run(dst_level, keys, values)
        self.stats.compactions += 1
        self._metrics().compactions.inc()

    # -- read path -------------------------------------------------------------------

    def _runs_newest_first(self) -> list[_Run]:
        runs = [run for level in self._levels for run in level]
        runs.sort(key=lambda r: r.seq, reverse=True)
        return runs

    def _read_run(self, run: _Run, key: int):
        if self.config.page_entries > 0 and run.keys:
            self._read_block(("page", run.run_id, self._page_of(run, key)))
        else:
            self._read_block(("run", run.run_id))
        return run.get(key)

    def _charge_filter_read(self, run: _Run) -> bool:
        """Charge the device read consulting this run's filter block costs
        (``charge_filter_reads``) — the RocksDB reality that filter and
        index blocks live in the same block cache as data.  Returns False
        when the block is unreadable: the caller must then probe the run
        directly, because an unavailable verdict is not a negative one.
        """
        if not self.config.charge_filter_reads:
            return True
        self.stats.filter_ios += 1
        try:
            self._read_block(("filter", run.run_id))
        except (TransientIOError, CircuitOpenError, KeyError):
            return False
        return True

    def get(self, key: int, default: Any = None, *, deadline: Any = None) -> Any:
        """Point lookup.  Traced (``lsm.get`` → ``filter.probe`` /
        ``device.read`` → ``retry.attempt``) when a trace recorder is
        installed; per-level probe and FP counters always accrue.

        With a :class:`~repro.common.clock.Deadline`, the scan abandons
        remaining runs once the budget expires and raises
        :class:`~repro.common.clock.DeadlineExceeded` — the serving layer
        (:mod:`repro.serve`) translates that into a conservative MAYBE;
        use :meth:`lookup` directly for the non-raising tri-state form.
        """
        with trace("lsm.get", key=key) as span:
            result = self.lookup(key, deadline=deadline)
            span.set_tag("found", result.found)
            if not result.complete and result.reason == "deadline":
                raise DeadlineExceeded(f"lookup of key {key!r} missed its deadline")
            return result.value if result.found else default

    def lookup(self, key: int, *, deadline: Any = None,
               degrade_on_error: bool = False) -> LookupResult:
        """Deadline-aware tri-state lookup (docs/robustness.md).

        Scans runs newest-first, abandoning the rest of the scan when
        *deadline* expires.  With ``degrade_on_error=True`` an
        unreadable run (retries exhausted, or its circuit breaker open)
        is skipped instead of raising — and because a skipped run can no
        longer be ruled out, the result degrades to the conservative
        :data:`~repro.common.clock.Answer.MAYBE`.  ``PRESENT``/``ABSENT``
        are returned only for scans that finished completely *within*
        the deadline, so a late or partial answer can never masquerade
        as authoritative — and a filter's one-sided-error contract (no
        false negatives) survives any fault or latency storm.
        """
        m = self._metrics()
        m.lookups.inc()
        self.stats.lookups += 1
        result = LookupResult(state=Answer.ABSENT)
        if deadline is not None and deadline.expired():
            result.state, result.complete, result.reason = Answer.MAYBE, False, "deadline"
            return result
        if key in self._memtable:
            value = self._memtable[key]
            if value is not TOMBSTONE:
                result.state, result.value = Answer.PRESENT, value
            return result

        if self._maplet is not None:
            runs = self._maplet_candidate_runs(key)
        else:
            runs = self._runs_newest_first()
        for run in runs:
            if deadline is not None and deadline.expired():
                result.state, result.complete, result.reason = (
                    Answer.MAYBE, False, "deadline")
                return result
            filtered = False
            if self._maplet is None:
                if run.degraded:
                    # Lost filter: this run must always be probed — exactly
                    # one extra device read per probe (EXPERIMENTS.md R1).
                    self.stats.degraded_lookups += 1
                elif run.filter is not None:
                    level = str(run.level)
                    if self.filter_memo is not None and self.filter_memo.known_negative(
                        run.run_id, key
                    ):
                        # Memoized verdict — runs are immutable, so it is
                        # exactly what the filter would answer.  Counted as
                        # a negative probe so FP-rate derivations stay
                        # memo-agnostic; no filter-block I/O is charged.
                        m.probes.labels(level=level, result="negative").inc()
                        continue
                    if not self._charge_filter_read(run):
                        # Filter block unreadable right now: its verdict is
                        # unavailable, not negative — probe the run.
                        self.stats.degraded_lookups += 1
                    else:
                        with trace(
                            "filter.probe", level=run.level, run=run.run_id
                        ) as sp:
                            maybe = run.filter.may_contain(key)
                            sp.set_tag("maybe", maybe)
                        if not maybe:
                            m.probes.labels(level=level, result="negative").inc()
                            if self.filter_memo is not None:
                                self.filter_memo.record_negative(run.run_id, key)
                            continue
                        m.probes.labels(level=level, result="positive").inc()
                        filtered = True
            self.stats.lookup_ios += 1
            try:
                found, value = self._read_run(run, key)
            except (TransientIOError, CircuitOpenError):
                if not degrade_on_error:
                    raise
                # This run is unreachable, so the key can no longer be
                # ruled out: skip it and degrade the final answer.
                result.runs_skipped += 1
                continue
            result.runs_probed += 1
            if found:
                m.io_hit.inc()
                present = value is not TOMBSTONE
                result.value = value if present else None
                if result.runs_skipped:
                    # A newer, unreadable run may hold a fresher version
                    # (or a tombstone): the hit is best-effort only.
                    result.state, result.complete, result.reason = (
                        Answer.MAYBE, False, "unavailable")
                else:
                    result.state = Answer.PRESENT if present else Answer.ABSENT
                break
            self.stats.wasted_lookup_ios += 1
            m.io_wasted.inc()
            if filtered:
                # The filter passed a key its run did not hold: a realised
                # false positive at this level.
                m.fps.labels(level=str(run.level)).inc()
        else:
            if result.runs_skipped:
                result.state, result.complete, result.reason = (
                    Answer.MAYBE, False, "unavailable")
        if deadline is not None and deadline.expired():
            # Finished, but late: the answer missed its SLO, so report the
            # conservative MAYBE (value stays attached as best-effort).
            result.state, result.complete, result.reason = (
                Answer.MAYBE, False, "deadline")
        return result

    def _maplet_candidate_runs(self, key: int) -> list[_Run]:
        """Maplet-directed probe set: only the runs the maplet names,
        newest first."""
        candidates = set(self._maplet.get(key))
        by_id = {run.run_id: run for level in self._levels for run in level}
        return sorted(
            (by_id[c] for c in candidates if c in by_id),
            key=lambda r: r.seq,
            reverse=True,
        )

    def _get_via_maplet(self, key: int) -> tuple[bool, Any]:
        """Maplet-directed lookup: probe only the runs the maplet names."""
        m = self._metrics()
        for run in self._maplet_candidate_runs(key):
            self.stats.lookup_ios += 1
            found, value = self._read_run(run, key)
            if found:
                m.io_hit.inc()
                return value is not TOMBSTONE, value
            self.stats.wasted_lookup_ios += 1
            m.io_wasted.inc()
        return False, None

    def multi_get(self, keys: list[int], default: Any = None,
                  *, deadline: Any = None) -> list[Any]:
        """Batched point lookup — the §3.1 batching fast path.

        With a :class:`~repro.common.clock.Deadline`, the batch abandons
        remaining runs once the budget expires and raises
        :class:`~repro.common.clock.DeadlineExceeded` whose ``partial``
        attribute carries the per-key results resolved so far (unresolved
        keys still hold *default* — the caller must treat them as MAYBE,
        never as authoritative absence).

        Probes each level's filter for the *whole* outstanding key batch
        (``Filter.may_contain_many``) before issuing any device read, then
        reads each run **once** per batch to serve every candidate key in
        it — so a batch of B keys costs one filter-kernel call and at most
        one device read per run, instead of B of each.

        Accounting: per-key filter probes and realised false positives
        accrue to the same per-level counters as :meth:`get`, so FP-rate
        derivations are batch/scalar agnostic.  ``stats.lookup_ios``
        counts *device reads actually issued* (one per run per batch) —
        the quantity batching shrinks.  A batched read is ``wasted`` only
        when it serves no key.  Per-key trace spans are not emitted on
        this path (one span per batch would be misleading, B spans would
        defeat the batching).
        """
        m = self._metrics()
        n = len(keys)
        if not n:
            return []
        m.lookups.inc(n)
        self.stats.lookups += n
        results: list[Any] = [default] * n
        pending: list[int] = []
        for i, key in enumerate(keys):
            if key in self._memtable:
                value = self._memtable[key]
                if value is not TOMBSTONE:
                    results[i] = value
            else:
                pending.append(i)

        if self._maplet is not None:
            for i in pending:
                if deadline is not None and deadline.expired():
                    raise DeadlineExceeded(
                        "multi_get missed its deadline", partial=results
                    )
                found, value = self._get_via_maplet(keys[i])
                if found:
                    results[i] = value
            return results

        for run in self._runs_newest_first():
            if not pending:
                break
            if deadline is not None and deadline.expired():
                raise DeadlineExceeded(
                    "multi_get missed its deadline", partial=results
                )
            filtered = False
            if run.degraded:
                self.stats.degraded_lookups += len(pending)
                candidates = list(pending)
            elif run.filter is not None:
                level = str(run.level)
                batch_idx = pending
                if self.filter_memo is not None:
                    memoed = {
                        i for i in pending
                        if self.filter_memo.known_negative(run.run_id, keys[i])
                    }
                    if memoed:
                        m.probes.labels(level=level, result="negative").inc(
                            len(memoed)
                        )
                        batch_idx = [i for i in pending if i not in memoed]
                if not batch_idx:
                    continue
                if not self._charge_filter_read(run):
                    self.stats.degraded_lookups += len(batch_idx)
                    candidates = batch_idx
                else:
                    batch = [keys[i] for i in batch_idx]
                    mask = run.filter.may_contain_many(batch)
                    positives = int(mask.sum())
                    m.probes.labels(level=level, result="positive").inc(positives)
                    m.probes.labels(level=level, result="negative").inc(
                        len(batch) - positives
                    )
                    candidates = [i for i, hit in zip(batch_idx, mask.tolist()) if hit]
                    if self.filter_memo is not None:
                        for i, hit in zip(batch_idx, mask.tolist()):
                            if not hit:
                                self.filter_memo.record_negative(run.run_id, keys[i])
                    filtered = True
            else:
                candidates = list(pending)
            if not candidates:
                continue
            if self.config.page_entries > 0 and run.keys:
                # Page-granular batch read: each needed page exactly once.
                for page in sorted({self._page_of(run, keys[i]) for i in candidates}):
                    self._read_block(("page", run.run_id, page))
                    self.stats.lookup_ios += 1
            else:
                self._read_block(("run", run.run_id))
                self.stats.lookup_ios += 1
            found_here: list[int] = []
            for i in candidates:
                found, value = run.get(keys[i])
                if found:
                    found_here.append(i)
                    if value is not TOMBSTONE:
                        results[i] = value
            missed = len(candidates) - len(found_here)
            if found_here:
                m.io_hit.inc()
                remaining = set(found_here)
                pending = [i for i in pending if i not in remaining]
            else:
                self.stats.wasted_lookup_ios += 1
                m.io_wasted.inc()
            if filtered and missed:
                m.fps.labels(level=str(run.level)).inc(missed)
        return results

    def _refresh_global_range_filter(self) -> None:
        factory = self.config.global_range_filter_factory
        if factory is None or not self._global_dirty:
            return
        all_keys = sorted(
            {key for level in self._levels for run in level for key in run.keys}
        )
        self._global_range_filter = factory(all_keys) if all_keys else None
        self._global_dirty = False

    def range_query(self, lo: int, hi: int) -> dict[int, Any]:
        """All live key/value pairs in [lo, hi]."""
        if lo > hi:
            raise ValueError("empty range: lo > hi")
        self.stats.range_queries += 1
        out: dict[int, tuple[int, Any]] = {}
        for key, value in self._memtable.items():
            if lo <= key <= hi:
                out[key] = (float("inf"), value)
        # GRF mode: one tree-wide filter answers emptiness before any run
        # is considered (§3.1: "a recent global range filter for LSM-tree").
        if self.config.global_range_filter_factory is not None:
            self._refresh_global_range_filter()
            if self._global_range_filter is not None and not (
                self._global_range_filter.may_intersect(lo, hi)
            ):
                return {
                    k: v for k, (_, v) in sorted(out.items()) if v is not TOMBSTONE
                }
        for run in self._runs_newest_first():
            if run.range_filter is not None and not run.range_filter.may_intersect(
                lo, hi
            ):
                continue
            self.stats.range_ios += 1
            from bisect import bisect_left, bisect_right

            i, j = bisect_left(run.keys, lo), bisect_right(run.keys, hi)
            if self.config.page_entries > 0 and run.keys:
                # Only the pages overlapping [lo, hi]; an empty overlap
                # still probes the one page a seek would have landed on.
                entries = self.config.page_entries
                first = min(i, len(run.keys) - 1) // entries
                last = (j - 1) // entries if j > i else first
                for page in range(first, last + 1):
                    self._read_block(("page", run.run_id, page))
            else:
                self._read_block(("run", run.run_id))
            if i == j:
                self.stats.wasted_range_ios += 1
            for k in range(i, j):
                key = run.keys[k]
                if key not in out or run.seq > out[key][0]:
                    out[key] = (run.seq, run.values[k])
        return {
            k: v for k, (_, v) in sorted(out.items()) if v is not TOMBSTONE
        }

    # -- recovery ---------------------------------------------------------------------

    @classmethod
    def recover(cls, device: Any, config: LSMConfig | None = None) -> "LSMTree":
        """Reopen an :class:`LSMTree` from a (possibly faulty) device.

        Loads the newest valid manifest (falling back to scanning the
        device when both slots are corrupt or missing), reloads every run,
        loads or rebuilds its filter blob, and replays the write-ahead
        log into the memtable.  The outcome is summarized on the returned
        tree's ``recovery_report``.
        """
        report = RecoveryReport()
        before = device.stats.snapshot()
        manifest = cls._load_manifest(device, report)
        if config is None:
            raw = (manifest or {}).get("config")
            config = LSMConfig.from_manifest(raw) if raw else LSMConfig()
        tree = cls(config, device=device)
        tree.recovery_report = report
        if manifest is not None:
            tree._manifest_epoch = manifest["epoch"]
            tree._next_run_id = manifest["next_run_id"]
            tree._next_seq = manifest["next_seq"]
            run_specs = [
                (run_id, level, seq, bool(has_filter))
                for run_id, level, seq, _n_keys, has_filter in manifest["runs"]
            ]
            wal_floor = manifest["wal_floor"]
        else:
            report.manifest_fallback = True
            run_specs, wal_floor = tree._scan_run_specs(), 0
        tree._load_runs(run_specs, report)
        tree._replay_wal(wal_floor, report)
        report.io = device.stats - before
        return tree

    @staticmethod
    def _load_manifest(device, report: RecoveryReport) -> dict | None:
        """Best valid manifest across both slots (highest epoch wins)."""
        retry = RetryPolicy(max_attempts=4)
        best = None
        for slot in (0, 1):
            address = ("manifest", slot)
            if not device.exists(address):
                continue
            try:
                raw = retry.call(device.read, address)
                manifest = json.loads(unframe(raw).decode())
            except (TransientIOError, ChecksumError, ValueError, KeyError):
                continue
            if best is None or manifest["epoch"] > best["epoch"]:
                best = manifest
        return best

    def _scan_run_specs(self) -> list:
        """Manifest lost: enumerate run blocks straight off the device."""
        specs = []
        for address in self.device.addresses():
            if isinstance(address, tuple) and address and address[0] == "run":
                has_filter = self.device.exists(("filter", address[1]))
                specs.append((address[1], None, None, has_filter))
        return specs

    def _load_runs(self, run_specs, report: RecoveryReport) -> None:
        loaded: list[_Run] = []
        for run_id, level, seq, has_filter in run_specs:
            try:
                data = unframe(self._read_block(("run", run_id)))
                stored_level, stored_seq, keys, values = pickle.loads(data)
            except (TransientIOError, KeyError, ChecksumError, pickle.PickleError):
                report.runs_lost += 1
                self.stats.integrity_faults += 1
                continue
            level = stored_level if level is None else level
            seq = stored_seq if seq is None else seq
            run = _Run(run_id, level, list(keys), list(values), None,
                       self._build_range_filter(list(keys)), seq)
            loaded.append((run, has_filter))
            report.runs_recovered += 1
        for run, _ in loaded:
            while len(self._levels) <= run.level:
                self._levels.append([])
            self._levels[run.level].append(run)
            self._next_run_id = max(self._next_run_id, run.run_id + 1)
            self._next_seq = max(self._next_seq, run.seq + 1)
        for level in self._levels:
            level.sort(key=lambda r: r.seq)
        # Filters second, once the level structure exists (Monkey's ε
        # depends on tree depth).
        for run, _has_filter in loaded:
            self._restore_filter(run, report)
            if self._maplet is not None:
                for key in run.keys:
                    self._maplet.insert(key, run.run_id)
            # Rematerialize any missing page blocks (first recovery after
            # enabling paging, or pages lost to faults): the run block is
            # the durable source of truth, pages are its read image.
            for page in range(self._n_pages(run)):
                if not self.device.exists(("page", run.run_id, page)):
                    self._write_page(run, page)
        self._global_dirty = True

    def _restore_filter(self, run: _Run, report: RecoveryReport) -> None:
        if self.config.filter_policy == "none" or not run.keys:
            return
        address = ("filter", run.run_id)
        blob = None
        if self.device.exists(address):
            try:
                blob = self._read_block(address)
            except TransientIOError:
                blob = None
        if blob is not None:
            try:
                run.filter = filter_loads(blob)
                report.filters_loaded += 1
                return
            except ValueError:  # ChecksumError included: corrupt blob
                self.stats.integrity_faults += 1
        if self.config.rebuild_filters_on_recovery:
            run.filter = self._build_filter(run.level, run.keys)
            fresh = filter_dumps(run.filter)
            self.device.write(address, fresh, size=len(fresh))
            report.filters_rebuilt += 1
        else:
            run.degraded = True
            report.filters_degraded += 1

    def _replay_wal(self, wal_floor: int, report: RecoveryReport) -> None:
        # New appends must start at or above the checkpointed floor even
        # when there is nothing to replay: restarting at 0 would write
        # ("wal", seq) blocks below the floor, and the *next* recovery
        # would discard them as already-flushed — losing acknowledged
        # writes on the second crash.
        self._next_wal_seq = max(self._next_wal_seq, wal_floor)
        records = sorted(
            address[1]
            for address in self.device.addresses()
            if isinstance(address, tuple) and address and address[0] == "wal"
            and address[1] >= wal_floor
        )
        for seq in records:
            try:
                body = unframe(self._read_block(("wal", seq)))
                key, value = pickle.loads(body)
            except (TransientIOError, KeyError, ChecksumError, pickle.PickleError):
                report.wal_lost += 1
                self.stats.integrity_faults += 1
                continue
            self._memtable[key] = value
            report.wal_replayed += 1
            self._wal_pending.append(seq)
            self._next_wal_seq = max(self._next_wal_seq, seq + 1)

    # -- scrubbing ---------------------------------------------------------------------

    def scrub(self, repair: bool = True) -> ScrubReport:
        """Walk every persistent blob, verify its checksum, and (optionally)
        repair what fails — the ``bup bloom --check`` / ``--regenerate``
        workflow.  Run data and filters are repaired from the in-memory
        image; the manifest is repaired by re-checkpointing."""
        report = ScrubReport()
        for run in self._runs_newest_first():
            self._scrub_block(
                report, ("run", run.run_id),
                check=lambda raw: pickle.loads(unframe(raw)) is not None,
                repair_fn=(
                    (lambda run=run: self.device.write(
                        ("run", run.run_id),
                        frame(pickle.dumps((run.level, run.seq, run.keys, run.values))),
                        size=len(run.keys) * _ENTRY_BYTES,
                    )) if repair else None
                ),
            )
            for page in range(self._n_pages(run)):
                self._scrub_block(
                    report, ("page", run.run_id, page),
                    check=lambda raw: pickle.loads(unframe(raw)) is not None,
                    repair_fn=(
                        (lambda run=run, page=page: self._write_page(run, page))
                        if repair else None
                    ),
                )
            if run.filter is not None or self.device.exists(("filter", run.run_id)):
                self._scrub_block(
                    report, ("filter", run.run_id),
                    check=filter_verify,
                    repair_fn=(
                        (lambda run=run: self._repair_filter(run)) if repair else None
                    ),
                )
        for slot in (0, 1):
            address = ("manifest", slot)
            if self.device.exists(address):
                self._scrub_block(
                    report, address,
                    check=lambda raw: unframe(raw) is not None,
                    repair_fn=(self._checkpoint if repair else None),
                )
        wal_corrupt = False
        for seq in list(self._wal_pending):
            n_corrupt = len(report.corrupt) + len(report.unreadable)
            self._scrub_block(
                report, ("wal", seq),
                check=lambda raw: pickle.loads(unframe(raw)) is not None,
                repair_fn=None,  # individual records are repaired as a tail
            )
            wal_corrupt |= len(report.corrupt) + len(report.unreadable) > n_corrupt
        if wal_corrupt and repair:
            self._rewrite_wal_tail()
            report.repaired.append(("wal", "*"))
        return report

    def _scrub_block(self, report: ScrubReport, address, check, repair_fn) -> None:
        report.blocks_checked += 1
        try:
            raw = self._read_block(address)
        except TransientIOError:
            report.unreadable.append(address)
            return
        except KeyError:
            report.corrupt.append(address)
            self.stats.integrity_faults += 1
            if repair_fn is not None:
                repair_fn()
                report.repaired.append(address)
            return
        try:
            ok = bool(check(raw))
        except (ChecksumError, ValueError, pickle.PickleError):
            ok = False
        if ok:
            return
        report.corrupt.append(address)
        self.stats.integrity_faults += 1
        if repair_fn is not None:
            repair_fn()
            report.repaired.append(address)

    def _repair_filter(self, run: _Run) -> None:
        if run.filter is None:
            run.filter = self._build_filter(run.level, run.keys)
        if run.filter is None:
            return
        run.degraded = False
        blob = filter_dumps(run.filter)
        self.device.write(("filter", run.run_id), blob, size=len(blob))

    def _rewrite_wal_tail(self) -> None:
        # A corrupt WAL record's original content is unknowable, but the
        # memtable still holds every acknowledged (key, value): repair
        # replaces the whole un-checkpointed tail with a fresh image of it.
        for seq in self._wal_pending:
            self._safe_delete(("wal", seq))
        self._wal_pending = []
        for key, value in self._memtable.items():
            body = frame(pickle.dumps((key, value)))
            self.device.write(("wal", self._next_wal_seq), body, size=_ENTRY_BYTES)
            self._wal_pending.append(self._next_wal_seq)
            self._next_wal_seq += 1

    # -- full scans -----------------------------------------------------------------------

    def items(self) -> list[tuple[int, Any]]:
        """Every live ``(key, value)`` pair, sorted by key.

        Merges runs oldest-first and the memtable last (newest wins),
        dropping tombstoned keys — the enumeration online resharding
        uses to backfill a new shard.  Each run block is charged one
        device read (retry-wrapped, so a transiently faulty device can
        raise :class:`~repro.common.faults.TransientIOError` after
        retries and the caller defers the scan).
        """
        merged: dict[int, Any] = {}
        runs = sorted(
            (run for level in self._levels for run in level),
            key=lambda run: run.seq,
        )
        for run in runs:
            self._read_block(("run", run.run_id))
            merged.update(zip(run.keys, run.values))
        merged.update(self._memtable)
        return sorted(
            (k, v) for k, v in merged.items() if v is not TOMBSTONE
        )

    # -- accounting ----------------------------------------------------------------------

    @property
    def wal_position(self) -> int:
        """Next WAL sequence number: a *durable*, monotone write cursor.

        Unlike ``mutation_epoch`` (session-local, resets on recovery),
        this survives crashes — recovery restores it from the manifest's
        WAL floor plus replayed records — so layers that must never see
        an epoch repeat across a crash (negative-lookup caches over a
        recovered store) key on it instead.
        """
        return self._next_wal_seq

    @property
    def n_entries_on_disk(self) -> int:
        return sum(len(run) for level in self._levels for run in level)

    @property
    def n_runs(self) -> int:
        return sum(len(level) for level in self._levels)

    @property
    def n_levels(self) -> int:
        return len(self._levels)

    @property
    def write_amplification(self) -> float:
        ingested = self.stats.bytes_ingested
        return self.device.stats.bytes_written / ingested if ingested else 0.0

    @property
    def filter_bits(self) -> int:
        if self._maplet is not None:
            return self._maplet.size_in_bits
        return sum(
            run.filter.size_in_bits
            for level in self._levels
            for run in level
            if run.filter is not None
        )

    @property
    def filter_bits_per_key(self) -> float:
        n = self.n_entries_on_disk
        return self.filter_bits / n if n else 0.0

    def sum_of_fprs(self) -> float:
        """Σ over runs of that run's expected FPR — the quantity Monkey
        makes converge (O(ε)) and uniform allocation lets grow (O(ε·L))."""
        total = 0.0
        for level in self._levels:
            for run in level:
                if run.filter is not None:
                    total += run.filter.epsilon
        return total

    def publish_gauges(self, registry: MetricsRegistry | None = None) -> None:
        """Derive point-in-time gauges from the tree and its counters.

        Counters accrue continuously; gauges (per-level realised FP rate,
        write amplification, filter bits/key, tree shape) are computed on
        demand — call this before exporting, as ``python -m repro stats``
        does.  The realised FP rate at a level is ``fp / (negatives +
        fp)``: probes for keys truly absent from the probed run are its
        filter negatives (never false) plus its confirmed false positives.
        """
        reg = registry if registry is not None else default_registry()
        m = self._metrics() if reg is default_registry() else _LSMMetrics(reg)
        fp_rate = reg.gauge(
            "repro_lsm_filter_fp_rate",
            "realised per-level filter false-positive rate", labels=("level",),
        )
        for level_index in range(len(self._levels)):
            level = str(level_index)
            negatives = m.probes.labels(level=level, result="negative").value
            fps = m.fps.labels(level=level).value
            absent = negatives + fps
            fp_rate.labels(level=level).set(fps / absent if absent else 0.0)
        reg.gauge(
            "repro_lsm_expected_sum_fpr", "sum over runs of expected filter FPR"
        ).set(self.sum_of_fprs())
        reg.gauge(
            "repro_lsm_write_amplification", "device bytes written per byte ingested"
        ).set(self.write_amplification)
        reg.gauge(
            "repro_lsm_filter_bits_per_key", "filter memory over on-disk entries"
        ).set(self.filter_bits_per_key)
        reg.gauge("repro_lsm_levels", "populated level count").set(self.n_levels)
        reg.gauge("repro_lsm_runs", "live run count").set(self.n_runs)
        reg.gauge("repro_lsm_entries_on_disk", "entries across all runs").set(
            self.n_entries_on_disk
        )
