"""Filter-backed de Bruijn graph representations (§3.2).

* :class:`FilterBackedDeBruijn` — Pell et al.'s probabilistic
  representation (k-mer set in a Bloom filter; edges implied by
  membership of both endpoints) plus Chikhi & Rizk's exact upgrade: an
  explicit table of **critical false positives** — FP k-mers adjacent to
  true k-mers — whose removal makes navigation exact.
* :class:`CascadingBloomDeBruijn` — Salikhov et al.'s refinement: the
  critical-FP table is itself replaced by a cascade of Bloom filters plus
  a tiny exact residue, cutting its memory several-fold.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.filters.bloom import BloomFilter
from repro.workloads.dna import BASES


def neighbours(kmer: str) -> list[str]:
    """The (up to) 8 potential de Bruijn neighbours of *kmer*."""
    suffix, prefix = kmer[1:], kmer[:-1]
    return [suffix + b for b in BASES] + [b + prefix for b in BASES]


class FilterBackedDeBruijn:
    """Bloom-filter de Bruijn graph with optional exact critical-FP table."""

    def __init__(
        self,
        kmers: Iterable[str],
        *,
        epsilon: float = 0.01,
        exact: bool = True,
        seed: int = 0,
    ):
        self._kmers = set(kmers)
        if not self._kmers:
            raise ValueError("k-mer set must be non-empty")
        self.k = len(next(iter(self._kmers)))
        self._bloom = BloomFilter(len(self._kmers), epsilon, seed=seed)
        for kmer in self._kmers:
            self._bloom.insert(kmer)
        self._critical: set[str] = set()
        if exact:
            self._critical = self._find_critical_false_positives()

    def _find_critical_false_positives(self) -> set[str]:
        """FP k-mers reachable in one step from a true k-mer (Chikhi–Rizk:
        removing exactly these makes navigation from true nodes exact)."""
        critical = set()
        for kmer in self._kmers:
            for cand in neighbours(kmer):
                if cand not in self._kmers and self._bloom.may_contain(cand):
                    critical.add(cand)
        return critical

    # -- navigation -------------------------------------------------------------

    def contains(self, kmer: str) -> bool:
        """Navigational membership: exact for walks from true k-mers when
        the critical-FP table is present."""
        return self._bloom.may_contain(kmer) and kmer not in self._critical

    def successors(self, kmer: str) -> list[str]:
        return [s + "" for s in (kmer[1:] + b for b in BASES) if self.contains(s)]

    def walk(self, start: str, max_steps: int = 10_000) -> list[str]:
        """Greedy unitig-style walk following unique successors."""
        path = [start]
        seen = {start}
        current = start
        for _ in range(max_steps):
            nexts = [n for n in self.successors(current) if n not in seen]
            if len(nexts) != 1:
                break
            current = nexts[0]
            path.append(current)
            seen.add(current)
        return path

    # -- accounting ------------------------------------------------------------------

    @property
    def n_kmers(self) -> int:
        return len(self._kmers)

    @property
    def n_critical(self) -> int:
        return len(self._critical)

    @property
    def critical_fraction(self) -> float:
        return self.n_critical / self.n_kmers

    @property
    def bloom_bits(self) -> int:
        return self._bloom.size_in_bits

    @property
    def critical_table_bits(self) -> int:
        """Exact table cost: 2k bits per stored critical FP."""
        return self.n_critical * 2 * self.k

    @property
    def size_in_bits(self) -> int:
        return self.bloom_bits + self.critical_table_bits


class CascadingBloomDeBruijn:
    """Chikhi–Rizk structure with the cFP table as a Bloom cascade.

    B1 holds the true k-mers; B2 holds the critical FPs of B1; B3 holds the
    true k-mers that B2 wrongly captures; a tiny exact residue T4 holds the
    critical FPs that survive B3.  Query: alternate through the cascade.
    """

    def __init__(
        self,
        kmers: Iterable[str],
        *,
        epsilon: float = 0.01,
        cascade_epsilon: float = 0.05,
        seed: int = 0,
    ):
        base = FilterBackedDeBruijn(kmers, epsilon=epsilon, exact=True, seed=seed)
        self.k = base.k
        self._b1 = base._bloom
        self._n = base.n_kmers
        true_set = base._kmers
        critical = base._critical

        self._b2 = self._bloom_of(critical, cascade_epsilon, seed ^ 2)
        caught_true = (
            {k for k in true_set if self._b2.may_contain(k)} if self._b2 else set()
        )
        self._b3 = self._bloom_of(caught_true, cascade_epsilon, seed ^ 3)
        self._t4 = (
            {c for c in critical if self._b3.may_contain(c)} if self._b3 else critical
        )

    @staticmethod
    def _bloom_of(items: set[str], epsilon: float, seed: int) -> BloomFilter | None:
        if not items:
            return None
        bloom = BloomFilter(len(items), epsilon, seed=seed)
        for item in items:
            bloom.insert(item)
        return bloom

    def contains(self, kmer: str) -> bool:
        if not self._b1.may_contain(kmer):
            return False
        if self._b2 is None or not self._b2.may_contain(kmer):
            return True
        if self._b3 is None or not self._b3.may_contain(kmer):
            return False
        return kmer not in self._t4

    @property
    def size_in_bits(self) -> int:
        bits = self._b1.size_in_bits
        for bloom in (self._b2, self._b3):
            if bloom is not None:
                bits += bloom.size_in_bits
        return bits + len(self._t4) * 2 * self.k

    @property
    def n_kmers(self) -> int:
        return self._n

    @property
    def residue_size(self) -> int:
        return len(self._t4)


class WeightedDeBruijn:
    """deBGR-style weighted de Bruijn graph (Pandey et al. 2017, §3.2).

    Edge (i.e. (k+1)-mer) abundances live in an approximate counting
    quotient filter; node abundances are derived as the sum of incident
    edge counts.  In an exact weighted de Bruijn graph, every internal
    node satisfies the flow invariant  Σ in-edge counts = Σ out-edge
    counts; fingerprint collisions in the CQF break it.  deBGR's insight:
    while the data is still streaming at construction time, invariant
    violations pinpoint the corrupted counts, which are then re-counted
    exactly into a small side table — "iteratively self-correct
    approximation errors" with working memory close to the final size.

    ``build`` performs construction + correction; ``edge_weight`` serves
    corrected counts.
    """

    def __init__(self, k: int, capacity: int, *, epsilon: float = 0.01, seed: int = 0):
        from repro.counting.cqf import CountingQuotientFilter

        if k < 2 or k > 27:
            raise ValueError("k must be in [2, 27]")
        self.k = k
        import math

        quotient_bits = max(1, math.ceil(math.log2(capacity / 0.9)))
        remainder_bits = max(1, math.ceil(math.log2(1 / epsilon)))
        self._cqf = CountingQuotientFilter(quotient_bits, remainder_bits, seed=seed)
        self._corrections: dict[str, int] = {}  # exact counts for fixed edges
        self._node_kmers: set[str] = set()
        self.n_corrected = 0

    @classmethod
    def build(
        cls, sequences: list[str], k: int, *, epsilon: float = 0.01, seed: int = 0
    ) -> "WeightedDeBruijn":
        from repro.workloads.dna import extract_kmers

        edges: dict[str, int] = {}
        for seq in sequences:
            for edge in extract_kmers(seq, k + 1):
                edges[edge] = edges.get(edge, 0) + 1
        graph = cls(k, max(64, 2 * len(edges)), epsilon=epsilon, seed=seed)
        for edge, count in edges.items():
            for _ in range(count):
                graph._cqf.insert(edge)
            graph._node_kmers.add(edge[:-1])
            graph._node_kmers.add(edge[1:])
        graph._self_correct(edges)
        return graph

    # -- the correction pass ---------------------------------------------------

    def _approx_edge_weight(self, edge: str) -> int:
        return self._cqf.count(edge)

    def _in_edges(self, node: str) -> list[str]:
        from repro.workloads.dna import BASES

        return [b + node for b in BASES]

    def _out_edges(self, node: str) -> list[str]:
        from repro.workloads.dna import BASES

        return [node + b for b in BASES]

    def _self_correct(self, true_edges: dict[str, int]) -> None:
        """Find invariant-violating nodes; re-count their incident edges
        exactly (the data is still available during construction)."""
        suspicious: set[str] = set()
        for node in self._node_kmers:
            flow_in = sum(self._approx_edge_weight(e) for e in self._in_edges(node))
            flow_out = sum(self._approx_edge_weight(e) for e in self._out_edges(node))
            # Boundary nodes (sequence start/end) legitimately unbalance by
            # their terminal multiplicity; large mismatches flag collisions.
            if abs(flow_in - flow_out) > self._boundary_slack(node, true_edges):
                suspicious.add(node)
        for node in suspicious:
            for edge in self._in_edges(node) + self._out_edges(node):
                approx = self._approx_edge_weight(edge)
                truth = true_edges.get(edge, 0)
                if approx != truth:
                    self._corrections[edge] = truth
                    self.n_corrected += 1

    @staticmethod
    def _boundary_slack(node: str, true_edges: dict[str, int]) -> int:
        # A node is a boundary if some sequence starts/ends at it; the exact
        # slack equals its terminal multiplicity, which the construction
        # pass can observe.  We allow slack 0 for internal nodes and are
        # conservative (slack 1) otherwise to avoid over-correcting.
        return 1

    # -- queries -------------------------------------------------------------------

    def edge_weight(self, edge: str) -> int:
        """Corrected abundance of a (k+1)-mer."""
        if len(edge) != self.k + 1:
            raise ValueError(f"edge must be a {self.k + 1}-mer")
        if edge in self._corrections:
            return self._corrections[edge]
        return self._approx_edge_weight(edge)

    def node_weight(self, node: str) -> int:
        """Abundance of a k-mer = flow through it (out-edge sum, falling
        back to in-edges at sequence ends)."""
        if len(node) != self.k:
            raise ValueError(f"node must be a {self.k}-mer")
        out = sum(self.edge_weight(e) for e in self._out_edges(node))
        if out:
            return out
        return sum(self.edge_weight(e) for e in self._in_edges(node))

    def contains(self, node: str) -> bool:
        return self.node_weight(node) > 0

    @property
    def size_in_bits(self) -> int:
        correction_bits = len(self._corrections) * (2 * (self.k + 1) + 32)
        return self._cqf.size_in_bits + correction_bits
