"""Filter-accelerated selective equi-joins (§3.1).

The classic pattern: build a filter over the (few) qualifying join keys of
the small table, then scan the big table and discard rows whose keys the
filter rejects — before paying to ship/partition/probe them.  The win is
proportional to the join's selectivity; the filter's FPR sets how many
useless rows survive.

``filtered_join`` accepts any point filter (Bloom, cuckoo, XOR, …), which
is experiment T8's comparison axis (cf. Lang et al., "Bloom overtakes
cuckoo at high throughput": per-probe cost vs. FPR trade).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable


@dataclass
class JoinStats:
    build_rows: int = 0
    probe_rows: int = 0
    rows_passed_filter: int = 0
    false_passes: int = 0
    result_rows: int = 0
    filter_bits: int = 0

    @property
    def rows_discarded_early(self) -> int:
        return self.probe_rows - self.rows_passed_filter

    @property
    def shipping_reduction(self) -> float:
        """Fraction of probe rows the filter eliminated before the join."""
        if not self.probe_rows:
            return 0.0
        return self.rows_discarded_early / self.probe_rows


def unfiltered_join(
    build_rows: Iterable[tuple[Any, Any]],
    probe_rows: Iterable[tuple[Any, Any]],
) -> tuple[list[tuple[Any, Any, Any]], JoinStats]:
    """Plain hash join: every probe row is shipped to the join operator."""
    stats = JoinStats()
    table: dict[Any, list[Any]] = {}
    for key, payload in build_rows:
        table.setdefault(key, []).append(payload)
        stats.build_rows += 1
    out = []
    for key, payload in probe_rows:
        stats.probe_rows += 1
        stats.rows_passed_filter += 1
        for other in table.get(key, ()):
            out.append((key, other, payload))
            stats.result_rows += 1
    return out, stats


def filtered_join(
    build_rows: Iterable[tuple[Any, Any]],
    probe_rows: Iterable[tuple[Any, Any]],
    filter_factory: Callable[[list[Any]], Any],
) -> tuple[list[tuple[Any, Any, Any]], JoinStats]:
    """Hash join with a pre-filter on the build side's keys.

    *filter_factory* receives the build keys and returns any object with
    ``may_contain``; only probe rows passing it reach the join.
    """
    stats = JoinStats()
    table: dict[Any, list[Any]] = {}
    for key, payload in build_rows:
        table.setdefault(key, []).append(payload)
        stats.build_rows += 1
    filt = filter_factory(list(table))
    stats.filter_bits = getattr(filt, "size_in_bits", 0)
    out = []
    for key, payload in probe_rows:
        stats.probe_rows += 1
        if not filt.may_contain(key):
            continue  # discarded before shipping — the whole point
        stats.rows_passed_filter += 1
        matches = table.get(key)
        if matches is None:
            stats.false_passes += 1  # filter FP: shipped for nothing
            continue
        for other in matches:
            out.append((key, other, payload))
            stats.result_rows += 1
    return out, stats
