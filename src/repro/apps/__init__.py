"""Applications of feature-rich filters (§3): storage, biology, networking."""

from repro.apps.blocklist import AdaptiveBlocklist, Blocklist, StaticNoListBlocklist
from repro.apps.circlog import CircularLogStore
from repro.apps.external_counter import ExternalQuotientCounter
from repro.apps.debruijn import (
    CascadingBloomDeBruijn,
    FilterBackedDeBruijn,
    WeightedDeBruijn,
)
from repro.apps.joins import filtered_join, unfiltered_join
from repro.apps.kmers import KmerCounter
from repro.apps.lsm import LSMConfig, LSMTree
from repro.apps.mantis import IncrementalMantis, MantisIndex
from repro.apps.sbt import SequenceBloomTree

__all__ = [
    "AdaptiveBlocklist",
    "Blocklist",
    "CascadingBloomDeBruijn",
    "CircularLogStore",
    "ExternalQuotientCounter",
    "IncrementalMantis",
    "FilterBackedDeBruijn",
    "KmerCounter",
    "LSMConfig",
    "LSMTree",
    "MantisIndex",
    "SequenceBloomTree",
    "StaticNoListBlocklist",
    "WeightedDeBruijn",
    "filtered_join",
    "unfiltered_join",
]
