"""Malicious-URL blocking with yes/no lists (§3.3).

A router stores malicious URLs as a filter's *yes list*; every false
positive blocks (or detours through verification) an innocent site — and
because benign traffic is heavily skewed, one popular false positive gets
hit over and over.  Three designs from the tutorial:

* :class:`Blocklist` — plain filter; hot benign FPs pay the penalty forever.
* :class:`StaticNoListBlocklist` — a *no list* of known-important benign
  URLs is checked first (the Bloomier/Integrated-filter approach: the no
  list must be known in advance).
* :class:`AdaptiveBlocklist` — an adaptive filter discovers and fixes FPs
  dynamically (Wen et al.: adaptive filters solve both the static and the
  dynamic yes/no-list problem).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from repro.adaptive.adaptive_quotient import AdaptiveQuotientFilter
from repro.core.interfaces import AdaptiveFilter
from repro.filters.bloom import BloomFilter


@dataclass
class BlockStats:
    requests: int = 0
    blocked_malicious: int = 0
    missed_malicious: int = 0  # must stay 0: filters have no false negatives
    false_blocks: int = 0  # benign requests wrongly sent to verification
    verifications: int = 0

    @property
    def false_block_rate(self) -> float:
        return self.false_blocks / self.requests if self.requests else 0.0


class Blocklist:
    """Plain yes-list blocking: filter hit → expensive URL verification."""

    def __init__(self, malicious: Iterable[str], *, epsilon: float = 0.01, seed: int = 0):
        urls = list(malicious)
        self._filter = BloomFilter(max(1, len(urls)), epsilon, seed=seed)
        for url in urls:
            self._filter.insert(url)
        self._truth = set(urls)
        self.stats = BlockStats()

    def _verify(self, url: str) -> bool:
        """The expensive ground-truth check (remote reputation service)."""
        self.stats.verifications += 1
        return url in self._truth

    def handle(self, url: str, is_malicious: bool) -> bool:
        """Process a request; returns True when the URL is blocked."""
        self.stats.requests += 1
        if not self._filter.may_contain(url):
            if is_malicious:
                self.stats.missed_malicious += 1
            return False
        if self._verify(url):
            self.stats.blocked_malicious += 1
            return True
        self.stats.false_blocks += 1
        self._on_false_positive(url)
        return False

    def _on_false_positive(self, url: str) -> None:
        """Hook for subclasses; the plain blocklist learns nothing."""

    @property
    def size_in_bits(self) -> int:
        return self._filter.size_in_bits


class StaticNoListBlocklist(Blocklist):
    """Yes list + a static no list of protected benign URLs.

    URLs on the no list bypass the filter entirely, so they can never be
    false-blocked — but the list must be known ahead of time, and anything
    off-list still pays for its false positives (the SSCF/Integrated-filter
    limitation the tutorial points out).
    """

    def __init__(
        self,
        malicious: Iterable[str],
        no_list: Iterable[str],
        *,
        epsilon: float = 0.01,
        seed: int = 0,
    ):
        super().__init__(malicious, epsilon=epsilon, seed=seed)
        self._no_list = set(no_list)
        overlap = self._no_list & self._truth
        if overlap:
            raise ValueError("no list contains malicious URLs")

    def handle(self, url: str, is_malicious: bool) -> bool:
        if url in self._no_list:
            self.stats.requests += 1
            return False  # protected: never blocked, never verified
        return super().handle(url, is_malicious)

    @property
    def size_in_bits(self) -> int:
        # The no list stores full URLs: ~64 bits/entry hashed form at best.
        return super().size_in_bits + 64 * len(self._no_list)


class AdaptiveBlocklist(Blocklist):
    """Yes list on an adaptive filter: the no list builds itself.

    Every verified false positive is reported back to the filter, which
    stops matching it — dynamically protecting whichever benign URLs the
    live traffic actually hits, with no advance knowledge.
    """

    def __init__(self, malicious: Iterable[str], *, epsilon: float = 0.01, seed: int = 0):
        urls = list(malicious)
        self._filter: AdaptiveFilter = AdaptiveQuotientFilter.for_capacity(
            max(1, len(urls)), epsilon, seed=seed
        )
        for url in urls:
            self._filter.insert(url)
        self._truth = set(urls)
        self.stats = BlockStats()

    def _on_false_positive(self, url: str) -> None:
        self._filter.report_false_positive(url)

    @property
    def size_in_bits(self) -> int:
        return self._filter.size_in_bits
