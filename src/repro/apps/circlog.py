"""Circular-log storage engine with a maplet index (§3.1).

Models the FASTER / Pliops class of engines the tutorial describes: all
writes append log records to storage, an in-memory maplet maps each live
key to its log position, and a garbage collector rewrites the oldest log
segment, dropping obsolete records.  The §3.1 requirements fall out
directly: the maplet must support **updates** (new versions), **deletes**
(GC and tombstones) and **expansion** (the log only grows) while keeping
lookups at ~1 device read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.storage import BlockDevice
from repro.core.errors import DeletionError, FilterFullError
from repro.maplets.qf_maplet import QuotientFilterMaplet

_RECORD_BYTES = 32


@dataclass
class CircLogStats:
    appends: int = 0
    lookups: int = 0
    lookup_ios: int = 0
    wasted_lookup_ios: int = 0
    gc_passes: int = 0
    records_rewritten: int = 0


class CircularLogStore:
    """Append-only log + expandable maplet index."""

    def __init__(
        self,
        *,
        initial_capacity: int = 256,
        epsilon: float = 0.01,
        segment_records: int = 256,
        seed: int = 0,
    ):
        self.device = BlockDevice()
        self.stats = CircLogStats()
        self.segment_records = segment_records
        self.epsilon = epsilon
        self.seed = seed
        self._maplet = self._new_maplet(initial_capacity)
        self._head = 0  # next log position
        self._tail = 0  # oldest live position
        self._log: dict[int, tuple[Any, Any, bool]] = {}  # pos -> (key, value, live)

    def _new_maplet(self, capacity: int) -> QuotientFilterMaplet:
        return QuotientFilterMaplet.for_capacity(
            capacity, self.epsilon, value_bits=32, seed=self.seed
        )

    def _maplet_insert(self, key, position: int) -> None:
        """Insert with growth: the §2.2 story — the maplet must expand as
        the log grows, without access to the original keys."""
        try:
            self._maplet.insert(key, position)
        except FilterFullError:
            self._expand_maplet()
            self._maplet.insert(key, position)

    def _expand_maplet(self) -> None:
        # QF maplets expand by rebuild-from-maplet-content: fingerprints
        # cannot be rehashed, but the (fingerprint, value) pairs can be
        # re-split into a table twice the size (the naive-QF expansion of
        # §2.2 — one fingerprint bit is spent on addressing).
        old = self._maplet
        bigger = QuotientFilterMaplet(
            old._qf.quotient_bits + 1,
            max(1, old._qf.remainder_bits - 1),
            value_bits=old.value_bits,
            seed=old._qf.seed,
        )
        for fp, values in old._values.items():
            for value in values:
                bigger._qf._insert_fingerprint(fp)  # same p-bit fp, new split
                bigger._values.setdefault(fp, []).append(value)
        self._maplet = bigger

    # -- API ------------------------------------------------------------------------

    def put(self, key, value) -> None:
        position = self._head
        self._head += 1
        self._log[position] = (key, value, True)
        self.device.write(("log", position), None, size=_RECORD_BYTES)
        self.stats.appends += 1
        # Supersede any previous version of this key.
        for old_pos in self._maplet.get(key):
            record = self._log.get(old_pos)
            if record is not None and record[0] == key and record[2]:
                self._log[old_pos] = (record[0], record[1], False)
                self._maplet.delete(key, old_pos)
        self._maplet_insert(key, position)

    def get(self, key, default: Any = None) -> Any:
        self.stats.lookups += 1
        for position in sorted(self._maplet.get(key), reverse=True):
            record = self._log.get(position)
            if record is None:
                continue
            self.stats.lookup_ios += 1
            self.device.read(("log", position))
            if record[0] == key and record[2]:
                return record[1]
            self.stats.wasted_lookup_ios += 1
        return default

    def delete(self, key) -> None:
        found = False
        for position in self._maplet.get(key):
            record = self._log.get(position)
            if record is not None and record[0] == key and record[2]:
                self._log[position] = (record[0], record[1], False)
                self._maplet.delete(key, position)
                found = True
        if not found:
            raise DeletionError(f"key {key!r} not present")

    def gc(self) -> int:
        """Rewrite the oldest segment, dropping dead records.  Returns the
        number of live records relocated."""
        self.stats.gc_passes += 1
        end = min(self._head, self._tail + self.segment_records)
        relocated = 0
        for position in range(self._tail, end):
            record = self._log.pop(position, None)
            self.device.delete(("log", position))
            if record is None or not record[2]:
                continue
            key, value, _ = record
            # Live record: re-append at the head, updating the maplet.
            self._maplet.delete(key, position)
            new_pos = self._head
            self._head += 1
            self._log[new_pos] = (key, value, True)
            self.device.write(("log", new_pos), None, size=_RECORD_BYTES)
            self._maplet_insert(key, new_pos)
            relocated += 1
            self.stats.records_rewritten += 1
        self._tail = end
        return relocated

    # -- accounting -------------------------------------------------------------------

    @property
    def live_records(self) -> int:
        return sum(1 for _, _, live in self._log.values() if live)

    @property
    def log_records(self) -> int:
        return len(self._log)

    @property
    def index_bits_per_key(self) -> float:
        live = self.live_records
        return self._maplet.size_in_bits / live if live else 0.0

    @property
    def maplet(self) -> QuotientFilterMaplet:
        return self._maplet
