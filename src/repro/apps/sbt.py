"""Sequence Bloom Tree (Solomon & Kingsford 2016) — experiment discovery.

A binary tree of Bloom filters: each leaf is one sequencing experiment's
k-mer set; each internal node's filter is the bitwise OR of its children
(all filters share size and hash functions, so union is literal OR).
A query (a set of query k-mers and a threshold θ) descends the tree and
prunes any subtree whose filter contains fewer than θ·|query| of the
k-mers.  Results are approximate: Bloom FPs can both inflate per-node hit
counts and return spurious experiments — the inexactness Mantis (§3.2)
was built to eliminate.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.common.bitvector import BitVector
from repro.common.hashing import hash_pair
from repro.core.analysis import bloom_optimal_hashes


class _UnionableBloom:
    """Fixed-geometry Bloom filter supporting bitwise-OR union."""

    def __init__(self, m: int, k: int, seed: int):
        self.m = m
        self.k = k
        self.seed = seed
        self.bits = BitVector(m)

    def _positions(self, key) -> list[int]:
        h1, h2 = hash_pair(key, self.seed)
        h2 |= 1
        return [(h1 + i * h2) % self.m for i in range(self.k)]

    def insert(self, key) -> None:
        for pos in self._positions(key):
            self.bits.set(pos)

    def may_contain(self, key) -> bool:
        return all(self.bits.get(pos) for pos in self._positions(key))

    def union_with(self, other: "_UnionableBloom") -> None:
        self.bits.words |= other.bits.words


class _Node:
    __slots__ = ("bloom", "left", "right", "experiment_id")

    def __init__(self, bloom, left=None, right=None, experiment_id=None):
        self.bloom = bloom
        self.left = left
        self.right = right
        self.experiment_id = experiment_id

    @property
    def is_leaf(self) -> bool:
        return self.experiment_id is not None


class SequenceBloomTree:
    """SBT over a family of experiments (k-mer sets)."""

    def __init__(
        self,
        experiments: list[set[str]],
        *,
        epsilon: float = 0.01,
        seed: int = 0,
    ):
        if not experiments:
            raise ValueError("need at least one experiment")
        self.n_experiments = len(experiments)
        max_kmers = max(len(e) for e in experiments)
        bits_per_key = math.log2(math.e) * math.log2(1 / epsilon)
        # One shared geometry: sized for the largest leaf (roots are denser,
        # hence the SBT's rising FPR toward the root — inherent to the design).
        self._m = max(64, int(math.ceil(max_kmers * bits_per_key)))
        self._k = bloom_optimal_hashes(bits_per_key)
        self.seed = seed

        nodes = []
        for i, kmers in enumerate(experiments):
            bloom = _UnionableBloom(self._m, self._k, seed)
            for kmer in kmers:
                bloom.insert(kmer)
            nodes.append(_Node(bloom, experiment_id=i))
        # Pairwise bottom-up construction.
        while len(nodes) > 1:
            merged = []
            for i in range(0, len(nodes) - 1, 2):
                left, right = nodes[i], nodes[i + 1]
                parent_bloom = _UnionableBloom(self._m, self._k, seed)
                parent_bloom.union_with(left.bloom)
                parent_bloom.union_with(right.bloom)
                merged.append(_Node(parent_bloom, left, right))
            if len(nodes) % 2:
                merged.append(nodes[-1])
            nodes = merged
        self._root = nodes[0]
        self.last_query_nodes = 0

    def query(self, kmers: Iterable[str], theta: float = 0.8) -> list[int]:
        """Experiments containing at least θ of the query k-mers (approx.)."""
        if not 0 < theta <= 1:
            raise ValueError("theta must be in (0, 1]")
        query = list(kmers)
        if not query:
            return []
        threshold = math.ceil(theta * len(query))
        self.last_query_nodes = 0
        out: list[int] = []
        self._search(self._root, query, threshold, out)
        return sorted(out)

    def _search(self, node: _Node, query: list[str], threshold: int, out: list[int]):
        self.last_query_nodes += 1
        hits = sum(1 for kmer in query if node.bloom.may_contain(kmer))
        if hits < threshold:
            return
        if node.is_leaf:
            out.append(node.experiment_id)
            return
        self._search(node.left, query, threshold, out)
        self._search(node.right, query, threshold, out)

    @property
    def size_in_bits(self) -> int:
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += node.bloom.bits.n_bits
            if not node.is_leaf:
                stack.extend((node.left, node.right))
        return total
