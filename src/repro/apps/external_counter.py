"""Scaling a filter out of RAM (§1 feature 1 of the quotient filter).

Squeakr and Mantis count k-mer sets far larger than memory by exploiting
the quotient filter's defining property: its table layout *is* sorted
fingerprint order, so full in-RAM filters can be spilled to disk and later
k-way merged with sequential I/O only — exactly like sorted-run merging in
an LSM-tree.  (A Bloom filter cannot do this: its bits are unordered and
its unions can only OR same-sized arrays at a fixed capacity.)

:class:`ExternalQuotientCounter` reproduces the pipeline on the simulated
block device: ingest → spill filled QF shards → streaming merge.  I/O
accounting shows each spilled byte is written once and read once by the
merge — the sequential-pass behaviour that makes the approach viable on
real disks.
"""

from __future__ import annotations

from repro.common.storage import BlockDevice
from repro.core.interfaces import Key
from repro.filters.quotient import QuotientFilter

_FINGERPRINT_BYTES = 8


class ExternalQuotientCounter:
    """Out-of-RAM multiset builder over spilled quotient-filter shards."""

    def __init__(
        self,
        shard_capacity: int,
        epsilon: float,
        *,
        seed: int = 0,
        device: BlockDevice | None = None,
    ):
        if shard_capacity <= 0:
            raise ValueError("shard_capacity must be positive")
        self.shard_capacity = shard_capacity
        self.epsilon = epsilon
        self.seed = seed
        self.device = device if device is not None else BlockDevice()
        self._active = self._new_shard()
        self._spilled: list[int] = []  # shard ids on the device
        self._next_shard = 0
        self._total = 0

    def _new_shard(self) -> QuotientFilter:
        return QuotientFilter.for_capacity(
            self.shard_capacity, self.epsilon, seed=self.seed
        )

    def add(self, key: Key) -> None:
        """Ingest one occurrence; spills the active shard when full."""
        if len(self._active) >= self._active.capacity:
            self._spill()
        self._active.insert(key)
        self._total += 1

    def _spill(self) -> None:
        """Write the active shard to the device as a sorted fingerprint run."""
        run = list(self._active.iter_fingerprints_sorted())
        shard_id = self._next_shard
        self._next_shard += 1
        self.device.write(
            ("shard", shard_id), run, size=len(run) * _FINGERPRINT_BYTES
        )
        self._spilled.append(shard_id)
        self._active = self._new_shard()

    @property
    def n_spilled_shards(self) -> int:
        return len(self._spilled)

    @property
    def total_ingested(self) -> int:
        return self._total

    def finalize(self) -> QuotientFilter:
        """Streaming k-way merge of all shards into one quotient filter.

        Each spilled run is read back once, sequentially; the merge holds
        one cursor per shard (in a real system: one block per shard), never
        the whole data set.
        """
        shards: list[QuotientFilter] = []
        for shard_id in self._spilled:
            run = self.device.read(("shard", shard_id))
            shard = self._new_shard()
            for fp in run:
                shard._insert_fingerprint(fp)
            shards.append(shard)
        shards.append(self._active)
        merged = QuotientFilter.merge(shards)
        for shard_id in self._spilled:
            self.device.delete(("shard", shard_id))
        return merged

    def count_in(self, merged: QuotientFilter, key: Key) -> int:
        """Multiplicity of *key* in the merged filter (duplicate slots)."""
        fp = merged._fingerprint(key)
        return sum(1 for stored in merged.iter_fingerprints() if stored == fp)
