"""Squeakr-style k-mer counting on the counting quotient filter (§3.2).

DNA sequencing reads are decomposed into k-mers and counted in a CQF.  Two
modes, as in Squeakr (Pandey et al. 2017):

* **approximate** — fingerprints of log₂(1/ε) bits: small, counts can be
  conflated by fingerprint collisions (always an over-count, never under).
* **exact** — the fingerprint is the full 2k-bit packed k-mer (quotienting
  makes this cheaper than a hash table): counts are exact, which is what
  Mantis builds on.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.counting.cqf import CountingQuotientFilter
from repro.workloads.dna import extract_kmers, kmer_to_int


class KmerCounter:
    """Count k-mers across sequencing reads with a CQF."""

    def __init__(
        self,
        k: int,
        capacity: int,
        *,
        exact: bool = False,
        epsilon: float = 0.01,
        seed: int = 0,
    ):
        if k < 1 or k > 28:
            raise ValueError("k must be in [1, 28] (2k-bit packing)")
        self.k = k
        self.exact = exact
        import math

        quotient_bits = max(1, math.ceil(math.log2(capacity / 0.9)))
        if exact:
            # Exact mode: quotient + remainder = full 2k bits of the k-mer.
            remainder_bits = max(1, 2 * k - quotient_bits)
            self._cqf = CountingQuotientFilter(
                quotient_bits, remainder_bits, seed=seed
            )
            self._identity = True
        else:
            remainder_bits = max(1, math.ceil(math.log2(1 / epsilon)))
            self._cqf = CountingQuotientFilter(quotient_bits, remainder_bits, seed=seed)
            self._identity = False

    def _canonical(self, kmer: str) -> int:
        value = kmer_to_int(kmer)
        if self._identity:
            # Exact mode stores the packed k-mer itself (identity
            # "fingerprint"): patch the hash path by pre-splitting.
            return value
        return value

    def add_sequence(self, sequence: str) -> int:
        """Count all k-mers of *sequence*; returns how many were added."""
        kmers = extract_kmers(sequence, self.k)
        for kmer in kmers:
            self.add_kmer(kmer)
        return len(kmers)

    def add_reads(self, reads: Iterable[str]) -> int:
        return sum(self.add_sequence(read) for read in reads)

    def add_kmer(self, kmer: str) -> None:
        if self._identity:
            self._cqf.insert_exact(self._canonical(kmer))
        else:
            self._cqf.insert(self._canonical(kmer))

    def count(self, kmer: str) -> int:
        if self._identity:
            return self._cqf.count_exact(self._canonical(kmer))
        return self._cqf.count(self._canonical(kmer))

    def __contains__(self, kmer: str) -> bool:
        return self.count(kmer) > 0

    @property
    def n_kmers_total(self) -> int:
        return len(self._cqf)

    @property
    def n_distinct(self) -> int:
        return self._cqf.n_distinct_fingerprints

    @property
    def size_in_bits(self) -> int:
        return self._cqf.size_in_bits
