"""Mantis (Pandey et al. 2018) — an exact sequence-search index (§3.2).

Inverted-index alternative to the SBT: a counting-quotient-filter maplet
maps each k-mer — stored with an **exact** fingerprint (the full packed
k-mer, via quotienting) — to a *colour class id*; a colour class is the
set of experiments containing that k-mer.  Queries are exact: no false
positives at any θ, while the index is typically smaller than the SBT
because each k-mer appears once regardless of how many experiments share
it (the tutorial: "smaller, faster, and exact compared to the SBT").
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.counting.cqf import CountingQuotientFilter
from repro.workloads.dna import kmer_to_int


class MantisIndex:
    """Exact k-mer → colour-class inverted index on a CQF maplet."""

    def __init__(self, experiments: list[set[str]], *, seed: int = 0):
        if not experiments:
            raise ValueError("need at least one experiment")
        self.n_experiments = len(experiments)
        all_kmers: dict[str, list[int]] = {}
        for exp_id, kmers in enumerate(experiments):
            for kmer in kmers:
                all_kmers.setdefault(kmer, []).append(exp_id)
        if not all_kmers:
            raise ValueError("experiments contain no k-mers")
        self.k = len(next(iter(all_kmers)))

        # Colour classes: deduplicated experiment sets.
        self._class_ids: dict[tuple[int, ...], int] = {}
        self._classes: list[tuple[int, ...]] = []
        self._kmer_class: dict[int, int] = {}  # packed kmer -> class id

        quotient_bits = max(1, math.ceil(math.log2(len(all_kmers) / 0.9)))
        remainder_bits = max(1, 2 * self.k - quotient_bits)
        self._cqf = CountingQuotientFilter(quotient_bits, remainder_bits, seed=seed)

        for kmer, exps in all_kmers.items():
            colour = tuple(sorted(set(exps)))
            class_id = self._class_ids.get(colour)
            if class_id is None:
                class_id = len(self._classes)
                self._class_ids[colour] = class_id
                self._classes.append(colour)
            packed = kmer_to_int(kmer)
            self._cqf.insert_exact(packed)
            self._kmer_class[packed] = class_id

    # -- queries -----------------------------------------------------------------

    def experiments_of(self, kmer: str) -> tuple[int, ...]:
        """Exactly the experiments containing *kmer* (empty if none)."""
        packed = kmer_to_int(kmer)
        if self._cqf.count_exact(packed) == 0:
            return ()
        return self._classes[self._kmer_class[packed]]

    def query(self, kmers: Iterable[str], theta: float = 0.8) -> list[int]:
        """Experiments containing at least θ of the query k-mers (exact)."""
        if not 0 < theta <= 1:
            raise ValueError("theta must be in (0, 1]")
        query = list(kmers)
        if not query:
            return []
        threshold = math.ceil(theta * len(query))
        per_experiment = [0] * self.n_experiments
        for kmer in query:
            for exp_id in self.experiments_of(kmer):
                per_experiment[exp_id] += 1
        return [e for e, hits in enumerate(per_experiment) if hits >= threshold]

    # -- accounting -------------------------------------------------------------------

    @property
    def n_kmers(self) -> int:
        return len(self._kmer_class)

    @property
    def n_colour_classes(self) -> int:
        return len(self._classes)

    @property
    def size_in_bits(self) -> int:
        """CQF table + class-id per k-mer + colour-class bit vectors."""
        class_id_bits = max(1, math.ceil(math.log2(max(2, self.n_colour_classes))))
        colour_table = self.n_colour_classes * self.n_experiments
        return (
            self._cqf.size_in_bits
            + self.n_kmers * class_id_bits
            + colour_table
        )


class IncrementalMantis:
    """Incrementally updatable Mantis via the Bentley–Saxe transformation
    (Almodaresi, Khan, Madaminov, Ferdman, Johnson, Pandey & Patro 2022).

    New sequencing experiments arrive over time; rebuilding the whole index
    per arrival is quadratic.  Instead, keep Mantis indexes of
    exponentially growing experiment counts (the binary-counter layout):
    adding an experiment buffers it, carries merge-and-rebuilds up the
    levels, and a query unions the per-level results with experiment-id
    offsets.  Results remain exact; query cost gains the O(log n) level
    factor; amortised rebuild work per experiment is O(log n) experiments.
    """

    def __init__(self, *, buffer_experiments: int = 1, seed: int = 0):
        if buffer_experiments < 1:
            raise ValueError("buffer_experiments must be positive")
        self._buffer_cap = buffer_experiments
        self._seed = seed
        self._buffer: list[tuple[int, set[str]]] = []  # (global id, kmers)
        # levels[i]: None or (MantisIndex, experiments, base_offset) where
        # the index's local ids 0..k map to global ids base..base+k.
        self._levels: list[tuple[MantisIndex, list[set[str]]] | None] = []
        self._experiments: list[set[str]] = []  # global id order
        self.rebuilds = 0

    def add_experiment(self, kmers: set[str]) -> int:
        """Index a new experiment; returns its global experiment id."""
        exp_id = len(self._experiments)
        self._experiments.append(kmers)
        self._buffer.append((exp_id, kmers))
        if len(self._buffer) >= self._buffer_cap:
            self._carry([kmers_set for _, kmers_set in self._buffer])
            self._buffer = []
        return exp_id

    def _carry(self, batch: list[set[str]]) -> None:
        level = 0
        while True:
            if level >= len(self._levels):
                self._levels.append(None)
            slot = self._levels[level]
            if slot is None:
                self.rebuilds += 1
                self._levels[level] = (
                    MantisIndex(batch, seed=self._seed + level),
                    batch,
                )
                return
            _, resident = slot
            self._levels[level] = None
            batch = resident + batch
            level += 1

    def _global_ids(self, level_experiments: list[set[str]]) -> list[int]:
        # Experiments keep their identity (set objects are unique), so map
        # by object identity back to global ids.
        by_id = {id(e): i for i, e in enumerate(self._experiments)}
        return [by_id[id(e)] for e in level_experiments]

    def query(self, kmers, theta: float = 0.8) -> list[int]:
        """Exact θ-containment search across every indexed experiment."""
        query = list(kmers)
        if not query:
            return []
        threshold = math.ceil(theta * len(query))
        hits: dict[int, int] = {}
        for slot in self._levels:
            if slot is None:
                continue
            index, resident = slot
            mapping = self._global_ids(resident)
            for kmer in query:
                for local in index.experiments_of(kmer):
                    global_id = mapping[local]
                    hits[global_id] = hits.get(global_id, 0) + 1
        for global_id, kmers_set in self._buffer:
            count = sum(1 for q in query if q in kmers_set)
            if count:
                hits[global_id] = count
        return sorted(e for e, n in hits.items() if n >= threshold)

    @property
    def n_experiments(self) -> int:
        return len(self._experiments)

    @property
    def n_levels(self) -> int:
        return sum(1 for slot in self._levels if slot is not None)

    @property
    def size_in_bits(self) -> int:
        return sum(slot[0].size_in_bits for slot in self._levels if slot)
