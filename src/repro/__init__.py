"""beyondbloom — feature-rich filter data structures and their applications.

A reproduction of "Beyond Bloom: A Tutorial on Future Feature-Rich Filters"
(SIGMOD-Companion 2024): every filter family the tutorial surveys (point,
counting, expandable, adaptive, maplets, range, learned) plus the storage,
biology and networking applications it describes.

Quickstart
----------
>>> from repro import make_filter
>>> f = make_filter("quotient", capacity=1000, epsilon=0.01)
>>> f.insert("hello")
>>> "hello" in f
True
>>> f.delete("hello")
>>> "hello" in f
False
"""

from repro.core import (
    FEATURE_MATRIX,
    ChecksumError,
    AdaptiveFilter,
    CountingFilter,
    DynamicFilter,
    ExpandableFilter,
    Filter,
    FilterError,
    FilterFullError,
    Maplet,
    RangeFilter,
    StaticFilter,
    available_filters,
    make_filter,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveFilter",
    "ChecksumError",
    "CountingFilter",
    "DynamicFilter",
    "ExpandableFilter",
    "FEATURE_MATRIX",
    "Filter",
    "FilterError",
    "FilterFullError",
    "Maplet",
    "RangeFilter",
    "StaticFilter",
    "__version__",
    "available_filters",
    "make_filter",
]
