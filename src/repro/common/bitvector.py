"""Packed bit storage: a plain bit vector and a fixed-width field array.

These are the physical layers under the Bloom, quotient, cuckoo, XOR and
ribbon filters.  Both are backed by a numpy ``uint64`` array so that the
logical size in bits reported by ``size_in_bits`` is also (up to the last
word) the real storage used.
"""

from __future__ import annotations

import numpy as np


class BitVector:
    """A mutable vector of *n* bits packed into 64-bit words."""

    __slots__ = ("n_bits", "words")

    def __init__(self, n_bits: int):
        if n_bits < 0:
            raise ValueError("bit vector length must be non-negative")
        self.n_bits = n_bits
        self.words = np.zeros((n_bits + 63) // 64, dtype=np.uint64)

    def __len__(self) -> int:
        return self.n_bits

    def _check(self, i: int) -> None:
        if not 0 <= i < self.n_bits:
            raise IndexError(f"bit index {i} out of range [0, {self.n_bits})")

    def get(self, i: int) -> bool:
        self._check(i)
        return bool((int(self.words[i >> 6]) >> (i & 63)) & 1)

    def set(self, i: int, value: bool = True) -> None:
        self._check(i)
        word, bit = i >> 6, i & 63
        if value:
            self.words[word] |= np.uint64(1 << bit)
        else:
            self.words[word] &= np.uint64(MASK64 ^ (1 << bit))

    __getitem__ = get

    def __setitem__(self, i: int, value: bool) -> None:
        self.set(i, value)

    def set_many(self, indexes: np.ndarray | list[int]) -> None:
        """Set every bit in *indexes* (vectorised)."""
        idx = np.asarray(indexes, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n_bits):
            raise IndexError("bit index out of range")
        np.bitwise_or.at(
            self.words, idx >> 6, np.uint64(1) << (idx & 63).astype(np.uint64)
        )

    def test_all(self, indexes: np.ndarray | list[int]) -> bool:
        """True iff every bit in *indexes* is set."""
        idx = np.asarray(indexes, dtype=np.int64)
        bits = (self.words[idx >> 6] >> (idx & 63).astype(np.uint64)) & np.uint64(1)
        return bool(bits.all())

    def count(self) -> int:
        """Number of set bits."""
        return int(np.unpackbits(self.words.view(np.uint8)).sum())

    def clear(self) -> None:
        self.words[:] = 0

    @property
    def size_in_bits(self) -> int:
        return self.n_bits

    def copy(self) -> "BitVector":
        dup = BitVector(self.n_bits)
        dup.words[:] = self.words
        return dup


MASK64 = (1 << 64) - 1


class PackedArray:
    """*n* fields of *width* bits each, packed contiguously.

    Fields may span a 64-bit word boundary; ``width`` may be 1..64.  Used for
    remainders in quotient filters, fingerprints in cuckoo filters, and XOR /
    ribbon filter solution arrays.
    """

    __slots__ = ("n_fields", "width", "_mask", "words")

    def __init__(self, n_fields: int, width: int):
        if not 1 <= width <= 64:
            raise ValueError("field width must be in [1, 64]")
        if n_fields < 0:
            raise ValueError("field count must be non-negative")
        self.n_fields = n_fields
        self.width = width
        self._mask = (1 << width) - 1
        total_bits = n_fields * width
        self.words = np.zeros((total_bits + 63) // 64, dtype=np.uint64)

    def __len__(self) -> int:
        return self.n_fields

    def get(self, i: int) -> int:
        if not 0 <= i < self.n_fields:
            raise IndexError(f"field index {i} out of range [0, {self.n_fields})")
        bit = i * self.width
        word, offset = bit >> 6, bit & 63
        value = int(self.words[word]) >> offset
        spill = offset + self.width - 64
        if spill > 0:
            value |= int(self.words[word + 1]) << (self.width - spill)
        return value & self._mask

    def set(self, i: int, value: int) -> None:
        if not 0 <= i < self.n_fields:
            raise IndexError(f"field index {i} out of range [0, {self.n_fields})")
        value &= self._mask
        bit = i * self.width
        word, offset = bit >> 6, bit & 63
        low = (int(self.words[word]) & ~(self._mask << offset)) & MASK64
        self.words[word] = np.uint64((low | (value << offset)) & MASK64)
        spill = offset + self.width - 64
        if spill > 0:
            high_mask = (1 << spill) - 1
            high = int(self.words[word + 1]) & ~high_mask
            self.words[word + 1] = np.uint64(high | (value >> (self.width - spill)))

    __getitem__ = get

    def __setitem__(self, i: int, value: int) -> None:
        self.set(i, value)

    @property
    def size_in_bits(self) -> int:
        return self.n_fields * self.width

    def copy(self) -> "PackedArray":
        dup = PackedArray(self.n_fields, self.width)
        dup.words[:] = self.words
        return dup
