"""Packed bit storage: a plain bit vector and a fixed-width field array.

These are the physical layers under the Bloom, quotient, cuckoo, XOR and
ribbon filters.  Both are backed by a numpy ``uint64`` array so that the
logical size in bits reported by ``size_in_bits`` is also (up to the last
word) the real storage used.
"""

from __future__ import annotations

import numpy as np


class BitVector:
    """A mutable vector of *n* bits packed into 64-bit words."""

    __slots__ = ("n_bits", "words")

    def __init__(self, n_bits: int):
        if n_bits < 0:
            raise ValueError("bit vector length must be non-negative")
        self.n_bits = n_bits
        self.words = np.zeros((n_bits + 63) // 64, dtype=np.uint64)

    def __len__(self) -> int:
        return self.n_bits

    def _check(self, i: int) -> None:
        if not 0 <= i < self.n_bits:
            raise IndexError(f"bit index {i} out of range [0, {self.n_bits})")

    def get(self, i: int) -> bool:
        self._check(i)
        return bool((int(self.words[i >> 6]) >> (i & 63)) & 1)

    def set(self, i: int, value: bool = True) -> None:
        self._check(i)
        word, bit = i >> 6, i & 63
        if value:
            self.words[word] |= np.uint64(1 << bit)
        else:
            self.words[word] &= np.uint64(MASK64 ^ (1 << bit))

    __getitem__ = get

    def __setitem__(self, i: int, value: bool) -> None:
        self.set(i, value)

    def set_many(self, indexes: np.ndarray | list[int]) -> None:
        """Set every bit in *indexes* (vectorised)."""
        idx = np.asarray(indexes, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n_bits):
            raise IndexError("bit index out of range")
        np.bitwise_or.at(
            self.words, idx >> 6, np.uint64(1) << (idx & 63).astype(np.uint64)
        )

    def test_all(self, indexes: np.ndarray | list[int]) -> bool:
        """True iff every bit in *indexes* is set."""
        idx = np.asarray(indexes, dtype=np.int64)
        bits = (self.words[idx >> 6] >> (idx & 63).astype(np.uint64)) & np.uint64(1)
        return bool(bits.all())

    def test_many(self, indexes: np.ndarray | list[int]) -> np.ndarray:
        """Per-index bit values as a bool array (vectorised gather).

        *indexes* may be any integer shape; the result has the same shape.
        """
        idx = np.asarray(indexes, dtype=np.int64)
        bits = (self.words[idx >> 6] >> (idx & 63).astype(np.uint64)) & np.uint64(1)
        return bits.astype(bool)

    def count(self) -> int:
        """Number of set bits."""
        return int(np.unpackbits(self.words.view(np.uint8)).sum())

    def clear(self) -> None:
        self.words[:] = 0

    @property
    def size_in_bits(self) -> int:
        return self.n_bits

    def copy(self) -> "BitVector":
        dup = BitVector(self.n_bits)
        dup.words[:] = self.words
        return dup


MASK64 = (1 << 64) - 1


def popcount64(words: np.ndarray) -> np.ndarray:
    """Per-element popcount of a ``uint64`` array.

    Uses ``np.bitwise_count`` where available (numpy >= 2.0) and a
    byte-unpack fallback elsewhere, so callers stay portable to the
    ``numpy>=1.24`` floor in pyproject.toml.
    """
    arr = np.ascontiguousarray(words, dtype=np.uint64)
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(arr).astype(np.int64)
    as_bytes = arr.reshape(-1).view(np.uint8).reshape(-1, 8)
    counts = np.unpackbits(as_bytes, axis=1).sum(axis=1).astype(np.int64)
    return counts.reshape(arr.shape)


class PackedArray:
    """*n* fields of *width* bits each, packed contiguously.

    Fields may span a 64-bit word boundary; ``width`` may be 1..64.  Used for
    remainders in quotient filters, fingerprints in cuckoo filters, and XOR /
    ribbon filter solution arrays.
    """

    __slots__ = ("n_fields", "width", "_mask", "words")

    def __init__(self, n_fields: int, width: int):
        if not 1 <= width <= 64:
            raise ValueError("field width must be in [1, 64]")
        if n_fields < 0:
            raise ValueError("field count must be non-negative")
        self.n_fields = n_fields
        self.width = width
        self._mask = (1 << width) - 1
        total_bits = n_fields * width
        self.words = np.zeros((total_bits + 63) // 64, dtype=np.uint64)

    def __len__(self) -> int:
        return self.n_fields

    def get(self, i: int) -> int:
        if not 0 <= i < self.n_fields:
            raise IndexError(f"field index {i} out of range [0, {self.n_fields})")
        bit = i * self.width
        word, offset = bit >> 6, bit & 63
        value = int(self.words[word]) >> offset
        spill = offset + self.width - 64
        if spill > 0:
            value |= int(self.words[word + 1]) << (self.width - spill)
        return value & self._mask

    def set(self, i: int, value: int) -> None:
        if not 0 <= i < self.n_fields:
            raise IndexError(f"field index {i} out of range [0, {self.n_fields})")
        value &= self._mask
        bit = i * self.width
        word, offset = bit >> 6, bit & 63
        low = (int(self.words[word]) & ~(self._mask << offset)) & MASK64
        self.words[word] = np.uint64((low | (value << offset)) & MASK64)
        spill = offset + self.width - 64
        if spill > 0:
            high_mask = (1 << spill) - 1
            high = int(self.words[word + 1]) & ~high_mask
            self.words[word + 1] = np.uint64(high | (value >> (self.width - spill)))

    __getitem__ = get

    def __setitem__(self, i: int, value: int) -> None:
        self.set(i, value)

    def get_many(self, indexes: np.ndarray | list[int]) -> np.ndarray:
        """Vectorised :meth:`get`: one ``uint64`` field value per index.

        Mirrors the scalar word/spill logic on arrays: the low part comes
        from the field's first word, and fields straddling a word boundary
        OR in the next word's low bits.
        """
        idx = np.asarray(indexes, dtype=np.int64)
        bit = idx * self.width
        word, offset = bit >> 6, (bit & 63).astype(np.uint64)
        value = self.words[word] >> offset
        spill = offset.astype(np.int64) + self.width - 64
        if self.width > 1:  # width-1 fields can never straddle a word
            straddles = spill > 0
            if straddles.any():
                # Shift = width - spill = 64 - offset; offset > 0 wherever
                # a field straddles, so the &63 never truncates a live shift.
                high_shift = (np.uint64(64) - offset) & np.uint64(63)
                next_word = self.words[np.minimum(word + 1, len(self.words) - 1)]
                value = np.where(straddles, value | (next_word << high_shift), value)
        return value & np.uint64(self._mask)

    @property
    def size_in_bits(self) -> int:
        return self.n_fields * self.width

    def copy(self) -> "PackedArray":
        dup = PackedArray(self.n_fields, self.width)
        dup.words[:] = self.words
        return dup
