"""A simulated block device with I/O accounting.

Every application in :mod:`repro.apps` (LSM-tree, circular log, joins, the
dictionary harness used for adaptivity experiments) reads and writes through
a :class:`BlockDevice` so that experiments can report *device I/Os*, the
metric the tutorial's storage claims are stated in.

Telemetry: alongside the per-device :class:`IOStats`, every operation
increments process-wide counters in the default
:class:`~repro.obs.metrics.MetricsRegistry` (``repro_device_reads_total``,
``repro_device_writes_total``, ``repro_device_bytes_{read,written}_total``),
so device traffic shows up in ``python -m repro stats`` without any
plumbing.  Counter handles are rebound when the default registry is
swapped (tests scope registries with ``obs.use_registry()``).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any

from repro.obs.metrics import MetricsRegistry, default_registry


@dataclass
class IOStats:
    """Running counters of simulated device traffic.

    ``as_dict`` is the single source of truth for the field set;
    ``reset``/``snapshot``/``__add__``/``__sub__`` all derive from it, so
    a new counter field cannot be silently dropped by one of them.
    """

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    # Simulated seconds the device spent servicing operations — accrued by
    # the latency-injection layer (repro.common.faults.LatencyInjector);
    # stays 0.0 on a device with no latency model attached.
    busy_seconds: float = 0.0

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def reset(self) -> None:
        for name in self.as_dict():
            setattr(self, name, 0)

    def snapshot(self) -> "IOStats":
        return IOStats(**self.as_dict())

    def __sub__(self, other: "IOStats") -> "IOStats":
        theirs = other.as_dict()
        return IOStats(**{k: v - theirs[k] for k, v in self.as_dict().items()})

    def __add__(self, other: "IOStats") -> "IOStats":
        theirs = other.as_dict()
        return IOStats(**{k: v + theirs[k] for k, v in self.as_dict().items()})


class _DeviceMetrics:
    """Default-registry counter handles, rebound on registry swap."""

    __slots__ = ("registry", "reads", "writes", "bytes_read", "bytes_written")

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self.reads = registry.counter(
            "repro_device_reads_total", "block reads across all simulated devices"
        )
        self.writes = registry.counter(
            "repro_device_writes_total", "block writes across all simulated devices"
        )
        self.bytes_read = registry.counter(
            "repro_device_bytes_read_total", "simulated bytes read"
        )
        self.bytes_written = registry.counter(
            "repro_device_bytes_written_total", "simulated bytes written"
        )


@dataclass
class _Block:
    payload: Any
    size: int


class BlockDevice:
    """An addressable store of named blocks with read/write counters.

    Blocks hold arbitrary Python payloads; ``size`` is the *simulated* size
    in bytes (callers state how big the block would be on a real device).
    """

    def __init__(self):
        self._blocks: dict[Any, _Block] = {}
        self.stats = IOStats()
        self._obs: _DeviceMetrics | None = None

    def _metrics(self) -> _DeviceMetrics:
        registry = default_registry()
        if self._obs is None or self._obs.registry is not registry:
            self._obs = _DeviceMetrics(registry)
        return self._obs

    def write(self, address: Any, payload: Any, size: int | None = None) -> None:
        """Write *payload* at *address*; counts one device write."""
        if size is None:
            size = _default_size(payload)
        self._blocks[address] = _Block(payload, size)
        self._count_write(size)

    def _count_write(self, size: int) -> None:
        self.stats.writes += 1
        self.stats.bytes_written += size
        m = self._metrics()
        m.writes.inc()
        m.bytes_written.inc(size)

    def read(self, address: Any) -> Any:
        """Read the block at *address*; counts one device read."""
        block = self._blocks.get(address)
        if block is None:
            raise KeyError(f"no block at address {address!r}")
        self.stats.reads += 1
        self.stats.bytes_read += block.size
        m = self._metrics()
        m.reads.inc()
        m.bytes_read.inc(block.size)
        return block.payload

    def delete(self, address: Any, missing_ok: bool = True) -> None:
        """Drop a block (free space; no I/O charged).

        With ``missing_ok=False`` a delete of an absent block raises
        ``KeyError`` — recovery code uses this to detect double-frees and
        lost writes instead of silently masking them.
        """
        if self._blocks.pop(address, None) is None and not missing_ok:
            raise KeyError(f"delete of missing block at address {address!r}")

    def exists(self, address: Any) -> bool:
        """Metadata check; no I/O charged (directories are cached in RAM)."""
        return address in self._blocks

    def addresses(self) -> list[Any]:
        """All live block addresses; metadata, no I/O charged."""
        return list(self._blocks)

    def size_of(self, address: Any) -> int | None:
        """Declared simulated size of a block (``None`` when absent).

        Metadata only — no I/O is charged; the cache tier uses this to
        account cached payloads in the same simulated bytes the device
        itself charges.
        """
        block = self._blocks.get(address)
        return None if block is None else block.size

    def __len__(self) -> int:
        return len(self._blocks)

    @property
    def used_bytes(self) -> int:
        return sum(block.size for block in self._blocks.values())


def _default_size(payload: Any) -> int:
    """Simulated byte size when the caller does not specify one."""
    try:
        return max(1, len(payload))
    except TypeError:
        return 1


class NamespacedDevice:
    """A namespace-scoped view of a shared device (stack).

    Maps a tuple address ``(cls, *rest)`` to ``(cls, namespace, *rest)``
    on the wrapped device — the address *class stays first*, so per-class
    fault rates (:mod:`repro.common.faults`) and per-address circuit
    breakers (:mod:`repro.serve.breaker`) keep working unchanged, while
    many tenants (e.g. the shards of one sharded store) share a single
    faulty device, latency model, and breaker bank without address
    collisions.  Non-tuple addresses wrap as ``(address, namespace)``.

    Attribute access falls through to the wrapped device, so stack
    plumbing like ``.injector`` / ``.latency`` / ``.ruin`` remains
    reachable (``ruin`` and ``corrupted_addresses`` are translated).
    """

    def __init__(self, inner: Any, namespace: str):
        self.inner = inner
        self.namespace = namespace

    def _wrap(self, address: Any) -> Any:
        if isinstance(address, tuple) and address:
            return (address[0], self.namespace) + address[1:]
        return (address, self.namespace)

    def _owns(self, address: Any) -> bool:
        return (
            isinstance(address, tuple)
            and len(address) >= 2
            and address[1] == self.namespace
        )

    def _unwrap(self, address: Any) -> Any:
        rest = address[2:]
        return (address[0],) + rest if rest else address[0]

    def write(self, address: Any, payload: Any, size: int | None = None) -> None:
        self.inner.write(self._wrap(address), payload, size)

    def read(self, address: Any) -> Any:
        return self.inner.read(self._wrap(address))

    def delete(self, address: Any, missing_ok: bool = True) -> None:
        self.inner.delete(self._wrap(address), missing_ok)

    def exists(self, address: Any) -> bool:
        return self.inner.exists(self._wrap(address))

    def addresses(self) -> list[Any]:
        return [
            self._unwrap(a) for a in self.inner.addresses() if self._owns(a)
        ]

    def size_of(self, address: Any) -> int | None:
        return self.inner.size_of(self._wrap(address))

    def ruin(self, address: Any) -> None:
        self.inner.ruin(self._wrap(address))

    def corrupted_addresses(self) -> list[Any]:
        return [
            self._unwrap(a)
            for a in self.inner.corrupted_addresses()
            if self._owns(a)
        ]

    def __len__(self) -> int:
        return sum(1 for a in self.inner.addresses() if self._owns(a))

    @property
    def used_bytes(self) -> int:
        return sum(
            self.inner.size_of(a) or 0
            for a in self.inner.addresses()
            if self._owns(a)
        )

    @property
    def stats(self) -> IOStats:
        """Shared: all namespaces accrue to the one underlying device."""
        return self.inner.stats

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)
