"""A simulated block device with I/O accounting.

Every application in :mod:`repro.apps` (LSM-tree, circular log, joins, the
dictionary harness used for adaptivity experiments) reads and writes through
a :class:`BlockDevice` so that experiments can report *device I/Os*, the
metric the tutorial's storage claims are stated in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass
class IOStats:
    """Running counters of simulated device traffic."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0

    def snapshot(self) -> "IOStats":
        return IOStats(self.reads, self.writes, self.bytes_read, self.bytes_written)

    def __sub__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            self.reads - other.reads,
            self.writes - other.writes,
            self.bytes_read - other.bytes_read,
            self.bytes_written - other.bytes_written,
        )

    def __add__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            self.reads + other.reads,
            self.writes + other.writes,
            self.bytes_read + other.bytes_read,
            self.bytes_written + other.bytes_written,
        )


@dataclass
class _Block:
    payload: Any
    size: int


class BlockDevice:
    """An addressable store of named blocks with read/write counters.

    Blocks hold arbitrary Python payloads; ``size`` is the *simulated* size
    in bytes (callers state how big the block would be on a real device).
    """

    def __init__(self):
        self._blocks: dict[Any, _Block] = {}
        self.stats = IOStats()

    def write(self, address: Any, payload: Any, size: int | None = None) -> None:
        """Write *payload* at *address*; counts one device write."""
        if size is None:
            size = _default_size(payload)
        self._blocks[address] = _Block(payload, size)
        self.stats.writes += 1
        self.stats.bytes_written += size

    def read(self, address: Any) -> Any:
        """Read the block at *address*; counts one device read."""
        block = self._blocks.get(address)
        if block is None:
            raise KeyError(f"no block at address {address!r}")
        self.stats.reads += 1
        self.stats.bytes_read += block.size
        return block.payload

    def delete(self, address: Any, missing_ok: bool = True) -> None:
        """Drop a block (free space; no I/O charged).

        With ``missing_ok=False`` a delete of an absent block raises
        ``KeyError`` — recovery code uses this to detect double-frees and
        lost writes instead of silently masking them.
        """
        if self._blocks.pop(address, None) is None and not missing_ok:
            raise KeyError(f"delete of missing block at address {address!r}")

    def exists(self, address: Any) -> bool:
        """Metadata check; no I/O charged (directories are cached in RAM)."""
        return address in self._blocks

    def addresses(self) -> list[Any]:
        """All live block addresses; metadata, no I/O charged."""
        return list(self._blocks)

    def __len__(self) -> int:
        return len(self._blocks)

    @property
    def used_bytes(self) -> int:
        return sum(block.size for block in self._blocks.values())


def _default_size(payload: Any) -> int:
    """Simulated byte size when the caller does not specify one."""
    try:
        return max(1, len(payload))
    except TypeError:
        return 1
