"""Variable-length integer codes and their bit-cost accounting.

The counting quotient filter and the spectral Bloom filter owe their space
wins to variable-length counter encodings; the taffy/InfiniFilter family
owes its expandability to unary-padded variable-length fingerprints.  This
module provides the codes and, importantly for our logical space accounting,
exact bit costs.
"""

from __future__ import annotations


def unary_bits(value: int) -> int:
    """Bits to encode *value* >= 0 in unary (``value`` zeros + a one)."""
    if value < 0:
        raise ValueError("unary code is defined for non-negative integers")
    return value + 1


def elias_gamma_bits(value: int) -> int:
    """Bits to encode *value* >= 1 in Elias gamma."""
    if value < 1:
        raise ValueError("Elias gamma is defined for positive integers")
    n = value.bit_length()
    return 2 * n - 1


def elias_delta_bits(value: int) -> int:
    """Bits to encode *value* >= 1 in Elias delta."""
    if value < 1:
        raise ValueError("Elias delta is defined for positive integers")
    n = value.bit_length()
    return n - 1 + elias_gamma_bits(n)


def encode_gamma(value: int) -> str:
    """Elias gamma code of *value* as a bit string (testing aid)."""
    if value < 1:
        raise ValueError("Elias gamma is defined for positive integers")
    binary = bin(value)[2:]
    return "0" * (len(binary) - 1) + binary


def decode_gamma(bits: str) -> tuple[int, str]:
    """Decode one gamma codeword from *bits*; returns (value, rest)."""
    zeros = 0
    while zeros < len(bits) and bits[zeros] == "0":
        zeros += 1
    width = zeros + 1
    if zeros + width > len(bits):
        raise ValueError("truncated Elias gamma codeword")
    value = int(bits[zeros : zeros + width], 2)
    return value, bits[zeros + width :]


def cqf_counter_bits(count: int, remainder_bits: int) -> int:
    """Bits the counting quotient filter spends on a run of *count* copies.

    Mirrors the CQF encoding (Pandey et al. 2017): a single occurrence costs
    one remainder slot; ``count`` occurrences cost the remainder slot plus
    enough extra slots to hold a variable-length counter, i.e.
    ``ceil(bits(count-1) / remainder_bits)`` extra slots.  Asymptotically
    O(log count) — the property the paper's skew claims rest on.
    """
    if count < 1:
        raise ValueError("counter encodes at least one occurrence")
    if count == 1:
        return remainder_bits
    counter_value_bits = max(1, (count - 1).bit_length())
    extra_slots = -(-counter_value_bits // remainder_bits)
    return remainder_bits * (1 + extra_slots)
