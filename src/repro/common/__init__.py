"""Shared substrates: hashing, bit vectors, succinct codecs, simulated storage.

Every filter in :mod:`repro` builds on the primitives here.  They are kept
deliberately small and dependency-free (numpy only) so that the filter
implementations above them read like the pseudo-code in the papers they
reproduce.
"""

from repro.common.bitvector import BitVector, PackedArray
from repro.common.eliasfano import EliasFano
from repro.common.faults import (
    FaultInjector,
    FaultStats,
    FaultyBlockDevice,
    RetryPolicy,
    RetryStats,
    TransientIOError,
)
from repro.common.hashing import (
    fingerprint,
    hash_to_range,
    hash64,
    hash_pair,
    splitmix64,
)
from repro.common.rankselect import RankSelect
from repro.common.storage import BlockDevice, IOStats
from repro.common.varint import (
    elias_delta_bits,
    elias_gamma_bits,
    unary_bits,
)

__all__ = [
    "BitVector",
    "BlockDevice",
    "EliasFano",
    "FaultInjector",
    "FaultStats",
    "FaultyBlockDevice",
    "IOStats",
    "PackedArray",
    "RankSelect",
    "RetryPolicy",
    "RetryStats",
    "TransientIOError",
    "elias_delta_bits",
    "elias_gamma_bits",
    "fingerprint",
    "hash64",
    "hash_pair",
    "hash_to_range",
    "splitmix64",
    "unary_bits",
]
