"""Seeded 64-bit hashing primitives.

All filters in this library derive their randomness from the functions in
this module.  Hashing is deterministic given ``(key, seed)``, which makes
every experiment in ``benchmarks/`` reproducible.

Keys may be ``int``, ``str`` or ``bytes``.  Integers are mixed directly
(cheap, and the common case for synthetic workloads); strings and bytes are
folded with a 64-bit FNV-1a pass before mixing.
"""

from __future__ import annotations

MASK64 = (1 << 64) - 1

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3

# Golden-ratio increment used by splitmix64.
_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15


def splitmix64(x: int) -> int:
    """One round of the splitmix64 mixer (Steele et al.).

    A fast, high-quality 64-bit finalizer: every input bit affects every
    output bit.  Used both as an integer hash and as a seed sequencer.
    """
    x = (x + _SPLITMIX_GAMMA) & MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & MASK64
    return x ^ (x >> 31)


def _fold_bytes(data: bytes) -> int:
    """64-bit FNV-1a over a byte string."""
    h = _FNV_OFFSET
    for byte in data:
        h = ((h ^ byte) * _FNV_PRIME) & MASK64
    return h


def hash64(key: int | str | bytes, seed: int = 0) -> int:
    """Hash *key* to a uniform 64-bit integer under *seed*."""
    if isinstance(key, str):
        key = _fold_bytes(key.encode("utf-8"))
    elif isinstance(key, bytes):
        key = _fold_bytes(key)
    elif not isinstance(key, int):
        raise TypeError(f"unhashable filter key type: {type(key).__name__}")
    return splitmix64((key & MASK64) ^ splitmix64(seed & MASK64))


def hash_pair(key: int | str | bytes, seed: int = 0) -> tuple[int, int]:
    """Two independent 64-bit hashes of *key* (for double hashing)."""
    h = hash64(key, seed)
    return h, splitmix64(h)


def hash_to_range(key: int | str | bytes, n: int, seed: int = 0) -> int:
    """Hash *key* into ``[0, n)``.

    Uses the multiply-shift range reduction on the top bits, which avoids the
    modulo bias of ``h % n`` and matches what fast C implementations do.
    """
    return (hash64(key, seed) * n) >> 64


def fingerprint(key: int | str | bytes, bits: int, seed: int = 0) -> int:
    """Derive a *bits*-wide nonzero fingerprint of *key*.

    Fingerprint-based filters reserve the all-zero pattern to mean "empty
    slot", so the fingerprint is forced into ``[1, 2**bits)``.
    """
    if bits <= 0:
        raise ValueError("fingerprint width must be positive")
    fp = hash64(key, seed ^ 0xF1A9) & ((1 << bits) - 1)
    if fp == 0:
        fp = 1
    return fp


def derived_seeds(seed: int, count: int) -> list[int]:
    """A reproducible family of *count* seeds derived from *seed*."""
    seeds = []
    state = seed & MASK64
    for _ in range(count):
        state = splitmix64(state)
        seeds.append(state)
    return seeds
