"""Seeded 64-bit hashing primitives.

All filters in this library derive their randomness from the functions in
this module.  Hashing is deterministic given ``(key, seed)``, which makes
every experiment in ``benchmarks/`` reproducible.

Keys may be ``int``, ``str`` or ``bytes``.  Integers are mixed directly
(cheap, and the common case for synthetic workloads); strings and bytes are
folded with a 64-bit FNV-1a pass before mixing.

Batch kernels
-------------
Every scalar function here has a ``*_many`` twin operating on numpy
``uint64`` arrays, bit-for-bit identical to mapping the scalar over the
batch (the property tests in ``tests/test_batch.py`` enforce this).  The
batch entry point is :func:`as_key_array`, which folds a heterogeneous
key batch into the pre-mix ``uint64`` representation once, so the three
or more hash derivations a filter needs per probe all reuse it.
"""

from __future__ import annotations

import numpy as np

MASK64 = (1 << 64) - 1

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3

# Golden-ratio increment used by splitmix64.
_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15


def splitmix64(x: int) -> int:
    """One round of the splitmix64 mixer (Steele et al.).

    A fast, high-quality 64-bit finalizer: every input bit affects every
    output bit.  Used both as an integer hash and as a seed sequencer.
    """
    x = (x + _SPLITMIX_GAMMA) & MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & MASK64
    return x ^ (x >> 31)


def _fold_bytes(data: bytes) -> int:
    """64-bit FNV-1a over a byte string."""
    h = _FNV_OFFSET
    for byte in data:
        h = ((h ^ byte) * _FNV_PRIME) & MASK64
    return h


def hash64(key: int | str | bytes, seed: int = 0) -> int:
    """Hash *key* to a uniform 64-bit integer under *seed*."""
    if isinstance(key, str):
        key = _fold_bytes(key.encode("utf-8"))
    elif isinstance(key, bytes):
        key = _fold_bytes(key)
    elif not isinstance(key, int):
        raise TypeError(f"unhashable filter key type: {type(key).__name__}")
    return splitmix64((key & MASK64) ^ splitmix64(seed & MASK64))


def hash_pair(key: int | str | bytes, seed: int = 0) -> tuple[int, int]:
    """Two independent 64-bit hashes of *key* (for double hashing)."""
    h = hash64(key, seed)
    return h, splitmix64(h)


def hash_to_range(key: int | str | bytes, n: int, seed: int = 0) -> int:
    """Hash *key* into ``[0, n)``.

    Uses the multiply-shift range reduction on the top bits, which avoids the
    modulo bias of ``h % n`` and matches what fast C implementations do.
    """
    return (hash64(key, seed) * n) >> 64


def fingerprint(key: int | str | bytes, bits: int, seed: int = 0) -> int:
    """Derive a *bits*-wide nonzero fingerprint of *key*.

    Fingerprint-based filters reserve the all-zero pattern to mean "empty
    slot", so the fingerprint is forced into ``[1, 2**bits)``.
    """
    if bits <= 0:
        raise ValueError("fingerprint width must be positive")
    fp = hash64(key, seed ^ 0xF1A9) & ((1 << bits) - 1)
    if fp == 0:
        fp = 1
    return fp


# -- batch (vectorised) kernels -------------------------------------------------
#
# numpy uint64 arithmetic wraps modulo 2^64, which is exactly the `& MASK64`
# discipline of the scalar code above, so each kernel is the scalar formula
# transcribed onto arrays.

_NP_GAMMA = np.uint64(_SPLITMIX_GAMMA)
_NP_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_NP_MIX2 = np.uint64(0x94D049BB133111EB)
_S30, _S27, _S31, _S32 = (np.uint64(s) for s in (30, 27, 31, 32))
_LOW32 = np.uint64(0xFFFFFFFF)


def splitmix64_many(x: np.ndarray) -> np.ndarray:
    """Vectorised :func:`splitmix64` over a ``uint64`` array."""
    x = np.asarray(x, dtype=np.uint64)
    x = x + _NP_GAMMA
    x = (x ^ (x >> _S30)) * _NP_MIX1
    x = (x ^ (x >> _S27)) * _NP_MIX2
    return x ^ (x >> _S31)


def as_key_array(keys) -> np.ndarray:
    """Fold a key batch into the pre-mix ``uint64`` representation.

    Integer keys become ``key & MASK64``; str/bytes keys are FNV-1a folded
    exactly as :func:`hash64` does, so ``splitmix64_many(arr ^
    splitmix64(seed))`` over the result equals ``hash64(key, seed)``
    element-wise.  Accepts lists, tuples, and numpy integer arrays.
    """
    if isinstance(keys, np.ndarray) and keys.dtype.kind in "iu":
        return keys.astype(np.uint64, copy=False)
    folded = [
        _fold_bytes(k.encode("utf-8")) if isinstance(k, str)
        else _fold_bytes(k) if isinstance(k, (bytes, bytearray))
        else (int(k) & MASK64) if isinstance(k, (int, np.integer))
        else _reject_key(k)
        for k in keys
    ]
    return np.asarray(folded, dtype=np.uint64)


def _reject_key(key) -> int:
    raise TypeError(f"unhashable filter key type: {type(key).__name__}")


def hash64_many(keys, seed: int = 0) -> np.ndarray:
    """Vectorised :func:`hash64`: one uniform 64-bit hash per key."""
    arr = as_key_array(keys)
    return splitmix64_many(arr ^ np.uint64(splitmix64(seed & MASK64)))


def hash_pair_many(keys, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`hash_pair`."""
    h = hash64_many(keys, seed)
    return h, splitmix64_many(h)


def mulhi64(h: np.ndarray, n: int) -> np.ndarray:
    """High 64 bits of ``h * n`` for ``n < 2**32`` via 32-bit limbs.

    numpy has no 128-bit product, so split ``h = a·2^32 + b``:
    ``(h·n) >> 64 == (a·n + ((b·n) >> 32)) >> 32``, every term < 2^64.
    """
    if n >= 1 << 32:
        raise ValueError("mulhi64 supports ranges below 2**32")
    nn = np.uint64(n)
    a, b = h >> _S32, h & _LOW32
    return (a * nn + ((b * nn) >> _S32)) >> _S32


def hash_to_range_many(keys, n: int, seed: int = 0) -> np.ndarray:
    """Vectorised :func:`hash_to_range`: hash each key into ``[0, n)``."""
    return mulhi64(hash64_many(keys, seed), n)


def fingerprint_many(keys, bits: int, seed: int = 0) -> np.ndarray:
    """Vectorised :func:`fingerprint`: nonzero *bits*-wide fingerprints."""
    if bits <= 0:
        raise ValueError("fingerprint width must be positive")
    fp = hash64_many(keys, seed ^ 0xF1A9) & np.uint64((1 << bits) - 1)
    return np.where(fp == 0, np.uint64(1), fp)


def derived_seeds(seed: int, count: int) -> list[int]:
    """A reproducible family of *count* seeds derived from *seed*."""
    seeds = []
    state = seed & MASK64
    for _ in range(count):
        state = splitmix64(state)
        seeds.append(state)
    return seeds
