"""Elias–Fano encoding of a monotone integer sequence.

Stores *n* sorted values from a universe ``[0, u)`` in roughly
``n * (2 + ceil(log2(u / n)))`` bits while supporting O(1) random ``access``
and O(log n)-ish ``next_geq`` (successor) queries.  Grafite and SNARF both
sit on this codec.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.common.bitvector import BitVector
from repro.common.rankselect import RankSelect


class EliasFano:
    """Immutable Elias–Fano sequence over sorted non-negative integers."""

    def __init__(self, values: Iterable[int], universe: int | None = None):
        vals = np.asarray(list(values), dtype=np.int64)
        if vals.size and (np.diff(vals) < 0).any():
            raise ValueError("Elias–Fano input must be sorted non-decreasing")
        if vals.size and vals[0] < 0:
            raise ValueError("Elias–Fano input must be non-negative")
        self._n = int(vals.size)
        if universe is None:
            universe = int(vals[-1]) + 1 if self._n else 1
        if self._n and universe <= int(vals[-1]):
            raise ValueError("universe too small for the largest value")
        self._universe = max(1, universe)

        # Low-bit width: log2(u/n) rounded down (the classic choice).
        if self._n == 0:
            self._low_bits = 0
        else:
            ratio = max(1, self._universe // self._n)
            self._low_bits = max(0, ratio.bit_length() - 1)

        low_mask = (1 << self._low_bits) - 1
        self._lows = (vals & low_mask).astype(np.uint64)
        highs = (vals >> self._low_bits).astype(np.int64)

        # Upper bits in negated-unary: bit (highs[i] + i) set for each i.
        n_high_bits = self._n + (int(highs[-1]) + 1 if self._n else 0)
        self._high = BitVector(max(1, n_high_bits))
        if self._n:
            self._high.set_many(highs + np.arange(self._n, dtype=np.int64))
        self._high_rs = RankSelect(self._high)

    def __len__(self) -> int:
        return self._n

    @property
    def universe(self) -> int:
        return self._universe

    def access(self, i: int) -> int:
        """The i-th (0-indexed) value."""
        if not 0 <= i < self._n:
            raise IndexError(f"index {i} out of range [0, {self._n})")
        high = self._high_rs.select(i) - i
        return (high << self._low_bits) | int(self._lows[i])

    __getitem__ = access

    def next_geq(self, x: int) -> int | None:
        """Smallest stored value >= x, or None if every value is < x."""
        if self._n == 0:
            return None
        # Binary search on access(); n is small enough in our workloads that
        # the log-factor costs nothing and the code stays obviously correct.
        lo, hi = 0, self._n
        while lo < hi:
            mid = (lo + hi) // 2
            if self.access(mid) < x:
                lo = mid + 1
            else:
                hi = mid
        return self.access(lo) if lo < self._n else None

    def contains_in_range(self, lo: int, hi: int) -> bool:
        """True iff some stored value lies in the inclusive range [lo, hi]."""
        if lo > hi:
            raise ValueError("empty range: lo > hi")
        successor = self.next_geq(lo)
        return successor is not None and successor <= hi

    def __contains__(self, x: int) -> bool:
        successor = self.next_geq(x)
        return successor == x

    @property
    def size_in_bits(self) -> int:
        """Logical encoded size: low bits + upper-bit vector."""
        return self._n * self._low_bits + self._high.n_bits

    def to_list(self) -> list[int]:
        return [self.access(i) for i in range(self._n)]


def elias_fano_bits(n: int, universe: int) -> int:
    """Closed-form size estimate for an EF sequence (bits)."""
    if n == 0:
        return 1
    ratio = max(1, universe // n)
    low = max(0, ratio.bit_length() - 1)
    return n * low + n + (universe >> low) + 1
