"""Simulated time, request deadlines, and deadline-aware lookup results.

The serving layer (:mod:`repro.serve`, docs/robustness.md) executes
filter and LSM lookups under an *explicit simulated clock*: device
latency, retry backoff, and queueing all advance the same
:class:`SimulatedClock`, so chaos experiments measure latency in
reproducible simulated seconds with no wall-clock sleeps — the same
accounting-not-sleeping stance :class:`~repro.common.faults.RetryPolicy`
already takes.

A :class:`Deadline` is an absolute expiry on such a clock.  Read paths
that accept one (``LSMTree.get/multi_get/lookup``,
``FilteredDictionary.get/lookup``) abandon remaining work when the
budget expires.  Because filters are one-sided (no false negatives), a
partial lookup can always degrade to the *always-maybe* answer safely:
:data:`Answer.MAYBE` never breaks the filter contract, it only costs the
caller the read the filter would have saved.  That is the degradation
posture the whole serving layer is built on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class SimulatedClock:
    """A monotonically advancing clock measured in simulated seconds."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by *dt* seconds; returns the new time."""
        if dt < 0:
            raise ValueError("the simulated clock cannot run backwards")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Move forward to time *t* (no-op if *t* is already in the past)."""
        if t > self._now:
            self._now = t
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimulatedClock(t={self._now:.6f})"


class DeadlineExceeded(TimeoutError):
    """A lookup's time budget expired before the scan completed.

    ``partial`` carries whatever results were computed before expiry
    (``multi_get`` attaches the per-key results so far); callers that
    degrade rather than fail — the serving layer — translate this into
    a conservative :data:`Answer.MAYBE`.
    """

    def __init__(self, message: str, partial: Any = None):
        super().__init__(message)
        self.partial = partial


@dataclass(frozen=True)
class Deadline:
    """An absolute expiry time on a :class:`SimulatedClock`."""

    clock: SimulatedClock
    expires_at: float

    @classmethod
    def after(cls, clock: SimulatedClock, budget: float) -> "Deadline":
        """The deadline *budget* seconds from the clock's current time."""
        if budget < 0:
            raise ValueError("deadline budget must be non-negative")
        return cls(clock, clock.now() + budget)

    def remaining(self) -> float:
        return self.expires_at - self.clock.now()

    def expired(self) -> bool:
        return self.clock.now() >= self.expires_at


class Answer(enum.Enum):
    """Tri-state lookup answer under the one-sided-error contract.

    ``PRESENT``/``ABSENT`` are authoritative.  ``MAYBE`` is the safe
    degraded answer: the scan could not rule the key out (deadline
    expired, a run was unreachable), so the caller must treat the key as
    possibly present — exactly what a filter positive already means.
    """

    PRESENT = "present"
    ABSENT = "absent"
    MAYBE = "maybe"


@dataclass
class LookupResult:
    """Outcome of one deadline-aware lookup.

    ``complete`` is True only when every relevant run/record was
    consulted in time; only then can ``state`` be authoritative.
    ``value`` is best-effort: populated on a hit even when a newer run
    was skipped (``state`` stays :data:`Answer.MAYBE` in that case,
    because the skipped run could hold a newer version or a tombstone).
    ``reason`` explains incompleteness: ``"deadline"`` or
    ``"unavailable"``.
    """

    state: Answer
    value: Any = None
    complete: bool = True
    reason: str | None = None
    runs_probed: int = 0
    runs_skipped: int = 0

    @property
    def found(self) -> bool:
        return self.state is Answer.PRESENT
