"""Rank/select directory over a :class:`~repro.common.bitvector.BitVector`.

``rank(i)`` counts set bits in ``[0, i)`` in O(1) using per-word prefix
counts; ``select(k)`` finds the position of the k-th set bit (0-indexed) by
binary search over the directory.  This is the standard building block for
succinct structures (LOUDS tries, Elias–Fano, XOR+ compression).
"""

from __future__ import annotations

import numpy as np

from repro.common.bitvector import BitVector, popcount64


class RankSelect:
    """Static rank/select support built over a snapshot of *bits*.

    The directory must be rebuilt (`RankSelect(bits)`) if the underlying
    vector is mutated afterwards.
    """

    def __init__(self, bits: BitVector):
        self._bits = bits
        popcounts = _word_popcounts(bits.words)
        # _prefix[w] = number of set bits strictly before word w.
        self._prefix = np.zeros(len(bits.words) + 1, dtype=np.int64)
        np.cumsum(popcounts, out=self._prefix[1:])
        self._total = int(self._prefix[-1])

    @property
    def total(self) -> int:
        """Total number of set bits."""
        return self._total

    def rank(self, i: int) -> int:
        """Number of set bits in positions ``[0, i)``."""
        if not 0 <= i <= self._bits.n_bits:
            raise IndexError(f"rank position {i} out of range")
        word, offset = i >> 6, i & 63
        partial = 0
        if offset:
            mask = (1 << offset) - 1
            partial = (int(self._bits.words[word]) & mask).bit_count()
        return int(self._prefix[word]) + partial

    def rank_many(self, positions: np.ndarray | list[int]) -> np.ndarray:
        """Vectorised :meth:`rank` over an array of positions."""
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size and (pos.min() < 0 or pos.max() > self._bits.n_bits):
            raise IndexError("rank position out of range")
        word, offset = pos >> 6, (pos & 63).astype(np.uint64)
        if not len(self._bits.words):
            return np.zeros_like(pos)
        # Guard the last partial-word gather for pos == n_bits exactly.
        safe_word = np.minimum(word, len(self._bits.words) - 1)
        mask = (np.uint64(1) << offset) - np.uint64(1)
        partial = popcount64(self._bits.words[safe_word] & mask)
        return self._prefix[word] + np.where(offset > 0, partial, 0)

    def select(self, k: int) -> int:
        """Position of the k-th (0-indexed) set bit."""
        if not 0 <= k < self._total:
            raise IndexError(f"select rank {k} out of range [0, {self._total})")
        # Find the word containing the (k+1)-th set bit.
        word = int(np.searchsorted(self._prefix, k + 1, side="left")) - 1
        remaining = k - int(self._prefix[word])
        bits = int(self._bits.words[word])
        for offset in range(64):
            if (bits >> offset) & 1:
                if remaining == 0:
                    return (word << 6) + offset
                remaining -= 1
        raise AssertionError("select directory out of sync with bit vector")

    @property
    def size_in_bits(self) -> int:
        """Directory overhead (excludes the bit vector itself)."""
        return self._prefix.size * 64


def _word_popcounts(words: np.ndarray) -> np.ndarray:
    """Per-word popcount for a uint64 array."""
    as_bytes = words.view(np.uint8).reshape(-1, 8)
    return np.unpackbits(as_bytes, axis=1).sum(axis=1).astype(np.int64)
