"""Deterministic fault injection for the simulated storage stack.

Filters guard *persistent* data (§3.1), and persistent data fails in
characteristic ways: bits flip at rest, writes tear or get lost in a
crash, reads fail transiently.  bup ships ``bup bloom --ruin`` purely so
its corruption-recovery path can be exercised; this module is the same
idea as a library, so every layer above the device (codec framing,
LSM recovery, scrubbing) can be driven through seeded fault schedules.

* :class:`FaultInjector` — a seeded policy object deciding, per device
  operation, whether to inject a fault.  Probabilities are configurable
  per *address class* (the first element of a tuple address, e.g.
  ``"filter"`` for ``("filter", 7)``), so a test can corrupt filter blobs
  while leaving the write-ahead log alone.
* :class:`FaultyBlockDevice` — wraps a :class:`BlockDevice` and applies
  the injector's decisions: bit-flip corruption and torn (truncated)
  writes on ``bytes`` payloads, lost writes, and transient read errors
  (:class:`TransientIOError`).  It remembers which live addresses it has
  corrupted, giving tests ground truth to check a scrubber against.
* :class:`RetryPolicy` — bounded retries with deterministic exponential
  backoff *accounting* (simulated seconds; nothing sleeps), so callers
  can express "retry transient faults N times, then degrade".  Optional
  seeded *decorrelated jitter* desynchronises concurrent retriers so
  they cannot thundering-herd a recovering device.
* :class:`LatencyInjector` — a seeded service-time model (baseline
  latency, random spikes, slow-disk plateaus, a mutable phase slowdown)
  that advances a :class:`~repro.common.clock.SimulatedClock` on every
  device operation, so chaos schedules can create *overload*, not just
  corruption (docs/robustness.md, serving-layer failure model).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.storage import BlockDevice, IOStats, _default_size
from repro.obs.metrics import default_registry
from repro.obs.tracing import trace


class TransientIOError(OSError):
    """A read that failed now but may succeed if retried."""


class CircuitOpenError(OSError):
    """A read refused fast by an open circuit breaker (:mod:`repro.serve`).

    Deliberately *not* a :class:`TransientIOError`: an open breaker means
    retrying now is pointless, so :class:`RetryPolicy` propagates it
    immediately instead of piling retries onto a struggling device.
    """


class SimulatedCrash(RuntimeError):
    """A simulated process death, raised by :meth:`FaultInjector.maybe_crash`.

    Deliberately not an :class:`OSError`: no retry or degradation layer
    may swallow it — it must unwind the whole "process" so a chaos
    harness can discard all in-memory state and exercise recovery from
    durable storage alone.  ``step`` names the crash point that fired.
    """

    def __init__(self, step: str):
        super().__init__(f"simulated crash at {step!r}")
        self.step = step


# -- fault policy -----------------------------------------------------------------

def address_class(address: Any) -> Any:
    """The address-class key used to look up per-class fault rates."""
    if isinstance(address, tuple) and address:
        return address[0]
    return address


def address_scope(address: Any) -> str | None:
    """The scoped ``"class@namespace"`` rate key for a namespaced address.

    :class:`~repro.common.storage.NamespacedDevice` rewrites ``(cls, *rest)``
    to ``(cls, namespace, *rest)``, so the namespace — a replica id like
    ``"r2"`` — is the second tuple element.  A rate dict may target one
    replica's devices (``{"run@r2": 0.5, "*": 0.0}``) without touching its
    peers; the scoped key wins over the bare class.
    """
    if isinstance(address, tuple) and len(address) >= 2 and isinstance(address[1], str):
        return f"{address[0]}@{address[1]}"
    return None


@dataclass
class FaultStats:
    """Counts of faults actually injected."""

    bit_flips: int = 0
    torn_writes: int = 0
    lost_writes: int = 0
    transient_reads: int = 0

    @property
    def total(self) -> int:
        return self.bit_flips + self.torn_writes + self.lost_writes + self.transient_reads


def _count_fault(kind: str) -> None:
    """Mirror one injected fault into the default metrics registry."""
    default_registry().counter(
        "repro_device_faults_total",
        "faults injected by FaultyBlockDevice, by kind",
        labels=("kind",),
    ).labels(kind=kind).inc()


class FaultInjector:
    """Seeded, deterministic fault schedule.

    Each probability may be a single float (applies to every address) or a
    dict mapping address classes to floats, with ``"*"`` as the default
    for unlisted classes.  The same seed over the same operation sequence
    injects the same faults — chaos tests are reproducible.
    """

    def __init__(
        self,
        seed: int = 0,
        bit_flip: float | dict = 0.0,
        torn_write: float | dict = 0.0,
        lost_write: float | dict = 0.0,
        transient_read: float | dict = 0.0,
    ):
        self.seed = seed
        self.bit_flip = bit_flip
        self.torn_write = torn_write
        self.lost_write = lost_write
        self.transient_read = transient_read
        self.stats = FaultStats()
        self._rng = random.Random(seed)
        self._crash_at: str | None = None
        self._fired_crashes: set[str] = set()
        self.crashes = 0

    def _rate(self, spec: float | dict, address: Any) -> float:
        if isinstance(spec, dict):
            scope = address_scope(address)
            if scope is not None and scope in spec:
                return spec[scope]
            return spec.get(address_class(address), spec.get("*", 0.0))
        return spec

    def draw_write(self, address: Any) -> str | None:
        """Fault decision for one write: ``"flip" | "torn" | "lost" | None``."""
        roll = self._rng.random()
        threshold = 0.0
        for name, spec in (
            ("flip", self.bit_flip),
            ("torn", self.torn_write),
            ("lost", self.lost_write),
        ):
            threshold += self._rate(spec, address)
            if roll < threshold:
                return name
        return None

    def draw_read(self, address: Any) -> bool:
        """Whether this read fails transiently."""
        return self._rng.random() < self._rate(self.transient_read, address)

    def flip_payload(self, payload: bytes) -> bytes:
        """Flip one uniformly random bit of *payload*."""
        bit = self._rng.randrange(len(payload) * 8)
        corrupted = bytearray(payload)
        corrupted[bit // 8] ^= 1 << (bit % 8)
        return bytes(corrupted)

    def tear_payload(self, payload: bytes) -> bytes:
        """Keep only a random proper prefix of *payload* (a torn write)."""
        cut = self._rng.randrange(len(payload))
        return payload[:cut]

    # -- crash points ---------------------------------------------------------------

    def crash_after(self, step_name: str, *, rearm: bool = False) -> None:
        """Arm a one-shot crash at the named step.

        The next :meth:`maybe_crash` call whose ``step_name`` matches
        raises :class:`SimulatedCrash` and *disarms* the trigger, so a
        recovered "process" that replays the same step does not die again
        — chaos tests kill each migration step exactly once and then
        watch recovery converge.

        A step that has already fired stays disarmed even if the arming
        code runs again (recovery paths re-execute setup code verbatim,
        including its ``crash_after`` calls); pass ``rearm=True`` to
        deliberately kill the same step a second time.
        """
        if rearm:
            self._fired_crashes.discard(step_name)
        elif step_name in self._fired_crashes:
            return
        self._crash_at = step_name

    @property
    def armed_crash(self) -> str | None:
        """The step the next matching :meth:`maybe_crash` will die at."""
        return self._crash_at

    def maybe_crash(self, step_name: str) -> None:
        """Crash point: dies iff armed for exactly this *step_name*."""
        if self._crash_at is not None and self._crash_at == step_name:
            self._crash_at = None
            self._fired_crashes.add(step_name)
            self.crashes += 1
            _count_fault("crash")
            raise SimulatedCrash(step_name)


# -- latency injection -------------------------------------------------------------

@dataclass
class LatencyStats:
    """Counts and totals of simulated service time actually injected."""

    operations: int = 0
    spikes: int = 0
    plateau_draws: int = 0
    total_seconds: float = 0.0


class LatencyInjector:
    """Seeded service-time model for a simulated device.

    Each operation draws ``base`` seconds with ±``jitter`` relative
    noise, then applies, in order:

    * **plateaus** — ``(start, end, multiplier)`` windows in simulated
      time (a slow-disk episode: every operation in the window is
      uniformly slower);
    * **slowdown** — a mutable phase multiplier, so a storm driver can
      degrade the device between phases without pre-computing absolute
      times;
    * **spikes** — with probability ``spike_prob`` a single operation
      takes ``spike_scale``× longer (GC pause, read retry inside the
      device, a stray slow sector).

    The same seed over the same operation sequence draws the same
    latencies — overload chaos is as reproducible as corruption chaos.
    """

    def __init__(
        self,
        seed: int = 0,
        base: float = 0.001,
        jitter: float = 0.25,
        spike_prob: float = 0.0,
        spike_scale: float = 25.0,
        plateaus: tuple[tuple[float, float, float], ...] = (),
    ):
        if base < 0 or not 0 <= jitter <= 1:
            raise ValueError("need base >= 0 and jitter in [0, 1]")
        self.seed = seed
        self.base = base
        self.jitter = jitter
        self.spike_prob = spike_prob
        self.spike_scale = spike_scale
        self.plateaus = tuple(plateaus)
        self.slowdown = 1.0  # mutable phase multiplier (storm drivers)
        self.stats = LatencyStats()
        self._rng = random.Random(seed ^ 0x1A7E4C)

    def draw(self, now: float, kind: str = "read", address: Any = None) -> float:
        """Service time in simulated seconds for one operation at *now*."""
        latency = self.base * (1.0 + self.jitter * (2.0 * self._rng.random() - 1.0))
        for start, end, multiplier in self.plateaus:
            if start <= now < end:
                latency *= multiplier
                self.stats.plateau_draws += 1
                break
        latency *= self.slowdown
        if self.spike_prob and self._rng.random() < self.spike_prob:
            latency *= self.spike_scale
            self.stats.spikes += 1
            default_registry().counter(
                "repro_device_latency_spikes_total",
                "latency spikes injected by LatencyInjector",
            ).inc()
        self.stats.operations += 1
        self.stats.total_seconds += latency
        return latency


# -- faulty device ----------------------------------------------------------------

class FaultyBlockDevice:
    """A :class:`BlockDevice` wrapper that injects the injector's faults.

    Bit flips and torn writes only apply to ``bytes`` payloads (they model
    media corruption of raw blobs); structured payloads can still suffer
    lost writes and transient reads.  I/O is charged for lost writes too —
    the device acknowledged the request; the data just never landed.

    When a :class:`LatencyInjector` and a
    :class:`~repro.common.clock.SimulatedClock` are attached, every
    operation — including a read that then fails transiently; the failed
    I/O still took time — advances the clock by its drawn service time
    and accrues it in ``stats.busy_seconds``.
    """

    def __init__(
        self,
        device: BlockDevice | None = None,
        injector: FaultInjector | None = None,
        latency: LatencyInjector | None = None,
        clock: Any = None,
    ):
        self.inner = device if device is not None else BlockDevice()
        self.injector = injector if injector is not None else FaultInjector()
        self.latency = latency
        self.clock = clock
        self.fault_log: list[tuple[str, Any]] = []
        self._corrupt: set[Any] = set()

    def _spend(self, kind: str, address: Any) -> None:
        if self.latency is None or self.clock is None:
            return
        dt = self.latency.draw(self.clock.now(), kind, address)
        self.clock.advance(dt)
        self.inner.stats.busy_seconds += dt

    @property
    def stats(self) -> IOStats:
        return self.inner.stats

    @property
    def fault_stats(self) -> FaultStats:
        return self.injector.stats

    def corrupted_addresses(self) -> frozenset:
        """Live addresses whose stored payload the device has corrupted —
        ground truth for checking a scrubber's findings."""
        return frozenset(self._corrupt)

    def write(self, address: Any, payload: Any, size: int | None = None) -> None:
        if size is None:
            size = _default_size(payload)
        self._spend("write", address)
        action = self.injector.draw_write(address)
        is_blob = isinstance(payload, (bytes, bytearray)) and len(payload) > 0
        if action == "lost":
            self.injector.stats.lost_writes += 1
            self.fault_log.append(("lost", address))
            _count_fault("lost_write")
            # Charge the I/O without storing: the old block (if any) survives.
            self.inner._count_write(size)
            return
        if action == "flip" and is_blob:
            payload = self.injector.flip_payload(bytes(payload))
            self.injector.stats.bit_flips += 1
            self.fault_log.append(("flip", address))
            _count_fault("bit_flip")
            self.inner.write(address, payload, size=size)
            self._corrupt.add(address)
            return
        if action == "torn" and is_blob:
            payload = self.injector.tear_payload(bytes(payload))
            self.injector.stats.torn_writes += 1
            self.fault_log.append(("torn", address))
            _count_fault("torn_write")
            self.inner.write(address, payload, size=size)
            self._corrupt.add(address)
            return
        self.inner.write(address, payload, size=size)
        self._corrupt.discard(address)

    def read(self, address: Any) -> Any:
        self._spend("read", address)
        if self.injector.draw_read(address):
            self.injector.stats.transient_reads += 1
            self.fault_log.append(("transient", address))
            _count_fault("transient_read")
            raise TransientIOError(f"transient read failure at address {address!r}")
        return self.inner.read(address)

    def ruin(self, address: Any) -> None:
        """Flip one bit of the blob stored at *address*, out of band (no
        I/O charged) — bup's ``bloom --ruin``, for driving scrub/recovery
        paths deterministically in tests."""
        block = self.inner._blocks[address]
        if not isinstance(block.payload, (bytes, bytearray)) or not block.payload:
            raise TypeError(f"cannot ruin non-blob payload at {address!r}")
        block.payload = self.injector.flip_payload(bytes(block.payload))
        self.injector.stats.bit_flips += 1
        self.fault_log.append(("ruin", address))
        _count_fault("bit_flip")
        self._corrupt.add(address)

    def delete(self, address: Any, missing_ok: bool = True) -> None:
        self.inner.delete(address, missing_ok=missing_ok)
        self._corrupt.discard(address)

    def exists(self, address: Any) -> bool:
        return self.inner.exists(address)

    def addresses(self) -> list[Any]:
        return self.inner.addresses()

    def size_of(self, address: Any) -> int | None:
        return self.inner.size_of(address)

    def __len__(self) -> int:
        return len(self.inner)

    @property
    def used_bytes(self) -> int:
        return self.inner.used_bytes


# -- retries ----------------------------------------------------------------------

@dataclass
class RetryStats:
    attempts: int = 0
    retries: int = 0
    giveups: int = 0
    backoff_seconds: float = 0.0


@dataclass
class RetryPolicy:
    """Bounded retry with deterministic backoff accounting.

    ``call(fn, *args)`` invokes *fn*, retrying on
    :class:`TransientIOError` up to ``max_attempts`` total attempts.
    Backoff is *accounted*, not slept: ``stats.backoff_seconds``
    accumulates each delay so experiments can report time-to-recover
    without wall-clock sleeps (when a simulated ``clock`` is attached the
    delay also advances it, so backoff burns real deadline budget).
    After the last attempt the error propagates — the caller decides how
    to degrade.

    ``jitter`` selects the schedule:

    * ``"none"`` — pure exponential ``base_backoff * multiplier**i``.
      Deterministic, but every concurrent retrier computes the *same*
      schedule, so a shared fault synchronises them into a thundering
      herd that re-arrives in lockstep.
    * ``"decorrelated"`` — seeded decorrelated jitter (AWS-style):
      ``sleep_i = min(max_backoff, uniform(base, 3 * sleep_{i-1}))``.
      Retriers with different seeds spread out; the same seed replays
      the same schedule exactly, so chaos tests stay reproducible.
    """

    max_attempts: int = 3
    base_backoff: float = 0.001
    multiplier: float = 2.0
    jitter: str = "none"  # "none" | "decorrelated"
    max_backoff: float = 1.0
    seed: int = 0
    clock: Any = None
    stats: RetryStats = field(default_factory=RetryStats)

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.jitter not in ("none", "decorrelated"):
            raise ValueError(f"unknown jitter mode {self.jitter!r}")
        self._rng = random.Random(self.seed ^ 0xB0FF)
        self._prev_backoff = self.base_backoff

    def next_backoff(self, attempt: int) -> float:
        """The delay charged after failed attempt *attempt* (0-based)."""
        if self.jitter == "none":
            return self.base_backoff * self.multiplier**attempt
        self._prev_backoff = min(
            self.max_backoff,
            self._rng.uniform(self.base_backoff, 3.0 * self._prev_backoff),
        )
        return self._prev_backoff

    def call(self, fn: Callable, *args, **kwargs):
        registry = default_registry()
        attempts = registry.counter(
            "repro_retry_attempts_total", "retry-policy call attempts, by outcome",
            labels=("outcome",),
        )
        for attempt in range(self.max_attempts):
            self.stats.attempts += 1
            try:
                with trace("retry.attempt", attempt=attempt):
                    result = fn(*args, **kwargs)
                attempts.labels(outcome="ok").inc()
                return result
            except TransientIOError:
                if attempt + 1 == self.max_attempts:
                    self.stats.giveups += 1
                    attempts.labels(outcome="giveup").inc()
                    raise
                self.stats.retries += 1
                attempts.labels(outcome="retry").inc()
                backoff = self.next_backoff(attempt)
                self.stats.backoff_seconds += backoff
                if self.clock is not None:
                    self.clock.advance(backoff)
                registry.histogram(
                    "repro_retry_backoff_seconds",
                    "simulated exponential-backoff delay per retry",
                ).observe(backoff)
        raise AssertionError("unreachable")  # pragma: no cover
