"""Result caches: memoized negative verdicts that can never go stale.

Two caches with one shared design rule — *the version token is chosen so
that a stale ABSENT is structurally impossible*, not merely unlikely:

* :class:`FilterResultCache` memoizes per-run **negative filter
  verdicts** keyed by ``(run_id, key)``.  LSM runs are immutable and run
  ids are never reused (:class:`~repro.apps.lsm.LSMTree` allocates them
  from a monotone counter that persists across recovery), so a memoized
  "run R's filter said no for key K" is true forever; retiring a run
  merely garbage-collects its entries.  Invalidation is versioned by run
  id, not by key — flush and compaction create *new* run ids rather than
  mutating old ones, so there is nothing to race with.
* :class:`NegativeLookupCache` memoizes **authoritative ABSENT answers**
  (complete, in-budget, zero-skip lookups) versioned by the backend's
  ``mutation_epoch``.  Any mutation (put/delete/flush/compaction/
  recovery) bumps the epoch, and an entry recorded under an older epoch
  is dead on arrival.  Degraded or timed-out MAYBE answers never
  populate it — MAYBE is not an answer, and caching it would freeze a
  transient fault into a persistent wrong verdict (docs/robustness.md).

Both are bounded (entry-count LRU) and metered through :mod:`repro.obs`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable

from repro.obs.metrics import MetricsRegistry, default_registry


class _ResultMetrics:
    """Default-registry handles, rebound when the registry is swapped."""

    __slots__ = ("registry", "memo_hits", "memo_misses", "neg_hits",
                 "neg_misses", "neg_flushes")

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        memo = registry.counter(
            "repro_cache_filter_memo_total",
            "per-run negative-verdict memo lookups, by result",
            labels=("result",),
        )
        self.memo_hits = memo.labels(result="hit")
        self.memo_misses = memo.labels(result="miss")
        neg = registry.counter(
            "repro_cache_negative_lookups_total",
            "negative-lookup cache consults, by result",
            labels=("result",),
        )
        self.neg_hits = neg.labels(result="hit")
        self.neg_misses = neg.labels(result="miss")
        self.neg_flushes = registry.counter(
            "repro_cache_negative_epoch_flushes_total",
            "negative-lookup cache wipes triggered by a mutation-epoch bump",
        )


def _result_metrics(holder) -> _ResultMetrics:
    registry = default_registry()
    if holder._obs is None or holder._obs.registry is not registry:
        holder._obs = _ResultMetrics(registry)
    return holder._obs


class FilterResultCache:
    """Bounded memo of per-run negative filter verdicts.

    ``known_negative(run_id, key)`` is True only if this run's filter was
    previously observed to answer "definitely not present" for *key*.
    Because runs are immutable and run ids monotone, a recorded verdict
    never needs key-level invalidation; :meth:`drop_run` frees the
    entries of a retired run.
    """

    def __init__(self, max_entries: int = 65536):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[tuple[int, Hashable], None] = OrderedDict()
        # Per-run secondary index so drop_run is O(|run's entries|).
        self._by_run: dict[int, set[Hashable]] = {}
        self._obs: _ResultMetrics | None = None

    def __len__(self) -> int:
        return len(self._entries)

    def known_negative(self, run_id: int, key: Hashable) -> bool:
        entry_key = (run_id, key)
        m = _result_metrics(self)
        if entry_key in self._entries:
            self._entries.move_to_end(entry_key)
            self.hits += 1
            m.memo_hits.inc()
            return True
        self.misses += 1
        m.memo_misses.inc()
        return False

    def record_negative(self, run_id: int, key: Hashable) -> None:
        entry_key = (run_id, key)
        if entry_key in self._entries:
            self._entries.move_to_end(entry_key)
            return
        self._entries[entry_key] = None
        self._by_run.setdefault(run_id, set()).add(key)
        while len(self._entries) > self.max_entries:
            (old_run, old_key), _ = self._entries.popitem(last=False)
            keys = self._by_run.get(old_run)
            if keys is not None:
                keys.discard(old_key)
                if not keys:
                    del self._by_run[old_run]

    def drop_run(self, run_id: int) -> int:
        """Free every entry of a retired run; returns how many."""
        keys = self._by_run.pop(run_id, None)
        if not keys:
            return 0
        for key in keys:
            self._entries.pop((run_id, key), None)
        return len(keys)

    def clear(self) -> None:
        self._entries.clear()
        self._by_run.clear()


class NegativeLookupCache:
    """Bounded memo of authoritative ABSENT answers, epoch-versioned.

    ``known_absent(key, epoch)`` is True only when *key* was recorded
    absent under the *current* mutation epoch; the first consult after
    an epoch bump wipes the cache wholesale.  Callers must only
    :meth:`record_absent` answers that are complete and authoritative —
    never a degraded or deadline-expired MAYBE.
    """

    def __init__(self, max_entries: int = 16384):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.epoch_flushes = 0
        self._epoch: Any = None
        self._entries: OrderedDict[Hashable, None] = OrderedDict()
        self._obs: _ResultMetrics | None = None

    def __len__(self) -> int:
        return len(self._entries)

    def _sync_epoch(self, epoch: Any) -> None:
        if epoch != self._epoch:
            if self._entries:
                self._entries.clear()
                self.epoch_flushes += 1
                _result_metrics(self).neg_flushes.inc()
            self._epoch = epoch

    def known_absent(self, key: Hashable, epoch: Any) -> bool:
        self._sync_epoch(epoch)
        m = _result_metrics(self)
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            m.neg_hits.inc()
            return True
        self.misses += 1
        m.neg_misses.inc()
        return False

    def record_absent(self, key: Hashable, epoch: Any) -> None:
        self._sync_epoch(epoch)
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        self._entries[key] = None
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self._epoch = None
