"""Block cache and cached-device wrapper (docs/performance.md).

The RocksDB block-cache design, sized in *simulated bytes* so cache
experiments compose with the repo's I/O accounting: a bounded map from
block address to payload with LRU eviction, optionally guarded by a
TinyLFU admission filter (a seeded 4-bit count-min sketch with periodic
aging) so one cold scan cannot wash the hot set out of a small cache.

Deployed as :class:`CachedDevice`, a wrapper over any device in the
stack (:class:`~repro.common.storage.BlockDevice`,
:class:`~repro.common.faults.FaultyBlockDevice`,
:class:`~repro.serve.breaker.BreakerDevice`):

* **reads** — a hit returns the cached payload without touching the
  wrapped device at all: no simulated I/O is charged, no fault or
  latency is drawn, no circuit breaker sees traffic.  A miss reads
  through and populates the cache.
* **writes and deletes** — *invalidate*, never populate.  Write-allocate
  would let the cache answer a read-back with data the device lost,
  masking exactly the torn/lost-write faults the storage stack exists
  to detect (:meth:`LSMTree._checkpoint` verifies manifests by reading
  them back); invalidate-on-write keeps every verification read honest.
* **ruin** — the out-of-band corruption backdoor also invalidates, so
  scrub tests observe the corruption they injected instead of a stale
  clean copy.

Telemetry: ``repro_cache_block_requests_total{result=hit|miss}``,
``..._evictions_total``, ``..._invalidations_total``,
``..._admission_rejects_total`` counters plus a
``repro_cache_block_used_bytes`` gauge; invalidation bursts are tracked
with :class:`~repro.obs.metrics.WindowedRate` and surface as
``repro_cache_invalidation_storms_total``.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.common.hashing import splitmix64
from repro.common.storage import _default_size
from repro.obs.metrics import MetricsRegistry, WindowedRate, default_registry


@dataclass
class CacheStats:
    """Running counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0
    admission_rejects: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        n = self.requests
        return self.hits / n if n else 0.0


class _FrequencySketch:
    """Seeded 4-bit count-min sketch with periodic halving (TinyLFU).

    Frequencies are estimates over a sliding sample: once ``sample_size``
    touches accrue, every counter is halved, so a key hot an hour ago
    cannot forever outrank the key hot now.
    """

    _ROWS = 4
    _MAX = 15  # 4-bit saturating counters

    def __init__(self, width: int = 2048, sample_size: int = 16384, seed: int = 0):
        self._width = max(64, width)
        self._sample_size = sample_size
        self._rows = [bytearray(self._width) for _ in range(self._ROWS)]
        self._seeds = [splitmix64(seed ^ (0x51E7 + i)) for i in range(self._ROWS)]
        self._touches = 0

    def _slots(self, address: Any):
        base = zlib.crc32(repr(address).encode())
        for row_seed in self._seeds:
            yield splitmix64(base ^ row_seed) % self._width

    def touch(self, address: Any) -> None:
        for row, slot in zip(self._rows, self._slots(address)):
            if row[slot] < self._MAX:
                row[slot] += 1
        self._touches += 1
        if self._touches >= self._sample_size:
            self._age()

    def estimate(self, address: Any) -> int:
        return min(row[slot] for row, slot in zip(self._rows, self._slots(address)))

    def _age(self) -> None:
        for row in self._rows:
            for i, value in enumerate(row):
                row[i] = value >> 1
        self._touches = 0


class _CacheMetrics:
    """Default-registry handles, rebound when the registry is swapped."""

    __slots__ = ("registry", "hits", "misses", "evictions", "invalidations",
                 "rejects", "storms", "used_bytes")

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        requests = registry.counter(
            "repro_cache_block_requests_total",
            "block-cache lookups, by result", labels=("result",),
        )
        self.hits = requests.labels(result="hit")
        self.misses = requests.labels(result="miss")
        self.evictions = registry.counter(
            "repro_cache_block_evictions_total", "blocks evicted for capacity"
        )
        self.invalidations = registry.counter(
            "repro_cache_block_invalidations_total",
            "blocks dropped because their address was written or deleted",
        )
        self.rejects = registry.counter(
            "repro_cache_block_admission_rejects_total",
            "inserts refused by TinyLFU admission",
        )
        self.storms = registry.counter(
            "repro_cache_invalidation_storms_total",
            "windows where invalidations outpaced the storm threshold",
        )
        self.used_bytes = registry.gauge(
            "repro_cache_block_used_bytes", "bytes currently cached"
        )


class BlockCache:
    """Size-bounded LRU block cache with optional TinyLFU admission.

    ``capacity_bytes`` bounds the *simulated* bytes held; a block larger
    than the whole cache is never admitted.  With ``policy="tinylfu"``
    an insert that would force eviction must out-rank the LRU victim in
    estimated access frequency, otherwise it is rejected (and only its
    frequency recorded) — scans cannot flush the resident hot set.
    """

    def __init__(
        self,
        capacity_bytes: int,
        *,
        policy: str = "lru",
        seed: int = 0,
        storm_window: int = 256,
        storm_threshold: float = 0.25,
    ):
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be non-negative")
        if policy not in ("lru", "tinylfu"):
            raise ValueError(f"unknown cache policy {policy!r}")
        self.capacity_bytes = capacity_bytes
        self.policy = policy
        self.seed = seed
        self.stats = CacheStats()
        self.used_bytes = 0
        self._entries: OrderedDict[Any, tuple[Any, int]] = OrderedDict()
        self._sketch = (
            _FrequencySketch(seed=seed) if policy == "tinylfu" else None
        )
        # Invalidation-storm detector: invalidations per request window.
        self._storm = WindowedRate(window=storm_window)
        self._storm_threshold = storm_threshold
        self._in_storm = False
        self._obs: _CacheMetrics | None = None

    def _metrics(self) -> _CacheMetrics:
        registry = default_registry()
        if self._obs is None or self._obs.registry is not registry:
            self._obs = _CacheMetrics(registry)
        return self._obs

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, address: Any) -> bool:
        return address in self._entries

    def get(self, address: Any) -> tuple[bool, Any]:
        """``(hit, payload)`` for *address*; a hit refreshes recency."""
        if self._sketch is not None:
            self._sketch.touch(address)
        entry = self._entries.get(address)
        if entry is not None:
            self._entries.move_to_end(address)
            self.stats.hits += 1
            self._metrics().hits.inc()
            return True, entry[0]
        self.stats.misses += 1
        self._metrics().misses.inc()
        return False, None

    def put(self, address: Any, payload: Any, size: int) -> bool:
        """Insert a block read from the device; returns False if the
        admission policy (or the capacity bound) refused it."""
        size = max(1, int(size))
        if size > self.capacity_bytes:
            return False
        if address in self._entries:
            # Refresh in place (payload may have been re-read post-repair).
            self.used_bytes -= self._entries[address][1]
            self._entries[address] = (payload, size)
            self._entries.move_to_end(address)
            self.used_bytes += size
            return True
        if (
            self._sketch is not None
            and self.used_bytes + size > self.capacity_bytes
            and self._entries
        ):
            victim = next(iter(self._entries))
            if self._sketch.estimate(address) < self._sketch.estimate(victim):
                self.stats.admission_rejects += 1
                self._metrics().rejects.inc()
                return False
        self._entries[address] = (payload, size)
        self.used_bytes += size
        self.stats.insertions += 1
        while self.used_bytes > self.capacity_bytes:
            _, (_, evicted_size) = self._entries.popitem(last=False)
            self.used_bytes -= evicted_size
            self.stats.evictions += 1
            self._metrics().evictions.inc()
        self._metrics().used_bytes.set(self.used_bytes)
        return True

    def invalidate(self, address: Any) -> bool:
        """Drop *address* (its device block was overwritten or deleted)."""
        entry = self._entries.pop(address, None)
        m = self._metrics()
        rate = self._storm.record(self.stats.requests)
        if rate > self._storm_threshold:
            if not self._in_storm:
                self._in_storm = True
                m.storms.inc()
        else:
            self._in_storm = False
        if entry is None:
            return False
        self.used_bytes -= entry[1]
        self.stats.invalidations += 1
        m.invalidations.inc()
        m.used_bytes.set(self.used_bytes)
        return True

    def clear(self) -> None:
        """Drop everything (a crash: the cache is volatile by definition)."""
        self._entries.clear()
        self.used_bytes = 0
        self._metrics().used_bytes.set(0)


class CachedDevice:
    """A block-device wrapper that serves hot reads from a
    :class:`BlockCache` — hits never reach the wrapped device."""

    def __init__(self, device: Any, cache: BlockCache):
        self.inner = device
        self.cache = cache

    def read(self, address: Any) -> Any:
        hit, payload = self.cache.get(address)
        if hit:
            return payload
        payload = self.inner.read(address)
        self.cache.put(address, payload, self._size_of(address, payload))
        return payload

    def _size_of(self, address: Any, payload: Any) -> int:
        size_of = getattr(self.inner, "size_of", None)
        if size_of is not None:
            size = size_of(address)
            if size is not None:
                return size
        return _default_size(payload)

    def write(self, address: Any, payload: Any, size: int | None = None) -> None:
        # Invalidate, never populate: read-back verification (manifest
        # checkpoints, scrub) must observe the device's truth, including
        # writes the device lost or tore.
        self.cache.invalidate(address)
        self.inner.write(address, payload, size=size)

    def delete(self, address: Any, missing_ok: bool = True) -> None:
        self.cache.invalidate(address)
        self.inner.delete(address, missing_ok=missing_ok)

    def ruin(self, address: Any) -> None:
        self.cache.invalidate(address)
        self.inner.ruin(address)

    def exists(self, address: Any) -> bool:
        return self.inner.exists(address)

    def addresses(self) -> list[Any]:
        return self.inner.addresses()

    def size_of(self, address: Any) -> int | None:
        return self.inner.size_of(address)

    def __len__(self) -> int:
        return len(self.inner)

    @property
    def stats(self):
        return self.inner.stats

    @property
    def used_bytes(self) -> int:
        return self.inner.used_bytes

    def __getattr__(self, name: str):
        # Forward stack extras (injector, latency, breakers, fault_stats...).
        return getattr(self.inner, name)
