"""repro.cache — the cache tier for the LSM/serving stack.

The tutorial's storage section argues filters exist to avoid device I/O,
but filter savings only become end-to-end wins when the *metadata and
hot data* those lookups touch are cache-resident (SlimDB, Chucky —
PAPERS.md).  This package is that missing half, RocksDB-style:

* :class:`BlockCache` + :class:`CachedDevice` — a seeded, size-bounded
  block cache (LRU, optionally TinyLFU admission) interposed as a
  device wrapper.  Hits skip the wrapped device entirely: no simulated
  I/O, no injected faults or latency, no circuit-breaker traffic.
* :class:`FilterResultCache` — per-run memoization of *negative* filter
  verdicts, invalidation versioned by run id (run ids are never
  reused), so a stale ABSENT is impossible by construction.
* :class:`NegativeLookupCache` — authoritative-ABSENT memoization for
  :class:`~repro.serve.served.ServedFilter` and
  :class:`~repro.adaptive.dictionary.FilteredDictionary`, versioned by
  the backend's mutation epoch.  Degraded/timed-out MAYBE answers never
  populate it (docs/robustness.md).

Everything is metered through :mod:`repro.obs` (hits, misses,
evictions, admission rejects, invalidation storms) and sized in
simulated bytes, so ``serve-sim --cache-mb`` and bench P2 report
hit-rate-vs-goodput curves.  See docs/performance.md.
"""

from repro.cache.block import BlockCache, CachedDevice, CacheStats
from repro.cache.results import FilterResultCache, NegativeLookupCache

__all__ = [
    "BlockCache",
    "CacheStats",
    "CachedDevice",
    "FilterResultCache",
    "NegativeLookupCache",
]
