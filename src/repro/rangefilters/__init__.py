"""Range filters (§2.5): ε-approximate range emptiness over integer keys.

All filters share the :class:`~repro.core.interfaces.RangeFilter` API
(``may_intersect(lo, hi)``) over keys in ``[0, 2**key_bits)``:

* :class:`SuRF` — shortest-unique-prefix trie with optional suffix bits
  (Zhang et al. 2018); fast and small, but no FPR guarantee and vulnerable
  to key-correlated queries.
* :class:`Rosetta` — dyadic hierarchy of Bloom filters (Luo et al. 2020);
  robust for point/short ranges, FPR and CPU grow with range length.
* :class:`PrefixBloomFilter` — single-level prefix Bloom (the classic
  RocksDB trick); only covers ranges within one prefix block.
* :class:`Proteus` — SuRF-style trie to depth l1 + prefix Bloom at l2, with
  sample-driven parameter selection (Knorr et al. 2022).
* :class:`SNARF` — learned CDF spline mapped to a sparse bit array encoded
  with Elias–Fano (Vaidya et al. 2022).
* :class:`Grafite` — locality-preserving hash + Elias–Fano (Costa et al.
  2023); the robust, lower-bound-matching design.
* :class:`AdaptiveRangeFilter` — Hekaton's trained binary tree (Alexiou et
  al. 2013).
"""

from repro.rangefilters.arf import AdaptiveRangeFilter
from repro.rangefilters.fst import FastSuccinctTrie, SurfFST
from repro.rangefilters.grafite import Grafite
from repro.rangefilters.prefix_bloom import PrefixBloomFilter
from repro.rangefilters.proteus import Proteus
from repro.rangefilters.rencoder import REncoder
from repro.rangefilters.rosetta import Rosetta
from repro.rangefilters.snarf import SNARF
from repro.rangefilters.surf import SuRF

__all__ = [
    "AdaptiveRangeFilter",
    "FastSuccinctTrie",
    "Grafite",
    "PrefixBloomFilter",
    "Proteus",
    "REncoder",
    "Rosetta",
    "SNARF",
    "SuRF",
    "SurfFST",
]
