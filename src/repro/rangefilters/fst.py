"""Fast Succinct Trie — the LOUDS-DS core of SuRF (Zhang et al. 2018).

A physically succinct trie over byte strings with SuRF's two-zone layout:

* **LOUDS-Dense** (top ``dense_levels`` levels): each node stores a
  256-bit label bitmap and a 256-bit has-child bitmap.  Fast — an edge
  test is one bit probe — but costs 512 bits/node, affordable only where
  nodes are few and hot (the top of the trie).
* **LOUDS-Sparse** (everything below): three parallel, level-ordered edge
  arrays — ``labels`` (the edge byte), ``has_child`` (internal vs leaf),
  ``louds`` (first-edge-of-node marker) — navigated with rank/select:
  the child of internal edge *i* is found through
  ``rank1(has_child, i+1)`` and ``select1(louds, ·)``.  ≈ 10–11 bits per
  edge, which is what "space close to the information-theoretic lower
  bound" cashes out to.

Because nodes are numbered in BFS order, the two zones share one global
node numbering: the child of the k-th internal edge (counting dense edges
first) is node k+1, so crossing the dense→sparse boundary needs no
special casing.

:class:`FastSuccinctTrie` stores prefix-free byte strings with point
lookup and successor (lower-bound) search; :class:`SurfFST` wraps it into
the integer :class:`~repro.core.interfaces.RangeFilter` API via
shortest-unique-prefix truncation plus optional real-suffix bytes.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.common.bitvector import BitVector
from repro.common.rankselect import RankSelect
from repro.core.interfaces import RangeFilter

_FANOUT = 256


class FastSuccinctTrie:
    """LOUDS-DS trie over sorted, distinct, prefix-free byte strings."""

    def __init__(self, strings: list[bytes], *, dense_levels: int = 0):
        if dense_levels < 0:
            raise ValueError("dense_levels must be non-negative")
        for a, b in zip(strings, strings[1:]):
            if a >= b:
                raise ValueError("input must be sorted and distinct")
        for a, b in zip(strings, strings[1:]):
            if b.startswith(a):
                raise ValueError("input must be prefix-free")
        if any(len(s) == 0 for s in strings):
            raise ValueError("empty string is not representable")
        self._n = len(strings)
        self.dense_levels = dense_levels

        # BFS over groups of strings sharing a prefix of the current depth.
        # Nodes are numbered in BFS order; depth order = numbering order.
        dense_label_bits: list[int] = []  # bit positions to set
        dense_child_bits: list[int] = []
        s_labels: list[int] = []
        s_has_child: list[bool] = []
        s_louds: list[bool] = []
        n_dense_nodes = 0
        n_sparse_nodes = 0

        queue: deque[tuple[int, int, int]] = deque()
        if strings:
            queue.append((0, 0, len(strings)))
        while queue:
            depth, lo, hi = queue.popleft()
            dense = depth < dense_levels
            if dense:
                node_index = n_dense_nodes
                n_dense_nodes += 1
            else:
                n_sparse_nodes += 1
            first_edge = True
            i = lo
            while i < hi:
                byte = strings[i][depth]
                j = i
                while j < hi and strings[j][depth] == byte:
                    j += 1
                is_leaf = j == i + 1 and len(strings[i]) == depth + 1
                if dense:
                    pos = node_index * _FANOUT + byte
                    dense_label_bits.append(pos)
                    if not is_leaf:
                        dense_child_bits.append(pos)
                else:
                    s_labels.append(byte)
                    s_louds.append(first_edge)
                    s_has_child.append(not is_leaf)
                first_edge = False
                if not is_leaf:
                    queue.append((depth + 1, i, j))
                i = j

        self.n_dense_nodes = n_dense_nodes
        self.n_edges = len(s_labels) + len(dense_label_bits)

        self._d_labels = BitVector(max(1, n_dense_nodes * _FANOUT))
        self._d_child = BitVector(max(1, n_dense_nodes * _FANOUT))
        for pos in dense_label_bits:
            self._d_labels.set(pos)
        for pos in dense_child_bits:
            self._d_child.set(pos)
        self._rs_d_child = RankSelect(self._d_child)
        self._n_dense_internal = self._rs_d_child.total

        m = len(s_labels)
        self._s_n_edges = m
        self._labels = np.asarray(s_labels, dtype=np.uint8)
        self._has_child = BitVector(max(1, m))
        self._louds = BitVector(max(1, m))
        for pos, bit in enumerate(s_has_child):
            if bit:
                self._has_child.set(pos)
        for pos, bit in enumerate(s_louds):
            if bit:
                self._louds.set(pos)
        self._rs_child = RankSelect(self._has_child)
        self._rs_louds = RankSelect(self._louds)

    def __len__(self) -> int:
        return self._n

    # -- navigation primitives (zone-dispatching) -------------------------------
    #
    # Nodes are global BFS numbers; node < n_dense_nodes ⇔ dense zone.
    # Each primitive returns (label, has_child, child_node) triples; the
    # child number is global: the child of the k-th internal edge overall
    # (dense internal edges all precede sparse ones) is node k+1, with the
    # root being node 0.

    def _dense_child(self, pos: int) -> int:
        return self._rs_d_child.rank(pos + 1)  # root is node 0

    def _sparse_child(self, edge: int) -> int:
        return self._n_dense_internal + self._rs_child.rank(edge + 1)

    def _sparse_range(self, node: int) -> tuple[int, int]:
        sparse_index = node - self.n_dense_nodes
        start = self._rs_louds.select(sparse_index)
        if sparse_index + 1 < self._rs_louds.total:
            return start, self._rs_louds.select(sparse_index + 1)
        return start, self._s_n_edges

    def _lookup(self, node: int, byte: int):
        """Edge labelled *byte* at *node*: (has_child, child) or None."""
        if node < self.n_dense_nodes:
            pos = node * _FANOUT + byte
            if not self._d_labels.get(pos):
                return None
            if self._d_child.get(pos):
                return True, self._dense_child(pos)
            return False, -1
        start, end = self._sparse_range(node)
        pos = start + int(np.searchsorted(self._labels[start:end], np.uint8(byte)))
        if pos >= end or self._labels[pos] != byte:
            return None
        if self._has_child.get(pos):
            return True, self._sparse_child(pos)
        return False, -1

    def _first_label_geq(self, node: int, byte: int):
        """Smallest edge label ≥ *byte* at *node*:
        (label, has_child, child) or None."""
        if byte >= _FANOUT:
            return None
        if node < self.n_dense_nodes:
            base = node * _FANOUT
            for label in range(byte, _FANOUT):
                if self._d_labels.get(base + label):
                    pos = base + label
                    if self._d_child.get(pos):
                        return label, True, self._dense_child(pos)
                    return label, False, -1
            return None
        start, end = self._sparse_range(node)
        pos = start + int(np.searchsorted(self._labels[start:end], np.uint8(byte)))
        if pos >= end:
            return None
        label = int(self._labels[pos])
        if self._has_child.get(pos):
            return label, True, self._sparse_child(pos)
        return label, False, -1

    # -- queries -----------------------------------------------------------------

    def contains_prefix_of(self, key: bytes) -> bool:
        """True iff some stored string is a prefix of *key*."""
        if self.n_edges == 0:
            return False
        node = 0
        for byte in key:
            hit = self._lookup(node, byte)
            if hit is None:
                return False
            has_child, child = hit
            if not has_child:
                return True  # stored string ends on this edge
            node = child
        return False  # key exhausted inside the trie (key too short)

    def _leftmost_from_edge(self, label: int, has_child: bool, child: int,
                            acc: list[int]) -> bytes:
        """Smallest stored string passing through the given edge."""
        acc.append(label)
        while has_child:
            label, has_child, child = self._first_label_geq(child, 0)
            acc.append(label)
        return bytes(acc)

    def successor(self, key: bytes) -> bytes | None:
        """First stored string (in lexicographic order) that is either a
        prefix of *key* or greater than *key* — the seek primitive for
        range emptiness (its covered interval is the first ending ≥ key).
        """
        if self.n_edges == 0:
            return None
        return self._successor_from(0, key, 0, [])

    def _successor_from(self, node: int, key: bytes, depth: int,
                        acc: list[int]) -> bytes | None:
        if depth >= len(key):
            # Every string below extends (exceeds) the key: take leftmost.
            edge = self._first_label_geq(node, 0)
            return self._leftmost_from_edge(*edge, list(acc))
        byte = key[depth]
        hit = self._lookup(node, byte)
        next_from = byte
        if hit is not None:
            has_child, child = hit
            if not has_child:
                return bytes(acc + [byte])  # stored prefix of key: covers it
            result = self._successor_from(child, key, depth + 1, acc + [byte])
            if result is not None:
                return result
            next_from = byte + 1  # subtree entirely below key: move right
        edge = self._first_label_geq(node, next_from)
        if edge is None:
            return None
        return self._leftmost_from_edge(*edge, list(acc))

    @property
    def size_in_bits(self) -> int:
        """Dense: 512 bits/node; sparse: labels + has_child + louds + rank
        directories (charged at the classic 0.25 bits/bit)."""
        dense = self.n_dense_nodes * 2 * _FANOUT
        dense += self.n_dense_nodes * _FANOUT // 4
        m = self._s_n_edges
        return dense + m * 8 + 2 * m + m // 2


class SurfFST(RangeFilter):
    """SuRF over the physical FST: integer range filter.

    Keys become fixed-width big-endian byte strings, truncated to their
    shortest unique byte prefix plus *suffix_bytes* real bytes (SuRF-Real
    at byte granularity).  *dense_levels* selects how many top levels use
    the LOUDS-Dense encoding (SuRF's speed/space dial).
    """

    def __init__(
        self,
        keys: list[int],
        *,
        key_bits: int = 48,
        suffix_bytes: int = 0,
        dense_levels: int = 0,
        seed: int = 0,
    ):
        if key_bits % 8 != 0:
            raise ValueError("key_bits must be a multiple of 8 (byte-level trie)")
        if suffix_bytes < 0:
            raise ValueError("suffix_bytes must be non-negative")
        self.key_bits = key_bits
        self.width = key_bits // 8
        self.suffix_bytes = suffix_bytes
        unique = sorted(set(keys))
        if any(k < 0 or k >= (1 << key_bits) for k in unique):
            raise ValueError("key out of universe range")
        self._n = len(unique)
        encoded = [self._encode(k) for k in unique]
        truncated = self._truncate(encoded)
        self._trie = FastSuccinctTrie(truncated, dense_levels=dense_levels)

    def _encode(self, key: int) -> bytes:
        return key.to_bytes(self.width, "big")

    def _truncate(self, encoded: list[bytes]) -> list[bytes]:
        """Shortest unique byte prefixes (+ suffix bytes), prefix-free."""
        out = []
        n = len(encoded)
        for i, s in enumerate(encoded):
            shared = 0
            if i > 0:
                shared = max(shared, _common_prefix_bytes(s, encoded[i - 1]))
            if i + 1 < n:
                shared = max(shared, _common_prefix_bytes(s, encoded[i + 1]))
            length = min(self.width, shared + 1 + self.suffix_bytes)
            out.append(s[:length])
        return out

    def may_intersect(self, lo: int, hi: int) -> bool:
        if lo > hi:
            raise ValueError("empty range: lo > hi")
        if self._n == 0:
            return False
        successor = self._trie.successor(self._encode(lo))
        if successor is None:
            return False
        # The stored prefix covers [prefix·256^k, (prefix+1)·256^k): it
        # intersects [lo, hi] iff its start does not exceed hi (its end is
        # >= lo by the successor contract).
        pad = self.width - len(successor)
        start = int.from_bytes(successor + b"\x00" * pad, "big")
        return start <= hi

    def may_contain(self, key: int) -> bool:
        if self._n == 0:
            return False
        return self._trie.contains_prefix_of(self._encode(key))

    def __len__(self) -> int:
        return self._n

    @property
    def n_edges(self) -> int:
        return self._trie.n_edges

    @property
    def size_in_bits(self) -> int:
        return self._trie.size_in_bits


def _common_prefix_bytes(a: bytes, b: bytes) -> int:
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            return i
    return n
