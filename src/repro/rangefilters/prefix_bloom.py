"""Prefix Bloom filter — the classic single-level range trick (RocksDB).

Stores every key's length-*l* prefix in one Bloom filter.  A range query is
answered by probing the (few) prefix blocks the range touches; ranges that
span more than ``max_blocks`` blocks get no filtering.  The simplest point
in the §2.5 design space and Proteus's second level.
"""

from __future__ import annotations

from repro.core.interfaces import RangeFilter
from repro.filters.bloom import BloomFilter


class PrefixBloomFilter(RangeFilter):
    """Bloom filter over fixed-length key prefixes."""

    def __init__(
        self,
        keys: list[int],
        *,
        key_bits: int = 48,
        prefix_bits: int = 36,
        bits_per_key: float = 14.0,
        max_blocks: int = 4,
        seed: int = 0,
    ):
        if not 1 <= prefix_bits <= key_bits:
            raise ValueError("prefix_bits must be in [1, key_bits]")
        self.key_bits = key_bits
        self.prefix_bits = prefix_bits
        self.max_blocks = max_blocks
        self._shift = key_bits - prefix_bits
        self._n = len(keys)
        epsilon = min(0.99, max(1e-9, 0.6185**bits_per_key))
        self._bloom = BloomFilter(max(1, self._n), epsilon, seed=seed ^ 0x9B)
        for key in keys:
            if key < 0 or key >= 1 << key_bits:
                raise ValueError("key out of universe range")
            self._bloom.insert(key >> self._shift)

    def may_intersect(self, lo: int, hi: int) -> bool:
        if lo > hi:
            raise ValueError("empty range: lo > hi")
        if self._n == 0:
            return False
        first, last = lo >> self._shift, hi >> self._shift
        if last - first + 1 > self.max_blocks:
            return True  # range spans too many blocks: no filtering
        return any(
            self._bloom.may_contain(block) for block in range(first, last + 1)
        )

    def __len__(self) -> int:
        return self._n

    @property
    def size_in_bits(self) -> int:
        return self._bloom.size_in_bits

    def max_filtered_range(self) -> int:
        """Longest range guaranteed to receive filtering."""
        return self.max_blocks << self._shift
