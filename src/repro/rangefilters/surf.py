"""SuRF — the Succinct Range Filter (Zhang et al. 2018, SIGMOD).

Stores the *shortest unique prefix* of every key in a trie: each stored
prefix covers the whole interval of keys sharing it, so a range query
reduces to "does any stored prefix-interval intersect the query interval?".
SuRF's variants append suffix bits to each truncated key:

* ``suffix_bits=0`` — SuRF-Base: smallest, highest FPR.
* ``real_suffix_bits=k`` — SuRF-Real: k further *key* bits, narrowing each
  covered interval (helps point and range queries).
* ``hash_suffix_bits=k`` — SuRF-Hash: k hashed bits checked only on point
  queries (helps point queries, not ranges).

The trie here is materialised as sorted coverage intervals (equivalent to
the FST's range-lookup semantics); ``size_in_bits`` charges the LOUDS-style
succinct cost: ~3 bits per trie node plus the suffix store.  SuRF's two
§2.5 weaknesses fall straight out of this construction: adversarial keys
with long shared prefixes inflate the node count (space), and queries that
land just outside a key but inside its covered interval false-positive
(the correlated-workload failure, experiment F5).
"""

from __future__ import annotations

import numpy as np

from repro.common.hashing import hash64
from repro.core.interfaces import RangeFilter

_LOUDS_BITS_PER_NODE = 3  # LOUDS-DS: ~2 topology bits + has-child/label amortised


class SuRF(RangeFilter):
    """Succinct Range Filter over fixed-width integer keys."""

    def __init__(
        self,
        keys: list[int],
        *,
        key_bits: int = 48,
        real_suffix_bits: int = 0,
        hash_suffix_bits: int = 0,
        seed: int = 0,
    ):
        if not 1 <= key_bits <= 62:
            raise ValueError("key_bits must be in [1, 62]")
        if real_suffix_bits < 0 or hash_suffix_bits < 0:
            raise ValueError("suffix widths must be non-negative")
        self.key_bits = key_bits
        self.real_suffix_bits = real_suffix_bits
        self.hash_suffix_bits = hash_suffix_bits
        self.seed = seed
        unique = sorted(set(keys))
        if any(k < 0 or k >= (1 << key_bits) for k in unique):
            raise ValueError("key out of universe range")
        self._n = len(unique)

        prefix_lens = self._unique_prefix_lengths(unique)
        self._trie_nodes = self._count_trie_nodes(unique, prefix_lens)

        starts, ends = [], []
        hashes = []
        for key, plen in zip(unique, prefix_lens):
            stored_len = min(key_bits, plen + real_suffix_bits)
            shift = key_bits - stored_len
            prefix = key >> shift
            starts.append(prefix << shift)
            ends.append(((prefix + 1) << shift) - 1)
            if hash_suffix_bits:
                hashes.append(hash64(key, seed ^ 0x5F) & ((1 << hash_suffix_bits) - 1))
        self._starts = np.asarray(starts, dtype=np.int64)
        self._ends = np.asarray(ends, dtype=np.int64)
        self._hashes = np.asarray(hashes, dtype=np.int64) if hashes else None

    # -- construction helpers ---------------------------------------------------

    def _unique_prefix_lengths(self, sorted_keys: list[int]) -> list[int]:
        """Shortest unique prefix length (in bits) of each key."""
        W = self.key_bits

        def lcp(a: int, b: int) -> int:
            diff = a ^ b
            return W if diff == 0 else W - diff.bit_length()

        n = len(sorted_keys)
        lens = []
        for i, key in enumerate(sorted_keys):
            shared = 0
            if i > 0:
                shared = max(shared, lcp(key, sorted_keys[i - 1]))
            if i + 1 < n:
                shared = max(shared, lcp(key, sorted_keys[i + 1]))
            lens.append(min(W, shared + 1))
        return lens

    def _count_trie_nodes(self, sorted_keys: list[int], prefix_lens: list[int]) -> int:
        """Trie nodes = new edges each key contributes beyond the LCP with
        its predecessor (standard trie-size identity)."""
        W = self.key_bits
        nodes = 0
        for i, (key, plen) in enumerate(zip(sorted_keys, prefix_lens)):
            if i == 0:
                nodes += plen
                continue
            diff = key ^ sorted_keys[i - 1]
            shared = W if diff == 0 else W - diff.bit_length()
            nodes += max(0, plen - shared)
        return nodes

    # -- queries --------------------------------------------------------------------

    def may_intersect(self, lo: int, hi: int) -> bool:
        if lo > hi:
            raise ValueError("empty range: lo > hi")
        if self._n == 0:
            return False
        # First stored interval whose end is >= lo; intersects iff start <= hi.
        i = int(np.searchsorted(self._ends, lo, side="left"))
        return i < self._n and int(self._starts[i]) <= hi

    def may_contain(self, key: int) -> bool:
        if self._n == 0:
            return False
        i = int(np.searchsorted(self._ends, key, side="left"))
        if i >= self._n or int(self._starts[i]) > key:
            return False
        if self._hashes is None:
            return True
        # SuRF-Hash: point queries also check the hashed suffix.
        expected = hash64(key, self.seed ^ 0x5F) & ((1 << self.hash_suffix_bits) - 1)
        return int(self._hashes[i]) == expected

    def __len__(self) -> int:
        return self._n

    @property
    def n_trie_nodes(self) -> int:
        return self._trie_nodes

    @property
    def size_in_bits(self) -> int:
        suffix = self._n * (self.real_suffix_bits + self.hash_suffix_bits)
        return self._trie_nodes * _LOUDS_BITS_PER_NODE + suffix
