"""Grafite (Costa, Ferragina & Vinciguerra 2023).

A practical implementation of the Goswami et al. range-emptiness scheme:
hash keys with a *locality-preserving* reduction

    h(k) = (f(⌊k/L⌋) · L + (k mod L))  mod  m,      m = n·L/ε

where f is a pairwise-independent hash of the key's L-block id.  Keys that
are close (same block) stay close in hash space, so a range query of length
≤ L touches at most two contiguous hash intervals; unrelated keys collide
into an interval of length ℓ with probability ≈ n·ℓ/m = ε·ℓ/L ≤ ε.  The
sorted hash codes are stored in Elias–Fano, giving ≈ log₂(L/ε) + 2 bits/key
— matching the §2.5 lower bound Ω(n·lg(L/ε)).

Robustness: because f destroys cross-block correlation, Grafite's FPR is
insensitive to key/query correlation — the property experiment F5 checks
against SuRF.
"""

from __future__ import annotations

import math

from repro.common.eliasfano import EliasFano
from repro.common.hashing import hash64
from repro.core.interfaces import RangeFilter


class Grafite(RangeFilter):
    """Locality-preserving-hash + Elias–Fano range filter."""

    def __init__(
        self,
        keys: list[int],
        *,
        max_range: int = 1 << 16,
        epsilon: float = 0.01,
        key_bits: int = 48,
        seed: int = 0,
    ):
        if max_range < 1:
            raise ValueError("max_range must be at least 1")
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        self.key_bits = key_bits
        self.max_range = max_range
        self.epsilon = epsilon
        self.seed = seed
        unique = sorted(set(keys))
        if any(k < 0 or k >= (1 << key_bits) for k in unique):
            raise ValueError("key out of universe range")
        self._n = len(unique)
        self._L = max_range
        self._m = max(1, math.ceil(max(1, self._n) * self._L / epsilon))
        codes = sorted({self._hash(k) for k in unique})
        self._codes = EliasFano(codes, universe=self._m)

    def _block_offset(self, block: int) -> int:
        """Start of *block*'s image: an L-aligned slot chosen uniformly among
        the m/L slots, so blocks collide with probability L/m = ε/n."""
        n_slots = max(1, self._m // self._L)
        return (hash64(block, self.seed ^ 0x6F) % n_slots) * self._L

    def _hash(self, key: int) -> int:
        block, offset = divmod(key, self._L)
        return (self._block_offset(block) + offset) % self._m

    def _segment_hits(self, lo: int, hi: int) -> bool:
        """Check a sub-range that lies within a single L-block."""
        h_lo, h_hi = self._hash(lo), self._hash(hi)
        if h_lo <= h_hi:
            return self._codes.contains_in_range(h_lo, h_hi)
        # The block's image wraps around m: check both arcs.
        return self._codes.contains_in_range(h_lo, self._m - 1) or (
            self._codes.contains_in_range(0, h_hi)
        )

    def may_intersect(self, lo: int, hi: int) -> bool:
        if lo > hi:
            raise ValueError("empty range: lo > hi")
        if hi - lo + 1 > self._L:
            raise ValueError(
                f"range length {hi - lo + 1} exceeds the configured maximum "
                f"{self._L} (Grafite must be built for the longest query)"
            )
        if self._n == 0:
            return False
        # A range of length ≤ L touches at most two L-blocks.
        first_block = lo // self._L
        block_end = (first_block + 1) * self._L - 1
        if hi <= block_end:
            return self._segment_hits(lo, hi)
        return self._segment_hits(lo, block_end) or self._segment_hits(
            block_end + 1, hi
        )

    def __len__(self) -> int:
        return self._n

    @property
    def size_in_bits(self) -> int:
        return self._codes.size_in_bits

    def theoretical_bits_per_key(self) -> float:
        """log₂(L/ε) + 2 (the Elias–Fano bound on the reduced universe)."""
        return math.log2(self._L / self.epsilon) + 2
