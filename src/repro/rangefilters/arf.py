"""ARF — the Adaptive Range Filter from Hekaton (Alexiou et al. 2013).

A binary tree over the integer key domain whose leaves carry one bit:
"may contain keys" or "certainly empty".  The tree starts trivial (root =
occupied) and is *trained*: escalating a false positive splits the covering
leaf (consulting the data, which Hekaton has on the cold path anyway) until
the query's region is marked empty, subject to a node budget; when the
budget is exhausted, least-recently-useful leaves are collapsed.

Reproduces the §2.5 characterisation: works well for stable/repeating
integer workloads (the trained regions stay relevant), but training costs
are real and shifting workloads need retraining (experiment F5 shows the
contrast with the statically robust designs).
"""

from __future__ import annotations

from bisect import bisect_left

from repro.core.interfaces import RangeFilter


class _Node:
    __slots__ = ("lo", "hi", "occupied", "left", "right", "used")

    def __init__(self, lo: int, hi: int, occupied: bool):
        self.lo = lo
        self.hi = hi
        self.occupied = occupied
        self.left: _Node | None = None
        self.right: _Node | None = None
        self.used = 0  # usefulness counter for budget-driven collapse

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class AdaptiveRangeFilter(RangeFilter):
    """Trained binary-tree range filter with a node budget."""

    def __init__(
        self,
        keys: list[int],
        *,
        key_bits: int = 48,
        max_nodes: int = 4096,
        seed: int = 0,
    ):
        self.key_bits = key_bits
        self.max_nodes = max_nodes
        self._keys = sorted(set(keys))
        if self._keys and (self._keys[0] < 0 or self._keys[-1] >= 1 << key_bits):
            raise ValueError("key out of universe range")
        self._n = len(self._keys)
        self._root = _Node(0, (1 << key_bits) - 1, self._n > 0)
        self._n_nodes = 1

    # -- ground truth (the cold store ARF trains against) -----------------------

    def _has_key_in(self, lo: int, hi: int) -> bool:
        i = bisect_left(self._keys, lo)
        return i < self._n and self._keys[i] <= hi

    # -- queries --------------------------------------------------------------------

    def _query(self, node: _Node, lo: int, hi: int) -> bool:
        if hi < node.lo or lo > node.hi:
            return False
        if node.is_leaf:
            node.used += 1
            return node.occupied
        return self._query(node.left, lo, hi) or self._query(node.right, lo, hi)

    def may_intersect(self, lo: int, hi: int) -> bool:
        if lo > hi:
            raise ValueError("empty range: lo > hi")
        return self._query(self._root, lo, hi)

    # -- training ---------------------------------------------------------------------

    def _split(self, node: _Node) -> None:
        mid = (node.lo + node.hi) // 2
        node.left = _Node(node.lo, mid, self._has_key_in(node.lo, mid))
        node.right = _Node(mid + 1, node.hi, self._has_key_in(mid + 1, node.hi))
        self._n_nodes += 2

    def escalate(self, lo: int, hi: int, *, max_depth_steps: int = 64) -> None:
        """Train on a confirmed-empty query range: split covering occupied
        leaves until [lo, hi] is answered empty (or budget/precision runs
        out)."""
        if self._has_key_in(lo, hi):
            raise ValueError("escalate() is for confirmed-empty ranges")
        for _ in range(max_depth_steps):
            if not self.may_intersect(lo, hi):
                return
            leaf = self._find_blocking_leaf(self._root, lo, hi)
            if leaf is None or leaf.lo == leaf.hi:
                return
            if self._n_nodes + 2 > self.max_nodes:
                self._collapse_least_used()
                if self._n_nodes + 2 > self.max_nodes:
                    return
            self._split(leaf)

    def _find_blocking_leaf(self, node: _Node, lo: int, hi: int) -> _Node | None:
        if hi < node.lo or lo > node.hi:
            return None
        if node.is_leaf:
            return node if node.occupied else None
        return self._find_blocking_leaf(node.left, lo, hi) or self._find_blocking_leaf(
            node.right, lo, hi
        )

    def _collapse_least_used(self) -> None:
        """Merge the least-used split back into a leaf (space reclamation)."""
        best: tuple[int, _Node] | None = None

        def visit(node: _Node):
            nonlocal best
            if node.is_leaf:
                return
            if node.left.is_leaf and node.right.is_leaf:
                score = node.left.used + node.right.used
                if best is None or score < best[0]:
                    best = (score, node)
            else:
                visit(node.left)
                visit(node.right)

        visit(self._root)
        if best is None:
            return
        node = best[1]
        node.occupied = node.left.occupied or node.right.occupied
        node.left = node.right = None
        self._n_nodes -= 2

    def train(self, sample_queries: list[tuple[int, int]]) -> None:
        """Batch training on a workload sample (the Hekaton deployment mode)."""
        for lo, hi in sample_queries:
            if not self._has_key_in(lo, hi):
                self.escalate(lo, hi)

    def __len__(self) -> int:
        return self._n

    @property
    def n_nodes(self) -> int:
        return self._n_nodes

    @property
    def size_in_bits(self) -> int:
        """~2 bits per node: one topology bit + one occupied bit (the
        paper's succinct encoding)."""
        return 2 * self._n_nodes
