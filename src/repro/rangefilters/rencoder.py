"""REncoder (Wang et al. 2023, ICDE).

§2.5: "REncoder reduces Rosetta's computational overhead by leveraging the
bit locality within the Bloom filters."  Same dyadic prefix hierarchy as
Rosetta, but the bits for a run of adjacent levels of the same key region
are packed into one cache-line *block*: probing a whole group of levels
costs one memory access instead of one random Bloom probe per level.

Reproduced here with 512-bit blocks covering ``levels_per_block``
consecutive levels, addressed by the region's common parent prefix.
``last_query_blocks`` counts distinct blocks touched — the locality metric
to compare against Rosetta's ``last_query_probes``.
"""

from __future__ import annotations

import math

from repro.common.bitvector import BitVector
from repro.common.hashing import hash64, hash_to_range, splitmix64
from repro.core.interfaces import RangeFilter

BLOCK_BITS = 512
_PROBES_PER_PREFIX = 2


class REncoder(RangeFilter):
    """Block-local dyadic prefix filter."""

    def __init__(
        self,
        keys: list[int],
        *,
        key_bits: int = 48,
        bits_per_key: float = 28.0,
        n_levels: int = 12,
        levels_per_block: int = 6,
        seed: int = 0,
    ):
        if not 1 <= n_levels <= key_bits:
            raise ValueError("n_levels must be in [1, key_bits]")
        if levels_per_block < 1:
            raise ValueError("levels_per_block must be positive")
        self.key_bits = key_bits
        self.n_levels = n_levels
        self.levels_per_block = levels_per_block
        self.seed = seed
        self._n = len(keys)
        total_bits = max(BLOCK_BITS, int(len(keys) * bits_per_key))
        self._n_blocks = max(1, math.ceil(total_bits / BLOCK_BITS))
        self._bits = BitVector(self._n_blocks * BLOCK_BITS)
        self.last_query_blocks = 0
        self._touched: set[int] = set()

        for key in keys:
            if key < 0 or key >= 1 << key_bits:
                raise ValueError("key out of universe range")
            for depth in range(n_levels):  # depth 0 = full key
                self._set_prefix(key >> depth, depth)

    # -- block addressing ---------------------------------------------------------

    def _group_parent(self, prefix: int, depth: int) -> tuple[int, int]:
        """(block index, group id) for a prefix at *depth* from the bottom.

        All levels of one key region within a group share a block: the
        block is addressed by the region's parent prefix above the group.
        """
        group = depth // self.levels_per_block
        parent_depth = (group + 1) * self.levels_per_block
        prefix_len = self.key_bits - depth
        parent_len = max(0, self.key_bits - parent_depth)
        parent = prefix >> (prefix_len - parent_len)
        block = hash_to_range(
            parent ^ splitmix64(group), self._n_blocks, self.seed ^ 0x0E
        )
        return block, group

    def _positions(self, prefix: int, depth: int) -> list[int]:
        """Bit positions for a prefix: a stripe of its block.

        Each block is striped per level (the "local encoder" layout), so
        one level's occupancy cannot drown another's; the bottom (full-key)
        stripe gets two probes since it terminates every doubting chain.
        """
        block, _ = self._group_parent(prefix, depth)
        self._touched.add(block)
        stripe = depth % self.levels_per_block
        # Bottom-heavy stripes, as Rosetta allocates levels: the group's
        # lowest stripe takes half the block (it terminates every doubting
        # chain) with several probes; upper stripes share the rest.
        if stripe == 0:
            offset, stripe_bits, probes = 0, BLOCK_BITS // 2, 5
        else:
            upper = (BLOCK_BITS // 2) // max(1, self.levels_per_block - 1)
            offset = BLOCK_BITS // 2 + (stripe - 1) * upper
            stripe_bits, probes = upper, 1
        base = block * BLOCK_BITS + offset
        h = hash64(prefix ^ splitmix64(depth + 1), self.seed ^ 0x0F)
        return [base + ((h >> (9 * i)) % stripe_bits) for i in range(probes)]

    def _set_prefix(self, prefix: int, depth: int) -> None:
        for pos in self._positions(prefix, depth):
            self._bits.set(pos)

    def _test_prefix(self, prefix: int, depth: int) -> bool:
        return all(self._bits.get(pos) for pos in self._positions(prefix, depth))

    # -- queries --------------------------------------------------------------------

    PROBE_LIMIT = 4096

    def _doubt(self, prefix: int, depth: int, budget: list[int]) -> bool:
        if budget[0] <= 0:
            return True
        budget[0] -= 1
        if depth < self.n_levels and not self._test_prefix(prefix, depth):
            return False
        if depth == 0:
            return True
        return self._doubt(prefix << 1, depth - 1, budget) or self._doubt(
            (prefix << 1) | 1, depth - 1, budget
        )

    def may_intersect(self, lo: int, hi: int) -> bool:
        if lo > hi:
            raise ValueError("empty range: lo > hi")
        if self._n == 0:
            return False
        self._touched = set()
        budget = [self.PROBE_LIMIT]
        max_depth = self.n_levels - 1
        pos = lo
        result = False
        while pos <= hi:
            depth = min(max_depth, (pos & -pos).bit_length() - 1 if pos else max_depth)
            while depth > 0 and pos + (1 << depth) - 1 > hi:
                depth -= 1
            if self._doubt(pos >> depth, depth, budget):
                result = True
                break
            pos += 1 << depth
        self.last_query_blocks = len(self._touched)
        return result

    def may_contain(self, key: int) -> bool:
        self._touched = set()
        result = self._test_prefix(key, 0)
        self.last_query_blocks = len(self._touched)
        return result

    def __len__(self) -> int:
        return self._n

    @property
    def size_in_bits(self) -> int:
        return self._bits.n_bits
