"""SNARF — Sparse Numerical Array-Based Range Filter (Vaidya et al. 2022).

The "learned" §2.5 design: model the keys' CDF with a linear spline, map
every key through the model into a sparse bit array of ``n × multiplier``
positions, and answer a range query by asking whether any bit is set in the
query's mapped interval.  The bit array is stored compressed (Elias–Fano
over the set positions, as in the paper's "sparse" variant); the multiplier
is the space/FPR knob: FPR ≈ range-density / multiplier for ranges small
relative to the spline resolution.
"""

from __future__ import annotations

import numpy as np

from repro.common.eliasfano import EliasFano
from repro.core.interfaces import RangeFilter


class SNARF(RangeFilter):
    """Learned-CDF sparse-bit-array range filter."""

    def __init__(
        self,
        keys: list[int],
        *,
        key_bits: int = 48,
        multiplier: float = 8.0,
        spline_points: int = 256,
        seed: int = 0,
    ):
        if multiplier <= 1:
            raise ValueError("multiplier must exceed 1")
        if spline_points < 2:
            raise ValueError("spline_points must be at least 2")
        self.key_bits = key_bits
        self.multiplier = multiplier
        unique = sorted(set(keys))
        if any(k < 0 or k >= (1 << key_bits) for k in unique):
            raise ValueError("key out of universe range")
        self._n = len(unique)
        self._m = max(1, int(self._n * multiplier))

        if self._n == 0:
            self._knots_x = np.asarray([0, (1 << key_bits) - 1], dtype=np.float64)
            self._knots_y = np.asarray([0.0, 0.0])
            self._positions = EliasFano([], universe=self._m + 1)
            return

        # Spline knots: every (n // spline_points)-th key, plus the ends of
        # the universe so the model is total.
        step = max(1, self._n // spline_points)
        xs = [0] + [unique[i] for i in range(0, self._n, step)] + [
            unique[-1],
            (1 << key_bits) - 1,
        ]
        ys = [0.0] + [i / self._n for i in range(0, self._n, step)] + [1.0, 1.0]
        # Deduplicate x while keeping the model monotone.
        knots_x, knots_y = [], []
        for x, y in zip(xs, ys):
            if knots_x and x <= knots_x[-1]:
                knots_y[-1] = max(knots_y[-1], y)
                continue
            knots_x.append(x)
            knots_y.append(y)
        self._knots_x = np.asarray(knots_x, dtype=np.float64)
        self._knots_y = np.maximum.accumulate(np.asarray(knots_y, dtype=np.float64))

        positions = sorted({self._map(k) for k in unique})
        self._positions = EliasFano(positions, universe=self._m + 1)

    def _map(self, key: int) -> int:
        """Model position of *key* in the sparse array (monotone in key)."""
        cdf = float(np.interp(float(key), self._knots_x, self._knots_y))
        return min(self._m, int(cdf * self._m))

    def may_intersect(self, lo: int, hi: int) -> bool:
        if lo > hi:
            raise ValueError("empty range: lo > hi")
        if self._n == 0:
            return False
        return self._positions.contains_in_range(self._map(lo), self._map(hi))

    def __len__(self) -> int:
        return self._n

    @property
    def size_in_bits(self) -> int:
        """Elias–Fano-coded positions + the spline model."""
        model = self._knots_x.size * 2 * 64
        return self._positions.size_in_bits + model
