"""Proteus — the self-designing range filter (Knorr et al. 2022).

Combines the two prior designs: a SuRF-style trie stores every key prefix
up to a uniform depth l1 *exactly*, and a prefix Bloom filter covers the
longer prefixes at depth l2 > l1.  The pair (l1, l2) is chosen per
workload: Proteus takes a *sample of queries* and picks the configuration
with the lowest estimated FPR under the memory budget (the "contextual
prefix FPR" idea, realised here as direct simulation on the sample).

This reproduces both halves of the §2.5 description: the design itself and
the requirement for query samples / rebuild on workload shift.
"""

from __future__ import annotations

from repro.common.eliasfano import EliasFano
from repro.core.interfaces import RangeFilter
from repro.filters.bloom import BloomFilter


class _TrieLevel:
    """Exact set of l1-bit prefixes, Elias–Fano coded (FST stand-in)."""

    def __init__(self, keys: list[int], key_bits: int, depth: int):
        self.depth = depth
        self.shift = key_bits - depth
        prefixes = sorted({k >> self.shift for k in keys})
        self._set = EliasFano(prefixes, universe=(1 << depth) + 1)

    def range_may_contain(self, lo: int, hi: int) -> bool:
        return self._set.contains_in_range(lo >> self.shift, hi >> self.shift)

    @property
    def size_in_bits(self) -> int:
        return self._set.size_in_bits


class Proteus(RangeFilter):
    """Trie-to-l1 + prefix-Bloom-at-l2 range filter with self-tuning."""

    def __init__(
        self,
        keys: list[int],
        *,
        key_bits: int = 48,
        bits_per_key: float = 16.0,
        sample_queries: list[tuple[int, int]] | None = None,
        l1: int | None = None,
        l2: int | None = None,
        max_blocks: int = 8,
        seed: int = 0,
    ):
        self.key_bits = key_bits
        self.max_blocks = max_blocks
        self.seed = seed
        self._n = len(keys)
        if l1 is None or l2 is None:
            l1, l2 = self._tune(keys, key_bits, bits_per_key, sample_queries, seed)
        if not 1 <= l1 < l2 <= key_bits:
            raise ValueError("need 1 <= l1 < l2 <= key_bits")
        self.l1 = l1
        self.l2 = l2
        self._trie = _TrieLevel(keys, key_bits, l1)
        bloom_budget = max(1.0, bits_per_key - self._trie.size_in_bits / max(1, self._n))
        epsilon = min(0.99, max(1e-9, 0.6185**bloom_budget))
        self._bloom = BloomFilter(max(1, self._n), epsilon, seed=seed ^ 0x9E)
        self._l2_shift = key_bits - l2
        for key in keys:
            self._bloom.insert(key >> self._l2_shift)

    # -- self-design ------------------------------------------------------------

    @classmethod
    def _tune(
        cls,
        keys: list[int],
        key_bits: int,
        bits_per_key: float,
        sample_queries: list[tuple[int, int]] | None,
        seed: int,
    ) -> tuple[int, int]:
        """Pick (l1, l2) minimising FPR on the query sample.

        Without a sample, fall back to a generic configuration.  With one,
        build small candidates and measure — the sample is what the paper's
        CPFPR model summarises analytically.
        """
        if not sample_queries or not keys:
            return max(1, key_bits - 24), max(2, key_bits - 8)
        key_set = sorted(set(keys))
        candidates = []
        for l1_off in (28, 24, 20, 16):
            for l2_off in (12, 8, 4):
                l1, l2 = key_bits - l1_off, key_bits - l2_off
                if 1 <= l1 < l2 <= key_bits:
                    candidates.append((l1, l2))
        best, best_fpr = candidates[0], 1.1
        sample = sample_queries[:200]
        for l1, l2 in candidates:
            trial = cls(
                key_set,
                key_bits=key_bits,
                bits_per_key=bits_per_key,
                l1=l1,
                l2=l2,
                seed=seed,
            )
            fps = 0
            for lo, hi in sample:
                if trial.may_intersect(lo, hi) and not _truly_intersects(key_set, lo, hi):
                    fps += 1
            fpr = fps / len(sample)
            if fpr < best_fpr:
                best, best_fpr = (l1, l2), fpr
        return best

    # -- queries ---------------------------------------------------------------------

    def may_intersect(self, lo: int, hi: int) -> bool:
        if lo > hi:
            raise ValueError("empty range: lo > hi")
        if self._n == 0:
            return False
        # Level 1: exact prefixes — a miss here is definitive.
        if not self._trie.range_may_contain(lo, hi):
            return False
        # Level 2: refine with the prefix Bloom when the range is narrow
        # enough at depth l2.
        first, last = lo >> self._l2_shift, hi >> self._l2_shift
        if last - first + 1 > self.max_blocks:
            return True
        return any(
            self._bloom.may_contain(block) for block in range(first, last + 1)
        )

    def __len__(self) -> int:
        return self._n

    @property
    def size_in_bits(self) -> int:
        return self._trie.size_in_bits + self._bloom.size_in_bits


def _truly_intersects(sorted_keys: list[int], lo: int, hi: int) -> bool:
    from bisect import bisect_left

    i = bisect_left(sorted_keys, lo)
    return i < len(sorted_keys) and sorted_keys[i] <= hi
