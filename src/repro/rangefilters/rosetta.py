"""Rosetta — Robust Space-Time Optimized Range Filter (Luo et al. 2020).

Conceptually a segment tree of Bloom filters: the filter at level ℓ stores
every key's length-ℓ prefix.  A range query is decomposed into dyadic
intervals; each is probed in its level's Bloom filter and *doubted*
(recursively re-checked in finer levels) until the bottom level confirms.

Reproduced properties (experiments F4/F5):

* point and short-range queries get a real FPR guarantee independent of
  the key distribution (what SuRF lacks);
* FPR and CPU cost grow with range length — past ``2**n_levels`` the
  filter degrades to no filtering;
* CPU overhead is intrinsic (many Bloom probes per query) — exposed via
  ``last_query_probes``.
"""

from __future__ import annotations

from repro.core.interfaces import RangeFilter
from repro.filters.bloom import BloomFilter

_DEFAULT_LEVELS = 16


class Rosetta(RangeFilter):
    """Dyadic Bloom-filter hierarchy.

    Parameters
    ----------
    keys:
        The integer key set.
    bits_per_key:
        Total memory budget across all levels.
    n_levels:
        Bottom levels carrying Bloom filters; ranges longer than
        ``2**(n_levels-1)`` cannot be decomposed into covered dyadic nodes
        and return True unfiltered.
    bottom_fraction:
        Fraction of the budget given to the bottom (full-prefix) level —
        Rosetta's tuning knob (ablation A4).
    """

    def __init__(
        self,
        keys: list[int],
        *,
        key_bits: int = 48,
        bits_per_key: float = 16.0,
        n_levels: int = _DEFAULT_LEVELS,
        bottom_fraction: float = 0.5,
        seed: int = 0,
    ):
        if not 1 <= n_levels <= key_bits:
            raise ValueError("n_levels must be in [1, key_bits]")
        if not 0 < bottom_fraction <= 1:
            raise ValueError("bottom_fraction must be in (0, 1]")
        self.key_bits = key_bits
        self.n_levels = n_levels
        self.seed = seed
        self._n = len(keys)
        n = max(1, self._n)

        # Memory split: bottom level gets bottom_fraction, the rest is spread
        # evenly over the upper levels.
        budgets = self._level_budgets(bits_per_key, n_levels, bottom_fraction)
        self._filters: list[BloomFilter | None] = []
        for level, budget in enumerate(budgets):
            if budget < 0.25:
                self._filters.append(None)  # too little memory to be useful
                continue
            epsilon = min(0.99, max(1e-9, 0.6185**budget))  # ε = 0.6185^(m/n)
            self._filters.append(BloomFilter(n, epsilon, seed=seed ^ 0xA5 ^ level))
        for key in keys:
            if key < 0 or key >= 1 << key_bits:
                raise ValueError("key out of universe range")
            for depth_from_bottom, filt in enumerate(self._filters):
                if filt is not None:
                    filt.insert(key >> depth_from_bottom)
        self.last_query_probes = 0

    @staticmethod
    def _level_budgets(
        bits_per_key: float, n_levels: int, bottom_fraction: float
    ) -> list[float]:
        """bits/key for each level; index 0 is the bottom (full prefixes)."""
        if n_levels == 1:
            return [bits_per_key]
        upper = (bits_per_key * (1 - bottom_fraction)) / (n_levels - 1)
        return [bits_per_key * bottom_fraction] + [upper] * (n_levels - 1)

    # -- queries -----------------------------------------------------------------

    PROBE_LIMIT = 4096

    def _doubt(self, prefix: int, depth_from_bottom: int) -> bool:
        """Is some key under *prefix* present?  Recursive doubting probe.

        A probe budget caps the recursion: once exceeded, the filter gives
        up and answers True — the paper's "no filtering for long ranges /
        high CPU overhead" regime, made explicit.
        """
        if self.last_query_probes > self.PROBE_LIMIT:
            return True
        self.last_query_probes += 1
        filt = self._filters[depth_from_bottom] if depth_from_bottom < self.n_levels else None
        if filt is not None and not filt.may_contain(prefix):
            return False
        if depth_from_bottom == 0:
            return True  # bottom level confirmed (up to its ε)
        return self._doubt(prefix << 1, depth_from_bottom - 1) or self._doubt(
            (prefix << 1) | 1, depth_from_bottom - 1
        )

    def may_intersect(self, lo: int, hi: int) -> bool:
        if lo > hi:
            raise ValueError("empty range: lo > hi")
        if self._n == 0:
            return False
        self.last_query_probes = 0
        max_depth = self.n_levels - 1
        # Walk dyadic nodes left to right, greedily taking the largest
        # aligned block that fits both the range and the filter hierarchy.
        pos = lo
        while pos <= hi:
            depth = min(max_depth, (pos & -pos).bit_length() - 1 if pos else max_depth)
            while depth > 0 and pos + (1 << depth) - 1 > hi:
                depth -= 1
            if self._doubt(pos >> depth, depth):
                return True
            pos += 1 << depth
        return False

    def may_contain(self, key: int) -> bool:
        self.last_query_probes = 1
        filt = self._filters[0]
        return filt.may_contain(key) if filt is not None else True

    def __len__(self) -> int:
        return self._n

    @property
    def size_in_bits(self) -> int:
        return sum(f.size_in_bits for f in self._filters if f is not None)

    def max_filtered_range(self) -> int:
        """Ranges longer than this decompose into nodes above the hierarchy
        and receive no filtering."""
        return 1 << (self.n_levels - 1)
