"""Crate filter (Bercea & Even 2020, SWAT) — simplified reproduction.

§2.1: "Other variants such as the Crate and Prefix filters chain hash
buckets to resolve collisions."  The crate filter is a fully-dynamic,
space-efficient fingerprint dictionary with a constant number of memory
accesses: keys hash to a primary bucket; overflow spills into a bounded
chain of secondary buckets shared by a bucket group, so lookups touch at
most a constant number of buckets w.h.p.

This reproduction keeps the two-tier bucket-chaining structure and the
constant-access accounting (``max_access`` instruments it); the paper's
succinct within-bucket encodings are represented by the usual logical bit
accounting.
"""

from __future__ import annotations

import math

from repro.common.hashing import fingerprint, hash_to_range
from repro.core.errors import DeletionError, FilterFullError
from repro.core.interfaces import DynamicFilter, Key

BUCKET_SLOTS = 8
GROUP_BUCKETS = 8  # buckets sharing one overflow chain
CHAIN_BUCKETS = 2  # bounded chain length (constant accesses)


class CrateFilter(DynamicFilter):
    """Bucket-chained dynamic fingerprint filter."""

    supports_deletes = True

    def __init__(self, n_buckets: int, fingerprint_bits: int, *, seed: int = 0):
        if n_buckets < 1:
            raise ValueError("n_buckets must be positive")
        if not 1 <= fingerprint_bits <= 56:
            raise ValueError("fingerprint_bits must be in [1, 56]")
        self.n_buckets = n_buckets
        self.fingerprint_bits = fingerprint_bits
        self.seed = seed
        self.n_groups = (n_buckets + GROUP_BUCKETS - 1) // GROUP_BUCKETS
        self._primary: list[list[int]] = [[] for _ in range(n_buckets)]
        # Overflow chain per group; entries remember their home bucket so
        # deletes and queries stay exact.
        self._chains: list[list[tuple[int, int]]] = [[] for _ in range(self.n_groups)]
        self._n = 0

    def _locate(self, key: Key) -> tuple[int, int, int]:
        bucket = hash_to_range(key, self.n_buckets, self.seed ^ 0xC4)
        fp = fingerprint(key, self.fingerprint_bits, self.seed ^ 0xC5)
        return bucket, bucket // GROUP_BUCKETS, fp

    def insert(self, key: Key) -> None:
        bucket, group, fp = self._locate(key)
        if len(self._primary[bucket]) < BUCKET_SLOTS:
            self._primary[bucket].append(fp)
            self._n += 1
            return
        chain = self._chains[group]
        if len(chain) >= CHAIN_BUCKETS * BUCKET_SLOTS:
            raise FilterFullError("crate filter group chain exhausted")
        chain.append((bucket, fp))
        self._n += 1

    def may_contain(self, key: Key) -> bool:
        bucket, group, fp = self._locate(key)
        if fp in self._primary[bucket]:
            return True
        if len(self._primary[bucket]) < BUCKET_SLOTS:
            return False  # bucket never overflowed: the chain is irrelevant
        return (bucket, fp) in self._chains[group]

    def delete(self, key: Key) -> None:
        bucket, group, fp = self._locate(key)
        chain = self._chains[group]
        # Prefer the chain so a freed primary slot keeps its "overflowed"
        # semantics consistent (the chain drains first).
        if (bucket, fp) in chain:
            chain.remove((bucket, fp))
            self._n -= 1
            return
        if fp in self._primary[bucket]:
            self._primary[bucket].remove(fp)
            self._n -= 1
            # Pull a chained entry of this bucket back into the primary so
            # the not-full ⇒ no-chain-entries invariant holds.
            for i, (b, chained_fp) in enumerate(chain):
                if b == bucket:
                    chain.pop(i)
                    self._primary[bucket].append(chained_fp)
                    break
            return
        raise DeletionError("delete of a key that was never inserted")

    def max_access(self, key: Key) -> int:
        """Buckets touched by a query: 1, or 1 + chain (constant)."""
        bucket, _, _ = self._locate(key)
        return 1 if len(self._primary[bucket]) < BUCKET_SLOTS else 1 + CHAIN_BUCKETS

    def __len__(self) -> int:
        return self._n

    @property
    def n_slots(self) -> int:
        return self.n_buckets * BUCKET_SLOTS + self.n_groups * CHAIN_BUCKETS * BUCKET_SLOTS

    @property
    def size_in_bits(self) -> int:
        # Chained slots additionally store the home-bucket offset in group
        # (3 bits for a group of 8).
        primary = self.n_buckets * BUCKET_SLOTS * self.fingerprint_bits
        chain = (
            self.n_groups
            * CHAIN_BUCKETS
            * BUCKET_SLOTS
            * (self.fingerprint_bits + 3)
        )
        return primary + chain

    def expected_fpr(self) -> float:
        per_bucket = self._n / self.n_buckets
        return min(1.0, per_bucket * 2.0 ** (-self.fingerprint_bits))

    @classmethod
    def for_capacity(cls, capacity: int, epsilon: float, *, seed: int = 0) -> "CrateFilter":
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        n_buckets = max(1, math.ceil(capacity / (BUCKET_SLOTS * 0.8)))
        f = max(1, math.ceil(math.log2(BUCKET_SLOTS / epsilon)))
        return cls(n_buckets, f, seed=seed)
