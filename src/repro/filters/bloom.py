"""Bloom filters (Bloom 1970) — standard and cache-blocked.

The semi-dynamic baseline of the tutorial: inserts but no deletes, capacity
fixed at construction, 1.44·log₂(1/ε) bits/key at the optimal hash count.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

import numpy as np

from repro.common.bitvector import BitVector
from repro.common.hashing import MASK64, hash_pair, hash_pair_many
from repro.core.analysis import bloom_optimal_hashes
from repro.core.interfaces import DynamicFilter, Key, KeyBatch


class BloomFilter(DynamicFilter):
    """Standard Bloom filter with double hashing.

    Parameters
    ----------
    capacity:
        Number of keys the filter is sized for.  The FPR guarantee holds
        while ``len(self) <= capacity``.
    epsilon:
        Target false-positive rate.
    n_hashes:
        Override the hash count (used by the A2 ablation); defaults to the
        optimal k = ln2 · m/n.
    """

    supports_deletes = False

    def __init__(
        self,
        capacity: int,
        epsilon: float,
        *,
        n_hashes: int | None = None,
        seed: int = 0,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        self.capacity = capacity
        self.epsilon = epsilon
        self.seed = seed
        bits_per_key = math.log2(math.e) * math.log2(1 / epsilon)
        self._m = max(64, int(math.ceil(capacity * bits_per_key)))
        self._k = n_hashes if n_hashes is not None else bloom_optimal_hashes(bits_per_key)
        if self._k < 1:
            raise ValueError("n_hashes must be at least 1")
        self._bits = BitVector(self._m)
        self._n = 0

    def _positions(self, key: Key) -> list[int]:
        # Kirsch–Mitzenmacher double hashing: g_i = h1 + i·h2 (mod 2^64,
        # then mod m) — the 64-bit wrap keeps this identical to the
        # vectorised kernel below, as in the C implementations.
        h1, h2 = hash_pair(key, self.seed)
        h2 |= 1  # odd step avoids degenerate cycles
        return [((h1 + i * h2) & MASK64) % self._m for i in range(self._k)]

    def _positions_many(self, keys: KeyBatch) -> np.ndarray:
        """(n_keys, k) bit positions — the batched double-hash kernel."""
        h1, h2 = hash_pair_many(keys, self.seed)
        h2 = h2 | np.uint64(1)
        i = np.arange(self._k, dtype=np.uint64)
        return (h1[:, None] + i[None, :] * h2[:, None]) % np.uint64(self._m)

    def bit_positions(self, key: Key) -> np.ndarray:
        """The k probe positions for *key* as an int64 array.

        Public so aggregating structures that share this filter's
        geometry — the Bloofi tree ORs same-shape leaves and must test
        the *identical* bits (:mod:`repro.core.bloofi`) — can compute a
        key's probe set once and reuse it at every level.
        """
        return np.asarray(self._positions(key), dtype=np.int64)

    def insert(self, key: Key) -> None:
        for pos in self._positions(key):
            self._bits.set(pos)
        self._n += 1

    def insert_many(self, keys: KeyBatch) -> None:
        """Set all k bits of every key with one scatter."""
        n = len(keys)
        if not n:
            return
        self._bits.set_many(self._positions_many(keys).ravel())
        self._n += n

    def may_contain(self, key: Key) -> bool:
        return all(self._bits.get(pos) for pos in self._positions(key))

    def may_contain_many(self, keys: KeyBatch) -> np.ndarray:
        """Gather all k probe bits per key and AND across the hash axis."""
        if not len(keys):
            return np.zeros(0, dtype=bool)
        pos = self._positions_many(keys)
        words = self._bits.words
        bits = (words[(pos >> np.uint64(6)).astype(np.int64)]
                >> (pos & np.uint64(63))) & np.uint64(1)
        return bits.all(axis=1)

    def __len__(self) -> int:
        return self._n

    @property
    def size_in_bits(self) -> int:
        return self._m

    @property
    def n_hashes(self) -> int:
        return self._k

    @property
    def fill_fraction(self) -> float:
        """Fraction of set bits (≈ 0.5 at capacity with optimal k)."""
        return self._bits.count() / self._m

    @classmethod
    def from_keys(
        cls, keys: Iterable[Key], epsilon: float, *, seed: int = 0
    ) -> "BloomFilter":
        """Build a filter sized exactly for *keys*."""
        key_list = list(keys)
        bloom = cls(max(1, len(key_list)), epsilon, seed=seed)
        bloom.insert_many(key_list)
        return bloom


class BlockedBloomFilter(DynamicFilter):
    """Cache-blocked Bloom filter.

    Each key hashes to one 512-bit block (a cache line on the machines the
    tutorial targets) and sets k bits inside it.  One memory access per
    query instead of k, at the cost of a slightly higher FPR due to block
    load imbalance — the classic speed/accuracy trade.
    """

    supports_deletes = False
    BLOCK_BITS = 512

    def __init__(self, capacity: int, epsilon: float, *, seed: int = 0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        self.capacity = capacity
        self.epsilon = epsilon
        self.seed = seed
        bits_per_key = math.log2(math.e) * math.log2(1 / epsilon)
        total_bits = max(self.BLOCK_BITS, int(math.ceil(capacity * bits_per_key)))
        self._n_blocks = (total_bits + self.BLOCK_BITS - 1) // self.BLOCK_BITS
        self._k = bloom_optimal_hashes(bits_per_key)
        self._bits = BitVector(self._n_blocks * self.BLOCK_BITS)
        self._n = 0

    def _positions(self, key: Key) -> list[int]:
        h1, h2 = hash_pair(key, self.seed)
        block = (h1 % self._n_blocks) * self.BLOCK_BITS
        step = (h2 | 1) % self.BLOCK_BITS or 1
        offset = h2 >> 32
        return [
            block + ((offset + i * step) % self.BLOCK_BITS) for i in range(self._k)
        ]

    def _positions_many(self, keys: KeyBatch) -> np.ndarray:
        """(n_keys, k) positions, all inside each key's single block."""
        h1, h2 = hash_pair_many(keys, self.seed)
        block_bits = np.uint64(self.BLOCK_BITS)
        block = (h1 % np.uint64(self._n_blocks)) * block_bits
        step = (h2 | np.uint64(1)) % block_bits  # odd mod even is nonzero
        offset = h2 >> np.uint64(32)
        i = np.arange(self._k, dtype=np.uint64)
        in_block = (offset[:, None] + i[None, :] * step[:, None]) % block_bits
        return block[:, None] + in_block

    def insert(self, key: Key) -> None:
        for pos in self._positions(key):
            self._bits.set(pos)
        self._n += 1

    def insert_many(self, keys: KeyBatch) -> None:
        n = len(keys)
        if not n:
            return
        self._bits.set_many(self._positions_many(keys).ravel())
        self._n += n

    def may_contain(self, key: Key) -> bool:
        return all(self._bits.get(pos) for pos in self._positions(key))

    def may_contain_many(self, keys: KeyBatch) -> np.ndarray:
        if not len(keys):
            return np.zeros(0, dtype=bool)
        pos = self._positions_many(keys)
        words = self._bits.words
        bits = (words[(pos >> np.uint64(6)).astype(np.int64)]
                >> (pos & np.uint64(63))) & np.uint64(1)
        return bits.all(axis=1)

    def __len__(self) -> int:
        return self._n

    @property
    def size_in_bits(self) -> int:
        return self._bits.n_bits
