"""XOR and XOR+ filters (Graf & Lemire 2020).

Static, algebraic filters: each key hashes to three table positions, and
construction (hypergraph peeling) finds an assignment of f-bit table values
such that for every key the XOR of its three cells equals its fingerprint.

Space: 1.23·f bits/key for the plain XOR filter (the tutorial quotes the
amortised 1.22 figure); XOR+ compresses the third segment — which peeling
leaves largely empty — with a rank bit vector, landing near
1.08·log₂(1/ε) + 0.5 bits/key.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

import numpy as np

from repro.common.bitvector import BitVector, PackedArray
from repro.common.hashing import (
    as_key_array,
    derived_seeds,
    fingerprint,
    fingerprint_many,
    hash_to_range,
    hash_to_range_many,
)
from repro.common.rankselect import RankSelect
from repro.core.errors import ImmutableFilterError
from repro.core.interfaces import Key, KeyBatch, StaticFilter

_SIZE_FACTOR = 1.23
_MAX_CONSTRUCTION_ATTEMPTS = 64


class _PeelResult:
    """Order in which keys were peeled, with the slot each key owns."""

    __slots__ = ("order",)

    def __init__(self, order: list[tuple[int, int]]):
        self.order = order  # (key_index, owned_slot), in peel order


def _peel(
    all_slots: list[tuple[int, int, int]],
    n_slots: int,
    prefer_from: int = 0,
) -> _PeelResult | None:
    """Peel the 3-uniform hypergraph; None if a 2-core remains.

    Slots at index < *prefer_from* are peeled first when available (a peeled
    slot becomes its key's *owned* slot and is written a nonzero value).
    XOR+ passes the third-segment boundary here so owned slots concentrate
    in segments 0–1, leaving segment 2 mostly zero and compressible.
    """
    n_keys = len(all_slots)
    count = [0] * n_slots
    xor_keys = [0] * n_slots  # XOR of key indexes touching the slot
    for key_index, slots in enumerate(all_slots):
        for slot in slots:
            count[slot] += 1
            xor_keys[slot] ^= key_index
    low = [s for s in range(prefer_from) if count[s] == 1]
    high = [s for s in range(prefer_from, n_slots) if count[s] == 1]
    order: list[tuple[int, int]] = []
    while low or high:
        slot = low.pop() if low else high.pop()
        if count[slot] != 1:
            continue
        key_index = xor_keys[slot]
        order.append((key_index, slot))
        for other in all_slots[key_index]:
            count[other] -= 1
            xor_keys[other] ^= key_index
            if count[other] == 1:
                (low if other < prefer_from else high).append(other)
    if len(order) != n_keys:
        return None
    return _PeelResult(order)


class XorFilter(StaticFilter):
    """Plain XOR filter over a fixed key set."""

    def __init__(
        self,
        keys: Iterable[Key],
        fingerprint_bits: int,
        *,
        seed: int = 0,
        _size_factor: float = _SIZE_FACTOR,
        _prefer_first_segments: bool = False,
    ):
        key_list = list(keys)
        if not 1 <= fingerprint_bits <= 56:
            raise ValueError("fingerprint_bits must be in [1, 56]")
        self.fingerprint_bits = fingerprint_bits
        self._n = len(key_list)
        n_slots = max(6, int(math.ceil(_size_factor * max(1, self._n))) + 3)
        self._segment = n_slots // 3
        self._n_slots = self._segment * 3
        prefer_from = 2 * self._segment if _prefer_first_segments else 0

        # Build fast path: all three slot hashes (and later the
        # fingerprints) for the whole key set come from the batch kernels,
        # leaving only peeling and back-assignment in Python.
        key_arr = as_key_array(key_list)
        for attempt in range(_MAX_CONSTRUCTION_ATTEMPTS):
            self.seed = derived_seeds(seed, attempt + 1)[-1]
            all_slots = self._slots_many(key_arr)
            peel = _peel(all_slots, self._n_slots, prefer_from)
            if peel is not None:
                break
        else:
            raise RuntimeError("XOR filter construction failed (duplicate keys?)")

        self._table = PackedArray(self._n_slots, fingerprint_bits)
        fingerprints = fingerprint_many(
            key_arr, fingerprint_bits, self.seed ^ 0xF0
        ).tolist() if self._n else []
        # Assign in reverse peel order: each key's owned slot is free to take
        # whatever value makes the three-way XOR equal its fingerprint.
        for key_index, owned in reversed(peel.order):
            value = fingerprints[key_index]
            for slot in all_slots[key_index]:
                if slot != owned:
                    value ^= self._table.get(slot)
            self._table.set(owned, value)

    # -- hashing ------------------------------------------------------------

    def _fingerprint(self, key: Key) -> int:
        return fingerprint(key, self.fingerprint_bits, self.seed ^ 0xF0)

    def _slots(self, key: Key) -> tuple[int, int, int]:
        s = self._segment
        return (
            hash_to_range(key, s, self.seed ^ 1),
            s + hash_to_range(key, s, self.seed ^ 2),
            2 * s + hash_to_range(key, s, self.seed ^ 3),
        )

    def _slots_many(self, keys: KeyBatch) -> list[tuple[int, int, int]]:
        """Batched :meth:`_slots` for the whole key set."""
        arr = as_key_array(keys)
        s = self._segment
        h0 = hash_to_range_many(arr, s, self.seed ^ 1)
        h1 = s + hash_to_range_many(arr, s, self.seed ^ 2)
        h2 = 2 * s + hash_to_range_many(arr, s, self.seed ^ 3)
        return list(zip(h0.tolist(), h1.tolist(), h2.tolist()))

    def _probe_arrays(self, keys: KeyBatch):
        """(h0, h1, h2, fingerprint) arrays for a probe batch."""
        arr = as_key_array(keys)
        s = self._segment
        h0 = hash_to_range_many(arr, s, self.seed ^ 1)
        h1 = s + hash_to_range_many(arr, s, self.seed ^ 2)
        h2 = 2 * s + hash_to_range_many(arr, s, self.seed ^ 3)
        fp = fingerprint_many(arr, self.fingerprint_bits, self.seed ^ 0xF0)
        return h0, h1, h2, fp

    # -- API ------------------------------------------------------------------

    def may_contain(self, key: Key) -> bool:
        h0, h1, h2 = self._slots(key)
        value = (
            self._table.get(h0) ^ self._table.get(h1) ^ self._table.get(h2)
        )
        return value == self._fingerprint(key)

    def may_contain_many(self, keys: KeyBatch) -> np.ndarray:
        """Three table gathers + one compare for the whole batch."""
        if not len(keys):
            return np.zeros(0, dtype=bool)
        h0, h1, h2, fp = self._probe_arrays(keys)
        value = (
            self._table.get_many(h0)
            ^ self._table.get_many(h1)
            ^ self._table.get_many(h2)
        )
        return value == fp

    def insert(self, key: Key) -> None:
        raise ImmutableFilterError("XOR filters are static (build-once)")

    def __len__(self) -> int:
        return self._n

    @property
    def size_in_bits(self) -> int:
        return self._table.size_in_bits

    def expected_fpr(self) -> float:
        return 2.0 ** (-self.fingerprint_bits)

    @classmethod
    def build(cls, keys: Iterable[Key], epsilon: float, *, seed: int = 0) -> "XorFilter":
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        bits = max(1, math.ceil(math.log2(1 / epsilon)))
        return cls(keys, bits, seed=seed)


class XorPlusFilter(StaticFilter):
    """XOR+ filter: XOR filter with a compressed third segment.

    Peeling tends to drain the third segment (slots are peeled from it
    first), so most of its cells are zero.  XOR+ stores a presence bit
    vector plus only the nonzero cells, recovered via rank — trading a
    rank lookup per query for ~0.15·f bits/key.
    """

    def __init__(self, keys: Iterable[Key], fingerprint_bits: int, *, seed: int = 0):
        self._inner = XorFilter(
            keys, fingerprint_bits, seed=seed, _prefer_first_segments=True
        )
        segment = self._inner._segment
        third_start = 2 * segment
        nonzero = BitVector(segment)
        values = []
        for i in range(segment):
            cell = self._inner._table.get(third_start + i)
            if cell:
                nonzero.set(i)
                values.append(cell)
        self._nonzero = nonzero
        self._rank = RankSelect(nonzero)
        self._packed_third = PackedArray(max(1, len(values)), fingerprint_bits)
        for i, value in enumerate(values):
            self._packed_third.set(i, value)
        self._n_nonzero = len(values)
        self.fingerprint_bits = fingerprint_bits

    def _third_cell(self, offset: int) -> int:
        if not self._nonzero.get(offset):
            return 0
        return self._packed_third.get(self._rank.rank(offset))

    def _third_cells_many(self, offsets: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`_third_cell`: presence test, rank, gather."""
        present = self._nonzero.test_many(offsets)
        ranks = self._rank.rank_many(offsets)
        # Ranks are only meaningful where the presence bit is set; clamp the
        # rest so the gather stays in bounds, then mask them to zero.
        safe = np.minimum(ranks, self._packed_third.n_fields - 1)
        values = self._packed_third.get_many(safe)
        return np.where(present, values, np.uint64(0))

    def may_contain(self, key: Key) -> bool:
        inner = self._inner
        h0, h1, h2 = inner._slots(key)
        value = (
            inner._table.get(h0)
            ^ inner._table.get(h1)
            ^ self._third_cell(h2 - 2 * inner._segment)
        )
        return value == inner._fingerprint(key)

    def may_contain_many(self, keys: KeyBatch) -> np.ndarray:
        """Two table gathers + one rank-directed gather per batch."""
        if not len(keys):
            return np.zeros(0, dtype=bool)
        inner = self._inner
        h0, h1, h2, fp = inner._probe_arrays(keys)
        offsets = (h2 - np.uint64(2 * inner._segment)).astype(np.int64)
        value = (
            inner._table.get_many(h0)
            ^ inner._table.get_many(h1)
            ^ self._third_cells_many(offsets)
        )
        return value == fp

    def insert(self, key: Key) -> None:
        raise ImmutableFilterError("XOR+ filters are static (build-once)")

    def __len__(self) -> int:
        return len(self._inner)

    @property
    def size_in_bits(self) -> int:
        """Two plain segments + presence bits + packed nonzero cells."""
        two_segments = 2 * self._inner._segment * self.fingerprint_bits
        return (
            two_segments
            + self._nonzero.n_bits
            + self._n_nonzero * self.fingerprint_bits
        )

    def expected_fpr(self) -> float:
        return 2.0 ** (-self.fingerprint_bits)

    @classmethod
    def build(
        cls, keys: Iterable[Key], epsilon: float, *, seed: int = 0
    ) -> "XorPlusFilter":
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        bits = max(1, math.ceil(math.log2(1 / epsilon)))
        return cls(keys, bits, seed=seed)
