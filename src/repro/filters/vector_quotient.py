"""Vector quotient filter (Pandey, Conway, Durie, Bender, Farach-Colton &
Johnson 2021, SIGMOD).

The §2.1 footnote's third data point (2.914 metadata bits/key): keys hash
to one of two large *blocks* (the paper's "mini filters", sized for SIMD),
chosen power-of-two-choices style by load; within a block, fingerprints are
stored in a quotienting mini-table.  Two-choice blocks keep every block
below capacity w.h.p. at ~94% global load without cuckoo kicking — inserts
never displace other keys, which is what makes the VQF fast and easy to
make concurrent.

This reproduction keeps the two-choice block structure and per-block
quotienting semantics; the SIMD word layout is modelled by the metadata
accounting (2.914 bits/key at full load, per the paper).
"""

from __future__ import annotations

import math

from repro.common.hashing import fingerprint, hash64, hash_to_range
from repro.core.errors import DeletionError, FilterFullError
from repro.core.interfaces import DynamicFilter, Key

BLOCK_SLOTS = 48  # the paper's mini-filter capacity (46-51 depending on r)
METADATA_BITS_PER_KEY = 2.914


class VectorQuotientFilter(DynamicFilter):
    """Two-choice blocked fingerprint filter (no kicking, fast inserts)."""

    supports_deletes = True

    def __init__(
        self,
        n_blocks: int,
        fingerprint_bits: int,
        *,
        block_slots: int = BLOCK_SLOTS,
        seed: int = 0,
    ):
        if n_blocks < 2:
            raise ValueError("need at least two blocks for two-choice hashing")
        if not 1 <= fingerprint_bits <= 56:
            raise ValueError("fingerprint_bits must be in [1, 56]")
        self.n_blocks = n_blocks
        self.fingerprint_bits = fingerprint_bits
        self.block_slots = block_slots
        self.seed = seed
        # Each block is a small multiset of fingerprints (the mini-filter).
        self._blocks: list[list[int]] = [[] for _ in range(n_blocks)]
        self._n = 0

    # -- hashing -----------------------------------------------------------------

    def _candidates(self, key: Key) -> tuple[int, int, int]:
        h = hash64(key, self.seed ^ 0x7F)
        b1 = hash_to_range(h, self.n_blocks, 1)
        b2 = hash_to_range(h, self.n_blocks, 2)
        if b2 == b1:
            b2 = (b2 + 1) % self.n_blocks
        fp = fingerprint(key, self.fingerprint_bits, self.seed ^ 0x7E)
        return b1, b2, fp

    # -- operations ------------------------------------------------------------------

    def insert(self, key: Key) -> None:
        b1, b2, fp = self._candidates(key)
        # Power of two choices: the less-loaded block takes the key.
        target = b1 if len(self._blocks[b1]) <= len(self._blocks[b2]) else b2
        if len(self._blocks[target]) >= self.block_slots:
            raise FilterFullError(
                "vector quotient filter block overflow (two-choice exhausted)"
            )
        self._blocks[target].append(fp)
        self._n += 1

    def may_contain(self, key: Key) -> bool:
        b1, b2, fp = self._candidates(key)
        return fp in self._blocks[b1] or fp in self._blocks[b2]

    def delete(self, key: Key) -> None:
        b1, b2, fp = self._candidates(key)
        for block_index in (b1, b2):
            block = self._blocks[block_index]
            if fp in block:
                block.remove(fp)
                self._n -= 1
                return
        raise DeletionError("delete of a key that was never inserted")

    # -- accounting -----------------------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def n_slots(self) -> int:
        return self.n_blocks * self.block_slots

    @property
    def load_factor(self) -> float:
        return self._n / self.n_slots

    @property
    def size_in_bits(self) -> int:
        """Fingerprints + the paper's 2.914 metadata bits per slot."""
        return int(self.n_slots * (self.fingerprint_bits + METADATA_BITS_PER_KEY))

    def expected_fpr(self) -> float:
        """Two blocks of ~load·slots fingerprints each may match."""
        return min(
            1.0,
            2 * self.load_factor * self.block_slots * 2.0 ** (-self.fingerprint_bits),
        )

    def max_block_load(self) -> int:
        """Fullest block (two-choice keeps this near the average)."""
        return max(len(block) for block in self._blocks)

    @classmethod
    def for_capacity(
        cls, capacity: int, epsilon: float, *, seed: int = 0
    ) -> "VectorQuotientFilter":
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        n_blocks = max(2, math.ceil(capacity / (BLOCK_SLOTS * 0.94)))
        f = max(1, math.ceil(math.log2(2 * BLOCK_SLOTS / epsilon)))
        return cls(n_blocks, f, seed=seed)
