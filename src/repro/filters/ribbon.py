"""Ribbon filter (Dillinger et al. 2022, SEA).

A static, algebraic filter built on a *banded* linear system over GF(2):
each key contributes one equation whose nonzero coefficients live in a
width-w window starting at a hashed position.  Banding makes incremental
Gaussian elimination O(w) amortised per key, and after back-substitution
only the solution matrix Z (m × r bits) is kept.

Space ≈ (m/n)·r bits/key with m/n ≈ 1.05 here (the paper's engineering
pushes this to 1.005·r + 0.008 with smash/bumping, which we do not
implement; the *shape* — ribbon below XOR below Bloom — is preserved).
"""

from __future__ import annotations

import math
from collections.abc import Iterable

import numpy as np

from repro.common.bitvector import PackedArray
from repro.common.hashing import (
    as_key_array,
    derived_seeds,
    fingerprint,
    fingerprint_many,
    hash64,
    hash64_many,
    hash_to_range,
    hash_to_range_many,
)
from repro.core.errors import ImmutableFilterError
from repro.core.interfaces import Key, KeyBatch, StaticFilter

RIBBON_WIDTH = 64
_OVERHEAD = 1.05
_MAX_CONSTRUCTION_ATTEMPTS = 64


class RibbonFilter(StaticFilter):
    """Standard ribbon filter over a fixed key set."""

    def __init__(self, keys: Iterable[Key], fingerprint_bits: int, *, seed: int = 0):
        key_list = list(keys)
        if not 1 <= fingerprint_bits <= 56:
            raise ValueError("fingerprint_bits must be in [1, 56]")
        self.fingerprint_bits = fingerprint_bits
        self._n = len(key_list)
        self._m = max(
            RIBBON_WIDTH + 1, int(math.ceil(_OVERHEAD * self._n)) + RIBBON_WIDTH
        )

        for attempt in range(_MAX_CONSTRUCTION_ATTEMPTS):
            self.seed = derived_seeds(seed, attempt + 1)[-1]
            solution = self._try_build(key_list)
            if solution is not None:
                self._solution = solution
                break
        else:
            raise RuntimeError("ribbon filter construction failed (duplicate keys?)")

    def _equation(self, key: Key) -> tuple[int, int, int]:
        """(start, coefficient word, fingerprint) for *key*.

        The coefficient word's bit 0 is always set, anchoring the band at
        ``start``; the remaining w−1 bits are uniform.
        """
        start = hash_to_range(key, self._m - RIBBON_WIDTH + 1, self.seed ^ 0xA1)
        coeff = hash64(key, self.seed ^ 0xA2) | 1
        fp = fingerprint(key, self.fingerprint_bits, self.seed ^ 0xA3)
        return start, coeff, fp

    def _equations_many(self, keys: KeyBatch):
        """Batched :meth:`_equation`: (starts, coeffs, fingerprints) arrays."""
        arr = as_key_array(keys)
        starts = hash_to_range_many(arr, self._m - RIBBON_WIDTH + 1, self.seed ^ 0xA1)
        coeffs = hash64_many(arr, self.seed ^ 0xA2) | np.uint64(1)
        fps = fingerprint_many(arr, self.fingerprint_bits, self.seed ^ 0xA3)
        return starts, coeffs, fps

    def _try_build(self, key_list: list[Key]) -> PackedArray | None:
        m = self._m
        coeff_rows = [0] * m
        result_rows = [0] * m
        # Build fast path: hash every equation in one batch; elimination
        # itself is inherently sequential (each row depends on the last).
        starts, coeffs, fps = self._equations_many(key_list)
        for start, coeff, value in zip(
            starts.tolist(), coeffs.tolist(), fps.tolist()
        ):
            while coeff:
                if coeff_rows[start] == 0:
                    coeff_rows[start] = coeff
                    result_rows[start] = value
                    break
                coeff ^= coeff_rows[start]
                value ^= result_rows[start]
                if coeff == 0:
                    if value != 0:
                        return None  # inconsistent (hash collision); reseed
                    break  # redundant equation (duplicate key)
                shift = (coeff & -coeff).bit_length() - 1
                coeff >>= shift
                start += shift
                if start >= m:
                    return None
        # Back-substitution: solve Z bottom-up; free rows get zero.
        z = [0] * m
        for row in range(m - 1, -1, -1):
            coeff = coeff_rows[row]
            if coeff == 0:
                continue
            acc = result_rows[row]
            bits = coeff >> 1
            offset = 1
            while bits:
                if bits & 1:
                    acc ^= z[row + offset]
                bits >>= 1
                offset += 1
            z[row] = acc
        packed = PackedArray(m, self.fingerprint_bits)
        for row, value in enumerate(z):
            if value:
                packed.set(row, value)
        return packed

    def may_contain(self, key: Key) -> bool:
        start, coeff, fp = self._equation(key)
        acc = 0
        offset = 0
        while coeff:
            if coeff & 1:
                acc ^= self._solution.get(start + offset)
            coeff >>= 1
            offset += 1
        return acc == fp

    def may_contain_many(self, keys: KeyBatch) -> np.ndarray:
        """Batched band dot product over GF(2).

        Iterates the w=64 coefficient bit positions once (not once per
        key): at offset *j*, the keys whose coefficient bit *j* is set
        gather ``solution[start + j]`` and XOR it into their accumulator.
        ``start <= m - w``, so every gather stays in bounds.
        """
        if not len(keys):
            return np.zeros(0, dtype=bool)
        starts, coeffs, fps = self._equations_many(keys)
        acc = np.zeros(len(fps), dtype=np.uint64)
        one = np.uint64(1)
        for j in range(RIBBON_WIDTH):
            live = (coeffs >> np.uint64(j)) & one != 0
            if not live.any():
                continue
            acc[live] ^= self._solution.get_many(
                (starts[live] + np.uint64(j)).astype(np.int64)
            )
        return acc == fps

    def insert(self, key: Key) -> None:
        raise ImmutableFilterError("ribbon filters are static (build-once)")

    def __len__(self) -> int:
        return self._n

    @property
    def size_in_bits(self) -> int:
        return self._solution.size_in_bits

    def expected_fpr(self) -> float:
        return 2.0 ** (-self.fingerprint_bits)

    @classmethod
    def build(
        cls, keys: Iterable[Key], epsilon: float, *, seed: int = 0
    ) -> "RibbonFilter":
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        bits = max(1, math.ceil(math.log2(1 / epsilon)))
        return cls(keys, bits, seed=seed)
