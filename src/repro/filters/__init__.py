"""Point-membership filters: Bloom, quotient, cuckoo, XOR, ribbon, prefix.

Static (XOR, ribbon), semi-dynamic (Bloom, blocked Bloom, prefix) and
dynamic (quotient, cuckoo) filters from §2 of the tutorial.
"""

from repro.filters.bloom import BlockedBloomFilter, BloomFilter
from repro.filters.crate import CrateFilter
from repro.filters.cuckoo import CuckooFilter
from repro.filters.morton import MortonFilter
from repro.filters.prefix import PrefixFilter
from repro.filters.quotient import QuotientFilter
from repro.filters.ribbon import RibbonFilter
from repro.filters.vector_quotient import VectorQuotientFilter
from repro.filters.xor import XorFilter, XorPlusFilter

__all__ = [
    "BlockedBloomFilter",
    "BloomFilter",
    "CrateFilter",
    "CuckooFilter",
    "MortonFilter",
    "PrefixFilter",
    "QuotientFilter",
    "RibbonFilter",
    "VectorQuotientFilter",
    "XorFilter",
    "XorPlusFilter",
]
