"""Morton filter (Breslow & Jayasena 2018, PVLDB).

A compressed cuckoo filter, cited by §2.1 alongside the cuckoo filter.
Three ideas, all reproduced here:

* **Compression** — buckets are grouped into cache-line *blocks* that
  store only the occupied fingerprint slots plus a per-bucket occupancy
  count (the "fullness counter array"), so empty slots cost ~2 bits
  instead of a whole fingerprint.  Logical buckets can be provisioned
  sparsely (``logical_slack``) while physical storage stays dense.
* **Bias** — keys are placed in their primary bucket whenever possible,
  so most positive queries touch a single block.
* **Overflow tracking** — a per-block bit (the OTA) records whether any
  key overflowed out of it; negative queries skip the secondary bucket
  probe unless the bit is set, giving "fewer than 2 bucket accesses" per
  query on average.
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.hashing import fingerprint, hash64, splitmix64
from repro.core.errors import DeletionError, FilterFullError
from repro.core.interfaces import DynamicFilter, Key

BUCKETS_PER_BLOCK = 16
SLOTS_PER_BUCKET = 3
_FULLNESS_BITS = 2  # counts 0..3 occupants per logical bucket
MAX_KICKS = 500


class MortonFilter(DynamicFilter):
    """Compressed, primary-biased cuckoo filter with overflow tracking."""

    supports_deletes = True

    def __init__(
        self,
        n_buckets: int,
        fingerprint_bits: int,
        *,
        block_capacity: int = 40,
        seed: int = 0,
    ):
        if n_buckets < BUCKETS_PER_BLOCK:
            raise ValueError(f"need at least {BUCKETS_PER_BLOCK} buckets")
        if not 1 <= fingerprint_bits <= 56:
            raise ValueError("fingerprint_bits must be in [1, 56]")
        self.n_buckets = 1 << max(4, (n_buckets - 1).bit_length())
        self.fingerprint_bits = fingerprint_bits
        # Physical capacity per block < logical slots (the compression win):
        # 16 buckets x 3 slots = 48 logical, but only `block_capacity` are
        # physically backed.
        self.block_capacity = block_capacity
        self.n_blocks = self.n_buckets // BUCKETS_PER_BLOCK
        self.seed = seed
        self._buckets: list[list[int]] = [[] for _ in range(self.n_buckets)]
        self._block_load = [0] * self.n_blocks
        self._ota = [False] * self.n_blocks  # overflow tracking array
        self._n = 0
        self._rng = np.random.default_rng(seed ^ 0x307)
        # Instrumentation for the paper's "<2 bucket accesses" claim.
        self.bucket_accesses = 0
        self.queries = 0

    # -- hashing -----------------------------------------------------------------

    def _fingerprint(self, key: Key) -> int:
        return fingerprint(key, self.fingerprint_bits, self.seed ^ 0x30)

    def _primary(self, key: Key) -> int:
        return hash64(key, self.seed ^ 0x31) & (self.n_buckets - 1)

    def _alternate(self, bucket: int, fp: int) -> int:
        return (bucket ^ splitmix64(fp)) & (self.n_buckets - 1)

    def _block_of(self, bucket: int) -> int:
        return bucket // BUCKETS_PER_BLOCK

    # -- physical placement ----------------------------------------------------------

    def _room(self, bucket: int) -> bool:
        return (
            len(self._buckets[bucket]) < SLOTS_PER_BUCKET
            and self._block_load[self._block_of(bucket)] < self.block_capacity
        )

    def _place(self, bucket: int, fp: int) -> None:
        self._buckets[bucket].append(fp)
        self._block_load[self._block_of(bucket)] += 1

    def _remove(self, bucket: int, fp: int) -> bool:
        if fp in self._buckets[bucket]:
            self._buckets[bucket].remove(fp)
            self._block_load[self._block_of(bucket)] -= 1
            return True
        return False

    # -- operations ---------------------------------------------------------------------

    def insert(self, key: Key) -> None:
        fp = self._fingerprint(key)
        primary = self._primary(key)
        if self._room(primary):  # the Morton bias: primary first, always
            self._place(primary, fp)
            self._n += 1
            return
        secondary = self._alternate(primary, fp)
        self._ota[self._block_of(primary)] = True
        if self._room(secondary):
            self._place(secondary, fp)
            self._n += 1
            return
        # Kick chain, as in the cuckoo filter.
        bucket, current = secondary, fp
        for _ in range(MAX_KICKS):
            victims = self._buckets[bucket]
            if not victims:
                break
            slot = int(self._rng.integers(len(victims)))
            current, victims[slot] = victims[slot], current
            self._ota[self._block_of(bucket)] = True
            bucket = self._alternate(bucket, current)
            if self._room(bucket):
                self._place(bucket, current)
                self._n += 1
                return
        raise FilterFullError(
            f"morton filter insertion failed (load {self.load_factor:.3f})"
        )

    def may_contain(self, key: Key) -> bool:
        fp = self._fingerprint(key)
        primary = self._primary(key)
        self.queries += 1
        self.bucket_accesses += 1
        if fp in self._buckets[primary]:
            return True
        # Only consult the secondary bucket when the primary block has ever
        # overflowed — the OTA shortcut.
        if not self._ota[self._block_of(primary)]:
            return False
        self.bucket_accesses += 1
        return fp in self._buckets[self._alternate(primary, fp)]

    def delete(self, key: Key) -> None:
        fp = self._fingerprint(key)
        primary = self._primary(key)
        if self._remove(primary, fp):
            self._n -= 1
            return
        if self._remove(self._alternate(primary, fp), fp):
            self._n -= 1
            return
        raise DeletionError("delete of a key that was never inserted")

    # -- accounting -----------------------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def load_factor(self) -> float:
        return self._n / (self.n_blocks * self.block_capacity)

    @property
    def size_in_bits(self) -> int:
        """Physical slots + fullness counters + OTA (the compressed layout)."""
        physical = self.n_blocks * self.block_capacity * self.fingerprint_bits
        fullness = self.n_buckets * _FULLNESS_BITS
        return physical + fullness + self.n_blocks

    def mean_bucket_accesses(self) -> float:
        """Average buckets touched per query since construction."""
        return self.bucket_accesses / max(1, self.queries)

    def expected_fpr(self) -> float:
        per_bucket = self._n / self.n_buckets
        return min(1.0, 2 * per_bucket * 2.0 ** (-self.fingerprint_bits))

    @classmethod
    def for_capacity(
        cls, capacity: int, epsilon: float, *, seed: int = 0
    ) -> "MortonFilter":
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        block_capacity = 40
        n_blocks = max(1, math.ceil(capacity / (block_capacity * 0.95)))
        n_buckets = n_blocks * BUCKETS_PER_BLOCK
        f = max(1, math.ceil(math.log2(2 * SLOTS_PER_BUCKET / epsilon)))
        return cls(n_buckets, f, block_capacity=block_capacity, seed=seed)
