"""Quotient filter (Bender et al. 2012, "Don't Thrash").

A dynamic, fingerprint-based filter: a p-bit fingerprint is split into a
q-bit *quotient* (implicit: the canonical slot index) and an r-bit
*remainder* (stored).  Collisions are resolved Robin-Hood style in a linear
table; three metadata bits per slot (``is_occupied``, ``is_continuation``,
``is_shifted``) recover each remainder's quotient.

Implementation strategy
-----------------------
The physical layout of any maximal non-empty stretch of slots is a
*deterministic function* of the (quotient, remainder) pairs stored in it:
runs appear in quotient order, each run starts at ``max(canonical slot, end
of previous run)``, and remainders are sorted within a run.  We exploit
that: queries walk the stretch with a pending-run queue; mutations decode
the affected stretch to pairs, edit the pair list, and re-emit the canonical
layout.  This is equivalent to the classic shift-based insert/delete, costs
O(stretch length) like the original, and is far easier to verify — which
matters, because the counting, expandable and adaptive variants in this
library all build on this class.

Space: ``2^q × (r + 3)`` bits ≈ log₂(1/ε) + 3 bits/key at full load (the
tutorial's §2 formula, with the original filter's 3 metadata bits).
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Iterator

import numpy as np

from repro.common.bitvector import BitVector, PackedArray
from repro.common.hashing import hash64, hash64_many
from repro.core.errors import DeletionError, FilterFullError
from repro.core.interfaces import DynamicFilter, Key, KeyBatch

DEFAULT_MAX_LOAD = 0.9


class QuotientFilter(DynamicFilter):
    """Classic quotient filter with inserts and deletes.

    Parameters
    ----------
    quotient_bits:
        q; the table has 2^q slots.
    remainder_bits:
        r; stored bits per slot.  FPR ≈ load · 2^-r.
    max_load:
        Insert capacity as a fraction of slots (linear probing degrades
        near full; 0.9 is the conventional operating point).
    """

    supports_deletes = True

    def __init__(
        self,
        quotient_bits: int,
        remainder_bits: int,
        *,
        seed: int = 0,
        max_load: float = DEFAULT_MAX_LOAD,
    ):
        if not 1 <= quotient_bits <= 40:
            raise ValueError("quotient_bits must be in [1, 40]")
        if not 1 <= remainder_bits <= 56:
            raise ValueError("remainder_bits must be in [1, 56]")
        if not 0 < max_load < 1:
            raise ValueError("max_load must be in (0, 1)")
        self.quotient_bits = quotient_bits
        self.remainder_bits = remainder_bits
        self.seed = seed
        self.max_load = max_load
        self.n_slots = 1 << quotient_bits
        self._remainders = PackedArray(self.n_slots, remainder_bits)
        self._occupied = BitVector(self.n_slots)
        self._continuation = BitVector(self.n_slots)
        self._shifted = BitVector(self.n_slots)
        self._n = 0

    # -- fingerprinting -----------------------------------------------------

    @property
    def fingerprint_bits(self) -> int:
        return self.quotient_bits + self.remainder_bits

    def _fingerprint(self, key: Key) -> int:
        return hash64(key, self.seed) & ((1 << self.fingerprint_bits) - 1)

    def _split(self, fp: int) -> tuple[int, int]:
        return fp >> self.remainder_bits, fp & ((1 << self.remainder_bits) - 1)

    # -- slot predicates ------------------------------------------------------

    def _in_use(self, i: int) -> bool:
        """A slot physically holds a remainder iff its metadata is not 000."""
        return (
            self._occupied.get(i)
            or self._continuation.get(i)
            or self._shifted.get(i)
        )

    def _anchored(self, pos: int, origin: int) -> int:
        """Slot index in the circular order anchored at *origin*."""
        return (pos - origin) % self.n_slots

    # -- stretch scan ---------------------------------------------------------

    def _stretch_head(self, pos: int) -> int:
        """Nearest unshifted in-use slot at or left of in-use slot *pos*.

        Every maximal non-empty stretch begins with an unshifted element,
        and nothing left of an unshifted element spills past it, so the
        pending-run decode below is sound from this anchor.
        """
        b = pos
        while self._shifted.get(b):
            b = (b - 1) % self.n_slots
        return b

    def _scan_pairs(self, head: int) -> Iterator[tuple[int, int, int]]:
        """Yield (slot, quotient, remainder) from *head* until an empty slot,
        decoding quotients via the occupied/continuation bits."""
        pending: deque[int] = deque()
        pos = head
        quotient = -1
        for _ in range(self.n_slots):
            if not self._in_use(pos):
                return
            if self._occupied.get(pos):
                pending.append(pos)
            if not self._continuation.get(pos):
                quotient = pending.popleft()
            yield pos, quotient, self._remainders.get(pos)
            pos = (pos + 1) % self.n_slots
        raise AssertionError("quotient filter has no empty slot (over max load?)")

    def _stretch_pairs(self, head: int) -> list[tuple[int, int]]:
        """The (quotient, remainder) multiset of the stretch at *head*."""
        return [(q, r) for _, q, r in self._scan_pairs(head)]

    # -- public API -------------------------------------------------------------

    def may_contain(self, key: Key) -> bool:
        return self._contains_fingerprint(self._fingerprint(key))

    def may_contain_many(self, keys: KeyBatch) -> np.ndarray:
        """Batched probe: fingerprints and the is_occupied prefilter are
        vectorised; only keys whose canonical slot is occupied (the
        possible positives) fall back to the sequential stretch walk."""
        if not len(keys):
            return np.zeros(0, dtype=bool)
        fps = hash64_many(keys, self.seed) & np.uint64(
            (1 << self.fingerprint_bits) - 1
        )
        quotients = fps >> np.uint64(self.remainder_bits)
        occupied = self._occupied.test_many(quotients.astype(np.int64))
        out = np.zeros(len(fps), dtype=bool)
        for i in np.nonzero(occupied)[0]:
            out[i] = self._contains_fingerprint(int(fps[i]))
        return out

    def _contains_fingerprint(self, fp: int) -> bool:
        quotient, remainder = self._split(fp)
        if not self._occupied.get(quotient):
            return False
        head = self._stretch_head(quotient)
        target = self._anchored(quotient, head)
        for _, run_q, rem in self._scan_pairs(head):
            at = self._anchored(run_q, head)
            if at == target:
                if rem == remainder:
                    return True
                if rem > remainder:
                    return False  # remainders sorted within a run
            elif at > target:
                return False
        return False

    def insert(self, key: Key) -> None:
        if self._n >= self.capacity:
            raise FilterFullError(
                f"quotient filter at max load ({self._n}/{self.capacity})"
            )
        self._insert_fingerprint(self._fingerprint(key))

    def _insert_fingerprint(self, fp: int) -> None:
        quotient, remainder = self._split(fp)
        if not self._in_use(quotient):
            self._remainders.set(quotient, remainder)
            self._occupied.set(quotient, True)
            self._n += 1
            return
        head = self._stretch_head(quotient)
        pairs = self._stretch_pairs(head)
        pairs.append((quotient, remainder))
        self._rewrite_stretch(head, pairs, old_len=len(pairs) - 1)
        self._n += 1

    def delete(self, key: Key) -> None:
        self._delete_fingerprint(self._fingerprint(key))

    def _delete_fingerprint(self, fp: int) -> None:
        quotient, remainder = self._split(fp)
        if not self._occupied.get(quotient):
            raise DeletionError("delete of a key that was never inserted")
        head = self._stretch_head(quotient)
        pairs = self._stretch_pairs(head)
        try:
            pairs.remove((quotient, remainder))
        except ValueError:
            raise DeletionError("delete of a key that was never inserted") from None
        self._rewrite_stretch(head, pairs, old_len=len(pairs) + 1)
        self._n -= 1

    # -- canonical layout ---------------------------------------------------------

    def _rewrite_stretch(
        self, head: int, pairs: list[tuple[int, int]], old_len: int
    ) -> None:
        """Clear *old_len* slots starting at *head* and re-emit *pairs* in
        the canonical quotient-filter layout.

        All quotients in *pairs* lie within the old stretch window, so the
        new layout fits in at most ``old_len + 1`` slots from *head* (one
        extra on insert, into the empty slot that ended the old stretch).
        """
        pos = head
        present = {q for q, _ in pairs}
        for _ in range(old_len):
            self._continuation.set(pos, False)
            self._shifted.set(pos, False)
            self._remainders.set(pos, 0)
            if self._occupied.get(pos) and pos not in present:
                self._occupied.set(pos, False)
            pos = (pos + 1) % self.n_slots

        pairs.sort(key=lambda qr: (self._anchored(qr[0], head), qr[1]))
        cursor = head
        i = 0
        while i < len(pairs):
            quotient = pairs[i][0]
            run: list[int] = []
            while i < len(pairs) and pairs[i][0] == quotient:
                run.append(pairs[i][1])
                i += 1
            if self._anchored(cursor, head) >= self._anchored(quotient, head):
                start = cursor
            else:
                start = quotient
            for j, rem in enumerate(run):
                slot = (start + j) % self.n_slots
                self._remainders.set(slot, rem)
                self._continuation.set(slot, j > 0)
                self._shifted.set(slot, slot != quotient)
            self._occupied.set(quotient, True)
            cursor = (start + len(run)) % self.n_slots

    # -- accounting -----------------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def capacity(self) -> int:
        return int(self.n_slots * self.max_load)

    @property
    def load_factor(self) -> float:
        return self._n / self.n_slots

    @property
    def size_in_bits(self) -> int:
        return self.n_slots * (self.remainder_bits + 3)

    def expected_fpr(self) -> float:
        """α · 2^-r, the textbook quotient-filter false-positive estimate."""
        return self.load_factor * 2.0 ** (-self.remainder_bits)

    # -- introspection (tests, expandable/adaptive variants) ------------------------

    def iter_fingerprints(self) -> Iterator[int]:
        """Yield every stored fingerprint ((quotient << r) | remainder)."""
        for start in range(self.n_slots):
            prev = (start - 1) % self.n_slots
            if self._in_use(start) and not self._in_use(prev):
                for _, quotient, remainder in self._scan_pairs(start):
                    yield (quotient << self.remainder_bits) | remainder

    def probe_length(self, key: Key) -> int:
        """Slots touched by a query for *key* (ablation A3 metric)."""
        quotient, _ = self._split(self._fingerprint(key))
        if not self._occupied.get(quotient):
            return 1
        head = self._stretch_head(quotient)
        walked = self._anchored(quotient, head)
        target = self._anchored(quotient, head)
        count = 0
        for _, run_q, _rem in self._scan_pairs(head):
            count += 1
            if self._anchored(run_q, head) > target:
                break
        return walked + count

    @classmethod
    def for_capacity(
        cls, capacity: int, epsilon: float, *, seed: int = 0
    ) -> "QuotientFilter":
        """Size a filter for *capacity* keys at target FPR *epsilon*."""
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        quotient_bits = max(1, math.ceil(math.log2(capacity / DEFAULT_MAX_LOAD)))
        remainder_bits = max(1, math.ceil(math.log2(1 / epsilon)))
        return cls(quotient_bits, remainder_bits, seed=seed)

    # -- mergeability (the "efficiently scale out of RAM" feature, §1) --------

    def iter_fingerprints_sorted(self) -> Iterator[int]:
        """Yield stored fingerprints in ascending order.

        The table layout *is* fingerprint order (runs ordered by quotient,
        remainders sorted within a run), so a sequential scan from slot 0
        emits sorted output — the property that makes quotient filters
        merge like sorted files and therefore scale out of RAM.
        """
        # Stretch heads appear in ascending slot order, and a stretch that
        # wraps past the table end holds the largest quotients and is
        # discovered last, so head order is global fingerprint order.
        for start in range(self.n_slots):
            prev = (start - 1) % self.n_slots
            if self._in_use(start) and not self._in_use(prev):
                yield from sorted(
                    (q << self.remainder_bits) | r
                    for _, q, r in self._scan_pairs(start)
                )

    @classmethod
    def merge(cls, filters: "list[QuotientFilter]") -> "QuotientFilter":
        """Merge same-geometry filters into one (multiset union).

        Mirrors the streaming merge used to build disk-resident counting
        quotient filters (Squeakr/Mantis): fingerprints come out of each
        input in sorted order and are re-emitted sequentially, so a real
        implementation never holds more than a cursor per input in RAM.
        """
        if not filters:
            raise ValueError("merge needs at least one filter")
        first = filters[0]
        for other in filters[1:]:
            same = (
                other.remainder_bits == first.remainder_bits
                and other.seed == first.seed
                and other.quotient_bits == first.quotient_bits
            )
            if not same:
                raise ValueError("merge requires identical geometry and seed")
        total = sum(len(f) for f in filters)
        quotient_bits = first.quotient_bits
        while int((1 << quotient_bits) * first.max_load) < total:
            quotient_bits += 1
        # The p-bit fingerprints are fixed; a wider table re-splits them,
        # spending remainder bits on addressing (as in §2.2's expansion).
        remainder_bits = first.fingerprint_bits - quotient_bits
        if remainder_bits < 1:
            raise ValueError(
                "cannot merge: combined size exhausts the fingerprint bits"
            )
        merged = cls(
            quotient_bits,
            remainder_bits,
            seed=first.seed,
            max_load=first.max_load,
        )
        import heapq

        for fp in heapq.merge(*(f.iter_fingerprints_sorted() for f in filters)):
            merged._insert_fingerprint(fp)
        return merged
