"""Cuckoo filter (Fan et al. 2014, "Practically Better Than Bloom").

Stores an f-bit fingerprint per key in a 4-way associative table.  Each key
has two candidate buckets related by partial-key cuckoo hashing:
``i2 = i1 XOR hash(fingerprint)``, so an entry can be relocated (kicked)
knowing only its fingerprint — the property that makes deletes and high
load factors work.

Space: ``(f + 3) ≈ log₂(1/ε) + 3`` bits/key at 95% load with 4-way buckets
(the tutorial's §2 figure; the +3 combines the log₂(2b/ε) fingerprint
sizing and the 1/α load overhead).
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.hashing import fingerprint as make_fingerprint
from repro.common.hashing import (
    fingerprint_many,
    hash64,
    hash64_many,
    splitmix64,
    splitmix64_many,
)
from repro.core.errors import DeletionError, FilterFullError
from repro.core.interfaces import DynamicFilter, Key, KeyBatch

DEFAULT_BUCKET_SIZE = 4
MAX_KICKS = 500


class CuckooFilter(DynamicFilter):
    """Cuckoo filter with configurable bucket size (ablation A1).

    Parameters
    ----------
    n_buckets:
        Number of buckets; rounded up to a power of two so the partial-key
        XOR trick stays within range.
    fingerprint_bits:
        f; FPR ≈ 2·bucket_size / 2^f.
    bucket_size:
        Entries per bucket (4 is the paper's choice; 2 lowers the max load,
        8 raises it and the FPR).
    """

    supports_deletes = True

    def __init__(
        self,
        n_buckets: int,
        fingerprint_bits: int,
        *,
        bucket_size: int = DEFAULT_BUCKET_SIZE,
        seed: int = 0,
    ):
        if n_buckets < 1:
            raise ValueError("n_buckets must be positive")
        if not 1 <= fingerprint_bits <= 56:
            raise ValueError("fingerprint_bits must be in [1, 56]")
        if bucket_size < 1:
            raise ValueError("bucket_size must be positive")
        self.n_buckets = 1 << max(1, (n_buckets - 1).bit_length())
        self.fingerprint_bits = fingerprint_bits
        self.bucket_size = bucket_size
        self.seed = seed
        # 0 = empty slot (fingerprints are always nonzero).
        self._table = np.zeros((self.n_buckets, bucket_size), dtype=np.uint64)
        self._n = 0
        self._rng = np.random.default_rng(seed ^ 0xCC)
        # One-entry victim cache (as in production implementations): holds
        # the fingerprint left homeless by a failed kick chain so the filter
        # never produces a false negative.
        self._stash: int | None = None

    # -- hashing ---------------------------------------------------------------

    def _fingerprint(self, key: Key) -> int:
        return make_fingerprint(key, self.fingerprint_bits, self.seed)

    def _index1(self, key: Key) -> int:
        return hash64(key, self.seed ^ 0x1D) & (self.n_buckets - 1)

    def _alt_index(self, index: int, fp: int) -> int:
        return (index ^ splitmix64(fp)) & (self.n_buckets - 1)

    def _candidates(self, key: Key) -> tuple[int, int, int]:
        fp = self._fingerprint(key)
        i1 = self._index1(key)
        return fp, i1, self._alt_index(i1, fp)

    # -- bucket ops --------------------------------------------------------------

    def _bucket_insert(self, index: int, fp: int) -> bool:
        bucket = self._table[index]
        for slot in range(self.bucket_size):
            if bucket[slot] == 0:
                bucket[slot] = fp
                return True
        return False

    def _bucket_contains(self, index: int, fp: int) -> bool:
        return bool((self._table[index] == fp).any())

    def _bucket_delete(self, index: int, fp: int) -> bool:
        bucket = self._table[index]
        for slot in range(self.bucket_size):
            if bucket[slot] == fp:
                bucket[slot] = 0
                return True
        return False

    # -- public API ------------------------------------------------------------------

    def insert(self, key: Key) -> None:
        if self._stash is not None:
            raise FilterFullError("cuckoo filter full (victim cache occupied)")
        fp, i1, i2 = self._candidates(key)
        if self._bucket_insert(i1, fp) or self._bucket_insert(i2, fp):
            self._n += 1
            return
        # Kick: evict a random resident and relocate it to its alternate.
        index = i1 if self._rng.random() < 0.5 else i2
        current = fp
        for _ in range(MAX_KICKS):
            victim_slot = int(self._rng.integers(self.bucket_size))
            current, self._table[index][victim_slot] = (
                int(self._table[index][victim_slot]),
                current,
            )
            index = self._alt_index(index, current)
            if self._bucket_insert(index, current):
                self._n += 1
                return
        # The displaced chain left `current` homeless: park it in the victim
        # cache (so no false negative is possible) and report the filter full.
        self._stash = current
        self._n += 1
        raise FilterFullError(
            f"cuckoo filter insertion failed after {MAX_KICKS} kicks "
            f"(load {self.load_factor:.3f})"
        )

    def may_contain(self, key: Key) -> bool:
        fp, i1, i2 = self._candidates(key)
        if self._stash is not None and fp == self._stash:
            return True
        return self._bucket_contains(i1, fp) or self._bucket_contains(i2, fp)

    def may_contain_many(self, keys: KeyBatch) -> np.ndarray:
        """Batched probe: both candidate buckets of every key are compared
        against the fingerprints in two table gathers."""
        if not len(keys):
            return np.zeros(0, dtype=bool)
        mask = np.uint64(self.n_buckets - 1)
        fp = fingerprint_many(keys, self.fingerprint_bits, self.seed)
        i1 = hash64_many(keys, self.seed ^ 0x1D) & mask
        i2 = (i1 ^ splitmix64_many(fp)) & mask
        hit = (self._table[i1.astype(np.int64)] == fp[:, None]).any(axis=1)
        hit |= (self._table[i2.astype(np.int64)] == fp[:, None]).any(axis=1)
        if self._stash is not None:
            hit |= fp == np.uint64(self._stash)
        return hit

    def delete(self, key: Key) -> None:
        fp, i1, i2 = self._candidates(key)
        if self._bucket_delete(i1, fp) or self._bucket_delete(i2, fp):
            self._n -= 1
            return
        if self._stash is not None and fp == self._stash:
            self._stash = None
            self._n -= 1
            return
        raise DeletionError("delete of a key that was never inserted")

    # -- accounting ---------------------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def n_slots(self) -> int:
        return self.n_buckets * self.bucket_size

    @property
    def load_factor(self) -> float:
        return self._n / self.n_slots

    @property
    def size_in_bits(self) -> int:
        return self.n_slots * self.fingerprint_bits

    def expected_fpr(self) -> float:
        """≈ 2b·α / 2^f: two buckets of b slots can match the fingerprint."""
        return min(
            1.0,
            2 * self.bucket_size * self.load_factor * 2.0 ** (-self.fingerprint_bits),
        )

    @classmethod
    def for_capacity(
        cls,
        capacity: int,
        epsilon: float,
        *,
        bucket_size: int = DEFAULT_BUCKET_SIZE,
        seed: int = 0,
    ) -> "CuckooFilter":
        """Size a filter for *capacity* keys at target FPR *epsilon*.

        Fingerprint sizing follows the paper: f = ⌈log₂(2b/ε)⌉; the table is
        provisioned for 95% load (4-way buckets reach it whp).
        """
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        f = max(1, math.ceil(math.log2(2 * bucket_size / epsilon)))
        n_buckets = max(1, math.ceil(capacity / (0.95 * bucket_size)))
        return cls(n_buckets, f, bucket_size=bucket_size, seed=seed)
