"""Prefix filter (Even, Even & Morrison 2022) — simplified reproduction.

A semi-dynamic filter (inserts, no deletes) built from a first level of
fixed-capacity fingerprint bins plus a dynamic *spare* filter that absorbs
bin overflow.  Queries touch one bin and consult the spare only when the
bin has overflowed — the source of the design's speed: most negative
queries cost a single cache line.

Simplification (documented in DESIGN.md): the original stores each bin as a
pocket dictionary and spills the *largest* fingerprints; we spill arrivals
after the bin fills.  The two are behaviourally equivalent for FPR and
occupancy statistics under uniform hashing.
"""

from __future__ import annotations

import math

from repro.common.hashing import fingerprint, hash_to_range
from repro.core.interfaces import DynamicFilter, Key
from repro.filters.quotient import QuotientFilter

_BIN_CAPACITY = 25  # matches the paper's ~25-slot pocket dictionaries
_SPARE_FRACTION = 0.08


class PrefixFilter(DynamicFilter):
    """Two-level bin + spare filter."""

    supports_deletes = False

    def __init__(
        self,
        capacity: int,
        epsilon: float,
        *,
        bin_capacity: int = _BIN_CAPACITY,
        seed: int = 0,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        self.capacity = capacity
        self.epsilon = epsilon
        self.seed = seed
        self.bin_capacity = bin_capacity
        # Size bins for ~93% expected fill, as in the paper's configuration.
        self._n_bins = max(1, math.ceil(capacity / (bin_capacity * 0.93)))
        # A query compares against every fingerprint in its bin (~0.93·b of
        # them at capacity), so each must match with probability ε/b.
        self._fp_bits = max(1, math.ceil(math.log2(bin_capacity / epsilon)))
        self._bins: list[list[int]] = [[] for _ in range(self._n_bins)]
        self._overflowed: set[int] = set()
        spare_capacity = max(16, int(capacity * _SPARE_FRACTION))
        self._spare = QuotientFilter.for_capacity(
            spare_capacity, epsilon / 2, seed=seed ^ 0x5A
        )
        self._n = 0

    def _locate(self, key: Key) -> tuple[int, int]:
        bin_index = hash_to_range(key, self._n_bins, self.seed ^ 0xB0)
        fp = fingerprint(key, self._fp_bits, self.seed ^ 0xB1)
        return bin_index, fp

    def insert(self, key: Key) -> None:
        bin_index, fp = self._locate(key)
        bucket = self._bins[bin_index]
        if len(bucket) < self.bin_capacity:
            bucket.append(fp)
        else:
            self._overflowed.add(bin_index)
            self._spare.insert(key)
        self._n += 1

    def may_contain(self, key: Key) -> bool:
        bin_index, fp = self._locate(key)
        if fp in self._bins[bin_index]:
            return True
        if bin_index in self._overflowed:
            return self._spare.may_contain(key)
        return False

    def __len__(self) -> int:
        return self._n

    @property
    def size_in_bits(self) -> int:
        """First-level bins (fixed slots) + overflow bitmap + spare."""
        first_level = self._n_bins * self.bin_capacity * self._fp_bits
        return first_level + self._n_bins + self._spare.size_in_bits

    @property
    def spare_fraction(self) -> float:
        """Fraction of keys that landed in the spare (paper: a few %)."""
        return len(self._spare) / self._n if self._n else 0.0

    def expected_fpr(self) -> float:
        bin_fill = min(self.bin_capacity, self._n / self._n_bins if self._n_bins else 0)
        return 2.0 ** (-self._fp_bits) * bin_fill + self._spare.expected_fpr()
