"""Maplets (§2.4): filters that associate small values with keys.

Quality metrics follow the tutorial: PRS (expected positive result size)
and NRS (expected negative result size).

* :class:`BloomierMaplet` — static keys, updatable values, PRS = NRS = 1.
* :class:`QuotientFilterMaplet` — dynamic, PRS = 1 + ε, NRS = ε.
* :class:`SlimDBMaplet` — dynamic, PRS = 1 exactly (collisions resolved via
  an auxiliary dictionary of full keys).
* :class:`ChuckyMaplet` — QF maplet whose values are Huffman-coded file
  identifiers (the LSM use case).
"""

from repro.maplets.bloomier import BloomierMaplet
from repro.maplets.chucky import ChuckyMaplet, huffman_code_lengths
from repro.maplets.qf_maplet import QuotientFilterMaplet
from repro.maplets.slimdb import SlimDBMaplet

__all__ = [
    "BloomierMaplet",
    "ChuckyMaplet",
    "QuotientFilterMaplet",
    "SlimDBMaplet",
    "huffman_code_lengths",
]
