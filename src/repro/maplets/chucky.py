"""Chucky-style maplet (Dayan & Twitto 2021): Huffman-coded file identifiers.

Chucky replaces an LSM-tree's many Bloom filters with one maplet that maps
every key to the file/level holding it.  Its insight: level identifiers are
extremely skewed (the largest level holds ~(T−1)/T of all keys), so coding
values with Huffman codes shrinks the per-key value cost from
⌈log₂(levels)⌉ bits to ≈ the entropy of the level distribution — often
close to 1 bit.

``huffman_code_lengths`` is a standalone canonical-Huffman helper; the
maplet charges each stored value its code length.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Mapping
from typing import Any

from repro.core.errors import DeletionError
from repro.core.interfaces import DynamicMaplet, Key
from repro.maplets.qf_maplet import QuotientFilterMaplet


def huffman_code_lengths(weights: Mapping[Any, float]) -> dict[Any, int]:
    """Code length (bits) per symbol for a Huffman code over *weights*."""
    if not weights:
        return {}
    if any(w < 0 for w in weights.values()):
        raise ValueError("weights must be non-negative")
    symbols = list(weights)
    if len(symbols) == 1:
        return {symbols[0]: 1}
    # Heap of (weight, tiebreak, symbols-under-node).
    heap: list[tuple[float, int, list[Any]]] = [
        (float(w), i, [s]) for i, (s, w) in enumerate(weights.items())
    ]
    heapq.heapify(heap)
    lengths = {s: 0 for s in symbols}
    counter = len(symbols)
    while len(heap) > 1:
        w1, _, s1 = heapq.heappop(heap)
        w2, _, s2 = heapq.heappop(heap)
        for s in s1 + s2:
            lengths[s] += 1
        heapq.heappush(heap, (w1 + w2, counter, s1 + s2))
        counter += 1
    return lengths


class ChuckyMaplet(DynamicMaplet):
    """QF maplet whose values are level ids charged at Huffman code length."""

    def __init__(
        self,
        capacity: int,
        epsilon: float,
        level_weights: Mapping[int, float],
        *,
        seed: int = 0,
    ):
        if not level_weights:
            raise ValueError("level_weights must be non-empty")
        self._code_lengths = huffman_code_lengths(level_weights)
        self._inner = QuotientFilterMaplet.for_capacity(
            capacity, epsilon, value_bits=0, seed=seed
        )
        self._value_bits_stored = 0

    def insert(self, key: Key, value: int) -> None:
        if value not in self._code_lengths:
            raise ValueError(f"level {value!r} not in the configured code")
        self._inner.insert(key, value)
        self._value_bits_stored += self._code_lengths[value]

    def get(self, key: Key) -> list[int]:
        return self._inner.get(key)

    def delete(self, key: Key, value: int) -> None:
        try:
            self._inner.delete(key, value)
        except DeletionError:
            raise
        self._value_bits_stored -= self._code_lengths[value]

    def may_contain(self, key: Key) -> bool:
        return self._inner.may_contain(key)

    def __len__(self) -> int:
        return len(self._inner)

    @property
    def size_in_bits(self) -> int:
        """Fingerprint table + Huffman-coded values actually stored."""
        return self._inner.size_in_bits + self._value_bits_stored

    @property
    def mean_value_bits(self) -> float:
        n = len(self)
        return self._value_bits_stored / n if n else 0.0

    @property
    def fixed_width_value_bits(self) -> int:
        """What a plain (non-Huffman) encoding would pay per value."""
        return max(1, math.ceil(math.log2(max(2, len(self._code_lengths)))))
