"""Quotient-filter maplet (§2.4; SplinterDB / Chucky lineage).

Each hash-table slot stores a value alongside the key's fingerprint, so a
positive query returns the target value plus the values of any colliding
fingerprints: PRS = 1 + ε, NRS = ε.  Inserts and deletes work exactly as in
the underlying quotient filter, and the maplet can expand the same way.

Multiple values per key are supported (the tutorial notes quotient filters
are "adept at this" thanks to runs): inserting the same key twice stores
two value-carrying entries in the key's run.
"""

from __future__ import annotations

import math
from typing import Any

from repro.core.errors import DeletionError, FilterFullError
from repro.core.interfaces import DynamicMaplet, Key
from repro.filters.quotient import DEFAULT_MAX_LOAD, QuotientFilter


class QuotientFilterMaplet(DynamicMaplet):
    """Dynamic maplet with PRS = 1 + ε and NRS = ε."""

    def __init__(
        self,
        quotient_bits: int,
        remainder_bits: int,
        *,
        value_bits: int = 32,
        seed: int = 0,
        max_load: float = DEFAULT_MAX_LOAD,
    ):
        self._qf = QuotientFilter(
            quotient_bits, remainder_bits, seed=seed, max_load=max_load
        )
        self.value_bits = value_bits
        # fingerprint -> values stored under it (collisions conflate lists,
        # which is precisely where the "+ε extra values" comes from).
        self._values: dict[int, list[Any]] = {}

    def insert(self, key: Key, value: Any) -> None:
        fp = self._qf._fingerprint(key)
        if len(self._qf) >= self._qf.capacity:
            raise FilterFullError("quotient filter maplet at max load")
        self._qf._insert_fingerprint(fp)
        self._values.setdefault(fp, []).append(value)

    def get(self, key: Key) -> list[Any]:
        fp = self._qf._fingerprint(key)
        if not self._qf._contains_fingerprint(fp):
            return []
        return list(self._values.get(fp, ()))

    def delete(self, key: Key, value: Any) -> None:
        fp = self._qf._fingerprint(key)
        bucket = self._values.get(fp)
        if not bucket or value not in bucket:
            raise DeletionError("delete of a (key, value) that was never inserted")
        self._qf._delete_fingerprint(fp)
        bucket.remove(value)
        if not bucket:
            del self._values[fp]

    def may_contain(self, key: Key) -> bool:
        return self._qf.may_contain(key)

    def __len__(self) -> int:
        return len(self._qf)

    @property
    def size_in_bits(self) -> int:
        """Fingerprint table + one value field per slot."""
        return self._qf.size_in_bits + self._qf.n_slots * self.value_bits

    @property
    def capacity(self) -> int:
        return self._qf.capacity

    def expected_fpr(self) -> float:
        return self._qf.expected_fpr()

    @classmethod
    def for_capacity(
        cls,
        capacity: int,
        epsilon: float,
        *,
        value_bits: int = 32,
        seed: int = 0,
    ) -> "QuotientFilterMaplet":
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        quotient_bits = max(1, math.ceil(math.log2(capacity / DEFAULT_MAX_LOAD)))
        remainder_bits = max(1, math.ceil(math.log2(1 / epsilon)))
        return cls(quotient_bits, remainder_bits, value_bits=value_bits, seed=seed)
