"""Bloomier filter as a maplet (Chazelle, Kilian, Rubinfeld & Tal 2004).

The two-level construction: level one is an XOR-peeled table that encodes,
for each key, *which* of its three candidate slots is its matched slot (the
peeling guarantees matched slots are distinct across keys); level two is a
plain value table indexed by that slot.  Because each key owns a distinct
value cell, **values can be updated in place** — but the key set is fixed
at construction, exactly the trade the tutorial describes.

Every query — member or not — decodes to one slot and returns one value:
PRS = NRS = 1.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from typing import Any

from repro.common.bitvector import PackedArray
from repro.common.hashing import derived_seeds, hash64, hash_to_range
from repro.core.errors import ImmutableFilterError
from repro.core.interfaces import Key, Maplet
from repro.filters.xor import _peel

_SIZE_FACTOR = 1.23
_MAX_CONSTRUCTION_ATTEMPTS = 64
_INDEX_BITS = 2  # enough to XOR-encode a slot choice in {0, 1, 2}


class BloomierMaplet(Maplet):
    """Static-key, mutable-value maplet with unit result sizes."""

    def __init__(
        self,
        items: dict[Key, Any] | Iterable[tuple[Key, Any]],
        *,
        value_bits: int = 32,
        seed: int = 0,
    ):
        pairs = dict(items)
        self._n = len(pairs)
        self.value_bits = value_bits
        key_list = list(pairs)
        n_slots = max(6, int(math.ceil(_SIZE_FACTOR * max(1, self._n))) + 3)
        self._segment = n_slots // 3
        self._n_slots = self._segment * 3

        for attempt in range(_MAX_CONSTRUCTION_ATTEMPTS):
            self.seed = derived_seeds(seed ^ 0xB100, attempt + 1)[-1]
            all_slots = [self._slots(key) for key in key_list]
            peel = _peel(all_slots, self._n_slots)
            if peel is not None:
                break
        else:
            raise RuntimeError("Bloomier construction failed (duplicate keys?)")

        # Level 1: XOR-decodable matched-slot indexes.
        self._index_table = PackedArray(self._n_slots, _INDEX_BITS)
        owned_of = dict(peel.order)  # key_index -> owned slot
        for key_index, owned in reversed(peel.order):
            slots = all_slots[key_index]
            iota = slots.index(owned)
            acc = iota ^ self._mask_bits(key_list[key_index])
            for slot in slots:
                if slot != owned:
                    acc ^= self._index_table.get(slot)
            self._index_table.set(owned, acc)

        # Level 2: one value cell per slot; each key owns a distinct cell.
        self._values: list[Any] = [0] * self._n_slots
        for key_index, owned in owned_of.items():
            self._values[owned] = pairs[key_list[key_index]]

    # -- hashing -----------------------------------------------------------------

    def _slots(self, key: Key) -> tuple[int, int, int]:
        s = self._segment
        return (
            hash_to_range(key, s, self.seed ^ 1),
            s + hash_to_range(key, s, self.seed ^ 2),
            2 * s + hash_to_range(key, s, self.seed ^ 3),
        )

    def _mask_bits(self, key: Key) -> int:
        return hash64(key, self.seed ^ 4) & ((1 << _INDEX_BITS) - 1)

    def _matched_slot(self, key: Key) -> int:
        slots = self._slots(key)
        iota = self._mask_bits(key)
        for slot in slots:
            iota ^= self._index_table.get(slot)
        # Members decode exactly; non-members decode to an arbitrary index.
        return slots[iota % 3]

    # -- API -----------------------------------------------------------------------

    def get(self, key: Key) -> list[Any]:
        """Exactly one value, for members and non-members alike."""
        return [self._values[self._matched_slot(key)]]

    def update(self, key: Key, value: Any) -> None:
        """Set the value of an *existing* key (its cell is private to it)."""
        self._values[self._matched_slot(key)] = value

    def insert(self, key: Key, value: Any) -> None:
        raise ImmutableFilterError(
            "Bloomier maplets have a fixed key set (values are updatable)"
        )

    def __len__(self) -> int:
        return self._n

    @property
    def size_in_bits(self) -> int:
        return self._n_slots * (_INDEX_BITS + self.value_bits)
