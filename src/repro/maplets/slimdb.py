"""SlimDB-style exact maplet (Ren, Zheng, Arulraj & Gibson 2017).

A dynamic maplet with **PRS = 1**: fingerprint collisions are detected on
the insertion path and the colliding key's *full key* is diverted into an
auxiliary dictionary, so a positive query always returns exactly its own
value.  Negative queries can still collide with a stored fingerprint
(NRS = ε) — the design bounds tail latency for positive lookups, which is
what the storage engines §3.1 cares about.
"""

from __future__ import annotations

from typing import Any

from repro.common.hashing import fingerprint
from repro.core.errors import DeletionError
from repro.core.interfaces import DynamicMaplet, Key


class SlimDBMaplet(DynamicMaplet):
    """Exact-positive maplet: primary fingerprint table + aux full-key dict."""

    def __init__(self, fingerprint_bits: int = 16, *, value_bits: int = 32, seed: int = 0):
        if not 1 <= fingerprint_bits <= 56:
            raise ValueError("fingerprint_bits must be in [1, 56]")
        self.fingerprint_bits = fingerprint_bits
        self.value_bits = value_bits
        self.seed = seed
        self._primary: dict[int, Any] = {}  # fingerprint -> value
        self._owner: dict[int, Key] = {}  # fingerprint -> owning key (remote rep)
        self._aux: dict[Key, Any] = {}  # full keys of fingerprint-colliders
        self._n = 0

    def _fp(self, key: Key) -> int:
        return fingerprint(key, self.fingerprint_bits, self.seed ^ 0x51)

    def insert(self, key: Key, value: Any) -> None:
        fp = self._fp(key)
        owner = self._owner.get(fp)
        if owner is None:
            self._primary[fp] = value
            self._owner[fp] = key
        elif owner == key:
            self._primary[fp] = value  # upsert
            self._n -= 1
        else:
            # Collision detected at insert time: the new key goes to the
            # auxiliary dictionary with its full key.
            if key in self._aux:
                self._n -= 1
            self._aux[key] = value
        self._n += 1

    def get(self, key: Key) -> list[Any]:
        if key in self._aux:
            return [self._aux[key]]
        fp = self._fp(key)
        if fp in self._primary:
            return [self._primary[fp]]
        return []

    def delete(self, key: Key, value: Any) -> None:
        if key in self._aux:
            if self._aux[key] != value:
                raise DeletionError("value mismatch on delete")
            del self._aux[key]
            self._n -= 1
            return
        fp = self._fp(key)
        if self._owner.get(fp) == key and self._primary.get(fp) == value:
            del self._primary[fp]
            del self._owner[fp]
            self._n -= 1
            return
        raise DeletionError("delete of a (key, value) that was never inserted")

    def __len__(self) -> int:
        return self._n

    @property
    def n_collisions(self) -> int:
        """Keys living in the auxiliary dictionary."""
        return len(self._aux)

    @property
    def size_in_bits(self) -> int:
        """Primary entries cost fingerprint + value; aux entries carry the
        full key (charged at 64 bits, the canonical key width here)."""
        primary = len(self._primary) * (self.fingerprint_bits + self.value_bits)
        aux = len(self._aux) * (64 + self.value_bits)
        return primary + aux

    def expected_fpr(self) -> float:
        return len(self._primary) * 2.0 ** (-self.fingerprint_bits)
