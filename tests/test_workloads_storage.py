"""Tests for the workload generators and the simulated block device."""

from __future__ import annotations

import pytest

from repro.common.storage import BlockDevice, IOStats
from repro.workloads.synthetic import (
    adversarial_repeat_queries,
    correlated_range_queries,
    disjoint_key_sets,
    random_key_set,
    random_range_queries,
    zipf_multiset,
    zipf_queries,
)
from repro.workloads.urls import split_malicious, url_query_stream, url_universe


class TestBlockDevice:
    def test_write_read_counts(self):
        dev = BlockDevice()
        dev.write("a", b"payload", size=100)
        assert dev.read("a") == b"payload"
        assert dev.stats.writes == 1
        assert dev.stats.reads == 1
        assert dev.stats.bytes_written == 100
        assert dev.stats.bytes_read == 100

    def test_missing_block_raises(self):
        with pytest.raises(KeyError):
            BlockDevice().read("nothing")

    def test_exists_free_of_charge(self):
        dev = BlockDevice()
        dev.write("a", 1)
        before = dev.stats.reads
        assert dev.exists("a") and not dev.exists("b")
        assert dev.stats.reads == before

    def test_delete_and_used_bytes(self):
        dev = BlockDevice()
        dev.write("a", None, size=10)
        dev.write("b", None, size=20)
        assert dev.used_bytes == 30
        dev.delete("a")
        assert dev.used_bytes == 20 and len(dev) == 1

    def test_stats_snapshot_subtraction(self):
        dev = BlockDevice()
        dev.write("a", None, size=4)
        before = dev.stats.snapshot()
        dev.write("b", None, size=4)
        delta = dev.stats - before
        assert delta.writes == 1

    def test_stats_reset(self):
        stats = IOStats(reads=3)
        stats.reset()
        assert stats.reads == 0

    def test_stats_addition(self):
        a = IOStats(reads=3, writes=1, bytes_read=64, bytes_written=16)
        b = IOStats(reads=2, writes=4, bytes_read=8, bytes_written=32)
        total = a + b
        assert total == IOStats(reads=5, writes=5, bytes_read=72, bytes_written=48)
        # __add__ and __sub__ are inverses.
        assert total - b == a

    def test_delete_missing_tolerant_by_default(self):
        dev = BlockDevice()
        dev.delete("never-written")  # missing_ok=True: a no-op
        assert len(dev) == 0

    def test_delete_missing_strict(self):
        dev = BlockDevice()
        with pytest.raises(KeyError, match="missing block"):
            dev.delete("never-written", missing_ok=False)
        dev.write("a", None, size=4)
        dev.delete("a", missing_ok=False)  # present: no error
        assert len(dev) == 0

    def test_addresses_listing_is_free(self):
        dev = BlockDevice()
        dev.write("a", None, size=1)
        dev.write(("run", 7), None, size=1)
        before = dev.stats.reads
        assert sorted(dev.addresses(), key=str) == [("run", 7), "a"] or set(
            dev.addresses()
        ) == {"a", ("run", 7)}
        assert dev.stats.reads == before


class TestSyntheticWorkloads:
    def test_random_key_set_distinct_sorted(self):
        keys = random_key_set(500, seed=1)
        assert len(set(keys)) == 500
        assert keys == sorted(keys)

    def test_deterministic(self):
        assert random_key_set(100, seed=5) == random_key_set(100, seed=5)

    def test_disjoint_sets(self):
        members, negatives = disjoint_key_sets(200, 300, seed=2)
        assert not set(members) & set(negatives)
        assert len(members) == 200 and len(negatives) == 300

    def test_zipf_skew_concentrates(self):
        population = list(range(1000))
        flat = zipf_queries(population, 5000, skew=0.0, seed=3)
        skewed = zipf_queries(population, 5000, skew=1.5, seed=3)
        from collections import Counter

        top_flat = Counter(flat).most_common(1)[0][1]
        top_skewed = Counter(skewed).most_common(1)[0][1]
        assert top_skewed > 3 * top_flat

    def test_zipf_rejects_empty_population(self):
        with pytest.raises(ValueError):
            zipf_queries([], 10, 1.0)

    def test_zipf_multiset_totals(self):
        counts = zipf_multiset(100, 1000, skew=1.0, seed=4)
        assert sum(counts.values()) == 1000
        assert len(counts) <= 100

    def test_adversarial_repeats_discovered_fps(self):
        fps = {7, 13}
        queries = adversarial_repeat_queries(
            list(range(50)), lambda k: k in fps, 300, seed=5
        )
        from collections import Counter

        counts = Counter(queries)
        assert counts[7] + counts[13] > 100  # replayed heavily

    def test_range_queries_within_universe(self):
        for lo, hi in random_range_queries(100, 64, seed=6, universe=1 << 20):
            assert 0 <= lo <= hi < 1 << 20
            assert hi - lo == 63

    def test_correlated_queries_near_keys(self):
        keys = random_key_set(100, seed=7)
        queries = correlated_range_queries(keys, 50, 8, gap=1, seed=8)
        key_set = set(keys)
        assert all(lo - 1 in key_set for lo, _ in queries)


class TestUrlWorkloads:
    def test_universe_distinct(self):
        urls = url_universe(300, seed=9)
        assert len(set(urls)) == 300
        assert all(u.startswith("https://") for u in urls)

    def test_split_partition(self):
        urls = url_universe(200, seed=10)
        malicious, benign = split_malicious(urls, 0.25, seed=11)
        assert len(malicious) == 50
        assert not set(malicious) & set(benign)

    def test_stream_labels_truthful(self):
        urls = url_universe(200, seed=12)
        malicious, benign = split_malicious(urls, 0.25, seed=13)
        mset = set(malicious)
        stream = url_query_stream(benign, malicious, 1000, seed=14)
        assert all((url in mset) == flag for url, flag in stream)
        assert any(flag for _, flag in stream)
