"""Tests for the second-wave filters: vector QF, Morton, dynamic cuckoo,
Bentley–Saxe, REncoder, seesaw, sharded wrapper."""

from __future__ import annotations

import pytest

from repro.adaptive.seesaw import SeesawCountingFilter
from repro.core.concurrent import ShardedFilter
from repro.core.errors import DeletionError, FilterFullError
from repro.expandable.bentley_saxe import BentleySaxeFilter
from repro.expandable.chaining import DynamicCuckooFilter
from repro.filters.morton import MortonFilter
from repro.filters.quotient import QuotientFilter
from repro.filters.vector_quotient import VectorQuotientFilter
from repro.filters.xor import XorFilter
from repro.rangefilters.rencoder import REncoder
from repro.rangefilters.rosetta import Rosetta
from repro.workloads.synthetic import (
    disjoint_key_sets,
    random_key_set,
    random_range_queries,
)
from tests.conftest import measured_fpr


class TestVectorQuotient:
    def test_no_false_negatives(self, medium_keys):
        members, _ = medium_keys
        vqf = VectorQuotientFilter.for_capacity(len(members), 0.01, seed=1)
        for key in members:
            vqf.insert(key)
        assert all(vqf.may_contain(k) for k in members)

    def test_fpr(self, medium_keys):
        members, negatives = medium_keys
        vqf = VectorQuotientFilter.for_capacity(len(members), 0.01, seed=1)
        for key in members:
            vqf.insert(key)
        assert measured_fpr(vqf, negatives) <= 0.02

    def test_deletes(self):
        vqf = VectorQuotientFilter.for_capacity(100, 0.01, seed=2)
        vqf.insert("x")
        vqf.delete("x")
        assert not vqf.may_contain("x")
        with pytest.raises(DeletionError):
            vqf.delete("x")

    def test_two_choice_balances_blocks(self, medium_keys):
        members, _ = medium_keys
        vqf = VectorQuotientFilter.for_capacity(len(members), 0.01, seed=3)
        for key in members:
            vqf.insert(key)
        # Two-choice keeps the fullest block close to the mean load.
        mean = len(members) / vqf.n_blocks
        assert vqf.max_block_load() <= mean + 12

    def test_no_kicking_insert_never_displaces(self):
        # Inserts either place or raise; the filter never moves residents,
        # so a reference set stays exactly queryable after a full fill.
        vqf = VectorQuotientFilter(4, 10, block_slots=4, seed=4)
        inserted = []
        try:
            for i in range(1000):
                vqf.insert(i)
                inserted.append(i)
        except FilterFullError:
            pass
        assert all(vqf.may_contain(k) for k in inserted)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            VectorQuotientFilter(1, 8)
        with pytest.raises(ValueError):
            VectorQuotientFilter(4, 0)


class TestMorton:
    def test_no_false_negatives(self, medium_keys):
        members, _ = medium_keys
        mf = MortonFilter.for_capacity(len(members), 0.01, seed=5)
        for key in members:
            mf.insert(key)
        assert all(mf.may_contain(k) for k in members)

    def test_fpr(self, medium_keys):
        members, negatives = medium_keys
        mf = MortonFilter.for_capacity(len(members), 0.01, seed=5)
        for key in members:
            mf.insert(key)
        assert measured_fpr(mf, negatives) <= 0.03

    def test_under_two_bucket_accesses(self, medium_keys):
        """Breslow & Jayasena's claim: the OTA keeps most queries at one
        bucket access."""
        members, negatives = medium_keys
        mf = MortonFilter.for_capacity(len(members), 0.01, seed=5)
        for key in members:
            mf.insert(key)
        mf.bucket_accesses = mf.queries = 0
        for key in negatives[:4000]:
            mf.may_contain(key)
        assert mf.mean_bucket_accesses() < 2.0

    def test_compressed_smaller_than_cuckoo_logical(self, medium_keys):
        from repro.filters.cuckoo import CuckooFilter

        members, _ = medium_keys
        mf = MortonFilter.for_capacity(len(members), 0.01, seed=6)
        cf = CuckooFilter.for_capacity(len(members), 0.01, seed=6)
        assert mf.size_in_bits < cf.size_in_bits

    def test_deletes(self):
        mf = MortonFilter.for_capacity(200, 0.01, seed=7)
        for i in range(100):
            mf.insert(i)
        for i in range(100):
            mf.delete(i)
        assert len(mf) == 0
        with pytest.raises(DeletionError):
            mf.delete(5)


class TestDynamicCuckoo:
    def test_grows_and_deletes(self):
        dcf = DynamicCuckooFilter(64, 0.01, seed=8)
        members, _ = disjoint_key_sets(500, 1, seed=9)
        for key in members:
            dcf.insert(key)
        assert dcf.n_links > 1
        assert all(dcf.may_contain(k) for k in members)
        for key in members:
            dcf.delete(key)
        assert len(dcf) == 0

    def test_emptied_links_compacted(self):
        dcf = DynamicCuckooFilter(32, 0.01, seed=10)
        members, _ = disjoint_key_sets(200, 1, seed=11)
        for key in members:
            dcf.insert(key)
        links_full = dcf.n_links
        for key in members:
            dcf.delete(key)
        assert dcf.n_links < links_full

    def test_delete_unknown_raises(self):
        dcf = DynamicCuckooFilter(32, 0.01, seed=10)
        dcf.insert("a")
        with pytest.raises(DeletionError):
            dcf.delete("b")


class TestBentleySaxe:
    def _make(self, seed=12):
        return BentleySaxeFilter(
            lambda keys: XorFilter.build(keys, 0.005, seed=seed),
            buffer_capacity=32,
        )

    def test_no_false_negatives(self):
        bs = self._make()
        members, _ = disjoint_key_sets(1000, 1, seed=13)
        for key in members:
            bs.insert(key)
        assert all(bs.may_contain(k) for k in members)

    def test_fpr_stays_near_static(self):
        bs = self._make()
        members, negatives = disjoint_key_sets(1000, 8000, seed=14)
        for key in members:
            bs.insert(key)
        # Each of ~log(n) levels contributes ε: still far under 5ε here.
        assert measured_fpr(bs, negatives) <= 0.03

    def test_binary_counter_levels(self):
        bs = self._make()
        for i in range(32 * 7):  # 7 = 0b111 buffers
            bs.insert(i)
        assert bs.n_levels == 3  # levels 0,1,2 occupied

    def test_amortised_rebuild_logarithmic(self):
        bs = self._make()
        n = 32 * 64
        for i in range(n):
            bs.insert(i)
        assert bs.amortised_rebuild_factor <= 8  # ~log2(64) plus slack

    def test_query_cost_logarithmic(self):
        bs = self._make()
        for i in range(32 * 21):
            bs.insert(i)
        assert bs.query_cost("whatever") <= 1 + 6

    def test_rejects_bad_buffer(self):
        with pytest.raises(ValueError):
            BentleySaxeFilter(lambda keys: None, buffer_capacity=0)


class TestREncoder:
    KEY_BITS = 32

    def test_no_false_negatives_points_and_ranges(self):
        keys = random_key_set(2000, seed=15, universe=1 << self.KEY_BITS)
        re_filter = REncoder(keys, key_bits=self.KEY_BITS, seed=16)
        assert all(re_filter.may_contain(k) for k in keys[::10])
        for key in keys[::50]:
            assert re_filter.may_intersect(max(0, key - 10), key + 10)

    def test_filters_empty_ranges(self):
        keys = random_key_set(2000, seed=15, universe=1 << self.KEY_BITS)
        queries = random_range_queries(300, 64, seed=17, universe=1 << self.KEY_BITS)
        from bisect import bisect_left

        def truly(lo, hi):
            i = bisect_left(keys, lo)
            return i < len(keys) and keys[i] <= hi

        empty = [q for q in queries if not truly(*q)]
        fps = sum(1 for lo, hi in empty if re_filter_cached.may_intersect(lo, hi))
        assert fps / len(empty) < 0.3

    def test_block_locality_beats_rosetta(self):
        keys = random_key_set(2000, seed=15, universe=1 << self.KEY_BITS)
        re_filter = REncoder(keys, key_bits=self.KEY_BITS, n_levels=12, seed=18)
        rosetta = Rosetta(
            keys, key_bits=self.KEY_BITS, bits_per_key=20, n_levels=12, seed=18
        )
        lo = keys[100] + 1
        re_filter.may_intersect(lo, lo + 255)
        rosetta.may_intersect(lo, lo + 255)
        # REncoder touches far fewer memory blocks than Rosetta does probes.
        assert re_filter.last_query_blocks <= rosetta.last_query_probes

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            REncoder([1], key_bits=16, n_levels=0)
        with pytest.raises(ValueError):
            REncoder([1], key_bits=16, levels_per_block=0)


class TestSeesaw:
    def test_yes_list_matches(self):
        members, negatives = disjoint_key_sets(400, 2000, seed=19)
        sscf = SeesawCountingFilter(members, epsilon=0.05, seed=20)
        assert all(sscf.may_contain(k) for k in members)

    def test_protect_blocks_negative(self):
        members, negatives = disjoint_key_sets(400, 2000, seed=19)
        sscf = SeesawCountingFilter(members, epsilon=0.05, seed=20)
        fps = [k for k in negatives if sscf.may_contain(k)]
        if not fps:
            pytest.skip("no FP at this seed")
        for key in fps:
            sscf.protect(key)
        assert not any(sscf.may_contain(k) for k in fps)

    def test_dynamic_protection_can_cause_false_negatives(self):
        """The §3.3 critique: dynamic no-list additions risk false
        negatives for yes-list keys sharing counters."""
        members, negatives = disjoint_key_sets(400, 5000, seed=21)
        sscf = SeesawCountingFilter(members, epsilon=0.1, seed=22)
        for key in negatives:
            if sscf.may_contain(key):
                sscf.protect(key)
        assert sscf.protections > 0
        # With this many protections, collateral damage is expected.
        assert len(sscf.false_negatives(members)) > 0

    def test_static_no_list_at_build(self):
        members, negatives = disjoint_key_sets(400, 400, seed=23)
        sscf = SeesawCountingFilter(members, negatives[:50], epsilon=0.05, seed=24)
        assert not any(sscf.may_contain(k) for k in negatives[:50])


class TestShardedFilter:
    def _make(self, n_shards=4):
        return ShardedFilter(
            lambda i: QuotientFilter.for_capacity(512, 0.01, seed=100 + i),
            n_shards=n_shards,
        )

    def test_basic_ops(self):
        sf = self._make()
        sf.insert("a")
        assert sf.may_contain("a")
        sf.delete("a")
        assert not sf.may_contain("a")
        assert sf.supports_deletes

    def test_shards_balanced(self):
        sf = self._make(8)
        members, _ = disjoint_key_sets(1000, 1, seed=25)
        for key in members:
            sf.insert(key)
        loads = sf.shard_loads
        assert max(loads) < 2.2 * min(loads)
        assert sum(loads) == len(sf) == 1000

    def test_concurrent_inserts_consistent(self):
        from concurrent.futures import ThreadPoolExecutor

        sf = self._make(8)
        members, negatives = disjoint_key_sets(2000, 2000, seed=26)

        def work(chunk):
            for key in chunk:
                sf.insert(key)
            return sum(1 for key in chunk if sf.may_contain(key))

        chunks = [members[i::4] for i in range(4)]
        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(work, chunks))
        assert all(r == len(c) for r, c in zip(results, chunks))
        assert all(sf.may_contain(k) for k in members)
        assert len(sf) == 2000

    def test_rejects_bad_shards(self):
        with pytest.raises(ValueError):
            ShardedFilter(lambda i: None, n_shards=0)


# Module-level cache for the REncoder empty-range test (built once).
re_filter_cached = REncoder(
    random_key_set(2000, seed=15, universe=1 << 32), key_bits=32, seed=16
)
