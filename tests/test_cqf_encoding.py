"""Round-trip and space tests for the physical CQF counter encoding."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.counting.cqf_encoding import decode_run, encode_run, run_slot_cost

R_BITS = 8


class TestRoundTrip:
    def test_simple_cases(self):
        cases = [
            {5: 1},
            {5: 2},
            {5: 3},
            {5: 100},
            {0: 1},
            {0: 7},
            {1: 50},  # unary digit regime
            {3: 1, 7: 2, 9: 500},
            {0: 3, 1: 4, 200: 9},
        ]
        for counts in cases:
            slots = encode_run(counts, R_BITS)
            assert decode_run(slots, R_BITS) == counts, counts

    @given(
        counts=st.dictionaries(
            st.integers(min_value=0, max_value=(1 << R_BITS) - 1),
            st.integers(min_value=1, max_value=10_000),
            min_size=0,
            max_size=20,
        )
    )
    @settings(max_examples=300, deadline=None)
    def test_encode_decode_identity(self, counts):
        slots = encode_run(counts, R_BITS)
        assert decode_run(slots, R_BITS) == counts

    @given(
        counts=st.dictionaries(
            st.integers(min_value=0, max_value=15),
            st.integers(min_value=1, max_value=1000),
            max_size=8,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_small_remainder_width(self, counts):
        slots = encode_run(counts, 4)
        assert decode_run(slots, 4) == counts


class TestSpace:
    def test_singletons_cost_one_slot(self):
        assert run_slot_cost({7: 1}, R_BITS) == 1
        assert run_slot_cost({3: 1, 9: 1, 200: 1}, R_BITS) == 3

    def test_count_two_costs_two(self):
        assert run_slot_cost({7: 2}, R_BITS) == 2

    def test_logarithmic_counter_growth(self):
        # count 10^6 on an 8-bit remainder: digits base x cover it in a
        # handful of slots, not a million.
        assert run_slot_cost({200: 1_000_000}, R_BITS) <= 2 + 3
        c1 = run_slot_cost({200: 1_000}, R_BITS)
        c2 = run_slot_cost({200: 1_000_000}, R_BITS)
        assert c2 - c1 <= 2  # tripling the magnitude adds ~log slots

    def test_remainder_zero_repetition_regime(self):
        # The documented simplification: x = 0 falls back to repetition.
        assert run_slot_cost({0: 50}, R_BITS) == 50

    def test_slots_fit_remainder_width(self):
        slots = encode_run({3: 1, 7: 2, 9: 500, 255: 9}, R_BITS)
        assert all(0 <= s < (1 << R_BITS) for s in slots)


class TestErrors:
    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            encode_run({1 << R_BITS: 1}, R_BITS)
        with pytest.raises(ValueError):
            encode_run({5: 0}, R_BITS)
        with pytest.raises(ValueError):
            encode_run({5: 1}, 1)

    def test_rejects_truncated_group(self):
        slots = encode_run({9: 500}, R_BITS)
        with pytest.raises(ValueError):
            decode_run(slots[:-1], R_BITS)
