"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "quotient" in out
        assert "§2.5" in out
        assert "adaptive" in out

    def test_space(self, capsys):
        assert main(["space", "--epsilon", "0.00390625", "--n", "1000"]) == 0
        out = capsys.readouterr().out
        assert "lower bound" in out
        assert "8.000" in out  # log2(1/2^-8)
        assert "KiB" in out

    def test_space_rejects_bad_epsilon(self):
        with pytest.raises(SystemExit):
            main(["space", "--epsilon", "2.0"])

    def test_monkey(self, capsys):
        assert main(["monkey", "--levels", "10,100,1000", "--bits-per-key", "8"]) == 0
        out = capsys.readouterr().out
        assert "sum of FPRs" in out
        # Monkey's total must print lower than uniform's.
        line = [l for l in out.splitlines() if "sum of FPRs" in l][0]
        monkey_total, uniform_total = map(float, line.split()[-2:])
        assert monkey_total < uniform_total

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
